// Link-layer and network-layer address value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace spider::net {

// 48-bit MAC address. Value type, totally ordered, hashable.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::uint64_t value)
      : value_(value & 0xFFFFFFFFFFFFULL) {}

  static constexpr MacAddress broadcast() {
    return MacAddress{0xFFFFFFFFFFFFULL};
  }
  // Deterministic address for a node index (locally-administered OUI).
  static constexpr MacAddress from_index(std::uint32_t index) {
    return MacAddress{0x020000000000ULL | index};
  }

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool is_broadcast() const { return value_ == 0xFFFFFFFFFFFFULL; }
  constexpr bool is_null() const { return value_ == 0; }

  friend constexpr auto operator<=>(MacAddress, MacAddress) = default;

  std::string to_string() const;  // "02:00:00:00:00:2a"

 private:
  std::uint64_t value_ = 0;
};

// IPv4 address.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_null() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

  std::string to_string() const;  // "10.0.3.17"

 private:
  std::uint32_t value_ = 0;
};

// BSS identifier — a MAC address in 802.11, given its own name so call sites
// read correctly.
using Bssid = MacAddress;

}  // namespace spider::net

template <>
struct std::hash<spider::net::MacAddress> {
  std::size_t operator()(spider::net::MacAddress a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value());
  }
};

template <>
struct std::hash<spider::net::Ipv4Address> {
  std::size_t operator()(spider::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
