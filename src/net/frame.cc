#include "net/frame.h"

#include "core/check.h"

namespace spider::net {

const FramePayload& SharedPayload::empty() {
  static const FramePayload kMonostate{};
  return kMonostate;
}

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kBeacon: return "Beacon";
    case FrameKind::kProbeRequest: return "ProbeRequest";
    case FrameKind::kProbeResponse: return "ProbeResponse";
    case FrameKind::kAuthRequest: return "AuthRequest";
    case FrameKind::kAuthResponse: return "AuthResponse";
    case FrameKind::kAssocRequest: return "AssocRequest";
    case FrameKind::kAssocResponse: return "AssocResponse";
    case FrameKind::kDisassoc: return "Disassoc";
    case FrameKind::kData: return "Data";
    case FrameKind::kNullData: return "NullData";
    case FrameKind::kPsPoll: return "PsPoll";
  }
  return "?";
}

const char* to_string(DhcpMessage::Kind kind) {
  switch (kind) {
    case DhcpMessage::Kind::kDiscover: return "Discover";
    case DhcpMessage::Kind::kOffer: return "Offer";
    case DhcpMessage::Kind::kRequest: return "Request";
    case DhcpMessage::Kind::kAck: return "Ack";
    case DhcpMessage::Kind::kNak: return "Nak";
  }
  return "?";
}

Frame make_beacon(MacAddress ap, BeaconInfo info) {
  return Frame{FrameKind::kBeacon, ap, MacAddress::broadcast(), ap, false,
               kBeaconBytes, 0.0, std::move(info)};
}

Frame make_probe_request(MacAddress client) {
  return Frame{FrameKind::kProbeRequest, client, MacAddress::broadcast(),
               Bssid{}, false, kProbeRequestBytes, 0.0, {}};
}

Frame make_probe_response(MacAddress ap, MacAddress client, BeaconInfo info) {
  return Frame{FrameKind::kProbeResponse, ap, client, ap, false,
               kProbeResponseBytes, 0.0, std::move(info)};
}

Frame make_beacon(MacAddress ap, SharedPayload beacon) {
  SPIDER_DCHECK(beacon.holds<BeaconInfo>())
      << "interned beacon payload does not hold a BeaconInfo";
  return Frame{FrameKind::kBeacon, ap, MacAddress::broadcast(), ap, false,
               kBeaconBytes, 0.0, std::move(beacon)};
}

Frame make_probe_response(MacAddress ap, MacAddress client,
                          SharedPayload beacon) {
  SPIDER_DCHECK(beacon.holds<BeaconInfo>())
      << "interned beacon payload does not hold a BeaconInfo";
  return Frame{FrameKind::kProbeResponse, ap, client, ap, false,
               kProbeResponseBytes, 0.0, std::move(beacon)};
}

Frame make_auth_request(MacAddress client, Bssid ap) {
  return Frame{FrameKind::kAuthRequest, client, ap, ap, false, kAuthBytes, 0.0, {}};
}

Frame make_auth_response(Bssid ap, MacAddress client) {
  return Frame{FrameKind::kAuthResponse, ap, client, ap, false, kAuthBytes, 0.0, {}};
}

Frame make_assoc_request(MacAddress client, Bssid ap) {
  return Frame{FrameKind::kAssocRequest, client, ap, ap, false,
               kAssocRequestBytes, 0.0, {}};
}

Frame make_assoc_response(Bssid ap, MacAddress client) {
  return Frame{FrameKind::kAssocResponse, ap, client, ap, false,
               kAssocResponseBytes, 0.0, {}};
}

Frame make_auth_response(Bssid ap, MacAddress client, SharedPayload info) {
  SPIDER_DCHECK(info.holds<BeaconInfo>())
      << "interned auth-response payload does not hold a BeaconInfo";
  return Frame{FrameKind::kAuthResponse, ap, client, ap, false, kAuthBytes,
               0.0, std::move(info)};
}

Frame make_assoc_response(Bssid ap, MacAddress client, SharedPayload info) {
  SPIDER_DCHECK(info.holds<BeaconInfo>())
      << "interned assoc-response payload does not hold a BeaconInfo";
  return Frame{FrameKind::kAssocResponse, ap, client, ap, false,
               kAssocResponseBytes, 0.0, std::move(info)};
}

Frame make_disassoc(MacAddress src, MacAddress dst, Bssid ap) {
  return Frame{FrameKind::kDisassoc, src, dst, ap, false, kDisassocBytes, 0.0, {}};
}

Frame make_null_data(MacAddress client, Bssid ap, bool power_mgmt) {
  return Frame{FrameKind::kNullData, client, ap, ap, power_mgmt,
               kNullDataBytes, 0.0, {}};
}

Frame make_ps_poll(MacAddress client, Bssid ap) {
  return Frame{FrameKind::kPsPoll, client, ap, ap, false, kPsPollBytes, 0.0, {}};
}

Frame make_dhcp_frame(MacAddress src, MacAddress dst, Bssid ap,
                      DhcpMessage msg) {
  return Frame{FrameKind::kData, src, dst, ap, false,
               kMacDataOverheadBytes + kDhcpMessageBytes, 0.0, msg};
}

Frame make_tcp_frame(MacAddress src, MacAddress dst, Bssid ap,
                     TcpSegment segment) {
  const int size = kMacDataOverheadBytes + segment.size_bytes();
  return Frame{FrameKind::kData, src, dst, ap, false, size, 0.0, segment};
}

}  // namespace spider::net
