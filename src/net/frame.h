// Wire representations.
//
// The simulator never serializes bytes; frames are value types whose
// `size_bytes` field drives airtime and queueing. Payloads are closed
// variants so every layer can switch exhaustively.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "net/addr.h"
#include "sim/time.h"

namespace spider::net {

// 802.11b/g channel number (1..11 in the paper's deployments).
using ChannelId = int;

// --- 802.11 frame kinds -----------------------------------------------------

enum class FrameKind : std::uint8_t {
  kBeacon,
  kProbeRequest,
  kProbeResponse,
  kAuthRequest,    // open-system authentication, step 1
  kAuthResponse,   // step 2
  kAssocRequest,
  kAssocResponse,
  kDisassoc,
  kData,           // carries a DHCP message or a TCP segment
  kNullData,       // empty data frame used to flag PSM transitions
  kPsPoll,         // power-save poll: "release one buffered frame"
};

const char* to_string(FrameKind kind);

// Representative on-air sizes (bytes, including MAC header + FCS).
inline constexpr int kBeaconBytes = 105;
inline constexpr int kProbeRequestBytes = 52;
inline constexpr int kProbeResponseBytes = 105;
inline constexpr int kAuthBytes = 30;
inline constexpr int kAssocRequestBytes = 62;
inline constexpr int kAssocResponseBytes = 40;
inline constexpr int kDisassocBytes = 26;
inline constexpr int kNullDataBytes = 28;
inline constexpr int kPsPollBytes = 20;
inline constexpr int kMacDataOverheadBytes = 34;
inline constexpr int kDhcpMessageBytes = 342;   // typical DHCP over UDP/IP
inline constexpr int kTcpIpHeaderBytes = 40;
inline constexpr int kTcpMssBytes = 1460;

// --- Payloads ----------------------------------------------------------------

// Carried by beacons and probe responses.
struct BeaconInfo {
  std::string ssid;
  ChannelId channel = 0;
  bool open = true;  // no encryption; Spider only uses open APs
};

struct DhcpMessage {
  enum class Kind : std::uint8_t { kDiscover, kOffer, kRequest, kAck, kNak };
  Kind kind = Kind::kDiscover;
  std::uint32_t transaction_id = 0;
  MacAddress client_mac;
  Ipv4Address offered_ip;   // set in Offer/Request/Ack
  Ipv4Address server_ip;    // set in Offer/Request/Ack
  sim::Time lease_duration = sim::Time::zero();
};

const char* to_string(DhcpMessage::Kind kind);

// A (simplified) TCP segment with IP addressing folded in. `flow_id` names
// the connection; seq/ack count bytes as in real TCP.
struct TcpSegment {
  std::uint64_t flow_id = 0;
  bool from_sender = true;    // sender->receiver (data) vs. reverse (acks)
  std::int64_t seq = 0;       // index of first payload byte
  std::int64_t payload_bytes = 0;
  std::int64_t ack = -1;      // cumulative: next byte expected (-1: none)
  bool syn = false;
  bool fin = false;
  // RFC 1323-style timestamps: senders stamp `ts`, receivers echo it back in
  // `ts_echo` so RTT samples survive retransmission ambiguity.
  sim::Time ts = sim::Time::zero();
  sim::Time ts_echo = sim::Time::zero();
  bool has_ts_echo = false;
  int size_bytes() const {
    return kTcpIpHeaderBytes + static_cast<int>(payload_bytes);
  }
};

using FramePayload =
    std::variant<std::monostate, BeaconInfo, DhcpMessage, TcpSegment>;

// Immutable, refcounted payload storage. Frames are copied freely — into the
// medium's delivery closure, AP power-save buffers, retransmit paths — and
// before this wrapper every copy deep-copied the variant (including the
// beacon SSID string). Payloads are write-once at construction, so copies
// now just bump a refcount; payload-less frames never allocate at all.
class SharedPayload {
 public:
  SharedPayload() = default;  // monostate, no allocation
  SharedPayload(BeaconInfo info)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const FramePayload>(std::move(info))) {}
  SharedPayload(DhcpMessage msg)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const FramePayload>(msg)) {}
  SharedPayload(TcpSegment segment)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const FramePayload>(segment)) {}

  const FramePayload& get() const { return data_ ? *data_ : empty(); }
  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&get());
  }
  template <typename T>
  bool holds() const {
    return std::holds_alternative<T>(get());
  }

  // Identity of the shared storage (nullptr for monostate). Tests use this
  // to assert interning — e.g. that every beacon an AP emits aliases one
  // allocation instead of minting a fresh payload per tick.
  const FramePayload* storage() const { return data_.get(); }

 private:
  static const FramePayload& empty();  // shared monostate singleton

  std::shared_ptr<const FramePayload> data_;
};

// --- Frame -------------------------------------------------------------------

struct Frame {
  FrameKind kind = FrameKind::kData;
  MacAddress src;
  MacAddress dst;            // broadcast() for beacons / probe requests
  Bssid bssid;               // the AP the frame belongs to (null for probes)
  bool power_mgmt = false;   // PM bit: "I am entering power-save mode"
  int size_bytes = 0;
  // PHY rate this frame is modulated at; 0 = the medium's default. Lower
  // rates are slower but more robust at range (see phy rate adaptation).
  double tx_rate_bps = 0.0;
  SharedPayload payload;

  bool is_management() const {
    return kind != FrameKind::kData && kind != FrameKind::kNullData &&
           kind != FrameKind::kPsPoll;
  }
};

// Convenience constructors keep size accounting in one place.
Frame make_beacon(MacAddress ap, BeaconInfo info);
Frame make_probe_request(MacAddress client);
Frame make_probe_response(MacAddress ap, MacAddress client, BeaconInfo info);
// Interned variants: APs beacon every ~100 ms forever, so the steady-state
// fast path builds the BeaconInfo payload once and hands the refcounted
// storage back out on every tick / probe response (the frames produced are
// indistinguishable from the BeaconInfo overloads above). `beacon` must hold
// a BeaconInfo.
Frame make_beacon(MacAddress ap, SharedPayload beacon);
Frame make_probe_response(MacAddress ap, MacAddress client,
                          SharedPayload beacon);
Frame make_auth_request(MacAddress client, Bssid ap);
Frame make_auth_response(Bssid ap, MacAddress client);
Frame make_assoc_request(MacAddress client, Bssid ap);
Frame make_assoc_response(Bssid ap, MacAddress client);
// Interned variants of the two immutable management responses: an AP's auth
// and assoc responses carry the same capability payload (SSID, channel,
// open) for every client forever, so the steady-state path hands out the
// AP's refcounted BeaconInfo storage instead of a payload-less frame — one
// allocation per AP lifetime, not per exchange. Sizes are unchanged, so
// airtime and digests are identical to the overloads above. `info` must
// hold a BeaconInfo.
Frame make_auth_response(Bssid ap, MacAddress client, SharedPayload info);
Frame make_assoc_response(Bssid ap, MacAddress client, SharedPayload info);
Frame make_disassoc(MacAddress src, MacAddress dst, Bssid ap);
Frame make_null_data(MacAddress client, Bssid ap, bool power_mgmt);
Frame make_ps_poll(MacAddress client, Bssid ap);
Frame make_dhcp_frame(MacAddress src, MacAddress dst, Bssid ap,
                      DhcpMessage msg);
Frame make_tcp_frame(MacAddress src, MacAddress dst, Bssid ap,
                     TcpSegment segment);

}  // namespace spider::net
