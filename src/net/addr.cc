#include "net/addr.h"

#include <cstdio>

namespace spider::net {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 40) & 0xFF),
                static_cast<unsigned>((value_ >> 32) & 0xFF),
                static_cast<unsigned>((value_ >> 24) & 0xFF),
                static_cast<unsigned>((value_ >> 16) & 0xFF),
                static_cast<unsigned>((value_ >> 8) & 0xFF),
                static_cast<unsigned>(value_ & 0xFF));
  return buf;
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

}  // namespace spider::net
