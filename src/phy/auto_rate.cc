#include "phy/auto_rate.h"

#include <algorithm>

#include "core/check.h"

namespace spider::phy {

SPIDER_HOT double AutoRate::rate_for(net::MacAddress peer) const {
  auto it = peers_.find(peer);
  const int idx = it == peers_.end()
                      ? static_cast<int>(k80211bRates.size()) - 1
                      : it->second.rate_index;
  return k80211bRates[static_cast<std::size_t>(idx)];
}

// Hot per tx-result; peers_[...] only allocates the first time a peer is
// seen (a join-time event), never in the warmed steady state.
SPIDER_HOT void AutoRate::on_success(net::MacAddress peer) {
  PeerState& s = peers_[peer];
  if (s.rate_index >= static_cast<int>(k80211bRates.size()) - 1) {
    s.successes = 0;
    return;
  }
  if (++s.successes >= up_after_) {
    ++s.rate_index;
    s.successes = 0;
  }
}

SPIDER_HOT void AutoRate::on_failure(net::MacAddress peer) {
  PeerState& s = peers_[peer];
  s.successes = 0;
  s.rate_index = std::max(0, s.rate_index - 1);
}

}  // namespace spider::phy
