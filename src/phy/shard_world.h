// Sharded single-world engine: one simulated world, K spatial shards, one
// ThreadPool worker per shard, bit-identical results for every K.
//
// The world is partitioned into K vertical strips snapped to RadioGrid cell
// columns (so two radios sharing a grid cell always share a shard). Each
// shard owns a Simulator + Medium + the radios resident in its strip and
// advances in bounded time windows of conservative lookahead
//
//     W = min(min frame airtime (preamble + serialization), 4.94 ms retune)
//
// which is the soonest anything in one shard can affect another: a frame
// transmitted at window start cannot finish serializing — let alone deliver —
// before the next barrier, and a retune started now completes no earlier
// than the measured 4.94 ms hardware reset (src/phy/radio.h).
//
// Everything that changes world state other than frame delivery happens AT
// barriers, as coordinator phases, never as free-running events:
//   1. retune completions due at the barrier (ascending (time, uid)),
//   2. mobility steps + cross-shard radio migrations (ascending uid),
//   3. retune starts and traffic sends (ascending uid per shard).
// Shard event queues therefore contain only frame deliveries, and each
// window runs them strictly-before its end barrier (run_until(end-1) +
// advance_to(end)), so an event landing exactly ON a barrier executes after
// the barrier's phases for every K.
//
// Cross-shard frames: a transmit within one grid cell (= max effective
// range) of a strip edge is mirrored into the neighbor's bounded mailbox via
// the medium's tx tap; mailboxes are exchanged at the next barrier — always
// in time, because delivery is at least one full window away — sorted by
// (time, tx key), and re-posted with Medium::deliver_remote. Receiver
// ownership makes delivery exactly-once: each shard applies outcomes only
// for its own residents, and a migrated sender skips its own halo copy by
// world-stable uid.
//
// Determinism contract (the N-vs-1 digest gate): per-receiver loss draws are
// counter-based hashes of (seed, tx key, receiver uid, attempt) — no
// sequential RNG stream to perturb — and the world digest is a commutative
// sum of per-outcome folds accumulated wherever the receiver happens to
// live, so digest() is identical for any shard count. Per-shard
// Simulator::digest() values are NOT comparable across K (event counts
// differ by halo copies); only delivery_digest sums are.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.h"
#include "phy/geom.h"
#include "phy/medium.h"
#include "sim/shard_executor.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

namespace spider::phy {

class Radio;

// One node's scripted behaviour. Everything a node does is a pure function
// of (scenario seed, uid, tick index), so its actions — and therefore the
// whole world — are identical however the strips are drawn.
struct ShardNodeSpec {
  Vec2 start{};
  net::ChannelId channel = 1;
  bool beaconer = false;          // beacons instead of probe requests
  std::uint32_t tx_period_ticks = 8;      // 0 = silent
  std::uint32_t retune_period_ticks = 0;  // 0 = never retunes
  double step_m = 0.0;                    // per-tick displacement (0 = parked)
};

struct ShardScenario {
  std::uint64_t seed = 1;
  sim::Time duration = sim::Time::millis(500);
  double width_m = 1000.0;
  double height_m = 1000.0;
  MediumConfig medium;  // stateless_loss / cell_contention are forced on
  // Mobility/traffic tick = this many windows (ticks land on barriers by
  // construction).
  std::uint32_t windows_per_tick = 8;
  // Test hook: use a shorter window than the derived lookahead (must still
  // be <= it). 0 = derive from the scenario's smallest frame.
  std::int64_t window_us_override = 0;
  // Channels retuning nodes hop across.
  std::vector<net::ChannelId> channel_plan{1, 6, 11};
  // Per-shard event scheduler (wheel by default; heap reference path). The
  // N-vs-1 digest gates run both ways.
  bool wheel_scheduler = true;
  std::vector<ShardNodeSpec> nodes;  // node i gets uid i+1
};

struct ShardWorldStats {
  std::uint64_t events_executed = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t halo_messages = 0;  // boundary frames mirrored to a neighbor
  std::uint64_t migrations = 0;     // radios handed between shards
  std::uint64_t retunes_started = 0;
  // Always 0: mailboxes are bounded but lossless (growth past the reserved
  // capacity is recorded in mailbox_high_water, never a drop). The zero is
  // asserted by tests and the perf gate.
  std::uint64_t message_drops = 0;
  std::uint64_t windows = 0;
  std::size_t mailbox_high_water = 0;
  unsigned shards = 1;
  unsigned workers = 1;
};

class ShardedWorld {
 public:
  // `pool` may be null (all phases inline); K=1 with a null pool is the
  // reference engine the digest gates compare against. Requires every strip
  // to be at least one grid cell wide: shards <= floor(width / cell).
  ShardedWorld(ShardScenario scenario, unsigned shards,
               sim::ThreadPool* pool);
  ~ShardedWorld();

  ShardedWorld(const ShardedWorld&) = delete;
  ShardedWorld& operator=(const ShardedWorld&) = delete;

  // Runs the scenario's full duration (whole windows, rounded up).
  void run();

  // Commutative world digest: sum over shards of the mediums'
  // delivery_digest plus barrier-event folds. Equal for any shard count.
  std::uint64_t digest() const;

  const ShardWorldStats& stats() const { return stats_; }
  sim::Time window() const { return window_; }
  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  // Strip index owning x (by grid-cell column). Exposed for tests and for
  // FleetExperiment-style placement helpers.
  unsigned shard_of_x(double x) const;

  // Per-node lifetime counters, accumulated across migrations (uids are
  // 1-based, as assigned at construction). The shard-vs-unsharded
  // receive-set equivalence gate compares these vectors.
  std::uint64_t node_rx_frames(std::uint32_t uid) const;
  std::uint64_t node_tx_frames(std::uint32_t uid) const;

  // Deterministic merge of every shard's telemetry snapshot, in shard order.
  telemetry::MetricsSnapshot merged_telemetry();

  // Turns on per-shard trace lanes: each shard's recorder gets a named
  // "shard k" track carrying one span per advanced window.
  void enable_tracing();

 private:
  struct Node;
  struct Shard;

  void derive_window();
  void build_shards(sim::ThreadPool* pool);
  void process_due_retunes(Shard& shard, std::int64_t barrier_us);
  void mobility_phase(Shard& shard, std::int64_t barrier_us,
                      std::uint64_t tick);
  void traffic_phase(Shard& shard, std::int64_t barrier_us,
                     std::uint64_t tick);
  void advance_phase(Shard& shard, std::int64_t barrier_us);
  void route_migrants();
  void exchange_mailboxes();
  void start_retune(Shard& shard, Node& node, std::uint32_t uid,
                    std::int64_t barrier_us, std::uint64_t tick);

  ShardScenario scenario_;
  sim::ShardExecutor executor_;
  sim::Time window_;
  double cell_m_ = 1.0;
  double inv_cell_m_ = 1.0;  // same rounding as RadioGrid::cell_of
  // Strip edges: edges_cells_[k] is shard k's first grid-cell column,
  // edges_m_[k] the same in meters; K+1 entries, last = world edge.
  std::vector<std::int32_t> edges_cells_;
  std::vector<double> edges_m_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Node> nodes_;  // indexed by uid - 1
  std::vector<std::uint32_t> migrant_scratch_;
  std::vector<std::string> shard_track_names_;
  ShardWorldStats stats_;
  bool tracing_ = false;
};

}  // namespace spider::phy
