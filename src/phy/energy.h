// Radio energy accounting.
//
// Section 4.8 flags "the effect of multi-AP systems on energy consumption
// of constrained devices" as open work. This meter implements the standard
// state-based model used for 802.11 power studies: the radio is always in
// exactly one of {sleep, idle/overhear, receive, transmit, reset}, each
// with a constant power draw; energy is the time integral. Numbers default
// to measurements commonly reported for 2008-2012 802.11b/g chipsets.
//
// The meter is driven by the Radio (state transitions, per-frame airtime)
// and read by experiments to report joules and joules-per-byte.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::phy {

enum class RadioState : std::uint8_t {
  kSleep,
  kIdle,      // awake, listening, no frame of ours in the air
  kReceive,   // decoding a frame addressed to (or overheard by) us
  kTransmit,
  kReset,     // hardware reset during a channel switch
};

struct EnergyModel {
  // Typical Atheros-class draws (watts).
  double sleep_w = 0.010;
  double idle_w = 0.740;
  double receive_w = 0.900;
  double transmit_w = 1.340;
  double reset_w = 0.740;  // the card is powered but useless
};

class EnergyMeter {
 public:
  explicit EnergyMeter(sim::Simulator& simulator, EnergyModel model = {})
      : sim_(simulator), model_(model), state_since_(simulator.now()) {}

  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  RadioState state() const { return state_; }

  // Switches state, charging the elapsed interval to the previous state.
  void set_state(RadioState next);

  // Charges a bounded burst (frame airtime) in `burst` state, then returns
  // to the current steady state. Used for per-frame tx/rx accounting.
  void charge_burst(RadioState burst, sim::Time duration);

  // Total energy including the currently-open interval.
  double total_joules() const;
  double joules_in(RadioState state) const;
  sim::Time time_in(RadioState state) const;

 private:
  double power_of(RadioState state) const;
  void settle() const;  // close the open interval into the accumulators

  sim::Simulator& sim_;
  EnergyModel model_;
  RadioState state_ = RadioState::kIdle;
  mutable sim::Time state_since_;
  mutable double joules_[5] = {0, 0, 0, 0, 0};
  mutable sim::Time durations_[5] = {};
};

}  // namespace spider::phy
