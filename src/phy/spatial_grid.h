// Uniform spatial hash-grid over attached radios.
//
// The medium's delivery fast path needs "all radios within distance r of a
// point" without scanning the world. Radios are bucketed into square cells of
// side cell_m (chosen by the Medium as the maximum effective frame range, so
// a delivery disc never overlaps more than a 3x3 neighborhood at standard
// rates); buckets are updated lazily — only when a mobile radio actually
// crosses a cell boundary, which at vehicular speeds is a few times per
// minute, not per position tick.
//
// Determinism contract: bucket iteration order depends on movement history
// (swap-and-pop removal), so the grid NEVER defines delivery order. Callers
// must re-sort gathered candidates by attach id before consuming RNG draws;
// see Medium::deliver.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/geom.h"

namespace spider::phy {

class Radio;

// Per-radio bookkeeping owned by the Medium that the radio is attached to.
// attach_id is the monotone attach-sequence number that defines the
// deterministic candidate order (and survives pointer reuse, unlike the raw
// Radio*); the remaining fields are O(1) handles into the partition's member
// list and the grid bucket the radio currently occupies.
struct MediumLink {
  std::uint64_t attach_id = 0;
  std::int32_t cell_x = 0;
  std::int32_t cell_y = 0;
  std::uint32_t cell_index = 0;    // index within the grid bucket
  std::uint32_t member_index = 0;  // index within the channel partition
};

class RadioGrid {
 public:
  // A delivery disc may span at most this many cells before gather() refuses
  // and the caller degrades to a partition scan (5x5 covers frames modulated
  // below the slowest 802.11b rate; anything wider means the cell size was
  // configured far smaller than the effective range).
  static constexpr std::int64_t kMaxGatherCells = 25;

  RadioGrid() = default;

  double cell_m() const { return cell_m_; }
  std::size_t size() const { return size_; }
  std::size_t occupied_cells() const { return cells_.size(); }

  // Must be called before the first insert (the Medium sizes the grid from
  // its config after construction).
  void reset_cell_size(double cell_m);

  void insert(Radio& radio, Vec2 pos);
  void remove(Radio& radio);
  // Re-buckets the radio if `pos` crossed a cell boundary; returns whether
  // it did (exposed so tests can count lazy updates).
  bool update(Radio& radio, Vec2 pos);

  // Appends every radio whose cell overlaps the disc (center, radius) to
  // `out` — a superset of the radios within `radius`; the caller applies the
  // exact distance filter. Returns false (leaving `out` untouched) when the
  // disc spans more than kMaxGatherCells cells.
  bool gather(Vec2 center, double radius_m, std::vector<Radio*>& out) const;

 private:
  struct Cell {
    std::int32_t x = 0;
    std::int32_t y = 0;
  };

  static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  Cell cell_of(Vec2 pos) const;

  double cell_m_ = 1.0;
  double inv_cell_m_ = 1.0;
  std::size_t size_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Radio*>> cells_;
};

}  // namespace spider::phy
