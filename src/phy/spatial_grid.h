// Uniform spatial hash-grid over attached radios.
//
// The medium's delivery fast path needs "all radios within distance r of a
// point" without scanning the world. Radios are bucketed into square cells of
// side cell_m (chosen by the Medium as the maximum effective frame range, so
// a delivery disc never overlaps more than a 3x3 neighborhood at standard
// rates); buckets are updated lazily — only when a mobile radio actually
// crosses a cell boundary, which at vehicular speeds is a few times per
// minute, not per position tick.
//
// Determinism contract: bucket iteration order depends on movement history
// (swap-and-pop removal), so the grid NEVER defines delivery order. Callers
// must re-sort gathered candidates by attach id before consuming RNG draws;
// see Medium::deliver.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "phy/geom.h"

namespace spider::phy {

class Radio;

// One pending re-bucket in a batched mobility tick: the radio already holds
// its new position; (cell_x, cell_y) is the destination cell it must move
// into. Produced by RadioGrid::plan_move, consumed by rebucket_batch.
struct GridMove {
  Radio* radio = nullptr;
  std::int32_t cell_x = 0;
  std::int32_t cell_y = 0;
};

// Per-radio bookkeeping owned by the Medium that the radio is attached to.
// attach_id is the monotone attach-sequence number that defines the
// deterministic candidate order (and survives pointer reuse, unlike the raw
// Radio*); the remaining fields are O(1) handles into the partition's member
// list and the grid bucket the radio currently occupies.
struct MediumLink {
  std::uint64_t attach_id = 0;
  std::int32_t cell_x = 0;
  std::int32_t cell_y = 0;
  std::uint32_t cell_index = 0;    // index within the grid bucket
  std::uint32_t member_index = 0;  // index within the channel partition
};

class RadioGrid {
 public:
  // A delivery disc may span at most this many cells before gather() refuses
  // and the caller degrades to a partition scan (5x5 covers frames modulated
  // below the slowest 802.11b rate; anything wider means the cell size was
  // configured far smaller than the effective range).
  static constexpr std::int64_t kMaxGatherCells = 25;

  RadioGrid() = default;

  double cell_m() const { return cell_m_; }
  std::size_t size() const { return size_; }
  std::size_t occupied_cells() const { return cells_.size(); }

  // Must be called before the first insert (the Medium sizes the grid from
  // its config after construction).
  void reset_cell_size(double cell_m);

  void insert(Radio& radio, Vec2 pos);
  void remove(Radio& radio);
  // Re-buckets the radio if `pos` crossed a cell boundary; returns whether
  // it did (exposed so tests can count lazy updates).
  bool update(Radio& radio, Vec2 pos);

  // Batched mobility. plan_move() is the read-only half of update(): it
  // returns true and fills `move` when `pos` crosses a cell boundary, so the
  // caller can collect a whole fleet tick's crossers and re-bucket them in
  // one rebucket_batch() call instead of N update() calls. The radio's
  // position must already be updated by the caller; the grid only reads the
  // destination cell from `move`.
  bool plan_move(const Radio& radio, Vec2 pos, GridMove& move) const;
  // Applies a batch of planned moves. Radios sharing a cell resolve their
  // bucket through a small per-batch memo instead of the hash map, so a
  // convoy crossing a boundary together pays a couple of hash lookups per
  // cell instead of two per radio. Bucket order after the batch differs
  // from the order N update() calls would leave — which is fine, because
  // the delivery path re-sorts candidates by attach id (see the determinism
  // contract above).
  void rebucket_batch(std::span<const GridMove> moves);

  // Appends every radio whose cell overlaps the disc (center, radius) to
  // `out` — a superset of the radios within `radius`; the caller applies the
  // exact distance filter. Returns false (leaving `out` untouched) when the
  // disc spans more than kMaxGatherCells cells.
  bool gather(Vec2 center, double radius_m, std::vector<Radio*>& out) const;

 private:
  struct Cell {
    std::int32_t x = 0;
    std::int32_t y = 0;
  };

  static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  Cell cell_of(Vec2 pos) const;

  // Memoized cell→bucket resolution for one rebucket_batch pass. Entries
  // point into cells_, whose mapped vectors are address-stable across the
  // inserts a batch performs (unordered_map nodes never move); the memo is
  // searched newest-first over a bounded window, so clustered fleets hit it
  // almost always and pathological scatter degrades to plain hash lookups.
  std::vector<Radio*>* batch_bucket(std::uint64_t cell_key, bool inserting);

  double cell_m_ = 1.0;
  double inv_cell_m_ = 1.0;
  std::size_t size_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Radio*>> cells_;
  std::vector<std::pair<std::uint64_t, std::vector<Radio*>*>> batch_groups_;
};

}  // namespace spider::phy
