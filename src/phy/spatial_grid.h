// Dense hot radio state (struct-of-arrays) + uniform spatial hash-grid.
//
// The medium's delivery fast path needs "all radios within distance r of a
// point" without scanning the world, and it needs each candidate's position,
// channel and switching flag without chasing a Radio*. Both live here:
//
//  - RadioHotStore holds the fields Medium::deliver, Medium::move_radios and
//    the grid scans actually touch — position, address, channel, switching,
//    grid cell, partition index — as parallel arrays indexed by attach id
//    (monotone, never reused), so candidate loops stream contiguous memory
//    and a 100k-radio world costs ~48 hot bytes per radio instead of a
//    pointer chase into a ~200-byte Radio.
//  - RadioGrid buckets ids into square cells of side cell_m (chosen by the
//    Medium as the maximum effective frame range, so a delivery disc never
//    overlaps more than a 3x3 neighborhood at standard rates); buckets are
//    updated lazily — only when a mobile radio actually crosses a cell
//    boundary, which at vehicular speeds is a few times per minute, not per
//    position tick.
//
// Determinism contract: bucket iteration order depends on movement history
// (swap-and-pop removal), so the grid NEVER defines delivery order. Callers
// must re-sort gathered candidates by attach id before consuming RNG draws;
// see Medium::deliver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/addr.h"
#include "phy/geom.h"

namespace spider::phy {

class Radio;

// Attach-sequence id, used directly as the index into RadioHotStore's
// arrays. Ids are monotone from 1 and never reused, so sorting candidate ids
// ascending IS attach order — the property the delivery RNG stream depends
// on. 0 means "never attached".
using RadioId = std::uint32_t;

// Parallel arrays of the per-radio state the hot paths read, indexed by
// RadioId. Owned by the Medium; the grid holds a pointer. `radio` doubles as
// the liveness map (nullptr after detach), replacing the old attach-id hash.
struct RadioHotStore {
  std::vector<Vec2> position;
  std::vector<net::MacAddress> address;
  std::vector<std::int32_t> channel;
  std::vector<std::uint8_t> switching;
  std::vector<std::int32_t> cell_x;
  std::vector<std::int32_t> cell_y;
  std::vector<std::uint32_t> cell_index;    // index within the grid bucket
  std::vector<std::uint32_t> member_index;  // index within channel partition
  // World-stable identity and per-sender transmit sequence, for the sharded
  // engine: attach ids are per-Medium (a migrating radio gets a fresh one in
  // its destination shard), so cross-shard-stable loss draws and digests key
  // on (uid, tx_seq) instead. Defaults to uid == attach id, tx_seq == 0, so
  // the single-world paths never notice them.
  std::vector<std::uint64_t> uid;
  std::vector<std::uint32_t> tx_seq;
  std::vector<Radio*> radio;

  // Grows every array to cover `id` (amortized O(1) per attach).
  void ensure(RadioId id) {
    if (radio.size() > id) return;
    const std::size_t n = static_cast<std::size_t>(id) + 1;
    position.resize(n);
    address.resize(n);
    channel.resize(n);
    switching.resize(n);
    cell_x.resize(n);
    cell_y.resize(n);
    cell_index.resize(n);
    member_index.resize(n);
    uid.resize(n);
    tx_seq.resize(n);
    radio.resize(n);
  }

  std::size_t capacity_bytes() const {
    return position.capacity() * sizeof(Vec2) +
           address.capacity() * sizeof(net::MacAddress) +
           channel.capacity() * sizeof(std::int32_t) +
           switching.capacity() * sizeof(std::uint8_t) +
           cell_x.capacity() * sizeof(std::int32_t) +
           cell_y.capacity() * sizeof(std::int32_t) +
           cell_index.capacity() * sizeof(std::uint32_t) +
           member_index.capacity() * sizeof(std::uint32_t) +
           uid.capacity() * sizeof(std::uint64_t) +
           tx_seq.capacity() * sizeof(std::uint32_t) +
           radio.capacity() * sizeof(Radio*);
  }
};

// One pending re-bucket in a batched mobility tick: the store already holds
// the radio's new position; (cell_x, cell_y) is the destination cell it must
// move into. Produced by RadioGrid::plan_move, consumed by rebucket_batch.
struct GridMove {
  RadioId id = 0;
  std::int32_t cell_x = 0;
  std::int32_t cell_y = 0;
};

class RadioGrid {
 public:
  // A delivery disc may span at most this many cells before gather() refuses
  // and the caller degrades to a partition scan (5x5 covers frames modulated
  // below the slowest 802.11b rate; anything wider means the cell size was
  // configured far smaller than the effective range).
  static constexpr std::int64_t kMaxGatherCells = 25;

  RadioGrid() = default;

  double cell_m() const { return cell_m_; }
  std::size_t size() const { return size_; }
  std::size_t occupied_cells() const { return cells_.size(); }

  // Packed key of the cell containing `pos` (stable across inserts/removals;
  // positions in the same cell always map to the same key). Used by the
  // medium's per-cell contention horizons.
  std::uint64_t cell_key_of(Vec2 pos) const {
    const Cell c = cell_of(pos);
    return key(c.x, c.y);
  }

  // Must be called before the first insert; the store outlives the grid.
  void bind(RadioHotStore* store) { store_ = store; }
  // Must be called before the first insert (the Medium sizes the grid from
  // its config after construction).
  void reset_cell_size(double cell_m);

  void insert(RadioId id, Vec2 pos);
  void remove(RadioId id);
  // Re-buckets the radio if `pos` crossed a cell boundary; returns whether
  // it did (exposed so tests can count lazy updates).
  bool update(RadioId id, Vec2 pos);

  // Batched mobility. plan_move() is the read-only half of update(): it
  // returns true and fills `move` when `pos` crosses a cell boundary, so the
  // caller can collect a whole fleet tick's crossers and re-bucket them in
  // one rebucket_batch() call instead of N update() calls. The store must
  // already hold the new position; the grid only reads the destination cell
  // from `move`.
  bool plan_move(RadioId id, Vec2 pos, GridMove& move) const;
  // Applies a batch of planned moves. Radios sharing a cell resolve their
  // bucket through a small per-batch memo instead of the hash map, so a
  // convoy crossing a boundary together pays a couple of hash lookups per
  // cell instead of two per radio. Bucket order after the batch differs
  // from the order N update() calls would leave — which is fine, because
  // the delivery path re-sorts candidates by attach id (see the determinism
  // contract above).
  void rebucket_batch(std::span<const GridMove> moves);

  // Appends every radio whose cell overlaps the disc (center, radius) to
  // `out` — a superset of the radios within `radius`; the caller applies the
  // exact distance filter. `out` must have room for size() ids (the caller
  // carves it from the drain arena at partition size). Returns false
  // (leaving count at 0) when the disc spans more than kMaxGatherCells
  // cells.
  bool gather(Vec2 center, double radius_m, RadioId* out,
              std::size_t& count) const;

  // Container overhead for bytes-per-radio accounting (buckets + hash map).
  std::size_t memory_bytes() const;

 private:
  struct Cell {
    std::int32_t x = 0;
    std::int32_t y = 0;
  };

  static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  Cell cell_of(Vec2 pos) const;

  // Memoized cell→bucket resolution for one rebucket_batch pass. Entries
  // point into cells_, whose mapped vectors are address-stable across the
  // inserts a batch performs (unordered_map nodes never move); the memo is
  // searched newest-first over a bounded window, so clustered fleets hit it
  // almost always and pathological scatter degrades to plain hash lookups.
  std::vector<RadioId>* batch_bucket(std::uint64_t cell_key, bool inserting);

  RadioHotStore* store_ = nullptr;
  double cell_m_ = 1.0;
  double inv_cell_m_ = 1.0;
  std::size_t size_ = 0;
  std::unordered_map<std::uint64_t, std::vector<RadioId>> cells_;
  std::vector<std::pair<std::uint64_t, std::vector<RadioId>*>> batch_groups_;
};

}  // namespace spider::phy
