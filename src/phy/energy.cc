#include "phy/energy.h"

namespace spider::phy {

double EnergyMeter::power_of(RadioState state) const {
  switch (state) {
    case RadioState::kSleep: return model_.sleep_w;
    case RadioState::kIdle: return model_.idle_w;
    case RadioState::kReceive: return model_.receive_w;
    case RadioState::kTransmit: return model_.transmit_w;
    case RadioState::kReset: return model_.reset_w;
  }
  return 0.0;
}

void EnergyMeter::settle() const {
  const sim::Time elapsed = sim_.now() - state_since_;
  if (elapsed > sim::Time::zero()) {
    const auto idx = static_cast<int>(state_);
    joules_[idx] += power_of(state_) * elapsed.sec();
    durations_[idx] += elapsed;
  }
  state_since_ = sim_.now();
}

void EnergyMeter::set_state(RadioState next) {
  settle();
  state_ = next;
}

void EnergyMeter::charge_burst(RadioState burst, sim::Time duration) {
  settle();
  const auto idx = static_cast<int>(burst);
  joules_[idx] += power_of(burst) * duration.sec();
  durations_[idx] += duration;
  // The burst displaces steady-state time: advance the open interval.
  state_since_ = sim_.now();
}

double EnergyMeter::total_joules() const {
  settle();
  double total = 0.0;
  for (double j : joules_) total += j;
  return total;
}

double EnergyMeter::joules_in(RadioState state) const {
  settle();
  return joules_[static_cast<int>(state)];
}

sim::Time EnergyMeter::time_in(RadioState state) const {
  settle();
  return durations_[static_cast<int>(state)];
}

}  // namespace spider::phy
