// Shared wireless medium.
//
// Radios register themselves with the medium; a transmission occupies the
// sender's channel for preamble + serialization time (CSMA-like: a busy
// channel defers the start of the next transmission, no collision model) and
// is then delivered to every other radio that is tuned to that channel,
// within range, and not mid-reset. Loss is an independent Bernoulli draw per
// receiver: a configurable uniform rate `base_loss` (the model's `h`) plus an
// optional quadratic degradation near the edge of the range disc.
//
// Memory layout: the per-radio fields the delivery and mobility paths touch
// live in a RadioHotStore (struct-of-arrays indexed by attach id) owned
// here, not in Radio — Radio keeps the id and reads through accessors. The
// per-channel partitions and the spatial grid hold ids into the store, so
// candidate loops stream contiguous arrays instead of chasing pointers; see
// DESIGN.md "Memory layout".
//
// Delivery fast path: radios are partitioned by current channel (kept in
// sync through attach/detach/retune notifications from the Radio) and each
// partition is bucketed by a uniform spatial grid whose cell is the maximum
// effective frame range, so one delivery touches only the O(candidates)
// radios in the 3x3 cell neighborhood of the sender instead of every radio
// in the world. Candidates are re-sorted by attach id before the per-receiver
// loss draws, so the RNG stream — and therefore the run digest — is
// provably independent of grid/bucket internals (the reference scan path,
// MediumConfig::indexed_delivery = false, exists to cross-check exactly
// that, and to serve as the benchmark's "old path").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "phy/geom.h"
#include "phy/spatial_grid.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::phy {

class Radio;

struct MediumConfig {
  double range_m = 100.0;        // the paper's practical Wi-Fi range
  double base_loss = 0.10;       // uniform frame-loss probability `h`
  double bitrate_bps = 11e6;     // 802.11b wireless bandwidth `Bw`
  sim::Time preamble = sim::Time::micros(192);  // 802.11b long preamble
  // When true, loss ramps from base_loss at edge_start*range up to 1.0 at the
  // range edge, mimicking the fringe behaviour vehicular clients see (links
  // fade over seconds as the car drives off, instead of dying at a wall).
  bool edge_degradation = true;
  double edge_start = 0.75;
  // 802.11 link-layer ARQ: unicast data/null/ps-poll frames are retried up
  // to this many times, so the loss TCP sees is base_loss^(retries+1).
  // Management (probe/auth/assoc) frames follow the analytical model's
  // single-shot loss. Retry airtime is not charged (a deliberate
  // simplification; retries are rare at h=10%).
  int data_retry_limit = 4;
  // Delivery-path selection. true (default): per-channel partition + spatial
  // grid, O(candidates) per frame. false: the original attach-order scan
  // over every attached radio — kept as the benchmark's "old path" and as
  // the reference for the determinism cross-check (both paths consume
  // identical RNG draws, so digests must match bit for bit).
  bool indexed_delivery = true;
  // Partitions at or below this population skip the grid and scan the
  // partition directly (still sorted by attach id, so the RNG stream is
  // unchanged): at tiny worlds the 3x3 hash probes cost more than touching
  // every co-channel radio (the 0.93x regression perf_smoke's radios_50
  // section measured). Tests that assert grid usage set this to 0.
  std::size_t indexed_scan_threshold = 56;
  // Sharded-engine loss mode: each per-receiver Bernoulli draw comes from a
  // counter-based hash of (loss_seed, tx_key, receiver uid, attempt) instead
  // of the medium's sequential RNG stream, so every outcome is a pure
  // function of physical identities — independent of delivery order, attach
  // order, and shard count. Also arms the commutative delivery digest
  // (delivery_digest()) that the N-vs-1-shard gate compares. Default off:
  // the sequential stream is the contract all existing digests are built on.
  bool stateless_loss = false;
  std::uint64_t loss_seed = 0;
  // Localized carrier sense: serialize transmissions per (channel, grid
  // cell) instead of per channel world-wide. Required by the sharded engine
  // — a world-global busy horizon is inherently unshardable — and
  // shard-invariant because shard strips are unions of whole grid-cell
  // columns, so same-cell senders always live in the same shard. While set,
  // channel_idle_at() keeps reporting the (now untouched) global horizon.
  bool cell_contention = false;
};

// One radio's new position in a batched mobility tick (Medium::move_radios).
struct RadioMove {
  Radio* radio = nullptr;
  Vec2 position{};
};

// Delivery metadata handed to receivers alongside the frame.
struct RxInfo {
  net::ChannelId channel = 0;
  double distance_m = 0.0;
  double rssi_dbm = 0.0;  // log-distance proxy, for AP-selection policies
};

class Medium {
 public:
  // Tap invoked for every frame handed to the medium (before loss/range
  // filtering) — the hook frame logs and debuggers attach to.
  using SnifferFn =
      std::function<void(const net::Frame&, net::ChannelId, sim::Time)>;

  Medium(sim::Simulator& simulator, sim::Rng rng, MediumConfig config = {});
  ~Medium();

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  const MediumConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  // Called by Radio's constructor/destructor.
  void attach(Radio& radio, net::ChannelId initial_channel);
  void detach(Radio& radio);

  // Hot-store accessors for the radio's handle-based reads (inline: these
  // sit on every Radio::channel()/position() call).
  net::ChannelId channel_of(RadioId id) const {
    return static_cast<net::ChannelId>(hot_.channel[id]);
  }
  Vec2 position_of(RadioId id) const { return hot_.position[id]; }
  bool is_switching(RadioId id) const { return hot_.switching[id] != 0; }

  // Called by Radio when a hardware reset starts/aborts.
  void set_switching(Radio& radio, bool switching);
  // Called by Radio when a retune completes: records the new channel,
  // clears the switching flag and moves the radio between partitions.
  void complete_retune(Radio& radio, net::ChannelId channel);
  // Moves one radio (position write + lazy grid re-bucket); a no-move
  // update is free.
  void set_position(Radio& radio, Vec2 position);

  // Batched mobility tick: applies every move (position write + lazy grid
  // re-bucket) in one call. Crossers are grouped per channel partition and
  // re-bucketed en masse (RadioGrid::rebucket_batch), so a fleet tick pays
  // hash-map traffic per *cell group*, not per radio. Equivalent to calling
  // radio->set_position(position) once per entry — same positions, same
  // digests (position updates consume no RNG, and delivery re-sorts
  // candidates by attach id so bucket order is invisible). Scratch comes
  // from the simulator's drain arena.
  void move_radios(std::span<const RadioMove> moves);

  void set_sniffer(SnifferFn sniffer) { sniffer_ = std::move(sniffer); }

  // --- Sharded-engine surface (see phy::ShardedWorld) -----------------------
  //
  // World-stable identity: attach ids are per-Medium, so a radio that
  // migrates between shards carries a uid (and its transmit sequence) that
  // survives the detach/re-attach. Defaults at attach: uid = attach id,
  // tx_seq = 0 — unique within one Medium, so single-world behaviour is
  // unchanged. Sharded callers must keep uids world-unique.
  void set_identity(Radio& radio, std::uint64_t uid, std::uint32_t tx_seq);
  std::uint64_t uid_of(RadioId id) const { return hot_.uid[id]; }
  std::uint32_t tx_seq_of(RadioId id) const { return hot_.tx_seq[id]; }

  // Cross-shard transmission descriptor handed to the tap below for every
  // local transmit, and accepted back via deliver_remote() on the
  // neighboring shard. `tx_key` is the world-unique transmission id
  // hash(uid, tx_seq) that keys stateless loss draws and the delivery
  // digest.
  struct TxInfo {
    std::uint64_t sender_uid = 0;
    std::uint64_t tx_key = 0;
    Vec2 pos{};
    net::ChannelId channel = 0;
    sim::Time deliver_at;
    const net::Frame* frame = nullptr;
  };
  using TxTapFn = std::function<void(const TxInfo&)>;
  // Invoked synchronously inside transmit() after the delivery event is
  // scheduled — the coordinator's hook for mirroring boundary frames into a
  // neighbor shard's mailbox.
  void set_tx_tap(TxTapFn tap) { tx_tap_ = std::move(tap); }

  // Schedules delivery of a frame transmitted in another shard. Receivers
  // with hot uid == sender_uid are skipped (the sender may have migrated
  // here mid-flight), so together with the local delivery in the origin
  // shard every radio in the world sees the frame exactly once. Requires
  // stateless_loss (order-independent draws are what make the halo copy
  // consume no local RNG).
  void deliver_remote(sim::Time at, std::uint64_t sender_uid,
                      std::uint64_t tx_key, Vec2 pos, net::ChannelId channel,
                      net::Frame frame);

  // Commutative digest over physical delivery outcomes, armed by
  // stateless_loss: per transmit, mix(time, tx_key) is added; per receiver
  // outcome, mix(time, tx_key, rx uid, delivered?) is added in the shard
  // that OWNS the receiver. Wrapping addition makes the per-shard values
  // summable: the world digest is the sum over shards, identical for any
  // shard count. (Per-shard values alone are NOT comparable across shard
  // counts.)
  std::uint64_t delivery_digest() const { return delivery_digest_; }
  std::uint64_t remote_frames_in() const { return remote_frames_in_; }

  // Cell size of the spatial grid (same for every partition) — the halo
  // width the sharded coordinator uses, since it upper-bounds the effective
  // range of any standard-rate frame.
  double grid_cell_m() const { return partitions_[0].grid.cell_m(); }
  // -------------------------------------------------------------------------

  // Called by Radio::send(): schedules serialization and delivery. Returns
  // the time at which the transmission will complete.
  sim::Time transmit(Radio& sender, net::Frame frame);

  // Loss probability as a function of distance (exposed for tests).
  double loss_probability(double distance_m) const;

  // Time at which the channel's current transmission (queue) completes;
  // never in the past. Drivers use this to finish in-flight frames before
  // retuning, as real MACs do. (Channels outside the 1..14 plan share one
  // busy slot; radios can only ever be tuned to valid channels.)
  sim::Time channel_idle_at(net::ChannelId channel) const;

  // Cumulative counters, for tests and micro-benchmarks.
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_lost() const { return frames_lost_; }
  // Fast-path observability: deliveries served from the 3x3 grid
  // neighborhood vs. a partition/world scan (reference path, a frame whose
  // effective range outgrew the grid cell, or a partition at or below the
  // scan threshold).
  std::uint64_t deliveries_grid() const { return deliveries_grid_; }
  std::uint64_t deliveries_scan() const { return deliveries_scan_; }
  // Radios currently attached on `channel` (tests; O(1)).
  std::size_t radios_on(net::ChannelId channel) const {
    return partitions_[channel_slot(channel)].members.size();
  }

  // Resident bytes of the hot per-radio state: the SoA store, the id lists
  // (attach order + partitions + grid buckets) and the in-flight tx pool.
  // The scale bench divides this by the world size to gate bytes/radio.
  std::size_t hot_state_bytes() const;

  // Per-channel slices of the same counters (channels 1..14; anything else
  // is folded into slot 0). Published as phy.frames_*.ch<N> metrics by the
  // telemetry collector registered with this medium's simulator.
  std::uint64_t frames_sent_on(net::ChannelId channel) const {
    return per_channel_[channel_slot(channel)].sent;
  }
  std::uint64_t frames_delivered_on(net::ChannelId channel) const {
    return per_channel_[channel_slot(channel)].delivered;
  }
  std::uint64_t frames_lost_on(net::ChannelId channel) const {
    return per_channel_[channel_slot(channel)].lost;
  }

 private:
  static constexpr std::size_t kChannelSlots = 15;  // 0 = out-of-plan
  static std::size_t channel_slot(net::ChannelId channel) {
    return channel >= 1 && channel < static_cast<int>(kChannelSlots)
               ? static_cast<std::size_t>(channel)
               : 0;
  }

  struct ChannelCounters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
  };

  // Radios tuned to one channel slot: an unordered member list (swap-and-pop
  // via RadioHotStore::member_index) plus the spatial grid over their
  // positions. Members are ids into hot_.
  struct ChannelPartition {
    std::vector<RadioId> members;
    RadioGrid grid;
    // True while `members` happens to be ascending by attach id — the common
    // steady state (appends are monotone; only a swap-and-pop removal from
    // the middle breaks it). Lets the small-partition scan path skip the
    // per-delivery re-sort of survivors (the last cost keeping the shipped
    // auto-selected path behind the world scan at radios_50), while leaving
    // the RNG stream byte-identical: sorted input sorts to itself.
    bool members_sorted = true;
  };

  // State of one in-flight transmission, parked between transmit() and the
  // delivery event. Pooled (free list below) so the posted closure captures
  // only {this, node} — 16 bytes, inside SmallFn's inline buffer — instead
  // of the ~100-byte {id, pos, channel, frame} capture that used to push
  // every single transmit onto the heap. The pool's high-water mark is the
  // max number of concurrently in-flight frames, a handful per channel.
  struct PendingTx {
    RadioId sender_id = 0;  // 0 for remote (cross-shard) transmissions
    std::uint64_t sender_uid = 0;
    std::uint64_t tx_key = 0;
    Vec2 pos{};
    net::ChannelId channel = 0;
    net::Frame frame{};
  };
  PendingTx* acquire_pending_tx();
  void release_pending_tx(PendingTx* node);

  void insert_into_partition(RadioId id);
  void remove_from_partition(RadioId id, net::ChannelId channel);
  void deliver(const PendingTx& tx);
  void publish_metrics(telemetry::Registry& registry) const;
  // Counter-based per-receiver loss draw (stateless_loss mode): a pure
  // function of (loss_seed, tx_key, rx_uid, attempt).
  bool stateless_bernoulli(double p, std::uint64_t tx_key, std::uint64_t rx_uid,
                           int attempt) const;

  sim::Simulator& sim_;
  sim::Rng rng_;
  MediumConfig config_;
  SnifferFn sniffer_;
  // Dense per-radio hot state, indexed by attach id (see spatial_grid.h).
  // hot_.radio is the liveness map: a detached id maps to nullptr, so a
  // recycled heap address can never impersonate a detached sender.
  RadioHotStore hot_;
  // All attached ids in attach order — the reference delivery path's scan
  // list (and, because ids are monotone, always sorted ascending).
  std::vector<RadioId> all_;
  std::array<ChannelPartition, kChannelSlots> partitions_;
  RadioId next_attach_id_ = 1;  // 0 = never attached
  // Busy horizon per channel slot: flat array indexed by channel_slot — the
  // per-transmit hash lookup this replaced showed up in delivery profiles.
  std::array<sim::Time, kChannelSlots> busy_until_{};
  // Per-(channel, grid-cell) busy horizons, used instead of busy_until_ when
  // config_.cell_contention is set. Lookup-only (never iterated), so the
  // unordered map's ordering can't leak into behaviour.
  std::array<std::unordered_map<std::uint64_t, sim::Time>, kChannelSlots>
      cell_busy_;
  // PendingTx free-list pool: tx_pool_ owns the nodes, tx_free_ holds the
  // idle ones (capacity always >= pool size so release never allocates).
  std::vector<std::unique_ptr<PendingTx>> tx_pool_;
  std::vector<PendingTx*> tx_free_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t deliveries_grid_ = 0;
  std::uint64_t deliveries_scan_ = 0;
  std::array<ChannelCounters, kChannelSlots> per_channel_{};
  telemetry::Hub::CollectorId collector_id_ = 0;
  TxTapFn tx_tap_;
  std::uint64_t delivery_digest_ = 0;
  std::uint64_t remote_frames_in_ = 0;
};

}  // namespace spider::phy
