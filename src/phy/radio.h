// A single physical 802.11 radio.
//
// The radio is half-duplex and tuned to exactly one channel at a time.
// Retuning requires a hardware reset during which nothing can be sent or
// received — this is the switching delay `w` of the paper's model and the
// dominant term in Table 1's channel-switch latency.
//
// Memory layout: the fields the medium's hot paths read per candidate —
// position, channel, switching flag, grid cell — do NOT live here. They sit
// in the medium's RadioHotStore (struct-of-arrays, indexed by attach id);
// the radio keeps only the id and reads through the medium's accessors, so
// delivery scans stream dense arrays instead of dereferencing one Radio per
// candidate. See DESIGN.md "Memory layout".
#pragma once

#include <cstdint>
#include <functional>

#include "net/frame.h"
#include "phy/energy.h"
#include "phy/geom.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::phy {

// The measured hardware-reset (retune) time: Table 1's ~4.94 ms for the
// Atheros part with no associated interfaces. THE canonical constant — the
// default RadioConfig::hardware_reset, the sharded engine's lookahead bound,
// and the Table 1 reproduction all read this one name.
inline constexpr sim::Time kHardwareResetTime = sim::Time::micros(4940);

struct RadioConfig {
  net::ChannelId initial_channel = 1;
  // Hardware-reset time applied on every retune; override per radio to
  // model a different part.
  sim::Time hardware_reset = kHardwareResetTime;
};

class Radio {
 public:
  using ReceiveHandler = std::function<void(const net::Frame&, const RxInfo&)>;
  // Invoked when a unicast data frame exhausted its link-layer retries
  // without reaching the addressed station (it was absent, mid-reset, or
  // every attempt was lost). Mirrors the 802.11 retry-failure indication
  // drivers get, which APs use to re-queue frames for power-save clients.
  using TxFailureHandler = std::function<void(const net::Frame&)>;
  // Full outcome feedback for unicast data frames (rate adaptation).
  using TxResultHandler = std::function<void(const net::Frame&, bool ok)>;

  Radio(Medium& medium, net::MacAddress address, RadioConfig config = {});
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  net::MacAddress address() const { return address_; }
  net::ChannelId channel() const { return medium_.channel_of(id_); }
  Vec2 position() const { return medium_.position_of(id_); }
  // Monotone attach-sequence number within this radio's medium: a small,
  // stable integer id (used e.g. as a per-radio telemetry counter track);
  // also this radio's index into the medium's hot store.
  std::uint64_t attach_order() const { return id_; }
  // Moves the radio and re-buckets it in the medium's spatial grid if it
  // crossed a cell boundary; a no-move update is free (parked vehicles get
  // position ticks too).
  void set_position(Vec2 p) { medium_.set_position(*this, p); }
  void set_receive_handler(ReceiveHandler handler) {
    receive_handler_ = std::move(handler);
  }
  void set_tx_failure_handler(TxFailureHandler handler) {
    tx_failure_handler_ = std::move(handler);
  }
  void set_tx_result_handler(TxResultHandler handler) {
    tx_result_handler_ = std::move(handler);
  }

  // True while a hardware reset is in flight; the radio is deaf and mute.
  bool switching() const { return medium_.is_switching(id_); }

  // Retunes to `channel`. Invokes `done` (if any) once the reset completes.
  // Tuning to the current channel still incurs the reset (matches hardware).
  void tune(net::ChannelId channel, std::function<void()> done = nullptr);

  // Hands the frame to the medium. Returns false (dropping the frame) while
  // a hardware reset is in flight.
  bool send(net::Frame frame);

  // Counters.
  std::uint64_t frames_tx() const { return frames_tx_; }
  std::uint64_t frames_rx() const { return frames_rx_; }
  std::uint64_t tx_dropped_switching() const { return tx_dropped_switching_; }

  // Optional, non-owning: when attached, the radio charges resets and
  // per-frame tx/rx airtime to the meter (steady state: idle).
  void attach_energy_meter(EnergyMeter* meter) { energy_ = meter; }
  EnergyMeter* energy_meter() { return energy_; }

 private:
  friend class Medium;
  // Medium-side delivery entry point.
  void handle_delivery(const net::Frame& frame, const RxInfo& info);
  void handle_tx_result(const net::Frame& frame, bool ok);

  Medium& medium_;
  net::MacAddress address_;
  RadioConfig config_;
  // Handle into the medium's RadioHotStore (assigned by Medium::attach).
  RadioId id_ = 0;
  sim::TimerHandle switch_timer_;
  ReceiveHandler receive_handler_;
  TxFailureHandler tx_failure_handler_;
  TxResultHandler tx_result_handler_;
  std::uint64_t frames_tx_ = 0;
  std::uint64_t frames_rx_ = 0;
  std::uint64_t tx_dropped_switching_ = 0;
  EnergyMeter* energy_ = nullptr;

  sim::Time frame_airtime(int size_bytes) const;
};

}  // namespace spider::phy
