// 2.4 GHz channel plan.
#pragma once

#include <array>

#include "net/frame.h"

namespace spider::phy {

inline constexpr net::ChannelId kMinChannel = 1;
inline constexpr net::ChannelId kMaxChannel = 11;

// The three non-overlapping channels that host almost all APs in the paper's
// measurements (28% / 33% / 34% in Amherst; 83% combined in Boston).
inline constexpr std::array<net::ChannelId, 3> kOrthogonalChannels{1, 6, 11};

constexpr bool valid_channel(net::ChannelId c) {
  return c >= kMinChannel && c <= kMaxChannel;
}

// 802.11b/g channels are 5 MHz apart with ~22 MHz occupancy: separation of
// five or more channel numbers means no overlap.
constexpr bool orthogonal(net::ChannelId a, net::ChannelId b) {
  const int d = a > b ? a - b : b - a;
  return d >= 5;
}

constexpr double center_frequency_mhz(net::ChannelId c) {
  return 2412.0 + 5.0 * (c - 1);
}

}  // namespace spider::phy
