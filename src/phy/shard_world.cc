#include "phy/shard_world.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <limits>
#include <utility>

#include "core/check.h"
#include "net/addr.h"
#include "phy/channel.h"
#include "phy/radio.h"

namespace spider::phy {

namespace {

// Trace track ids for the per-shard window lanes (1000 + shard index keeps
// them clear of the per-world sim.* tracks).
constexpr std::uint32_t kShardTrackBase = 1000;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform [0, 1) as a pure function of its inputs — node behaviour must
// never consume a sequential stream, or it would depend on shard layout.
double hash01(std::uint64_t seed, std::uint64_t uid, std::uint64_t tick,
              std::uint64_t salt) {
  const std::uint64_t x =
      mix64(seed ^ mix64(uid * 0x9e3779b97f4a7c15ull + salt) ^ mix64(tick));
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Reflects a coordinate into [0, limit] (one bounce is enough: per-tick
// steps are tiny compared to world size), then clamps for safety.
double reflect(double v, double limit) {
  if (v < 0.0) v = -v;
  if (v > limit) v = 2.0 * limit - v;
  return std::clamp(v, 0.0, limit);
}

net::MacAddress mac_of(std::uint32_t uid) {
  return net::MacAddress::from_index(uid);
}

}  // namespace

// One timestamped cross-shard frame. Sorted by (at_us, tx_key) before apply:
// tx keys are world-unique per transmission, so the order is total and
// identical however the messages were produced.
struct ShardMsg {
  std::int64_t at_us = 0;
  std::uint64_t sender_uid = 0;
  std::uint64_t tx_key = 0;
  Vec2 pos{};
  net::ChannelId channel = 0;
  net::Frame frame;
};

struct ShardedWorld::Node {
  Vec2 pos{};
  net::ChannelId channel = 1;
  bool switching = false;
  net::ChannelId pending_channel = 0;
  std::int64_t retune_done_us = 0;
  std::uint32_t tx_seq = 0;  // carried across migrations
  // Lifetime counters from previous residencies (the live radio's counters
  // are added on read).
  std::uint64_t rx_base = 0;
  std::uint64_t tx_base = 0;
  unsigned shard = 0;
  net::SharedPayload beacon;  // minted once for beaconers
  std::unique_ptr<Radio> radio;
};

struct ShardedWorld::Shard {
  unsigned index = 0;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<Medium> medium;
  std::vector<std::uint32_t> residents;  // uids, ascending
  // Bounded mailboxes (reserved capacity; growth is tracked, never dropped).
  std::vector<ShardMsg> outbox_left;
  std::vector<ShardMsg> outbox_right;
  std::vector<ShardMsg> inbox;
  // Pending retune completions, ascending (done_us, uid); tiny (a node
  // retunes at most once per 4.94 ms).
  std::vector<std::pair<std::int64_t, std::uint32_t>> retunes;
  std::vector<RadioMove> move_scratch;
  std::vector<std::uint32_t> out_migrants;
  std::uint64_t aux_digest = 0;  // commutative folds of barrier events
  std::uint64_t retunes_started = 0;
};

ShardedWorld::ShardedWorld(ShardScenario scenario, unsigned shards,
                           sim::ThreadPool* pool)
    : scenario_(std::move(scenario)), executor_(shards, pool) {
  SPIDER_CHECK(shards >= 1) << "world needs at least one shard";
  SPIDER_CHECK(scenario_.width_m > 0.0 && scenario_.height_m > 0.0)
      << "degenerate world " << scenario_.width_m << " x "
      << scenario_.height_m;
  SPIDER_CHECK(scenario_.windows_per_tick >= 1) << "tick needs >= 1 window";
  SPIDER_CHECK(!scenario_.channel_plan.empty()) << "empty channel plan";
  for (const net::ChannelId c : scenario_.channel_plan) {
    SPIDER_CHECK(valid_channel(c)) << "channel " << c << " outside the plan";
  }
  derive_window();
  build_shards(pool);
}

ShardedWorld::~ShardedWorld() {
  // Radios must detach before their mediums die.
  nodes_.clear();
}

void ShardedWorld::derive_window() {
  // Conservative lookahead: nothing in one shard can affect another sooner
  // than the smallest frame's airtime (a frame transmitted now delivers at
  // least preamble + serialization later) or the 4.94 ms hardware reset
  // (retune completions are additionally quantized to barriers). Every
  // scenario frame class is considered; silent worlds fall back to the
  // probe-request size.
  int min_bytes = std::numeric_limits<int>::max();
  for (const ShardNodeSpec& spec : scenario_.nodes) {
    if (spec.tx_period_ticks == 0) continue;
    min_bytes = std::min(
        min_bytes, spec.beaconer ? net::kBeaconBytes : net::kProbeRequestBytes);
  }
  if (min_bytes == std::numeric_limits<int>::max()) {
    min_bytes = net::kProbeRequestBytes;
  }
  const sim::Time airtime =
      scenario_.medium.preamble +
      sim::transmission_time(min_bytes, scenario_.medium.bitrate_bps);
  std::int64_t w_us = std::min(airtime.us(), kHardwareResetTime.us());
  if (scenario_.window_us_override > 0) {
    SPIDER_CHECK(scenario_.window_us_override <= w_us)
        << "window override " << scenario_.window_us_override
        << "us exceeds the conservative lookahead " << w_us << "us";
    w_us = scenario_.window_us_override;
  }
  // Windows run strictly-before their barrier (run_until(end - 1us)), so a
  // window must span at least 2us.
  SPIDER_CHECK(w_us >= 2) << "window " << w_us << "us too small";
  window_ = sim::Time::micros(w_us);
}

void ShardedWorld::build_shards(sim::ThreadPool* pool) {
  (void)pool;
  const unsigned k = executor_.shards();
  shards_.reserve(k);
  for (unsigned s = 0; s < k; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->sim = std::make_unique<sim::Simulator>(
        sim::SimulatorConfig{scenario_.wheel_scheduler});
    MediumConfig cfg = scenario_.medium;
    // The sharded engine's two hard requirements (see medium.h): draws that
    // are pure functions of physical identity, and carrier sense that never
    // spans a shard boundary.
    cfg.stateless_loss = true;
    cfg.loss_seed = mix64(scenario_.seed ^ 0x5c6df5u);
    cfg.cell_contention = true;
    shard->medium = std::make_unique<Medium>(
        *shard->sim, sim::Rng(mix64(scenario_.seed) + s), cfg);
    const std::size_t mailbox_reserve =
        std::max<std::size_t>(64, scenario_.nodes.size() / std::max(1u, k));
    shard->outbox_left.reserve(mailbox_reserve);
    shard->outbox_right.reserve(mailbox_reserve);
    shard->inbox.reserve(mailbox_reserve);
    shards_.push_back(std::move(shard));
  }
  cell_m_ = shards_[0]->medium->grid_cell_m();
  inv_cell_m_ = 1.0 / cell_m_;

  // Strip edges snapped to grid-cell columns: radios sharing a cell always
  // share a shard (what makes per-cell carrier sense shard-invariant), and
  // every strip spans at least one cell so the one-cell halo only ever
  // reaches the immediate neighbor.
  const std::int32_t cells_x = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::ceil(scenario_.width_m / cell_m_)));
  SPIDER_CHECK(static_cast<std::int32_t>(k) <= cells_x)
      << k << " shards need " << k << " grid-cell columns, world has "
      << cells_x;
  edges_cells_.resize(k + 1);
  edges_m_.resize(k + 1);
  for (unsigned e = 0; e <= k; ++e) {
    std::int32_t cell = static_cast<std::int32_t>(
        (static_cast<std::int64_t>(e) * cells_x) / k);
    if (e > 0 && cell <= edges_cells_[e - 1]) cell = edges_cells_[e - 1] + 1;
    edges_cells_[e] = cell;
    edges_m_[e] = static_cast<double>(cell) * cell_m_;
  }
  SPIDER_CHECK(edges_cells_[k] == cells_x)
      << "strip edges drifted past the world";

  // Tap every shard's transmits: anything within one cell of a strip edge is
  // mirrored into the neighbor's mailbox (<=, not <: a receiver exactly at
  // the maximum effective range still gets a — certainly lost — outcome
  // fold, which the digest counts).
  for (unsigned s = 0; s < k; ++s) {
    shards_[s]->medium->set_tx_tap([this, s](const Medium::TxInfo& info) {
      Shard& shard = *shards_[s];
      if (s > 0 && info.pos.x - edges_m_[s] <= cell_m_) {
        shard.outbox_left.push_back(ShardMsg{info.deliver_at.us(),
                                             info.sender_uid, info.tx_key,
                                             info.pos, info.channel,
                                             *info.frame});
      }
      if (s + 1 < shards_.size() && edges_m_[s + 1] - info.pos.x <= cell_m_) {
        shard.outbox_right.push_back(ShardMsg{info.deliver_at.us(),
                                              info.sender_uid, info.tx_key,
                                              info.pos, info.channel,
                                              *info.frame});
      }
    });
  }

  // Nodes, ascending uid — so per-shard resident lists start sorted and
  // every shard's attach order is the uid order.
  nodes_.resize(scenario_.nodes.size());
  shard_track_names_.reserve(k);
  for (unsigned s = 0; s < k; ++s) {
    char name[24];
    std::snprintf(name, sizeof(name), "shard %u", s);
    shard_track_names_.emplace_back(name);
  }
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const std::uint32_t uid = i + 1;
    const ShardNodeSpec& spec = scenario_.nodes[i];
    SPIDER_CHECK(valid_channel(spec.channel))
        << "node " << uid << " starts on channel " << spec.channel;
    Node& node = nodes_[i];
    node.pos = Vec2{std::clamp(spec.start.x, 0.0, scenario_.width_m),
                    std::clamp(spec.start.y, 0.0, scenario_.height_m)};
    node.channel = spec.channel;
    node.shard = shard_of_x(node.pos.x);
    if (spec.beaconer) {
      node.beacon = net::SharedPayload(
          net::BeaconInfo{"spider", spec.channel, true});
    }
    Shard& home = *shards_[node.shard];
    node.radio = std::make_unique<Radio>(*home.medium, mac_of(uid),
                                         RadioConfig{node.channel});
    node.radio->set_position(node.pos);
    home.medium->set_identity(*node.radio, uid, 0);
    home.residents.push_back(uid);
  }
  stats_.shards = k;
  stats_.workers = executor_.workers();
}

unsigned ShardedWorld::shard_of_x(double x) const {
  // Same rounding as RadioGrid::cell_of, so "which strip" can never disagree
  // with "which cell".
  const std::int32_t cx =
      static_cast<std::int32_t>(std::floor(x * inv_cell_m_));
  const auto it =
      std::upper_bound(edges_cells_.begin(), edges_cells_.end(), cx);
  if (it == edges_cells_.begin()) return 0;
  const unsigned k =
      static_cast<unsigned>(std::distance(edges_cells_.begin(), it)) - 1;
  return std::min(k, static_cast<unsigned>(shards_.size()) - 1);
}

void ShardedWorld::process_due_retunes(Shard& shard, std::int64_t barrier_us) {
  // Completions are barrier events, applied ascending (time, uid) — never
  // simulator events, so they can't interleave with deliveries differently
  // at different shard counts.
  while (!shard.retunes.empty() && shard.retunes.front().first <= barrier_us) {
    const std::uint32_t uid = shard.retunes.front().second;
    shard.retunes.erase(shard.retunes.begin());
    Node& node = nodes_[uid - 1];
    shard.medium->complete_retune(*node.radio, node.pending_channel);
    node.channel = node.pending_channel;
    node.switching = false;
  }
}

void ShardedWorld::mobility_phase(Shard& shard, std::int64_t barrier_us,
                                  std::uint64_t tick) {
  process_due_retunes(shard, barrier_us);
  shard.move_scratch.clear();
  for (const std::uint32_t uid : shard.residents) {
    const ShardNodeSpec& spec = scenario_.nodes[uid - 1];
    if (spec.step_m <= 0.0) continue;
    Node& node = nodes_[uid - 1];
    const double dx = (2.0 * hash01(scenario_.seed, uid, tick, 0xA5) - 1.0) *
                      spec.step_m;
    const double dy = (2.0 * hash01(scenario_.seed, uid, tick, 0xB6) - 1.0) *
                      spec.step_m;
    node.pos = Vec2{reflect(node.pos.x + dx, scenario_.width_m),
                    reflect(node.pos.y + dy, scenario_.height_m)};
    shard.move_scratch.push_back(RadioMove{node.radio.get(), node.pos});
  }
  if (!shard.move_scratch.empty()) {
    shard.medium->move_radios(shard.move_scratch);
  }
  shard.out_migrants.clear();
  for (const std::uint32_t uid : shard.residents) {
    if (shard_of_x(nodes_[uid - 1].pos.x) != shard.index) {
      shard.out_migrants.push_back(uid);
    }
  }
}

void ShardedWorld::route_migrants() {
  // Serial coordinator phase. Collected across shards and applied ascending
  // uid, so destination attach order — and with it everything downstream —
  // is independent of which shard each migrant came from.
  migrant_scratch_.clear();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    migrant_scratch_.insert(migrant_scratch_.end(),
                            shard->out_migrants.begin(),
                            shard->out_migrants.end());
    shard->out_migrants.clear();
  }
  if (migrant_scratch_.empty()) return;
  std::sort(migrant_scratch_.begin(), migrant_scratch_.end());
  for (const std::uint32_t uid : migrant_scratch_) {
    Node& node = nodes_[uid - 1];
    Shard& from = *shards_[node.shard];
    const unsigned to = shard_of_x(node.pos.x);
    SPIDER_CHECK(to != node.shard) << "migrant " << uid << " didn't move";
    Shard& dest = *shards_[to];
    // Carry the world-stable identity: transmit sequence (tx keys must keep
    // advancing, not restart), lifetime counters, and any in-flight retune.
    Radio& old_radio = *node.radio;
    const RadioId old_id = static_cast<RadioId>(old_radio.attach_order());
    node.tx_seq = from.medium->tx_seq_of(old_id);
    node.rx_base += old_radio.frames_rx();
    node.tx_base += old_radio.frames_tx();
    if (node.switching) {
      const auto entry = std::make_pair(node.retune_done_us, uid);
      const auto it = std::find(from.retunes.begin(), from.retunes.end(), entry);
      SPIDER_CHECK(it != from.retunes.end())
          << "migrant " << uid << " lost its pending retune";
      from.retunes.erase(it);
    }
    node.radio.reset();  // detaches from the old shard's medium
    node.radio = std::make_unique<Radio>(*dest.medium, mac_of(uid),
                                         RadioConfig{node.channel});
    node.radio->set_position(node.pos);
    dest.medium->set_identity(*node.radio, uid, node.tx_seq);
    if (node.switching) {
      dest.medium->set_switching(*node.radio, true);
      const auto entry = std::make_pair(node.retune_done_us, uid);
      dest.retunes.insert(
          std::upper_bound(dest.retunes.begin(), dest.retunes.end(), entry),
          entry);
    }
    from.residents.erase(
        std::lower_bound(from.residents.begin(), from.residents.end(), uid));
    dest.residents.insert(
        std::lower_bound(dest.residents.begin(), dest.residents.end(), uid),
        uid);
    node.shard = to;
    ++stats_.migrations;
  }
}

void ShardedWorld::start_retune(Shard& shard, Node& node, std::uint32_t uid,
                                std::int64_t barrier_us, std::uint64_t tick) {
  const std::uint64_t pick =
      mix64(scenario_.seed ^ mix64(uid) ^ (tick * 0x9e3779b97f4a7c15ull));
  const net::ChannelId target = scenario_.channel_plan[
      pick % scenario_.channel_plan.size()];
  node.switching = true;
  node.pending_channel = target;
  // Completion lands on the first barrier at or past start + reset: real
  // latency within [4.94 ms, 4.94 ms + W), and exactly representable at
  // every shard count.
  const std::int64_t reset_us = kHardwareResetTime.us();
  const std::int64_t w_us = window_.us();
  node.retune_done_us =
      ((barrier_us + reset_us + w_us - 1) / w_us) * w_us;
  shard.medium->set_switching(*node.radio, true);
  const auto entry = std::make_pair(node.retune_done_us, uid);
  shard.retunes.insert(
      std::upper_bound(shard.retunes.begin(), shard.retunes.end(), entry),
      entry);
  // Retune starts are world events too: fold them commutatively so a K that
  // somehow skipped one cannot produce the K=1 digest.
  shard.aux_digest += mix64(mix64(static_cast<std::uint64_t>(barrier_us) ^
                                  (uid * 0x9e3779b97f4a7c15ull)) ^
                            static_cast<std::uint64_t>(target));
  ++shard.retunes_started;
}

void ShardedWorld::traffic_phase(Shard& shard, std::int64_t barrier_us,
                                 std::uint64_t tick) {
  for (const std::uint32_t uid : shard.residents) {
    const ShardNodeSpec& spec = scenario_.nodes[uid - 1];
    Node& node = nodes_[uid - 1];
    if (spec.retune_period_ticks != 0 && tick > 0 && !node.switching &&
        (tick + uid) % spec.retune_period_ticks == 0) {
      start_retune(shard, node, uid, barrier_us, tick);
    }
    if (spec.tx_period_ticks != 0 && (tick + uid) % spec.tx_period_ticks == 0) {
      net::Frame frame = spec.beaconer
                             ? net::make_beacon(mac_of(uid), node.beacon)
                             : net::make_probe_request(mac_of(uid));
      // send() refuses while switching — that refusal is itself a pure
      // function of (uid, tick), so it needs no digest fold.
      node.radio->send(std::move(frame));
    }
  }
}

void ShardedWorld::advance_phase(Shard& shard, std::int64_t barrier_us) {
  process_due_retunes(shard, barrier_us);
  const std::int64_t end_us = barrier_us + window_.us();
  // Strictly-before the end barrier, then jump the clock onto it: events
  // scheduled exactly at a barrier run AFTER that barrier's phases, at every
  // shard count.
  shard.sim->run_until(sim::Time::micros(end_us - 1));
  shard.sim->advance_to(sim::Time::micros(end_us));
  if (tracing_) {
    shard.sim->telemetry().trace().complete("window", "shard", barrier_us,
                                            window_.us(),
                                            kShardTrackBase + shard.index);
  }
}

void ShardedWorld::exchange_mailboxes() {
  // Serial coordinator phase: deliver every boundary frame into its
  // neighbor's queue, in (time, tx key) order. Runs after the window whose
  // sends produced the messages and before any window that could need them
  // (delivery is always >= one full window after the send — the lookahead
  // guarantee), so no message is ever late, and none is ever dropped.
  const std::size_t k = shards_.size();
  for (std::size_t s = 0; s < k; ++s) {
    Shard& shard = *shards_[s];
    if (s > 0) {
      std::vector<ShardMsg>& inbox = shards_[s - 1]->inbox;
      inbox.insert(inbox.end(),
                   std::make_move_iterator(shard.outbox_left.begin()),
                   std::make_move_iterator(shard.outbox_left.end()));
      shard.outbox_left.clear();
    }
    if (s + 1 < k) {
      std::vector<ShardMsg>& inbox = shards_[s + 1]->inbox;
      inbox.insert(inbox.end(),
                   std::make_move_iterator(shard.outbox_right.begin()),
                   std::make_move_iterator(shard.outbox_right.end()));
      shard.outbox_right.clear();
    }
  }
  for (std::size_t s = 0; s < k; ++s) {
    Shard& shard = *shards_[s];
    if (shard.inbox.empty()) continue;
    stats_.mailbox_high_water =
        std::max(stats_.mailbox_high_water, shard.inbox.size());
    std::sort(shard.inbox.begin(), shard.inbox.end(),
              [](const ShardMsg& a, const ShardMsg& b) {
                if (a.at_us != b.at_us) return a.at_us < b.at_us;
                return a.tx_key < b.tx_key;
              });
    for (ShardMsg& msg : shard.inbox) {
      shard.medium->deliver_remote(sim::Time::micros(msg.at_us),
                                   msg.sender_uid, msg.tx_key, msg.pos,
                                   msg.channel, std::move(msg.frame));
    }
    stats_.halo_messages += shard.inbox.size();
    shard.inbox.clear();
  }
}

void ShardedWorld::run() {
  const std::int64_t w_us = window_.us();
  const std::int64_t total_us = scenario_.duration.us();
  const std::uint64_t n_windows =
      static_cast<std::uint64_t>((total_us + w_us - 1) / w_us);
  for (std::uint64_t w = 0; w < n_windows; ++w) {
    const std::int64_t barrier_us = static_cast<std::int64_t>(w) * w_us;
    if (w % scenario_.windows_per_tick == 0) {
      const std::uint64_t tick = w / scenario_.windows_per_tick;
      executor_.parallel(
          [&](unsigned s) { mobility_phase(*shards_[s], barrier_us, tick); });
      route_migrants();
      executor_.parallel(
          [&](unsigned s) { traffic_phase(*shards_[s], barrier_us, tick); });
    }
    executor_.parallel(
        [&](unsigned s) { advance_phase(*shards_[s], barrier_us); });
    exchange_mailboxes();
    ++stats_.windows;
  }
  stats_.events_executed = 0;
  stats_.frames_sent = 0;
  stats_.frames_delivered = 0;
  stats_.frames_lost = 0;
  stats_.retunes_started = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    stats_.events_executed += shard->sim->events_executed();
    stats_.frames_sent += shard->medium->frames_sent();
    stats_.frames_delivered += shard->medium->frames_delivered();
    stats_.frames_lost += shard->medium->frames_lost();
    stats_.retunes_started += shard->retunes_started;
  }
}

std::uint64_t ShardedWorld::digest() const {
  // Wrapping sum of commutative per-shard accumulators: identical for any
  // shard count because every fold's inputs (times, tx keys, uids,
  // outcomes) are shard-invariant and each is folded exactly once.
  std::uint64_t d = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    d += shard->medium->delivery_digest() + shard->aux_digest;
  }
  return d;
}

std::uint64_t ShardedWorld::node_rx_frames(std::uint32_t uid) const {
  const Node& node = nodes_[uid - 1];
  return node.rx_base + (node.radio ? node.radio->frames_rx() : 0);
}

std::uint64_t ShardedWorld::node_tx_frames(std::uint32_t uid) const {
  const Node& node = nodes_[uid - 1];
  return node.tx_base + (node.radio ? node.radio->frames_tx() : 0);
}

telemetry::MetricsSnapshot ShardedWorld::merged_telemetry() {
  telemetry::MetricsSnapshot merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    merged.merge_from(shard->sim->telemetry().collect());
  }
  return merged;
}

void ShardedWorld::enable_tracing() {
  tracing_ = true;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    telemetry::TraceRecorder& trace = shard->sim->telemetry().trace();
    trace.set_enabled(true);
    trace.name_track(kShardTrackBase + shard->index,
                     shard_track_names_[shard->index].c_str());
  }
}

}  // namespace spider::phy
