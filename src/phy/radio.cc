#include "phy/radio.h"

#include <stdexcept>
#include <utility>

#include "core/check.h"
#include "phy/channel.h"

namespace spider::phy {

Radio::Radio(Medium& medium, net::MacAddress address, RadioConfig config)
    : medium_(medium), address_(address), config_(config) {
  if (!valid_channel(config.initial_channel))
    throw std::invalid_argument("Radio: invalid initial channel");
  medium_.attach(*this, config.initial_channel);
}

Radio::~Radio() {
  switch_timer_.cancel();
  medium_.detach(*this);
}

sim::Time Radio::frame_airtime(int size_bytes) const {
  return medium_.config().preamble +
         sim::transmission_time(size_bytes, medium_.config().bitrate_bps);
}

void Radio::tune(net::ChannelId channel, std::function<void()> done) {
  if (!valid_channel(channel))
    throw std::invalid_argument("Radio::tune: invalid channel");
  switch_timer_.cancel();  // a new retune supersedes any in-flight one
  medium_.set_switching(*this, true);
  if (energy_) energy_->set_state(RadioState::kReset);
  switch_timer_ = medium_.simulator().schedule_after(
      config_.hardware_reset,
      [this, channel, done = std::move(done)] {
        medium_.complete_retune(*this, channel);
        if (energy_) energy_->set_state(RadioState::kIdle);
        if (done) done();
      });
}

SPIDER_HOT bool Radio::send(net::Frame frame) {
  if (medium_.is_switching(id_)) {
    ++tx_dropped_switching_;
    return false;
  }
  ++frames_tx_;
  if (energy_) {
    energy_->charge_burst(RadioState::kTransmit,
                          frame_airtime(frame.size_bytes));
  }
  medium_.transmit(*this, std::move(frame));
  return true;
}

SPIDER_HOT void Radio::handle_delivery(const net::Frame& frame,
                                       const RxInfo& info) {
  ++frames_rx_;
  if (energy_) {
    energy_->charge_burst(RadioState::kReceive,
                          frame_airtime(frame.size_bytes));
  }
  if (receive_handler_) receive_handler_(frame, info);
}

SPIDER_HOT void Radio::handle_tx_result(const net::Frame& frame, bool ok) {
  if (!ok && tx_failure_handler_) tx_failure_handler_(frame);
  if (tx_result_handler_) tx_result_handler_(frame, ok);
}

}  // namespace spider::phy
