// Minstrel-lite 802.11b rate adaptation.
//
// Per-peer rate state over the 802.11b set {1, 2, 5.5, 11} Mb/s: a
// link-layer transmission failure (retries exhausted) steps the peer's
// rate down one notch; `up_after` consecutive successes step it back up.
// Lower rates buy robustness: in the medium's model a frame modulated at
// rate r enjoys an effective range scaled by
//     range_scale(r) = 1 + 0.12 * log2(default_rate / r)
// (≈ +42 % of range at 1 Mb/s versus 11 Mb/s), matching the qualitative
// 802.11b behaviour that the low rates decode far beyond 11 Mb/s coverage.
//
// Strictly opt-in: frames default to tx_rate_bps = 0 (the medium's single
// configured bitrate) and nothing changes unless a sender sets rates.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "net/addr.h"

namespace spider::phy {

inline constexpr std::array<double, 4> k80211bRates = {1e6, 2e6, 5.5e6, 11e6};

// Effective-range multiplier for a frame modulated at `rate_bps` on a
// medium whose nominal bitrate is `default_rate_bps`.
inline double rate_range_scale(double rate_bps, double default_rate_bps) {
  if (rate_bps <= 0.0 || rate_bps >= default_rate_bps) return 1.0;
  return 1.0 + 0.12 * std::log2(default_rate_bps / rate_bps);
}

class AutoRate {
 public:
  // `up_after`: consecutive successes before probing one rate up.
  explicit AutoRate(int up_after = 10) : up_after_(up_after) {}

  // Current rate for a peer (starts at the top rate).
  double rate_for(net::MacAddress peer) const;

  void on_success(net::MacAddress peer);
  void on_failure(net::MacAddress peer);

  void forget(net::MacAddress peer) { peers_.erase(peer); }
  std::size_t tracked_peers() const { return peers_.size(); }

 private:
  struct PeerState {
    int rate_index = static_cast<int>(k80211bRates.size()) - 1;
    int successes = 0;
  };

  int up_after_;
  std::unordered_map<net::MacAddress, PeerState> peers_;
};

}  // namespace spider::phy
