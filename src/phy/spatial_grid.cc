#include "phy/spatial_grid.h"

#include <cmath>
#include <cstring>

#include "core/check.h"

namespace spider::phy {

void RadioGrid::reset_cell_size(double cell_m) {
  SPIDER_CHECK(cell_m > 0.0) << "grid cell " << cell_m << " m";
  SPIDER_CHECK(size_ == 0) << "grid resized while holding " << size_
                           << " radios";
  cell_m_ = cell_m;
  inv_cell_m_ = 1.0 / cell_m;
}

SPIDER_HOT RadioGrid::Cell RadioGrid::cell_of(Vec2 pos) const {
  return Cell{static_cast<std::int32_t>(std::floor(pos.x * inv_cell_m_)),
              static_cast<std::int32_t>(std::floor(pos.y * inv_cell_m_))};
}

void RadioGrid::insert(RadioId id, Vec2 pos) {
  const Cell c = cell_of(pos);
  store_->cell_x[id] = c.x;
  store_->cell_y[id] = c.y;
  std::vector<RadioId>& bucket = cells_[key(c.x, c.y)];
  store_->cell_index[id] = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(id);
  ++size_;
}

void RadioGrid::remove(RadioId id) {
  auto it = cells_.find(key(store_->cell_x[id], store_->cell_y[id]));
  SPIDER_CHECK(it != cells_.end() &&
               store_->cell_index[id] < it->second.size())
      << "grid remove for a radio not in its recorded cell";
  std::vector<RadioId>& bucket = it->second;
  const RadioId moved = bucket.back();
  bucket[store_->cell_index[id]] = moved;
  store_->cell_index[moved] = store_->cell_index[id];
  bucket.pop_back();
  // Drop emptied buckets so a long drive doesn't strew dead cells along the
  // whole route; occupied_cells() stays proportional to the live deployment.
  if (bucket.empty()) cells_.erase(it);
  --size_;
}

bool RadioGrid::update(RadioId id, Vec2 pos) {
  const Cell c = cell_of(pos);
  if (c.x == store_->cell_x[id] && c.y == store_->cell_y[id]) return false;
  remove(id);
  insert(id, pos);
  return true;
}

SPIDER_HOT bool RadioGrid::plan_move(RadioId id, Vec2 pos,
                                     GridMove& move) const {
  const Cell c = cell_of(pos);
  if (c.x == store_->cell_x[id] && c.y == store_->cell_y[id]) return false;
  move = GridMove{id, c.x, c.y};
  return true;
}

std::vector<RadioId>* RadioGrid::batch_bucket(std::uint64_t cell_key,
                                              bool inserting) {
  // Newest-first over a bounded tail: a fleet tick's crossers are spatially
  // clustered, so the hit is almost always within the first few entries.
  // Duplicate entries past the window are harmless (same pointer); the
  // bound keeps a pathological all-distinct batch at hash-lookup cost
  // instead of O(moves x cells).
  constexpr std::size_t kScanWindow = 16;
  const std::size_t begin =
      batch_groups_.size() > kScanWindow ? batch_groups_.size() - kScanWindow
                                         : 0;
  for (std::size_t i = batch_groups_.size(); i > begin; --i) {
    if (batch_groups_[i - 1].first == cell_key) {
      return batch_groups_[i - 1].second;
    }
  }
  std::vector<RadioId>* bucket = nullptr;
  if (inserting) {
    bucket = &cells_[cell_key];
  } else {
    auto it = cells_.find(cell_key);
    SPIDER_CHECK(it != cells_.end())
        << "batch re-bucket from an unoccupied source cell";
    bucket = &it->second;
  }
  batch_groups_.emplace_back(cell_key, bucket);
  return bucket;
}

void RadioGrid::rebucket_batch(std::span<const GridMove> moves) {
  if (moves.empty()) return;
  // Pass 1 — removals: swap-and-pop every departing radio, resolving each
  // source bucket through the per-batch memo.
  batch_groups_.clear();
  for (const GridMove& m : moves) {
    std::vector<RadioId>& bucket = *batch_bucket(
        key(store_->cell_x[m.id], store_->cell_y[m.id]), /*inserting=*/false);
    const std::uint32_t index = store_->cell_index[m.id];
    SPIDER_CHECK(index < bucket.size() && bucket[index] == m.id)
        << "batch re-bucket for a radio not in its recorded cell";
    const RadioId moved = bucket.back();
    bucket[index] = moved;
    store_->cell_index[moved] = index;
    bucket.pop_back();
    --size_;
  }
  // Drop buckets the batch emptied (see remove()) before insertions may
  // repopulate those cells under fresh buckets. Resolved by key, not via
  // the memoized pointer: the memo can hold the same cell twice, and the
  // duplicate would dangle once the first occurrence erases the bucket.
  for (const auto& [cell_key, bucket] : batch_groups_) {
    auto it = cells_.find(cell_key);
    if (it != cells_.end() && it->second.empty()) cells_.erase(it);
  }
  // Pass 2 — insertions, one memoized bucket resolution per destination
  // cell. cells_ references stay valid across operator[] inserts, so memo
  // entries never dangle within the pass.
  batch_groups_.clear();
  for (const GridMove& m : moves) {
    std::vector<RadioId>& bucket =
        *batch_bucket(key(m.cell_x, m.cell_y), /*inserting=*/true);
    store_->cell_x[m.id] = m.cell_x;
    store_->cell_y[m.id] = m.cell_y;
    store_->cell_index[m.id] = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(m.id);
    ++size_;
  }
}

// Hot: per delivery. `out` is carved from the drain arena at partition size
// — an upper bound on the gather superset — so the bulk copies below never
// bound-check or grow anything.
SPIDER_HOT bool RadioGrid::gather(Vec2 center, double radius_m, RadioId* out,
                                  std::size_t& count) const {
  count = 0;
  const Cell lo = cell_of({center.x - radius_m, center.y - radius_m});
  const Cell hi = cell_of({center.x + radius_m, center.y + radius_m});
  const std::int64_t span_x = static_cast<std::int64_t>(hi.x) - lo.x + 1;
  const std::int64_t span_y = static_cast<std::int64_t>(hi.y) - lo.y + 1;
  if (span_x * span_y > kMaxGatherCells) return false;
  for (std::int32_t cy = lo.y; cy <= hi.y; ++cy) {
    for (std::int32_t cx = lo.x; cx <= hi.x; ++cx) {
      auto it = cells_.find(key(cx, cy));
      if (it == cells_.end()) continue;
      const std::vector<RadioId>& bucket = it->second;
      std::memcpy(out + count, bucket.data(), bucket.size() * sizeof(RadioId));
      count += bucket.size();
    }
  }
  return true;
}

std::size_t RadioGrid::memory_bytes() const {
  std::size_t total = cells_.size() *
                      (sizeof(std::uint64_t) + sizeof(std::vector<RadioId>) +
                       2 * sizeof(void*));  // node + bucket headers, approx
  // spider-lint: allow(det-unordered-iteration) commutative capacity sum; no order-dependent state escapes
  for (const auto& [k, bucket] : cells_) {
    total += bucket.capacity() * sizeof(RadioId);
  }
  return total;
}

}  // namespace spider::phy
