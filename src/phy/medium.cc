#include "phy/medium.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/arena.h"
#include "core/check.h"
#include "phy/auto_rate.h"
#include "phy/channel.h"
#include "phy/radio.h"

namespace spider::phy {

namespace {

// Compile-time "<stem><N>" metric-name tables, one entry per channel slot.
// Replaces three hand-maintained 15-literal arrays; the fixed buffer keeps
// the names static so the telemetry collector never allocates.
struct SlotName {
  char text[32] = {};
};

template <std::size_t N>
constexpr std::array<SlotName, N> make_slot_names(const char* stem) {
  std::array<SlotName, N> names{};
  for (std::size_t slot = 0; slot < N; ++slot) {
    std::size_t pos = 0;
    for (const char* c = stem; *c != '\0'; ++c) {
      names[slot].text[pos++] = *c;
    }
    if (slot >= 10) names[slot].text[pos++] = static_cast<char>('0' + slot / 10);
    names[slot].text[pos++] = static_cast<char>('0' + slot % 10);
    if (pos >= sizeof(names[slot].text)) {
      throw "metric name overflows SlotName";  // compile error when constexpr
    }
  }
  return names;
}

// splitmix64 finalizer: the avalanche mix behind tx keys, stateless loss
// draws and the commutative delivery digest. Stability across revisions is
// NOT part of the contract (only within-binary equality is compared).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// World-unique transmission id: (sender uid, per-sender sequence) avalanched
// into one word. Keys loss draws and digest folds, so it must be stable
// across shard counts — both inputs are.
std::uint64_t make_tx_key(std::uint64_t uid, std::uint32_t seq) {
  return mix64(mix64(uid) ^ seq);
}

// One receiver outcome folded for the delivery digest. Commutative
// accumulation (wrapping +) over these identifies the *set* of outcomes,
// independent of delivery order and of which shard folded each term.
std::uint64_t fold_outcome(std::int64_t t_us, std::uint64_t tx_key,
                           std::uint64_t rx_uid, bool delivered) {
  return mix64(mix64(static_cast<std::uint64_t>(t_us) ^ tx_key) ^
               (rx_uid * 2 + (delivered ? 1 : 0)));
}

}  // namespace

Medium::Medium(sim::Simulator& simulator, sim::Rng rng, MediumConfig config)
    : sim_(simulator), rng_(std::move(rng)), config_(config) {
  SPIDER_CHECK(config_.range_m > 0.0) << "range " << config_.range_m << " m";
  SPIDER_CHECK(config_.base_loss >= 0.0 && config_.base_loss <= 1.0)
      << "base_loss " << config_.base_loss << " is not a probability";
  SPIDER_CHECK(config_.bitrate_bps > 0.0)
      << "bitrate " << config_.bitrate_bps << " bps";
  SPIDER_CHECK(config_.edge_start > 0.0 && config_.edge_start <= 1.0)
      << "edge_start " << config_.edge_start
      << " must be a fraction of range";
  SPIDER_CHECK(config_.data_retry_limit >= 0)
      << "data_retry_limit " << config_.data_retry_limit;
  // Grid cell = maximum effective range of any standard-rate frame, so one
  // delivery disc never overlaps more than the 3x3 cell neighborhood. Frames
  // modulated below the slowest 802.11b rate can still outgrow the cell;
  // gather() then widens the neighborhood or deliver() degrades to a
  // partition scan (counted in deliveries_scan_).
  const double cell_m =
      config_.range_m *
      rate_range_scale(k80211bRates.front(), config_.bitrate_bps);
  for (ChannelPartition& partition : partitions_) {
    partition.grid.bind(&hot_);
    partition.grid.reset_cell_size(cell_m);
  }
  collector_id_ = sim_.telemetry().add_collector(
      [this](telemetry::Registry& registry) { publish_metrics(registry); });
}

Medium::~Medium() { sim_.telemetry().remove_collector(collector_id_); }

void Medium::publish_metrics(telemetry::Registry& registry) const {
  const auto publish = [&registry](const char* name, std::uint64_t value) {
    telemetry::Counter& c = registry.counter(name);
    c.inc(value - c.value());
  };
  publish("phy.frames_sent", frames_sent_);
  publish("phy.frames_delivered", frames_delivered_);
  publish("phy.frames_lost", frames_lost_);
  publish("phy.deliveries.grid", deliveries_grid_);
  publish("phy.deliveries.scan", deliveries_scan_);
  static constexpr auto kSent =
      make_slot_names<kChannelSlots>("phy.frames_sent.ch");
  static constexpr auto kDelivered =
      make_slot_names<kChannelSlots>("phy.frames_delivered.ch");
  static constexpr auto kLost =
      make_slot_names<kChannelSlots>("phy.frames_lost.ch");
  for (std::size_t slot = 0; slot < kChannelSlots; ++slot) {
    const ChannelCounters& c = per_channel_[slot];
    // Quiet channels stay out of the registry so exports only list slices
    // that actually carried traffic.
    if (c.sent != 0) publish(kSent[slot].text, c.sent);
    if (c.delivered != 0) publish(kDelivered[slot].text, c.delivered);
    if (c.lost != 0) publish(kLost[slot].text, c.lost);
  }
}

void Medium::attach(Radio& radio, net::ChannelId initial_channel) {
  SPIDER_CHECK(next_attach_id_ < std::numeric_limits<RadioId>::max())
      << "attach-id space exhausted";
  const RadioId id = next_attach_id_++;
  radio.id_ = id;
  hot_.ensure(id);
  hot_.radio[id] = &radio;
  hot_.address[id] = radio.address();
  hot_.channel[id] = initial_channel;
  hot_.switching[id] = 0;
  hot_.position[id] = Vec2{};
  // Identity defaults: uid = attach id (unique within this medium), fresh
  // transmit sequence. Sharded worlds overwrite via set_identity.
  hot_.uid[id] = id;
  hot_.tx_seq[id] = 0;
  all_.push_back(id);
  insert_into_partition(id);
}

void Medium::set_identity(Radio& radio, std::uint64_t uid,
                          std::uint32_t tx_seq) {
  hot_.uid[radio.id_] = uid;
  hot_.tx_seq[radio.id_] = tx_seq;
}

void Medium::detach(Radio& radio) {
  const RadioId id = radio.id_;
  remove_from_partition(id, channel_of(id));
  hot_.radio[id] = nullptr;
  std::erase(all_, id);
}

void Medium::set_switching(Radio& radio, bool switching) {
  hot_.switching[radio.id_] = switching ? 1 : 0;
}

void Medium::complete_retune(Radio& radio, net::ChannelId channel) {
  const RadioId id = radio.id_;
  const net::ChannelId previous = channel_of(id);
  hot_.switching[id] = 0;
  // Until the reset completes the radio stays filed under its old channel
  // (deaf there via the switching flag); the partition move happens exactly
  // when the retune takes effect.
  if (channel != previous) {
    remove_from_partition(id, previous);
    hot_.channel[id] = channel;
    insert_into_partition(id);
  }
}

SPIDER_HOT void Medium::set_position(Radio& radio, Vec2 position) {
  const RadioId id = radio.id_;
  if (position == hot_.position[id]) return;
  hot_.position[id] = position;
  partitions_[channel_slot(channel_of(id))].grid.update(id, position);
}

SPIDER_HOT void Medium::move_radios(std::span<const RadioMove> moves) {
  if (moves.empty()) return;
  // Drain-arena scratch: planned crossings plus their partition slots. The
  // first tick of a drain carves fresh blocks (cold, visible to the alloc
  // teeth); every later tick is pure bump-pointer arithmetic.
  core::Arena::Scope scope(sim_.arena());
  core::Arena& arena = sim_.arena();
  GridMove* planned = arena.alloc_array<GridMove>(moves.size());
  std::uint8_t* planned_slot = arena.alloc_array<std::uint8_t>(moves.size());
  std::array<std::uint32_t, kChannelSlots> slot_count{};
  std::size_t n_planned = 0;
  // Phase 1: write every position and plan the cell crossings. Non-crossers
  // (the common case at sub-second tick cadence) cost one cell computation
  // and no hash traffic at all.
  for (const RadioMove& m : moves) {
    const RadioId id = m.radio->id_;
    if (m.position == hot_.position[id]) continue;
    hot_.position[id] = m.position;
    const std::size_t slot = channel_slot(channel_of(id));
    GridMove g;
    if (partitions_[slot].grid.plan_move(id, m.position, g)) {
      planned[n_planned] = g;
      planned_slot[n_planned] = static_cast<std::uint8_t>(slot);
      ++slot_count[slot];
      ++n_planned;
    }
  }
  if (n_planned == 0) return;
  // Phase 2: stable scatter into per-slot groups (preserving each slot's
  // plan order, which is what N scalar updates would apply), then one
  // grouped re-bucket per partition that had crossers.
  std::array<std::uint32_t, kChannelSlots> cursor{};
  std::uint32_t acc = 0;
  for (std::size_t slot = 0; slot < kChannelSlots; ++slot) {
    cursor[slot] = acc;
    acc += slot_count[slot];
  }
  GridMove* grouped = arena.alloc_array<GridMove>(n_planned);
  for (std::size_t i = 0; i < n_planned; ++i) {
    grouped[cursor[planned_slot[i]]++] = planned[i];
  }
  std::uint32_t begin = 0;
  for (std::size_t slot = 0; slot < kChannelSlots; ++slot) {
    if (slot_count[slot] != 0) {
      partitions_[slot].grid.rebucket_batch(
          std::span<const GridMove>(grouped + begin, slot_count[slot]));
    }
    begin += slot_count[slot];
  }
}

void Medium::insert_into_partition(RadioId id) {
  ChannelPartition& partition = partitions_[channel_slot(channel_of(id))];
  // Monotone appends keep the sorted flag; an out-of-order insert (a radio
  // retuning back onto a channel it left) clears it until the partition
  // empties out again.
  if (!partition.members.empty() && partition.members.back() >= id) {
    partition.members_sorted = false;
  }
  hot_.member_index[id] = static_cast<std::uint32_t>(partition.members.size());
  partition.members.push_back(id);
  partition.grid.insert(id, hot_.position[id]);
}

void Medium::remove_from_partition(RadioId id, net::ChannelId channel) {
  ChannelPartition& partition = partitions_[channel_slot(channel)];
  const std::uint32_t index = hot_.member_index[id];
  SPIDER_CHECK(index < partition.members.size() &&
               partition.members[index] == id)
      << "radio not filed under channel " << channel;
  const RadioId moved = partition.members.back();
  partition.members[index] = moved;
  hot_.member_index[moved] = index;
  partition.members.pop_back();
  // Removing the last element preserves order; a swap-and-pop from the
  // middle does not. An emptied partition is trivially sorted again.
  if (index != partition.members.size()) partition.members_sorted = false;
  if (partition.members.empty()) partition.members_sorted = true;
  partition.grid.remove(id);
}

SPIDER_HOT double Medium::loss_probability(double distance_m) const {
  if (distance_m > config_.range_m) return 1.0;
  double loss = config_.base_loss;
  if (config_.edge_degradation) {
    const double edge = config_.edge_start * config_.range_m;
    if (distance_m > edge) {
      const double frac = (distance_m - edge) / (config_.range_m - edge);
      loss += (1.0 - loss) * frac * frac;
    }
  }
  loss = std::min(loss, 1.0);
  SPIDER_DCHECK(loss >= 0.0 && loss <= 1.0)
      << "loss " << loss << " at " << distance_m << " m";
  return loss;
}

sim::Time Medium::channel_idle_at(net::ChannelId channel) const {
  return std::max(busy_until_[channel_slot(channel)], sim_.now());
}

SPIDER_HOT sim::Time Medium::transmit(Radio& sender, net::Frame frame) {
  ++frames_sent_;
  const net::ChannelId channel = channel_of(sender.id_);
  const std::size_t slot = channel_slot(channel);
  ++per_channel_[slot].sent;
  if (sniffer_) sniffer_(frame, channel, sim_.now());
  const double rate =
      frame.tx_rate_bps > 0.0 ? frame.tx_rate_bps : config_.bitrate_bps;
  const sim::Time airtime =
      config_.preamble + sim::transmission_time(frame.size_bytes, rate);
  const Vec2 pos = hot_.position[sender.id_];

  // Carrier-sense domain: the whole channel by default, or just the sender's
  // grid cell in cell_contention mode (same-cell senders always share a
  // shard, so the horizon needs no cross-shard coordination).
  sim::Time& busy =
      config_.cell_contention
          ? cell_busy_[slot][partitions_[slot].grid.cell_key_of(pos)]
          : busy_until_[slot];
  const sim::Time start = std::max(sim_.now(), busy);
  const sim::Time done = start + airtime;
  // Channel-occupancy monotonicity: serialization can only extend the busy
  // horizon forward; a regression here would deliver frames into the past.
  SPIDER_CHECK(done >= busy && done >= sim_.now())
      << "channel " << channel << " busy horizon moved backwards: "
      << busy.to_string() << " -> " << done.to_string() << " (airtime "
      << airtime.to_string() << ")";
  busy = done;

  const std::uint64_t sender_uid = hot_.uid[sender.id_];
  const std::uint64_t tx_key = make_tx_key(sender_uid, ++hot_.tx_seq[sender.id_]);
  if (config_.stateless_loss) {
    delivery_digest_ += mix64(static_cast<std::uint64_t>(sim_.now().us()) ^
                              mix64(tx_key));
  }

  // Snapshot the sender's position at transmit time; at vehicular speeds the
  // sub-millisecond drift during airtime is irrelevant. The sender itself is
  // carried as its attach id, not a pointer: it may detach (or even be
  // destroyed and its address recycled) before delivery fires. The snapshot
  // lives in a pooled PendingTx node so the closure stays SmallFn-inline.
  PendingTx* tx = acquire_pending_tx();
  tx->sender_id = sender.id_;
  tx->sender_uid = sender_uid;
  tx->tx_key = tx_key;
  tx->pos = pos;
  tx->channel = channel;
  tx->frame = std::move(frame);
  sim_.post_at(done, [this, tx] {
    deliver(*tx);
    release_pending_tx(tx);
  });
  if (tx_tap_) {
    tx_tap_(TxInfo{sender_uid, tx_key, pos, channel, done, &tx->frame});
  }
  return done;
}

void Medium::deliver_remote(sim::Time at, std::uint64_t sender_uid,
                            std::uint64_t tx_key, Vec2 pos,
                            net::ChannelId channel, net::Frame frame) {
  // Order-independent draws are what make a halo copy consume no local RNG;
  // without them the copy would shift every subsequent draw in this shard.
  SPIDER_CHECK(config_.stateless_loss)
      << "deliver_remote requires stateless loss draws";
  ++remote_frames_in_;
  // No frames_sent_ bump and no send-side digest fold: the origin shard
  // counted this transmission; this shard only owns its local receivers.
  PendingTx* tx = acquire_pending_tx();
  tx->sender_id = 0;
  tx->sender_uid = sender_uid;
  tx->tx_key = tx_key;
  tx->pos = pos;
  tx->channel = channel;
  tx->frame = std::move(frame);
  sim_.post_at(at, [this, tx] {
    deliver(*tx);
    release_pending_tx(tx);
  });
}

SPIDER_HOT bool Medium::stateless_bernoulli(double p, std::uint64_t tx_key,
                                            std::uint64_t rx_uid,
                                            int attempt) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::uint64_t x = mix64(config_.loss_seed ^ tx_key);
  x = mix64(x ^ (rx_uid * 0x9e3779b97f4a7c15ull +
                 static_cast<std::uint64_t>(attempt)));
  // Top 53 bits as a double in [0, 1), compared against p.
  return (static_cast<double>(x >> 11) * 0x1.0p-53) < p;
}

Medium::PendingTx* Medium::acquire_pending_tx() {
  if (!tx_free_.empty()) {
    PendingTx* node = tx_free_.back();
    tx_free_.pop_back();
    return node;
  }
  // Pool growth (cold): only when more frames are in flight than ever
  // before. Keep the free list's capacity at pool size so release_pending_tx
  // can never allocate, even if every node is returned at once.
  tx_pool_.push_back(std::make_unique<PendingTx>());
  tx_free_.reserve(tx_pool_.size());
  return tx_pool_.back().get();
}

SPIDER_HOT void Medium::release_pending_tx(PendingTx* node) {
  // Drop the payload reference promptly (the delivery may have been the last
  // holder outside the intern table); the node itself is recycled.
  node->frame = net::Frame{};
  // Never grows: acquire_pending_tx keeps capacity at pool size.
  tx_free_.push_back(node);
}

SPIDER_HOT void Medium::deliver(const PendingTx& tx) {
  const RadioId sender_id = tx.sender_id;  // 0 for cross-shard transmissions
  const Vec2 sender_pos = tx.pos;
  const net::ChannelId channel = tx.channel;
  const net::Frame& frame = tx.frame;
  // Unicast data-plane frames get link-layer ARQ at the addressed receiver
  // and a tx-failure indication back to the sender; everything else is
  // single-shot (as in the analytical join model).
  const bool arq_eligible = !frame.dst.is_broadcast() &&
                            (frame.kind == net::FrameKind::kData ||
                             frame.kind == net::FrameKind::kNullData ||
                             frame.kind == net::FrameKind::kPsPoll);
  bool addressed_delivery = false;

  // Frames modulated below the nominal rate decode further out (802.11b's
  // low rates): scale the geometry by the rate's range factor.
  const double range_scale =
      rate_range_scale(frame.tx_rate_bps, config_.bitrate_bps);
  SPIDER_DCHECK(range_scale > 0.0)
      << "rate " << frame.tx_rate_bps << " bps scaled range by "
      << range_scale;

  // Candidate set: a span of ids whose RNG draws below must be consumed in
  // ascending (= attach) order, so the stream is exactly what the reference
  // scan draws — grid and bucket internals must never influence it.
  // Fast-path scratch is carved from the drain arena (rewound on return);
  // the reference path reads all_ in place, which is already attach-ordered.
  core::Arena::Scope scope(sim_.arena());
  const RadioId* candidates = all_.data();
  std::size_t count = all_.size();
  // all_ is sorted by construction; grid/partition candidates are not.
  bool candidates_sorted = true;
  if (config_.indexed_delivery) {
    ChannelPartition& partition = partitions_[channel_slot(channel)];
    const std::size_t members = partition.members.size();
    bool used_grid = false;
    // Tiny partitions scan in place: the grid's hash probes cost more than
    // touching every co-channel radio (the radios_50 regression), and the
    // scan is a strict superset of the gather, so after the shared
    // channel/range filters both arms draw identical RNG. The member vector
    // is stable while the filter loop below runs (callbacks only fire from
    // the post-sort delivery loop), so no copy is needed.
    if (members > config_.indexed_scan_threshold) {
      RadioId* buf = sim_.arena().alloc_array<RadioId>(members);
      std::size_t gathered = 0;
      const double effective_range = config_.range_m * range_scale;
      used_grid =
          partition.grid.gather(sender_pos, effective_range, buf, gathered);
      if (used_grid) {
        candidates = buf;
        count = gathered;
      }
    }
    if (used_grid) {
      ++deliveries_grid_;
      candidates_sorted = false;
    } else {
      candidates = partition.members.data();
      count = members;
      ++deliveries_scan_;
      // A partition that only ever saw monotone appends is already in attach
      // order, so the survivors below come out sorted and the re-sort can be
      // skipped — the RNG stream is identical either way.
      candidates_sorted = partition.members_sorted;
    }
  } else {
    ++deliveries_scan_;
  }

  // Sender liveness, resolved once through the store (the attach-id hash
  // this replaced only existed to find this pointer).
  Radio* const sender =
      sender_id < hot_.radio.size() ? hot_.radio[sender_id] : nullptr;

  // Filter before sorting: the cheap rejections (sender, channel, mid-reset,
  // out of range) consume no RNG, so applying them on the unsorted gather
  // superset and ordering only the survivors (~the in-range neighborhood,
  // a handful of radios) is stream-identical to sorting everything first —
  // and skips a per-delivery sort of the whole 3x3 superset. The range test
  // compares squared distances; one sqrt per survivor, none per reject.
  struct Hit {
    RadioId id;
    double distance_m;  // rate-scaled, as loss_probability expects
  };
  Hit* hits = sim_.arena().alloc_array<Hit>(count);
  std::size_t n_hits = 0;
  const double max_dist = config_.range_m * range_scale;
  const double max_dist_sq = max_dist * max_dist;
  const double inv_range_scale = 1.0 / range_scale;
  for (std::size_t i = 0; i < count; ++i) {
    const RadioId id = candidates[i];
    // Self-reception is excluded by world-stable uid, not attach id: a
    // sender that migrated to another shard mid-flight must still skip
    // itself when its own frame arrives as a halo copy. With default
    // identities (uid == attach id) this is the same test as before.
    if (hot_.uid[id] == tx.sender_uid) continue;
    if (hot_.channel[id] != channel || hot_.switching[id] != 0) continue;
    const Vec2 rx_pos = hot_.position[id];
    const double dx = rx_pos.x - sender_pos.x;
    const double dy = rx_pos.y - sender_pos.y;
    const double dist_sq = dx * dx + dy * dy;
    if (dist_sq > max_dist_sq) continue;
    hits[n_hits++] = Hit{id, std::sqrt(dist_sq) * inv_range_scale};
  }
  if (!candidates_sorted) {
    std::sort(hits, hits + n_hits,
              [](const Hit& a, const Hit& b) { return a.id < b.id; });
  }

  const bool stateless = config_.stateless_loss;
  const std::int64_t now_us = sim_.now().us();
  for (std::size_t i = 0; i < n_hits; ++i) {
    const RadioId id = hits[i].id;
    const double d = hits[i].distance_m;
    const bool is_addressee = arq_eligible && hot_.address[id] == frame.dst;
    const double p = loss_probability(d);
    bool lost = true;
    const int attempts = is_addressee ? config_.data_retry_limit + 1 : 1;
    if (stateless) {
      const std::uint64_t rx_uid = hot_.uid[id];
      for (int a = 0; a < attempts && lost; ++a) {
        lost = stateless_bernoulli(p, tx.tx_key, rx_uid, a);
      }
      delivery_digest_ += fold_outcome(now_us, tx.tx_key, rx_uid, !lost);
    } else {
      for (int a = 0; a < attempts && lost; ++a) {
        lost = rng_.bernoulli(p);
      }
    }
    if (lost) {
      ++frames_lost_;
      ++per_channel_[channel_slot(channel)].lost;
      continue;
    }
    ++frames_delivered_;
    ++per_channel_[channel_slot(channel)].delivered;
    if (is_addressee) addressed_delivery = true;
    // Log-distance RSSI proxy: -40 dBm at 1 m, path-loss exponent 3.
    const double rssi = -40.0 - 30.0 * std::log10(std::max(d, 1.0));
    hot_.radio[id]->handle_delivery(frame, RxInfo{channel, d, rssi});
  }

  if (arq_eligible && sender != nullptr) {
    // Tell the sender how its unicast data fared (still attached only):
    // failure drives AP re-buffering, both outcomes drive rate adaptation.
    sender->handle_tx_result(frame, addressed_delivery);
  }
}

std::size_t Medium::hot_state_bytes() const {
  std::size_t total =
      hot_.capacity_bytes() + all_.capacity() * sizeof(RadioId) +
      tx_pool_.capacity() * sizeof(std::unique_ptr<PendingTx>) +
      tx_pool_.size() * sizeof(PendingTx) +
      tx_free_.capacity() * sizeof(PendingTx*);
  for (const ChannelPartition& partition : partitions_) {
    total += partition.members.capacity() * sizeof(RadioId) +
             partition.grid.memory_bytes();
  }
  for (const auto& horizon : cell_busy_) {
    // Node-based map: ~one allocation per occupied cell plus bucket array.
    total += horizon.size() *
                 (sizeof(std::uint64_t) + sizeof(sim::Time) + 2 * sizeof(void*)) +
             horizon.bucket_count() * sizeof(void*);
  }
  return total;
}

}  // namespace spider::phy
