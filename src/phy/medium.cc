#include "phy/medium.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "phy/auto_rate.h"
#include "phy/channel.h"
#include "phy/radio.h"

namespace spider::phy {

namespace {

// Compile-time "<stem><N>" metric-name tables, one entry per channel slot.
// Replaces three hand-maintained 15-literal arrays; the fixed buffer keeps
// the names static so the telemetry collector never allocates.
struct SlotName {
  char text[32] = {};
};

template <std::size_t N>
constexpr std::array<SlotName, N> make_slot_names(const char* stem) {
  std::array<SlotName, N> names{};
  for (std::size_t slot = 0; slot < N; ++slot) {
    std::size_t pos = 0;
    for (const char* c = stem; *c != '\0'; ++c) {
      names[slot].text[pos++] = *c;
    }
    if (slot >= 10) names[slot].text[pos++] = static_cast<char>('0' + slot / 10);
    names[slot].text[pos++] = static_cast<char>('0' + slot % 10);
    if (pos >= sizeof(names[slot].text)) {
      throw "metric name overflows SlotName";  // compile error when constexpr
    }
  }
  return names;
}

}  // namespace

Medium::Medium(sim::Simulator& simulator, sim::Rng rng, MediumConfig config)
    : sim_(simulator), rng_(std::move(rng)), config_(config) {
  SPIDER_CHECK(config_.range_m > 0.0) << "range " << config_.range_m << " m";
  SPIDER_CHECK(config_.base_loss >= 0.0 && config_.base_loss <= 1.0)
      << "base_loss " << config_.base_loss << " is not a probability";
  SPIDER_CHECK(config_.bitrate_bps > 0.0)
      << "bitrate " << config_.bitrate_bps << " bps";
  SPIDER_CHECK(config_.edge_start > 0.0 && config_.edge_start <= 1.0)
      << "edge_start " << config_.edge_start
      << " must be a fraction of range";
  SPIDER_CHECK(config_.data_retry_limit >= 0)
      << "data_retry_limit " << config_.data_retry_limit;
  // Grid cell = maximum effective range of any standard-rate frame, so one
  // delivery disc never overlaps more than the 3x3 cell neighborhood. Frames
  // modulated below the slowest 802.11b rate can still outgrow the cell;
  // gather() then widens the neighborhood or deliver() degrades to a
  // partition scan (counted in deliveries_scan_).
  const double cell_m =
      config_.range_m *
      rate_range_scale(k80211bRates.front(), config_.bitrate_bps);
  for (ChannelPartition& partition : partitions_) {
    partition.grid.reset_cell_size(cell_m);
  }
  collector_id_ = sim_.telemetry().add_collector(
      [this](telemetry::Registry& registry) { publish_metrics(registry); });
}

Medium::~Medium() { sim_.telemetry().remove_collector(collector_id_); }

void Medium::publish_metrics(telemetry::Registry& registry) const {
  const auto publish = [&registry](const char* name, std::uint64_t value) {
    telemetry::Counter& c = registry.counter(name);
    c.inc(value - c.value());
  };
  publish("phy.frames_sent", frames_sent_);
  publish("phy.frames_delivered", frames_delivered_);
  publish("phy.frames_lost", frames_lost_);
  publish("phy.deliveries.grid", deliveries_grid_);
  publish("phy.deliveries.scan", deliveries_scan_);
  static constexpr auto kSent =
      make_slot_names<kChannelSlots>("phy.frames_sent.ch");
  static constexpr auto kDelivered =
      make_slot_names<kChannelSlots>("phy.frames_delivered.ch");
  static constexpr auto kLost =
      make_slot_names<kChannelSlots>("phy.frames_lost.ch");
  for (std::size_t slot = 0; slot < kChannelSlots; ++slot) {
    const ChannelCounters& c = per_channel_[slot];
    // Quiet channels stay out of the registry so exports only list slices
    // that actually carried traffic.
    if (c.sent != 0) publish(kSent[slot].text, c.sent);
    if (c.delivered != 0) publish(kDelivered[slot].text, c.delivered);
    if (c.lost != 0) publish(kLost[slot].text, c.lost);
  }
}

void Medium::attach(Radio& radio) {
  MediumLink& link = radio.medium_link_;
  link.attach_id = next_attach_id_++;
  all_.push_back(&radio);
  by_id_.emplace(link.attach_id, &radio);
  insert_into_partition(radio);
  // The gather superset can never exceed the world, so sizing the delivery
  // scratch here keeps deliver() allocation-free from the first frame.
  if (candidates_.capacity() < all_.size()) candidates_.reserve(all_.size());
}

void Medium::detach(Radio& radio) {
  remove_from_partition(radio, radio.channel());
  by_id_.erase(radio.medium_link_.attach_id);
  std::erase(all_, &radio);
}

void Medium::on_channel_changed(Radio& radio, net::ChannelId previous) {
  remove_from_partition(radio, previous);
  insert_into_partition(radio);
}

SPIDER_HOT void Medium::on_position_changed(Radio& radio) {
  partitions_[channel_slot(radio.channel())].grid.update(radio,
                                                         radio.position());
}

SPIDER_HOT void Medium::move_radios(std::span<const RadioMove> moves) {
  // Phase 1: write every position and plan the cell crossings, grouped by
  // channel partition. Non-crossers (the common case at sub-second tick
  // cadence) cost one cell computation and no hash traffic at all.
  bool any_crossed = false;
  for (const RadioMove& m : moves) {
    Radio& radio = *m.radio;
    if (m.position == radio.position_) continue;
    radio.position_ = m.position;
    const std::size_t slot = channel_slot(radio.channel());
    GridMove planned;
    if (partitions_[slot].grid.plan_move(radio, m.position, planned)) {
      move_scratch_[slot].push_back(planned);
      any_crossed = true;
    }
  }
  if (!any_crossed) return;
  // Phase 2: one grouped re-bucket per partition that had crossers.
  for (std::size_t slot = 0; slot < kChannelSlots; ++slot) {
    std::vector<GridMove>& pending = move_scratch_[slot];
    if (pending.empty()) continue;
    partitions_[slot].grid.rebucket_batch(pending);
    pending.clear();
  }
}

void Medium::insert_into_partition(Radio& radio) {
  ChannelPartition& partition = partitions_[channel_slot(radio.channel())];
  radio.medium_link_.member_index =
      static_cast<std::uint32_t>(partition.members.size());
  partition.members.push_back(&radio);
  partition.grid.insert(radio, radio.position());
}

void Medium::remove_from_partition(Radio& radio, net::ChannelId channel) {
  ChannelPartition& partition = partitions_[channel_slot(channel)];
  const std::uint32_t index = radio.medium_link_.member_index;
  SPIDER_CHECK(index < partition.members.size() &&
               partition.members[index] == &radio)
      << "radio not filed under channel " << channel;
  Radio* moved = partition.members.back();
  partition.members[index] = moved;
  moved->medium_link_.member_index = index;
  partition.members.pop_back();
  partition.grid.remove(radio);
}

SPIDER_HOT double Medium::loss_probability(double distance_m) const {
  if (distance_m > config_.range_m) return 1.0;
  double loss = config_.base_loss;
  if (config_.edge_degradation) {
    const double edge = config_.edge_start * config_.range_m;
    if (distance_m > edge) {
      const double frac = (distance_m - edge) / (config_.range_m - edge);
      loss += (1.0 - loss) * frac * frac;
    }
  }
  loss = std::min(loss, 1.0);
  SPIDER_DCHECK(loss >= 0.0 && loss <= 1.0)
      << "loss " << loss << " at " << distance_m << " m";
  return loss;
}

sim::Time Medium::channel_idle_at(net::ChannelId channel) const {
  return std::max(busy_until_[channel_slot(channel)], sim_.now());
}

SPIDER_HOT sim::Time Medium::transmit(Radio& sender, net::Frame frame) {
  ++frames_sent_;
  const net::ChannelId channel = sender.channel();
  ++per_channel_[channel_slot(channel)].sent;
  if (sniffer_) sniffer_(frame, channel, sim_.now());
  const double rate =
      frame.tx_rate_bps > 0.0 ? frame.tx_rate_bps : config_.bitrate_bps;
  const sim::Time airtime =
      config_.preamble + sim::transmission_time(frame.size_bytes, rate);

  sim::Time& busy = busy_until_[channel_slot(channel)];
  const sim::Time start = std::max(sim_.now(), busy);
  const sim::Time done = start + airtime;
  // Channel-occupancy monotonicity: serialization can only extend the busy
  // horizon forward; a regression here would deliver frames into the past.
  SPIDER_CHECK(done >= busy && done >= sim_.now())
      << "channel " << channel << " busy horizon moved backwards: "
      << busy.to_string() << " -> " << done.to_string() << " (airtime "
      << airtime.to_string() << ")";
  busy = done;

  // Snapshot the sender's position at transmit time; at vehicular speeds the
  // sub-millisecond drift during airtime is irrelevant. The sender itself is
  // carried as its attach id, not a pointer: it may detach (or even be
  // destroyed and its address recycled) before delivery fires. The snapshot
  // lives in a pooled PendingTx node so the closure stays SmallFn-inline.
  PendingTx* tx = acquire_pending_tx();
  tx->sender_id = sender.medium_link_.attach_id;
  tx->pos = sender.position();
  tx->channel = channel;
  tx->frame = std::move(frame);
  sim_.post_at(done, [this, tx] {
    deliver(tx->sender_id, tx->pos, tx->channel, tx->frame);
    release_pending_tx(tx);
  });
  return done;
}

Medium::PendingTx* Medium::acquire_pending_tx() {
  if (!tx_free_.empty()) {
    PendingTx* node = tx_free_.back();
    tx_free_.pop_back();
    return node;
  }
  // Pool growth (cold): only when more frames are in flight than ever
  // before. Keep the free list's capacity at pool size so release_pending_tx
  // can never allocate, even if every node is returned at once.
  tx_pool_.push_back(std::make_unique<PendingTx>());
  tx_free_.reserve(tx_pool_.size());
  return tx_pool_.back().get();
}

SPIDER_HOT void Medium::release_pending_tx(PendingTx* node) {
  // Drop the payload reference promptly (the delivery may have been the last
  // holder outside the intern table); the node itself is recycled.
  node->frame = net::Frame{};
  // Never grows: acquire_pending_tx keeps capacity at pool size.
  tx_free_.push_back(node);
}

SPIDER_HOT void Medium::deliver(std::uint64_t sender_id, Vec2 sender_pos,
                                net::ChannelId channel,
                                const net::Frame& frame) {
  // Unicast data-plane frames get link-layer ARQ at the addressed receiver
  // and a tx-failure indication back to the sender; everything else is
  // single-shot (as in the analytical join model).
  const bool arq_eligible = !frame.dst.is_broadcast() &&
                            (frame.kind == net::FrameKind::kData ||
                             frame.kind == net::FrameKind::kNullData ||
                             frame.kind == net::FrameKind::kPsPoll);
  bool addressed_delivery = false;

  // Frames modulated below the nominal rate decode further out (802.11b's
  // low rates): scale the geometry by the rate's range factor.
  const double range_scale =
      rate_range_scale(frame.tx_rate_bps, config_.bitrate_bps);
  SPIDER_DCHECK(range_scale > 0.0)
      << "rate " << frame.tx_rate_bps << " bps scaled range by "
      << range_scale;

  // Sender liveness, resolved once through the attach-id index (the second
  // O(world) scan this replaced only existed to find this pointer).
  Radio* sender = nullptr;
  if (auto it = by_id_.find(sender_id); it != by_id_.end()) {
    sender = it->second;
  }

  // Candidate set. Fast path: co-channel radios in the cell neighborhood of
  // the sender, re-sorted into attach order so the per-receiver RNG draws
  // below are consumed in exactly the order the reference scan consumes
  // them — grid and bucket internals must never influence the stream.
  const std::vector<Radio*>* candidates = &all_;
  if (config_.indexed_delivery) {
    ChannelPartition& partition = partitions_[channel_slot(channel)];
    const double effective_range = config_.range_m * range_scale;
    candidates_.clear();
    if (partition.grid.gather(sender_pos, effective_range, candidates_)) {
      ++deliveries_grid_;
    } else {
      candidates_.assign(partition.members.begin(), partition.members.end());
      ++deliveries_scan_;
    }
    std::sort(candidates_.begin(), candidates_.end(),
              [](const Radio* a, const Radio* b) {
                return a->medium_link_.attach_id < b->medium_link_.attach_id;
              });
    candidates = &candidates_;
  } else {
    ++deliveries_scan_;
  }

  for (Radio* rx : *candidates) {
    if (rx == sender) continue;
    const bool is_addressee = arq_eligible && rx->address() == frame.dst;
    if (rx->channel() != channel || rx->switching()) continue;
    const double d = distance(sender_pos, rx->position()) / range_scale;
    SPIDER_DCHECK(d >= 0.0) << "negative distance " << d << " m";
    if (d > config_.range_m) continue;

    const double p = loss_probability(d);
    bool lost = true;
    const int attempts = is_addressee ? config_.data_retry_limit + 1 : 1;
    for (int a = 0; a < attempts && lost; ++a) {
      lost = rng_.bernoulli(p);
    }
    if (lost) {
      ++frames_lost_;
      ++per_channel_[channel_slot(channel)].lost;
      continue;
    }
    ++frames_delivered_;
    ++per_channel_[channel_slot(channel)].delivered;
    if (is_addressee) addressed_delivery = true;
    // Log-distance RSSI proxy: -40 dBm at 1 m, path-loss exponent 3.
    const double rssi = -40.0 - 30.0 * std::log10(std::max(d, 1.0));
    rx->handle_delivery(frame, RxInfo{channel, d, rssi});
  }

  if (arq_eligible && sender != nullptr) {
    // Tell the sender how its unicast data fared (still attached only):
    // failure drives AP re-buffering, both outcomes drive rate adaptation.
    sender->handle_tx_result(frame, addressed_delivery);
  }
}

}  // namespace spider::phy
