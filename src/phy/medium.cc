#include "phy/medium.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "phy/auto_rate.h"
#include "phy/channel.h"
#include "phy/radio.h"

namespace spider::phy {

Medium::Medium(sim::Simulator& simulator, sim::Rng rng, MediumConfig config)
    : sim_(simulator), rng_(std::move(rng)), config_(config) {
  SPIDER_CHECK(config_.range_m > 0.0) << "range " << config_.range_m << " m";
  SPIDER_CHECK(config_.base_loss >= 0.0 && config_.base_loss <= 1.0)
      << "base_loss " << config_.base_loss << " is not a probability";
  SPIDER_CHECK(config_.bitrate_bps > 0.0)
      << "bitrate " << config_.bitrate_bps << " bps";
  SPIDER_CHECK(config_.edge_start > 0.0 && config_.edge_start <= 1.0)
      << "edge_start " << config_.edge_start
      << " must be a fraction of range";
  SPIDER_CHECK(config_.data_retry_limit >= 0)
      << "data_retry_limit " << config_.data_retry_limit;
  collector_id_ = sim_.telemetry().add_collector(
      [this](telemetry::Registry& registry) { publish_metrics(registry); });
}

Medium::~Medium() { sim_.telemetry().remove_collector(collector_id_); }

void Medium::publish_metrics(telemetry::Registry& registry) const {
  const auto publish = [&registry](const char* name, std::uint64_t value) {
    telemetry::Counter& c = registry.counter(name);
    c.inc(value - c.value());
  };
  publish("phy.frames_sent", frames_sent_);
  publish("phy.frames_delivered", frames_delivered_);
  publish("phy.frames_lost", frames_lost_);
  // Static names so the collector never allocates: slot N ↔ "…chN".
  static constexpr const char* kSent[kChannelSlots] = {
      "phy.frames_sent.ch0",  "phy.frames_sent.ch1",  "phy.frames_sent.ch2",
      "phy.frames_sent.ch3",  "phy.frames_sent.ch4",  "phy.frames_sent.ch5",
      "phy.frames_sent.ch6",  "phy.frames_sent.ch7",  "phy.frames_sent.ch8",
      "phy.frames_sent.ch9",  "phy.frames_sent.ch10", "phy.frames_sent.ch11",
      "phy.frames_sent.ch12", "phy.frames_sent.ch13", "phy.frames_sent.ch14"};
  static constexpr const char* kDelivered[kChannelSlots] = {
      "phy.frames_delivered.ch0",  "phy.frames_delivered.ch1",
      "phy.frames_delivered.ch2",  "phy.frames_delivered.ch3",
      "phy.frames_delivered.ch4",  "phy.frames_delivered.ch5",
      "phy.frames_delivered.ch6",  "phy.frames_delivered.ch7",
      "phy.frames_delivered.ch8",  "phy.frames_delivered.ch9",
      "phy.frames_delivered.ch10", "phy.frames_delivered.ch11",
      "phy.frames_delivered.ch12", "phy.frames_delivered.ch13",
      "phy.frames_delivered.ch14"};
  static constexpr const char* kLost[kChannelSlots] = {
      "phy.frames_lost.ch0",  "phy.frames_lost.ch1",  "phy.frames_lost.ch2",
      "phy.frames_lost.ch3",  "phy.frames_lost.ch4",  "phy.frames_lost.ch5",
      "phy.frames_lost.ch6",  "phy.frames_lost.ch7",  "phy.frames_lost.ch8",
      "phy.frames_lost.ch9",  "phy.frames_lost.ch10", "phy.frames_lost.ch11",
      "phy.frames_lost.ch12", "phy.frames_lost.ch13", "phy.frames_lost.ch14"};
  for (std::size_t slot = 0; slot < kChannelSlots; ++slot) {
    const ChannelCounters& c = per_channel_[slot];
    // Quiet channels stay out of the registry so exports only list slices
    // that actually carried traffic.
    if (c.sent != 0) publish(kSent[slot], c.sent);
    if (c.delivered != 0) publish(kDelivered[slot], c.delivered);
    if (c.lost != 0) publish(kLost[slot], c.lost);
  }
}

void Medium::attach(Radio& radio) { radios_.push_back(&radio); }

void Medium::detach(Radio& radio) {
  std::erase(radios_, &radio);
}

double Medium::loss_probability(double distance_m) const {
  if (distance_m > config_.range_m) return 1.0;
  double loss = config_.base_loss;
  if (config_.edge_degradation) {
    const double edge = config_.edge_start * config_.range_m;
    if (distance_m > edge) {
      const double frac = (distance_m - edge) / (config_.range_m - edge);
      loss += (1.0 - loss) * frac * frac;
    }
  }
  loss = std::min(loss, 1.0);
  SPIDER_DCHECK(loss >= 0.0 && loss <= 1.0)
      << "loss " << loss << " at " << distance_m << " m";
  return loss;
}

sim::Time Medium::channel_idle_at(net::ChannelId channel) const {
  auto it = busy_until_.find(channel);
  if (it == busy_until_.end()) return sim_.now();
  return std::max(it->second, sim_.now());
}

sim::Time Medium::transmit(Radio& sender, net::Frame frame) {
  ++frames_sent_;
  const net::ChannelId channel = sender.channel();
  ++per_channel_[channel_slot(channel)].sent;
  if (sniffer_) sniffer_(frame, channel, sim_.now());
  const double rate =
      frame.tx_rate_bps > 0.0 ? frame.tx_rate_bps : config_.bitrate_bps;
  const sim::Time airtime =
      config_.preamble + sim::transmission_time(frame.size_bytes, rate);

  sim::Time& busy = busy_until_[channel];
  const sim::Time start = std::max(sim_.now(), busy);
  const sim::Time done = start + airtime;
  // Channel-occupancy monotonicity: serialization can only extend the busy
  // horizon forward; a regression here would deliver frames into the past.
  SPIDER_CHECK(done >= busy && done >= sim_.now())
      << "channel " << channel << " busy horizon moved backwards: "
      << busy.to_string() << " -> " << done.to_string() << " (airtime "
      << airtime.to_string() << ")";
  busy = done;

  // Snapshot the sender's position at transmit time; at vehicular speeds the
  // sub-millisecond drift during airtime is irrelevant.
  const Vec2 pos = sender.position();
  const Radio* sender_ptr = &sender;
  sim_.post_at(done, [this, sender_ptr, pos, channel,
                          frame = std::move(frame)] {
    deliver(sender_ptr, pos, channel, frame);
  });
  return done;
}

void Medium::deliver(const Radio* sender_snapshot, Vec2 sender_pos,
                     net::ChannelId channel, const net::Frame& frame) {
  // Unicast data-plane frames get link-layer ARQ at the addressed receiver
  // and a tx-failure indication back to the sender; everything else is
  // single-shot (as in the analytical join model).
  const bool arq_eligible = !frame.dst.is_broadcast() &&
                            (frame.kind == net::FrameKind::kData ||
                             frame.kind == net::FrameKind::kNullData ||
                             frame.kind == net::FrameKind::kPsPoll);
  bool addressed_delivery = false;

  // Frames modulated below the nominal rate decode further out (802.11b's
  // low rates): scale the geometry by the rate's range factor.
  const double range_scale =
      rate_range_scale(frame.tx_rate_bps, config_.bitrate_bps);
  SPIDER_DCHECK(range_scale > 0.0)
      << "rate " << frame.tx_rate_bps << " bps scaled range by "
      << range_scale;

  for (Radio* rx : radios_) {
    if (rx == sender_snapshot) continue;
    const bool is_addressee = arq_eligible && rx->address() == frame.dst;
    if (rx->channel() != channel || rx->switching()) continue;
    const double d = distance(sender_pos, rx->position()) / range_scale;
    SPIDER_DCHECK(d >= 0.0) << "negative distance " << d << " m";
    if (d > config_.range_m) continue;

    const double p = loss_probability(d);
    bool lost = true;
    const int attempts = is_addressee ? config_.data_retry_limit + 1 : 1;
    for (int a = 0; a < attempts && lost; ++a) {
      lost = rng_.bernoulli(p);
    }
    if (lost) {
      ++frames_lost_;
      ++per_channel_[channel_slot(channel)].lost;
      continue;
    }
    ++frames_delivered_;
    ++per_channel_[channel_slot(channel)].delivered;
    if (is_addressee) addressed_delivery = true;
    // Log-distance RSSI proxy: -40 dBm at 1 m, path-loss exponent 3.
    const double rssi = -40.0 - 30.0 * std::log10(std::max(d, 1.0));
    rx->handle_delivery(frame, RxInfo{channel, d, rssi});
  }

  if (arq_eligible) {
    // Tell the sender how its unicast data fared (still attached only):
    // failure drives AP re-buffering, both outcomes drive rate adaptation.
    for (Radio* r : radios_) {
      if (r == sender_snapshot) {
        r->handle_tx_result(frame, addressed_delivery);
        break;
      }
    }
  }
}

}  // namespace spider::phy
