// Minimal 2-D geometry used by the radio medium and the mobility models.
#pragma once

#include <cmath>

namespace spider::phy {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace spider::phy
