#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "core/check.h"

namespace spider::core {

// Bump allocator for per-drain transients: delivery candidate scratch,
// RadioMove batches, per-drain staging buffers. Blocks are carved from
// ::operator new, so a cold arena growing under a ScopedAllocGuard still
// trips the teeth — discipline violations stay visible — while warm bumps
// are pointer arithmetic and invisible to the guard, which is exactly the
// "allocation-free once warm" contract the guarded tests assert.
//
// Lifetime rules (see DESIGN.md "Memory layout"):
//  - per-event transients take a Scope; the destructor rewinds them
//  - per-drain data may allocate scope-free and lives until reset()
//  - nothing allocated here may escape reset(); the owner (Simulator)
//    resets at the END of every drain, so cross-drain state must live
//    in ordinary containers
class Arena {
 public:
  static constexpr std::size_t kDefaultFirstBlock = 64 * 1024;

  explicit Arena(std::size_t first_block_bytes = kDefaultFirstBlock)
      : first_block_bytes_(first_block_bytes) {}
  ~Arena() {
    for (Block& b : blocks_) ::operator delete(b.data);
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Position snapshot for rewind(). `used` makes markers order-comparable
  // and lets stats survive a rewind.
  struct Marker {
    std::size_t block = 0;
    std::size_t offset = 0;
    std::size_t used = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    SPIDER_DCHECK((align & (align - 1)) == 0);
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        // Align the *address*, not the offset: blocks come from ::operator
        // new with only max_align_t alignment, so over-aligned requests must
        // account for the block base.
        const auto base = reinterpret_cast<std::uintptr_t>(b.data);
        const std::size_t aligned =
            ((base + offset_ + align - 1) & ~(align - 1)) - base;
        if (aligned + bytes <= b.capacity) {
          offset_ = aligned + bytes;
          used_ += bytes;
          if (used_ > high_water_) high_water_ = used_;
          return b.data + aligned;
        }
        // Too small: skip to the next (larger) block; the skipped tail is
        // reclaimed by the next reset().
        ++block_;
        offset_ = 0;
        continue;
      }
      grow(bytes + align);
    }
  }

  // Uninitialized array of a trivial T. Deliberately no construction: the
  // hot paths overwrite every slot they later read, and value-initializing
  // ~n ints per delivery at 100k radios would be measurable.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  Marker mark() const { return {block_, offset_, used_}; }

  void rewind(const Marker& m) {
    SPIDER_DCHECK(m.block < blocks_.size() || (m.block == 0 && m.offset == 0));
    block_ = m.block;
    offset_ = m.offset;
    used_ = m.used;
  }

  // Drops the cursor back to the start; capacity is retained, so a warm
  // arena never touches ::operator new again.
  void reset() {
    block_ = 0;
    offset_ = 0;
    used_ = 0;
    ++resets_;
  }

  // RAII per-event scope: rewinds to the construction point on exit.
  class Scope {
   public:
    explicit Scope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
    ~Scope() { arena_.rewind(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    Marker mark_;
  };

  std::size_t used() const { return used_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }
  std::uint64_t block_allocations() const { return block_allocations_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    char* data = nullptr;
    std::size_t capacity = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t want = blocks_.empty() ? first_block_bytes_
                                       : blocks_.back().capacity * 2;
    if (want < at_least) want = at_least;
    blocks_.push_back(Block{static_cast<char*>(::operator new(want)), want});
    ++block_allocations_;
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;
  std::size_t offset_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t block_allocations_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace spider::core
