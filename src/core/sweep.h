// Parallel sweep engine: N independent (config, seed) -> ExperimentResults
// replications fanned across a fixed thread pool.
//
// Concurrency model (the determinism contract):
//   * each replication constructs, runs, and destroys its *own* Experiment —
//     one Simulator world per task, nothing simulator-related crosses a
//     thread boundary;
//   * configs are built serially on the calling thread (the factory needs no
//     thread safety) and results land in pre-sized slots, so the report is
//     in submission order regardless of completion order;
//   * every run records its Simulator::digest(), so a serial run and a
//     parallel run of the same sweep are verifiably identical — see
//     tests/sweep_test.cc, which gates 1-thread vs 8-thread digests.
//
// This is what lets every bench/fig* and bench/table* binary execute its
// seed replications at hardware speed without perturbing a single metric.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "telemetry/metrics.h"

namespace spider::sim {
class ThreadPool;
}  // namespace spider::sim

namespace spider::core {

// One replication's outcome plus the evidence that it is the same run a
// serial executor would have produced.
struct SweepRunResult {
  std::size_t index = 0;       // submission index within the sweep
  std::uint64_t seed = 0;      // config.seed of this replication
  ExperimentResults results;
  std::uint64_t digest = 0;    // Simulator::digest() after the run
  std::uint64_t events_executed = 0;
  // Collected telemetry of this replication's world (empty when
  // SPIDER_TELEMETRY is compiled out).
  telemetry::MetricsSnapshot telemetry;
  // Chrome trace JSON, filled only when the run's config enabled tracing.
  std::string trace_json;
};

struct SweepReport {
  std::vector<SweepRunResult> runs;  // submission order
  unsigned threads = 1;              // workers actually used
  double wall_seconds = 0.0;

  // Order-sensitive FNV-1a over the per-run digests: one number that pins
  // down the whole sweep. Serial and parallel executions must agree on it.
  std::uint64_t combined_digest() const;

  // Submission-order merge of the per-run snapshots. Worker count cannot
  // affect the result: merges apply in run index order, not completion
  // order, so 1-thread and 8-thread sweeps export byte-identically.
  telemetry::MetricsSnapshot merged_telemetry() const;
};

// Appends one "kind":"run" JSONL line per replication plus the sweep summary
// line to `path` (schema "spider-telemetry-v1"). Returns success. The
// standard bench export behind --telemetry.
bool append_telemetry_jsonl(const SweepReport& report, const std::string& path,
                            std::string_view label);

class SweepRunner {
 public:
  using ConfigFactory = std::function<ExperimentConfig(std::size_t index)>;

  // threads == 0 picks hardware concurrency; threads == 1 runs inline on the
  // calling thread (no pool), which is also the fallback when a sweep has a
  // single replication.
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  // Runs `replications` independent experiments. make_config(i) is invoked
  // serially, in order, on the calling thread. Exceptions thrown by a
  // replication propagate to the caller after outstanding runs finish.
  SweepReport run(std::size_t replications,
                  const ConfigFactory& make_config) const;

  // Same sweep, but on a caller-owned pool: replications and intra-world
  // shard phases (phy::ShardedWorld) can share one set of workers instead of
  // each spinning up their own. Results are identical to run() — tasks are
  // the same, only the pool's provenance differs. Uses at most
  // pool.thread_count() workers (reported in SweepReport::threads).
  SweepReport run_on(sim::ThreadPool& pool, std::size_t replications,
                     const ConfigFactory& make_config) const;

 private:
  SweepReport run_impl(std::size_t replications,
                       const ConfigFactory& make_config,
                       sim::ThreadPool* pool, unsigned workers) const;

  unsigned threads_;
};

// Convenience for the common bench shape: one scenario replicated across
// seeds. make_config(seed) must set cfg.seed itself (every existing bench
// factory already does).
SweepReport run_seed_sweep(
    const std::vector<std::uint64_t>& seeds,
    const std::function<ExperimentConfig(std::uint64_t seed)>& make_config,
    unsigned threads = 0);

}  // namespace spider::core
