#include "core/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace spider::check {
namespace {

std::atomic<Policy> g_policy{Policy::kFatal};
std::atomic<std::uint64_t> g_check_failures{0};
std::atomic<std::uint64_t> g_dcheck_failures{0};
std::atomic<std::uint64_t> g_unreachable_failures{0};

std::mutex g_last_message_mutex;
std::string g_last_message;  // guarded by g_last_message_mutex

const char* kind_name(detail::Kind kind) {
  switch (kind) {
    case detail::Kind::kCheck: return "SPIDER_CHECK";
    case detail::Kind::kDcheck: return "SPIDER_DCHECK";
    case detail::Kind::kUnreachable: return "SPIDER_UNREACHABLE";
  }
  return "SPIDER_CHECK";
}

std::atomic<std::uint64_t>& counter_for(detail::Kind kind) {
  switch (kind) {
    case detail::Kind::kDcheck: return g_dcheck_failures;
    case detail::Kind::kUnreachable: return g_unreachable_failures;
    case detail::Kind::kCheck: break;
  }
  return g_check_failures;
}

}  // namespace

void set_policy(Policy policy) {
  g_policy.store(policy, std::memory_order_relaxed);
}

Policy policy() { return g_policy.load(std::memory_order_relaxed); }

std::uint64_t check_failures() {
  return g_check_failures.load(std::memory_order_relaxed);
}

std::uint64_t dcheck_failures() {
  return g_dcheck_failures.load(std::memory_order_relaxed);
}

std::uint64_t unreachable_failures() {
  return g_unreachable_failures.load(std::memory_order_relaxed);
}

std::uint64_t failures() {
  return check_failures() + dcheck_failures() + unreachable_failures();
}

std::string last_failure_message() {
  std::lock_guard<std::mutex> lock(g_last_message_mutex);
  return g_last_message;
}

void reset_counters() {
  g_check_failures.store(0, std::memory_order_relaxed);
  g_dcheck_failures.store(0, std::memory_order_relaxed);
  g_unreachable_failures.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_last_message_mutex);
  g_last_message.clear();
}

namespace detail {

Failure::Failure(Kind kind, const char* expr, const char* file, int line)
    : kind_(kind) {
  stream_ << kind_name(kind) << " failed: " << expr << " (" << file << ":"
          << line << ")";
  // Separate the call site's streamed context from the location header.
  stream_ << " ";
}

Failure::~Failure() {
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  if (policy() == Policy::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
  counter_for(kind_).fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_last_message_mutex);
  g_last_message = message;
}

}  // namespace detail
}  // namespace spider::check
