#include "core/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "telemetry/metrics.h"

namespace spider::check {
namespace {

// Failure counts live in the telemetry process registry (the single export
// path for health metrics: run reports snapshot them in their sweep summary
// line). The query/reset functions below are shims over that registry, kept
// so existing call sites and tests never notice the move. Counter names, for
// dashboards and the JSONL "process" section:
constexpr const char* kCheckCounter = "check.failures.check";
constexpr const char* kDcheckCounter = "check.failures.dcheck";
constexpr const char* kUnreachableCounter = "check.failures.unreachable";

std::atomic<Policy> g_policy{Policy::kFatal};

std::mutex g_last_message_mutex;
std::string g_last_message;  // guarded by g_last_message_mutex

const char* kind_name(detail::Kind kind) {
  switch (kind) {
    case detail::Kind::kCheck: return "SPIDER_CHECK";
    case detail::Kind::kDcheck: return "SPIDER_DCHECK";
    case detail::Kind::kUnreachable: return "SPIDER_UNREACHABLE";
  }
  return "SPIDER_CHECK";
}

const char* counter_name(detail::Kind kind) {
  switch (kind) {
    case detail::Kind::kDcheck: return kDcheckCounter;
    case detail::Kind::kUnreachable: return kUnreachableCounter;
    case detail::Kind::kCheck: break;
  }
  return kCheckCounter;
}

std::uint64_t read_counter(const char* name) {
  std::lock_guard<std::mutex> lock(telemetry::process_registry_mutex());
  return telemetry::process_registry().counter(name).value();
}

}  // namespace

void set_policy(Policy policy) {
  g_policy.store(policy, std::memory_order_relaxed);
}

Policy policy() { return g_policy.load(std::memory_order_relaxed); }

std::uint64_t check_failures() { return read_counter(kCheckCounter); }

std::uint64_t dcheck_failures() { return read_counter(kDcheckCounter); }

std::uint64_t unreachable_failures() {
  return read_counter(kUnreachableCounter);
}

std::uint64_t failures() {
  std::lock_guard<std::mutex> lock(telemetry::process_registry_mutex());
  telemetry::Registry& registry = telemetry::process_registry();
  return registry.counter(kCheckCounter).value() +
         registry.counter(kDcheckCounter).value() +
         registry.counter(kUnreachableCounter).value();
}

std::string last_failure_message() {
  std::lock_guard<std::mutex> lock(g_last_message_mutex);
  return g_last_message;
}

void reset_counters() {
  {
    std::lock_guard<std::mutex> lock(telemetry::process_registry_mutex());
    telemetry::Registry& registry = telemetry::process_registry();
    registry.counter(kCheckCounter).reset();
    registry.counter(kDcheckCounter).reset();
    registry.counter(kUnreachableCounter).reset();
  }
  std::lock_guard<std::mutex> lock(g_last_message_mutex);
  g_last_message.clear();
}

namespace detail {

Failure::Failure(Kind kind, const char* expr, const char* file, int line)
    : kind_(kind) {
  stream_ << kind_name(kind) << " failed: " << expr << " (" << file << ":"
          << line << ")";
  // Separate the call site's streamed context from the location header.
  stream_ << " ";
}

Failure::~Failure() {
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  if (policy() == Policy::kFatal) {
    std::fflush(stderr);
    // spider-lint: allow(check-policy) this IS the policy layer — kFatal failures terminate here by design
    std::abort();
  }
  {
    std::lock_guard<std::mutex> lock(telemetry::process_registry_mutex());
    telemetry::process_registry().counter(counter_name(kind_)).inc();
  }
  std::lock_guard<std::mutex> lock(g_last_message_mutex);
  g_last_message = message;
}

}  // namespace detail
}  // namespace spider::check
