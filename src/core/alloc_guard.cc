// Global operator new/delete interception for ScopedAllocGuard.
//
// The replacement operators live in the SAME translation unit as the guard
// class on purpose: any binary that constructs a ScopedAllocGuard pulls this
// object file in, and with it the strong definitions of the global
// allocation functions. Binaries that never mention the guard keep the
// default operators and pay nothing. Under ASan the replacements still
// forward to malloc/free, which ASan intercepts, so poisoning and
// leak-checking keep working.
#include "core/alloc_guard.h"

#include <cstdlib>
#include <new>

#include "core/check.h"

namespace spider::core {
namespace {

// Thread-local so concurrent test shards don't see each other's traffic.
// Plain integers, not atomics: a guard only reads its own thread's counters.
struct Counters {
  std::uint64_t active_guards = 0;
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes = 0;
};

thread_local Counters tls_counters;

void note_allocation(std::size_t size) {
  Counters& c = tls_counters;
  if (c.active_guards == 0) return;
  ++c.allocations;
  c.bytes += size;
}

void note_deallocation() {
  Counters& c = tls_counters;
  if (c.active_guards == 0) return;
  ++c.deallocations;
}

void* checked_malloc(std::size_t size) {
  // malloc(0) may legally return nullptr; operator new must not.
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

bool alloc_guard_linked() { return true; }

std::uint64_t thread_allocations() { return tls_counters.allocations; }
std::uint64_t thread_deallocations() { return tls_counters.deallocations; }

ScopedAllocGuard::ScopedAllocGuard(const char* label)
    : label_(label),
      start_allocations_(tls_counters.allocations),
      start_deallocations_(tls_counters.deallocations),
      start_bytes_(tls_counters.bytes) {
  ++tls_counters.active_guards;
}

ScopedAllocGuard::~ScopedAllocGuard() {
  // Deactivate before the check: the check itself may allocate (message
  // formatting), and that traffic must not be charged to an outer guard as
  // hot-path allocation... it is, however, unavoidable to charge it while an
  // outer guard is active, so decrement first and snapshot the delta.
  const std::uint64_t allocs = allocations();
  const std::uint64_t bytes = allocated_bytes();
  --tls_counters.active_guards;
  if (armed_) {
    SPIDER_CHECK(allocs == 0)
        << label_ << ": " << allocs << " allocation(s), " << bytes
        << " byte(s) on a path guarded as allocation-free";
  }
}

std::uint64_t ScopedAllocGuard::allocations() const {
  return tls_counters.allocations - start_allocations_;
}

std::uint64_t ScopedAllocGuard::deallocations() const {
  return tls_counters.deallocations - start_deallocations_;
}

std::uint64_t ScopedAllocGuard::allocated_bytes() const {
  return tls_counters.bytes - start_bytes_;
}

}  // namespace spider::core

// ---------------------------------------------------------------------------
// Global allocation function replacements ([new.delete.single] / [.array]).
// Sized and aligned variants all funnel through the two note_* hooks above.

void* operator new(std::size_t size) {
  spider::core::note_allocation(size);
  return spider::core::checked_malloc(size);
}

void* operator new[](std::size_t size) {
  spider::core::note_allocation(size);
  return spider::core::checked_malloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  spider::core::note_allocation(size);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  spider::core::note_allocation(size);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  spider::core::note_allocation(size);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  spider::core::note_deallocation();
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  if (p == nullptr) return;
  spider::core::note_deallocation();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p, std::align_val_t{1});
}

void operator delete(void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}

void operator delete[](void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}
