// The four Spider configurations evaluated in Section 4.1, as config
// factories (plus the stock-driver baseline defaults).
//
//   (1) Single-channel, Single-AP — "Spider mimics off-the-shelf Wi-Fi on a
//       single channel": one interface, strongest-signal selection, default
//       link-layer and DHCP timers, sticky link-loss detection.
//   (2) Single-channel, Multiple-AP — Spider proper on one channel: up to 7
//       interfaces, join-history selection, reduced timers.
//   (3) Multiple-channel, Multiple-AP — static equal schedule over the
//       orthogonal channels, up to 7 interfaces, reduced timers.
//   (4) Multiple-channel, Single-AP — switches channels to find APs but is
//       associated with one AP at a time; while a connection is live the
//       radio camps on its channel (soft-handoff single-AP mode).
//
// (Numbering here follows the *table*: Table 2 lists "Channel 1, Multi-AP"
// as config 1; the factories are named by behaviour to avoid ambiguity.)
#pragma once

#include <vector>

#include "core/spider_driver.h"
#include "core/stock_driver.h"
#include "phy/channel.h"

namespace spider::core {

// Config "Channel X, Multi-AP" — Spider's throughput-optimal configuration.
SpiderConfig single_channel_multi_ap(net::ChannelId channel = 1);

// Config "Channel X, Single-AP" — off-the-shelf mimicry on one channel.
SpiderConfig single_channel_single_ap(net::ChannelId channel = 1);

// Config "3 channels, Multi-AP" — static equal schedule, default D = 600 ms
// (Table 2 note: 200 ms on each of channels 1, 6, 11).
SpiderConfig multi_channel_multi_ap(
    sim::Time period = sim::Time::millis(600),
    const std::vector<net::ChannelId>& channels = {1, 6, 11});

// Config "3 channels, Single-AP" — camps while connected, rotates to find.
SpiderConfig multi_channel_single_ap(
    sim::Time period = sim::Time::millis(600),
    const std::vector<net::ChannelId>& channels = {1, 6, 11});

// Unmodified-stack baseline (Table 2's "MadWiFi driver" row).
StockDriverConfig stock_defaults();

// Section 4.8 extension: single-channel multi-AP with dynamic channel
// selection — periodic scan excursions re-camp the radio on the channel
// with the best (history-weighted) AP supply.
SpiderConfig dynamic_channel_multi_ap(net::ChannelId initial_channel = 1);

}  // namespace spider::core
