#include "core/spider_driver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/arena.h"
#include "core/check.h"
#include "phy/channel.h"

namespace spider::core {
namespace {

// Track-name literals for the Perfetto lanes the driver uses: per-interface
// join lanes and 100+channel dwell lanes (TraceRecorder stores const char*).
constexpr const char* kVifTrackNames[] = {"vif0", "vif1", "vif2", "vif3",
                                          "vif4", "vif5", "vif6", "vif7"};
constexpr const char* kChannelTrackNames[] = {
    "ch0", "ch1", "ch2",  "ch3",  "ch4",  "ch5",  "ch6", "ch7",
    "ch8", "ch9", "ch10", "ch11", "ch12", "ch13", "ch14"};
constexpr std::uint32_t kChannelTrackBase = 100;

std::size_t channel_slot(net::ChannelId channel) {
  return channel >= 1 && channel < 15 ? static_cast<std::size_t>(channel) : 0;
}

}  // namespace

SpiderDriver::SpiderDriver(sim::Simulator& simulator, ClientDevice& device,
                           SpiderConfig config)
    : sim_(simulator), device_(device), config_(std::move(config)) {
  if (config_.schedule.empty())
    throw std::invalid_argument("SpiderConfig: empty schedule");
  if (config_.dynamic_channel && config_.schedule.size() != 1)
    throw std::invalid_argument(
        "SpiderConfig: dynamic_channel requires a single-slice schedule");
  double total = 0.0;
  for (const auto& slice : config_.schedule) {
    if (slice.fraction <= 0.0)
      throw std::invalid_argument("SpiderConfig: non-positive slice");
    total += slice.fraction;
  }
  for (auto& slice : config_.schedule) slice.fraction /= total;
  double normalized = 0.0;
  for (const auto& slice : config_.schedule) normalized += slice.fraction;
  SPIDER_DCHECK(std::abs(normalized - 1.0) < 1e-9)
      << "schedule fractions normalized to " << normalized;

  device_.set_connected_lookup([this](net::ChannelId ch) {
    std::vector<net::Bssid> out;
    // spider-lint: allow(det-unordered-iteration) result is sorted below
    for (const auto& [bssid, vif] : interfaces_) {
      if (vif->channel == ch && vif->state == VirtualInterface::State::kConnected)
        out.push_back(bssid);
    }
    std::sort(out.begin(), out.end());
    return out;
  });
  collector_id_ = sim_.telemetry().add_collector(
      [this](telemetry::Registry& registry) { publish_metrics(registry); });
}

SpiderDriver::~SpiderDriver() {
  sim_.telemetry().remove_collector(collector_id_);
  schedule_timer_.cancel();
  selection_timer_.cancel();
  eval_timer_.cancel();
  // Unregister in bssid order: teardown must be as reproducible as the run
  // (unregister_bssid is observable through the device's frame filter).
  core::Arena::Scope scope(sim_.arena());
  net::Bssid* stale = sim_.arena().alloc_array<net::Bssid>(interfaces_.size());
  std::size_t n_stale = 0;
  // spider-lint: allow(det-unordered-iteration) keys are sorted below
  for (auto& [bssid, vif] : interfaces_) stale[n_stale++] = bssid;
  std::sort(stale, stale + n_stale);
  for (std::size_t i = 0; i < n_stale; ++i) device_.unregister_bssid(stale[i]);
}

void SpiderDriver::publish_metrics(telemetry::Registry& registry) {
  const auto publish = [&registry](const char* name, std::uint64_t total,
                                   std::uint64_t& published) {
    registry.counter(name).inc(total - published);
    published = total;
  };
  publish("driver.join_attempts", metrics_.join_attempts,
          published_.join_attempts);
  publish("driver.associations", metrics_.associations,
          published_.associations);
  publish("driver.joins", metrics_.joins, published_.joins);
  publish("driver.dhcp_attempts", metrics_.dhcp_attempts,
          published_.dhcp_attempts);
  publish("driver.dhcp_attempt_failures", metrics_.dhcp_attempt_failures,
          published_.dhcp_attempt_failures);
  publish("driver.dhcp_failed_joins", metrics_.dhcp_failed_joins,
          published_.dhcp_failed_joins);
  publish("driver.recamps", recamps_, published_.recamps);
  publish("driver.schedule_switches", schedule_switches_,
          published_.schedule_switches);
  static constexpr const char* kDwellNames[] = {
      "driver.dwell_us.ch0",  "driver.dwell_us.ch1",  "driver.dwell_us.ch2",
      "driver.dwell_us.ch3",  "driver.dwell_us.ch4",  "driver.dwell_us.ch5",
      "driver.dwell_us.ch6",  "driver.dwell_us.ch7",  "driver.dwell_us.ch8",
      "driver.dwell_us.ch9",  "driver.dwell_us.ch10", "driver.dwell_us.ch11",
      "driver.dwell_us.ch12", "driver.dwell_us.ch13", "driver.dwell_us.ch14"};
  // Probe the channel plan in slot order instead of walking the unordered
  // dwell map: same totals, and the publish order no longer depends on
  // hashing internals. (Slot N is channel N for the 1..14 plan; channel 0
  // never accrues dwell, and out-of-plan channels cannot be scheduled.)
  for (std::size_t slot = 1; slot < std::size(kDwellNames); ++slot) {
    const auto it = airtime_.find(static_cast<net::ChannelId>(slot));
    if (it == airtime_.end()) continue;
    publish(kDwellNames[slot], static_cast<std::uint64_t>(it->second.us()),
            published_dwell_us_[slot]);
  }
}

void SpiderDriver::start() {
  if (started_) return;
  started_ = true;
  telemetry::TraceRecorder& trace = sim_.telemetry().trace();
  if (trace.enabled()) {
    for (const ChannelSlice& slice : config_.schedule) {
      const std::size_t slot = channel_slot(slice.channel);
      trace.name_track(kChannelTrackBase + static_cast<std::uint32_t>(slot),
                       kChannelTrackNames[slot]);
    }
  }
  rotate_schedule(0);
  selection_timer_ =
      sim_.schedule_after(config_.selection_interval, [this] { selection_tick(); });
  if (config_.dynamic_channel) {
    eval_timer_ = sim_.schedule_after(config_.channel_eval_interval,
                                      [this] { channel_eval_tick(); });
  }
}

net::ChannelId SpiderDriver::home_channel() const {
  return config_.schedule.front().channel;
}

double SpiderDriver::channel_utility(net::ChannelId channel) const {
  double utility = 0.0;
  for (const ScanEntry& e : device_.scan_results(channel)) {
    utility += history_.score(e.bssid);
  }
  return utility;
}

void SpiderDriver::channel_eval_tick() {
  eval_timer_ = sim_.schedule_after(config_.channel_eval_interval,
                                    [this] { channel_eval_tick(); });
  if (excursion_active_) return;
  excursion_active_ = true;
  // Visit every orthogonal channel except home, probing briefly on each.
  excursion_remaining_.clear();
  for (net::ChannelId ch : phy::kOrthogonalChannels) {
    if (ch != home_channel()) excursion_remaining_.push_back(ch);
  }
  scan_excursion_step();
}

void SpiderDriver::scan_excursion_step() {
  if (excursion_remaining_.empty()) {
    // Head home, then decide.
    device_.switch_channel(home_channel(), [this] {
      accumulate_airtime();
      dwell_channel_ = home_channel();
      on_arrival(home_channel());
      finish_channel_eval();
    });
    return;
  }
  const net::ChannelId target = excursion_remaining_.back();
  excursion_remaining_.pop_back();
  accumulate_airtime();
  dwell_channel_ = 0;
  device_.switch_channel(target, [this, target] {
    accumulate_airtime();
    dwell_channel_ = target;
  });
  sim_.post_after(config_.scan_excursion, [this] { scan_excursion_step(); });
}

void SpiderDriver::finish_channel_eval() {
  excursion_active_ = false;
  const double home_utility = channel_utility(home_channel());
  net::ChannelId best = home_channel();
  double best_utility = home_utility;
  for (net::ChannelId ch : phy::kOrthogonalChannels) {
    const double u = channel_utility(ch);
    if (u > best_utility) {
      best = ch;
      best_utility = u;
    }
  }
  if (best == home_channel()) return;
  // Hysteresis, plus never abandon live connections for speculative gain.
  if (best_utility < home_utility * config_.channel_switch_hysteresis) return;
  if (connected_count() > 0) return;
  ++recamps_;
  config_.schedule.front().channel = best;
  // Drop joining interfaces stranded on the old home channel, in bssid
  // order so failure-history updates replay identically.
  core::Arena::Scope scope(sim_.arena());
  net::Bssid* stale = sim_.arena().alloc_array<net::Bssid>(interfaces_.size());
  std::size_t n_stale = 0;
  // spider-lint: allow(det-unordered-iteration) keys are sorted below
  for (const auto& [bssid, vif] : interfaces_) {
    if (vif->channel != best) stale[n_stale++] = bssid;
  }
  std::sort(stale, stale + n_stale);
  for (std::size_t i = 0; i < n_stale; ++i) {
    destroy_interface(stale[i], /*lost=*/false);
  }
  rotate_schedule(0);
}

void SpiderDriver::accumulate_airtime() {
  // Dwell accounting is monotonic: the open interval can never end before it
  // started, and closed per-channel totals only grow.
  SPIDER_CHECK(sim_.now() >= dwell_since_)
      << "dwell interval ends " << sim_.now().to_string()
      << " before it started " << dwell_since_.to_string();
  if (dwell_channel_ != 0) {
    airtime_[dwell_channel_] += sim_.now() - dwell_since_;
    telemetry::TraceRecorder& trace = sim_.telemetry().trace();
    if (trace.enabled() && sim_.now() > dwell_since_) {
      const std::size_t slot = channel_slot(dwell_channel_);
      trace.complete("dwell", "channel", dwell_since_.us(),
                     (sim_.now() - dwell_since_).us(),
                     kChannelTrackBase + static_cast<std::uint32_t>(slot));
    }
  }
  dwell_since_ = sim_.now();
}

sim::Time SpiderDriver::channel_airtime(net::ChannelId channel) const {
  sim::Time t = sim::Time::zero();
  if (auto it = airtime_.find(channel); it != airtime_.end()) t = it->second;
  if (channel == dwell_channel_) t += sim_.now() - dwell_since_;
  return t;
}

void SpiderDriver::rotate_schedule(std::size_t slice_index) {
  ChannelSlice slice = config_.schedule[slice_index];
  sim::Time dwell = config_.period * slice.fraction;
  std::size_t next = (slice_index + 1) % config_.schedule.size();

  if (config_.camp_while_connected) {
    // Camp on the lowest-bssid live connection: "first connected found"
    // would make the camped channel a function of hash-map order when two
    // connections are live at once.
    const VirtualInterface* camp = nullptr;
    net::Bssid camp_bssid{};
    // spider-lint: allow(det-unordered-iteration) min-by-bssid fold — the selected element is order-independent
    for (const auto& [bssid, vif] : interfaces_) {
      if (vif->state != VirtualInterface::State::kConnected) continue;
      if (camp == nullptr || bssid < camp_bssid) {
        camp = vif.get();
        camp_bssid = bssid;
      }
    }
    if (camp != nullptr) {
      // Stay with the live connection; re-evaluate after a full period.
      slice = ChannelSlice{camp->channel, 1.0};
      dwell = config_.period;
      next = slice_index;  // resume the rotation where it left off
    }
  }

  accumulate_airtime();
  dwell_channel_ = 0;  // nothing accrues during the reset

  if (device_.channel() == slice.channel && !device_.switching()) {
    // Already parked there (camping or single-channel): no PSM dance.
    dwell_channel_ = slice.channel;
    dwell_since_ = sim_.now();
    if (config_.schedule.size() > 1 || config_.camp_while_connected) {
      schedule_timer_.cancel();
      schedule_timer_ =
          sim_.schedule_after(dwell, [this, next] { rotate_schedule(next); });
    }
    return;
  }

  ++schedule_switches_;
  last_switch_latency_ =
      device_.switch_channel(slice.channel, [this, slice] {
        accumulate_airtime();
        dwell_channel_ = slice.channel;
        on_arrival(slice.channel);
      });

  if (config_.schedule.size() > 1 || config_.camp_while_connected) {
    schedule_timer_.cancel();
    schedule_timer_ =
        sim_.schedule_after(dwell, [this, next] { rotate_schedule(next); });
  }
}

void SpiderDriver::on_arrival(net::ChannelId channel) {
  // Wake co-channel sessions in bssid order: each wake-up can enqueue
  // frames, and the enqueue order decides who serializes onto the channel
  // first — hash-map order here would leak straight into the digest.
  core::Arena::Scope scope(sim_.arena());
  net::Bssid* stale = sim_.arena().alloc_array<net::Bssid>(interfaces_.size());
  std::size_t n_stale = 0;
  // spider-lint: allow(det-unordered-iteration) keys are sorted below
  for (auto& [bssid, vif] : interfaces_) {
    if (vif->channel == channel) stale[n_stale++] = bssid;
  }
  std::sort(stale, stale + n_stale);
  for (std::size_t i = 0; i < n_stale; ++i) {
    const net::Bssid bssid = stale[i];
    auto it = interfaces_.find(bssid);
    if (it == interfaces_.end()) continue;  // destroyed by an earlier wake-up
    VirtualInterface& vif = *it->second;
    if (vif.session) vif.session->radio_on_channel();
    if (vif.dhcp && vif.state == VirtualInterface::State::kDhcp)
      vif.dhcp->radio_on_channel();
  }
}

bool SpiderDriver::scheduled_channel(net::ChannelId channel) const {
  return std::any_of(config_.schedule.begin(), config_.schedule.end(),
                     [channel](const ChannelSlice& s) {
                       return s.channel == channel;
                     });
}

void SpiderDriver::note_heard(VirtualInterface& vif) {
  vif.airtime_at_last_heard = channel_airtime(vif.channel);
}

void SpiderDriver::create_interface(const ScanEntry& entry) {
  const net::Bssid bssid = entry.bssid;
  // One virtual interface per AP relationship; selection_tick filters
  // candidates, so a duplicate here means the scan table and the interface
  // map disagree.
  SPIDER_CHECK(!interfaces_.contains(bssid))
      << "duplicate virtual interface for " << bssid.to_string();
  SPIDER_DCHECK(scheduled_channel(entry.channel))
      << "interface for " << bssid.to_string() << " on unscheduled channel "
      << entry.channel;
  auto vif = std::make_unique<VirtualInterface>();
  vif->bssid = bssid;
  vif->channel = entry.channel;
  vif->trace_track = next_trace_track_++;
  vif->join_started = sim_.now();
  vif->airtime_at_last_heard = channel_airtime(entry.channel);

  telemetry::TraceRecorder& trace = sim_.telemetry().trace();
  if (trace.enabled()) {
    if (vif->trace_track < std::size(kVifTrackNames)) {
      trace.name_track(vif->trace_track, kVifTrackNames[vif->trace_track]);
    }
    // Discovery span: last beacon/probe sighting of this AP up to the
    // decision to join it — the "scan" leg of the join pipeline.
    trace.complete("scan", "join", entry.last_seen.us(),
                   (sim_.now() - entry.last_seen).us(), vif->trace_track);
  }

  // Join traffic is sent only when the radio is live on the AP's channel;
  // it is never queued (a deferred DHCP request would arrive stale anyway,
  // and the paper's whole point is that joins cannot be parked with PSM).
  const net::ChannelId channel = entry.channel;
  auto join_tx = [this, channel](const net::Frame& frame) {
    if (device_.channel() == channel && !device_.switching()) {
      return device_.radio().send(frame);
    }
    return false;
  };

  mac::ClientSessionConfig session_config = config_.session;
  session_config.trace_track = vif->trace_track;
  dhcpd::DhcpClientConfig dhcp_config = config_.dhcp;
  dhcp_config.trace_track = vif->trace_track;
  vif->session = std::make_unique<mac::ClientSession>(
      sim_, device_.address(), bssid, channel, join_tx, session_config);
  vif->dhcp = std::make_unique<dhcpd::DhcpClient>(
      sim_, device_.address(), bssid, join_tx, dhcp_config);

  VirtualInterface* raw = vif.get();
  vif->session->set_event_handler(
      [this, raw](mac::ClientSession&, mac::SessionEvent ev) {
        on_session_event(*raw, ev);
      });
  vif->dhcp->set_event_handler([this, raw](dhcpd::DhcpClient&, dhcpd::DhcpEvent ev) {
    on_dhcp_event(*raw, ev);
  });

  device_.register_bssid(bssid, [this, raw](const net::Frame& frame,
                                            const phy::RxInfo&) {
    note_heard(*raw);
    if (raw->session) raw->session->handle_frame(frame);
    if (raw->dhcp) raw->dhcp->handle_frame(frame);
  });

  interfaces_.emplace(bssid, std::move(vif));
  ++metrics_.join_attempts;
  history_.record_attempt(bssid);
  raw->session->start_join();
}

void SpiderDriver::selection_tick() {
  selection_timer_ =
      sim_.schedule_after(config_.selection_interval, [this] { selection_tick(); });

  // 1. Reap interfaces whose AP has been silent for link_loss_timeout of
  //    on-channel time (silence while parked elsewhere doesn't count).
  std::vector<net::Bssid> dead;
  // spider-lint: allow(det-unordered-iteration) keys are sorted below
  for (auto& [bssid, vif] : interfaces_) {
    const sim::Time on_air_silence =
        channel_airtime(vif->channel) - vif->airtime_at_last_heard;
    if (on_air_silence > config_.link_loss_timeout) {
      dead.push_back(bssid);
      continue;
    }
    if (vif->state != VirtualInterface::State::kConnected &&
        sim_.now() - vif->join_started > config_.join_give_up) {
      dead.push_back(bssid);
    }
  }
  // Reap in bssid order: each destroy updates join history and can fire the
  // disconnect callback, so the order must not be hash-map order.
  std::sort(dead.begin(), dead.end());
  for (net::Bssid bssid : dead) destroy_interface(bssid, /*lost=*/true);

  // 2. Spawn interfaces for fresh candidates on scheduled channels.
  const int capacity = config_.multi_ap ? config_.max_interfaces : 1;
  if (static_cast<int>(interfaces_.size()) >= capacity) return;

  std::vector<ScanEntry> candidates;
  for (ScanEntry& e : device_.scan_results()) {
    if (!scheduled_channel(e.channel)) continue;
    if (interfaces_.contains(e.bssid)) continue;
    candidates.push_back(std::move(e));
  }

  const auto rank = [this](const ScanEntry& e) {
    switch (config_.policy) {
      case ApSelectionPolicy::kJoinHistory:
        return history_.score(e.bssid);
      case ApSelectionPolicy::kBestRssi:
        return e.rssi_dbm;
      case ApSelectionPolicy::kOfferedBandwidth:
        // No in-band estimate exists before joining; fall back to history
        // blended with signal (the ablation bench injects an oracle).
        return history_.score(e.bssid) + e.rssi_dbm * 1e-4;
    }
    return 0.0;
  };
  // Explicit bssid tie-break: std::sort is unstable, and policy scores tie
  // routinely (fresh APs share a history score of zero).
  std::sort(candidates.begin(), candidates.end(),
            [&rank](const ScanEntry& a, const ScanEntry& b) {
              const double ra = rank(a);
              const double rb = rank(b);
              if (ra != rb) return ra > rb;
              return a.bssid < b.bssid;
            });

  for (const ScanEntry& e : candidates) {
    if (static_cast<int>(interfaces_.size()) >= capacity) break;
    create_interface(e);
  }
  SPIDER_CHECK(static_cast<int>(interfaces_.size()) <= capacity)
      << interfaces_.size() << " interfaces exceed capacity " << capacity;
}

void SpiderDriver::destroy_interface(net::Bssid bssid, bool lost) {
  auto it = interfaces_.find(bssid);
  if (it == interfaces_.end()) return;
  const bool was_connected =
      it->second->state == VirtualInterface::State::kConnected;
  if (!was_connected) history_.record_failure(bssid);
  if (it->second->state == VirtualInterface::State::kDhcp) {
    ++metrics_.dhcp_failed_joins;  // associated but never got a lease
  }
  device_.unregister_bssid(bssid);
  device_.forget_scan(bssid);
  interfaces_.erase(it);
  if (lost && was_connected && on_disconnected_) on_disconnected_(bssid);
}

std::size_t SpiderDriver::connected_count() const {
  std::size_t n = 0;
  // spider-lint: allow(det-unordered-iteration) commutative count — no order-dependent output
  for (const auto& [bssid, vif] : interfaces_) {
    if (vif->state == VirtualInterface::State::kConnected) ++n;
  }
  return n;
}

const VirtualInterface* SpiderDriver::find_interface(net::Bssid bssid) const {
  auto it = interfaces_.find(bssid);
  return it == interfaces_.end() ? nullptr : it->second.get();
}

void SpiderDriver::on_session_event(VirtualInterface& vif,
                                    mac::SessionEvent event) {
  switch (event) {
    case mac::SessionEvent::kAssociated: {
      // Join pipeline ordering: association completes exactly once, from the
      // associating stage; DHCP only starts on top of it.
      SPIDER_CHECK(vif.state == VirtualInterface::State::kAssociating)
          << "kAssociated for " << vif.bssid.to_string()
          << " in driver state " << static_cast<int>(vif.state);
      ++metrics_.associations;
      metrics_.association_delay_sec.add(vif.session->association_delay().sec());
      sim_.telemetry()
          .metrics()
          .histogram("driver.assoc_delay_sec")
          .add(vif.session->association_delay().sec());
      vif.state = VirtualInterface::State::kDhcp;
      const auto cached = config_.cache_leases
                              ? lease_cache_.find(vif.bssid)
                              : lease_cache_.end();
      if (cached != lease_cache_.end() &&
          cached->second.acquired_at + cached->second.duration > sim_.now()) {
        vif.dhcp->start_with_cached(cached->second);
      } else {
        vif.dhcp->start();
      }
      break;
    }
    case mac::SessionEvent::kFailed: {
      // Deferred: we are inside the session's own call stack.
      const net::Bssid bssid = vif.bssid;
      sim_.post_after(sim::Time::zero(), [this, bssid] {
        destroy_interface(bssid, /*lost=*/false);
      });
      break;
    }
  }
}

void SpiderDriver::on_dhcp_event(VirtualInterface& vif, dhcpd::DhcpEvent event) {
  switch (event) {
    case dhcpd::DhcpEvent::kBound: {
      SPIDER_CHECK(vif.state == VirtualInterface::State::kDhcp)
          << "kBound for " << vif.bssid.to_string() << " in driver state "
          << static_cast<int>(vif.state);
      SPIDER_CHECK(!vif.dhcp->lease().ip.is_null())
          << "bound with a null lease on " << vif.bssid.to_string();
      const sim::Time join_delay = sim_.now() - vif.join_started;
      ++metrics_.joins;
      ++metrics_.dhcp_attempts;
      metrics_.join_delay_sec.add(join_delay.sec());
      telemetry::Hub& telemetry = sim_.telemetry();
      telemetry.metrics().histogram("driver.join_delay_sec").add(
          join_delay.sec());
      // Envelope span over the whole pipeline; the auth/assoc/dhcp sub-spans
      // nest inside it on the same per-interface lane.
      telemetry.trace().complete("join", "join", vif.join_started.us(),
                                 join_delay.us(), vif.trace_track);
      history_.record_success(vif.bssid, join_delay, sim_.now());
      if (config_.cache_leases) lease_cache_[vif.bssid] = vif.dhcp->lease();
      vif.state = VirtualInterface::State::kConnected;
      vif.connected_at = sim_.now();
      if (on_connected_) on_connected_(vif);
      break;
    }
    case dhcpd::DhcpEvent::kAttemptFailed:
      // Every attempt window counts once: here on failure, above on bind.
      ++metrics_.dhcp_attempt_failures;
      ++metrics_.dhcp_attempts;
      break;
  }
}

}  // namespace spider::core
