// Join-plane metrics shared by drivers and experiment harnesses.
#pragma once

#include <cstdint>

#include "trace/stats.h"

namespace spider::core {

struct JoinMetrics {
  // Link-layer association latency (Fig. 5).
  trace::EmpiricalCdf association_delay_sec;
  // Full join latency: association + DHCP (Figs. 6, 11, 12).
  trace::EmpiricalCdf join_delay_sec;
  std::uint64_t associations = 0;
  std::uint64_t joins = 0;
  std::uint64_t join_attempts = 0;
  // Per-retry-window accounting (diagnostics).
  std::uint64_t dhcp_attempt_failures = 0;
  std::uint64_t dhcp_attempts = 0;
  // Per-join accounting (Table 3): of the interfaces that completed
  // association and started DHCP, how many were abandoned without a lease.
  std::uint64_t dhcp_failed_joins = 0;

  // Window-level failure probability (diagnostic).
  double dhcp_failure_rate() const {
    return dhcp_attempts == 0
               ? 0.0
               : static_cast<double>(dhcp_attempt_failures) / dhcp_attempts;
  }
  // Join-level DHCP failure probability — the quantity Table 3 reports.
  double dhcp_join_failure_rate() const {
    const std::uint64_t total = dhcp_failed_joins + joins;
    return total == 0 ? 0.0
                      : static_cast<double>(dhcp_failed_joins) / total;
  }
};

}  // namespace spider::core
