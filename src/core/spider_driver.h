// Spider — the paper's contribution (Section 3).
//
// A virtualized-Wi-Fi driver for mobile clients that schedules the physical
// card among *channels* rather than APs:
//   * channel-based scheduling: a static schedule of (channel, fraction)
//     slices over a period D; a single-slice schedule never leaves its
//     channel (the throughput-optimal configuration at vehicular speed);
//   * multi-AP on one channel: every AP on the current channel is talked to
//     simultaneously through per-AP virtual interfaces (up to 7, matching
//     the evaluation), with no switching cost between them;
//   * PSM parking: live connections on a channel being left are parked with
//     null-data PM=1 and woken with PS-Poll (ClientDevice does the dance);
//   * join management: per-AP association + DHCP state machines with
//     configurable (reduced) timers; join traffic is never deferred to a
//     queue — if the radio is elsewhere the message simply isn't sent,
//     which is exactly why fractional schedules hurt joins;
//   * AP selection by join history (greedy heuristic; exact selection is
//     NP-hard), with RSSI and unseen-AP priors as tie-breakers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/ap_history.h"
#include "core/client_device.h"
#include "core/metrics.h"
#include "dhcpd/dhcp_client.h"
#include "mac/client_session.h"
#include "sim/simulator.h"
#include "trace/stats.h"

namespace spider::core {

enum class ApSelectionPolicy : std::uint8_t {
  kJoinHistory,        // Spider's heuristic
  kBestRssi,           // strongest signal (stock behaviour)
  kOfferedBandwidth,   // FatVAP-style (needs an oracle; see ablation bench)
};

struct ChannelSlice {
  net::ChannelId channel = 1;
  double fraction = 1.0;
};

struct SpiderConfig {
  // Slices are visited round-robin each period; fractions are normalized.
  std::vector<ChannelSlice> schedule{{1, 1.0}};
  sim::Time period = sim::Time::millis(600);
  int max_interfaces = 7;
  bool multi_ap = true;  // false: at most one virtual interface (config 1/4)
  ApSelectionPolicy policy = ApSelectionPolicy::kJoinHistory;
  mac::ClientSessionConfig session{.link_timeout = sim::Time::millis(100)};
  dhcpd::DhcpClientConfig dhcp = dhcpd::reduced_dhcp_timers(sim::Time::millis(200));
  sim::Time selection_interval = sim::Time::millis(200);
  // Give up on an AP after this much *on-channel* silence.
  sim::Time link_loss_timeout = sim::Time::millis(1500);
  // Abandon a join that has not produced a lease within this budget (dud or
  // hopelessly slow AP); the failure is fed back into the history database.
  sim::Time join_give_up = sim::Time::seconds(8);
  // Soft-handoff single-AP mode (the "Multiple-channel, Single-AP"
  // configuration): rotate the schedule only while nothing is connected;
  // once a connection is live, camp on its channel until it dies.
  bool camp_while_connected = false;

  // Dynamic channel selection (the paper's Section 4.8 future work):
  // stay single-channel for throughput, but periodically make a brief scan
  // excursion over the orthogonal channels and re-camp wherever the
  // (join-history-weighted) AP supply is best. Requires a single-slice
  // schedule; the slice's channel is just the starting point.
  bool dynamic_channel = false;
  sim::Time channel_eval_interval = sim::Time::seconds(4);
  sim::Time scan_excursion = sim::Time::millis(80);
  // A rival channel must beat the current one by this factor to trigger a
  // re-camp (hysteresis against flapping).
  double channel_switch_hysteresis = 1.3;

  // Lease caching (Section 2.1.2: "techniques such as caching dhcp leases
  // ... are essential for multi-AP systems"): on re-encountering an AP we
  // hold an unexpired lease for, skip discovery and INIT-REBOOT straight
  // to REQUEST. Off by default to match the paper's evaluated behaviour.
  bool cache_leases = false;
};

// One virtual interface = one AP relationship.
struct VirtualInterface {
  enum class State : std::uint8_t { kAssociating, kDhcp, kConnected };

  net::Bssid bssid;
  net::ChannelId channel = 0;
  State state = State::kAssociating;
  std::unique_ptr<mac::ClientSession> session;
  std::unique_ptr<dhcpd::DhcpClient> dhcp;
  // Perfetto lane for this interface's scan/auth/assoc/dhcp/join spans.
  std::uint32_t trace_track = 0;
  sim::Time join_started = sim::Time::zero();
  sim::Time connected_at = sim::Time::zero();
  // Cumulative on-channel dwell of this iface's channel when the AP was
  // last heard (drives on-air link-loss detection).
  sim::Time airtime_at_last_heard = sim::Time::zero();
};

class SpiderDriver {
 public:
  using ConnectionHandler = std::function<void(const VirtualInterface&)>;
  using DisconnectionHandler = std::function<void(net::Bssid)>;

  SpiderDriver(sim::Simulator& simulator, ClientDevice& device,
               SpiderConfig config = {});
  ~SpiderDriver();

  SpiderDriver(const SpiderDriver&) = delete;
  SpiderDriver& operator=(const SpiderDriver&) = delete;

  void start();

  void set_connection_handler(ConnectionHandler fn) { on_connected_ = std::move(fn); }
  void set_disconnection_handler(DisconnectionHandler fn) {
    on_disconnected_ = std::move(fn);
  }

  const SpiderConfig& config() const { return config_; }
  const JoinMetrics& metrics() const { return metrics_; }
  const ApHistoryDb& history() const { return history_; }
  ClientDevice& device() { return device_; }

  std::size_t interface_count() const { return interfaces_.size(); }
  std::size_t connected_count() const;
  const VirtualInterface* find_interface(net::Bssid bssid) const;

  // Cumulative radio dwell on `channel` so far (exposed for tests).
  sim::Time channel_airtime(net::ChannelId channel) const;

  // Latency of the most recent channel switch, as modeled by the device
  // (Table 1 micro-benchmark).
  sim::Time last_switch_latency() const { return last_switch_latency_; }

  // Dynamic mode: the channel currently camped on, and how often the
  // evaluator decided to move home.
  net::ChannelId home_channel() const;
  std::uint64_t recamps() const { return recamps_; }

  // Physical channel switches the scheduler has requested so far (published
  // as driver.schedule_switches).
  std::uint64_t schedule_switches() const { return schedule_switches_; }

  // History-weighted AP supply on a channel, from fresh scan results
  // (exposed for tests and the dynamic-channel ablation).
  double channel_utility(net::ChannelId channel) const;

 private:
  void rotate_schedule(std::size_t slice_index);
  void on_arrival(net::ChannelId channel);
  void selection_tick();
  void channel_eval_tick();
  void scan_excursion_step();
  void finish_channel_eval();
  void create_interface(const ScanEntry& entry);
  void destroy_interface(net::Bssid bssid, bool lost);
  void on_session_event(VirtualInterface& vif, mac::SessionEvent event);
  void on_dhcp_event(VirtualInterface& vif, dhcpd::DhcpEvent event);
  bool scheduled_channel(net::ChannelId channel) const;
  void note_heard(VirtualInterface& vif);
  void accumulate_airtime();
  void publish_metrics(telemetry::Registry& registry);

  sim::Simulator& sim_;
  ClientDevice& device_;
  SpiderConfig config_;
  JoinMetrics metrics_;
  ApHistoryDb history_;
  ConnectionHandler on_connected_;
  DisconnectionHandler on_disconnected_;

  std::unordered_map<net::Bssid, std::unique_ptr<VirtualInterface>> interfaces_;
  std::unordered_map<net::Bssid, dhcpd::Lease> lease_cache_;
  std::unordered_map<net::ChannelId, sim::Time> airtime_;
  net::ChannelId dwell_channel_ = 0;      // channel being accounted for
  sim::Time dwell_since_ = sim::Time::zero();
  sim::TimerHandle schedule_timer_;
  sim::TimerHandle selection_timer_;
  sim::TimerHandle eval_timer_;
  sim::Time last_switch_latency_ = sim::Time::zero();
  std::uint64_t recamps_ = 0;
  std::uint64_t schedule_switches_ = 0;
  bool excursion_active_ = false;
  bool started_ = false;
  // Scratch buffer reused across eval ticks (excursions never overlap, so
  // one suffices); member so the steady-state schedule loop does not
  // allocate. Stale-bssid staging lives on the simulator's drain arena.
  std::vector<net::ChannelId> excursion_remaining_;

  // Telemetry plumbing: deltas already folded into the shared driver.*
  // metrics (several drivers may share one world), the next Perfetto lane to
  // hand a new interface, and this driver's collector registration.
  struct Published {
    std::uint64_t join_attempts = 0;
    std::uint64_t associations = 0;
    std::uint64_t joins = 0;
    std::uint64_t dhcp_attempts = 0;
    std::uint64_t dhcp_attempt_failures = 0;
    std::uint64_t dhcp_failed_joins = 0;
    std::uint64_t recamps = 0;
    std::uint64_t schedule_switches = 0;
  } published_;
  std::array<std::uint64_t, 15> published_dwell_us_{};
  std::uint32_t next_trace_track_ = 1;
  telemetry::Hub::CollectorId collector_id_ = 0;
};

}  // namespace spider::core
