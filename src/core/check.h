// Machine-checked invariants for the simulator core.
//
// SPIDER_CHECK(cond)      — always-on invariant; streams extra context:
//                             SPIDER_CHECK(at >= now) << "late by " << delta;
// SPIDER_DCHECK(cond)     — debug-only (compiled out under NDEBUG unless
//                           SPIDER_FORCE_DCHECKS is defined; the sanitizer
//                           presets force it on).
// SPIDER_UNREACHABLE()    — marks switch arms / states that must never run.
//
// A failed check consults the global policy: kFatal (default) prints the
// formatted message and aborts — the right behaviour under CI and the
// sanitizer presets — while kLogAndCount records the failure in process-wide
// counters and keeps going, which lets tests exercise failure paths and lets
// long fleet runs survive a non-critical invariant while still reporting it.
// Counters and the last failure message are queryable so tests can assert on
// them and million-user runs can export them as health metrics.
//
// Checks vs. exceptions — the one policy, repo-wide: exceptions are reserved
// for *construction-time* configuration errors (bad ExperimentConfig values,
// malformed deployments), where the caller genuinely can recover by fixing
// its input. API misuse on an already-running system — scheduling an event
// in the past, releasing a token twice, violating a state machine — is an
// invariant violation and goes through SPIDER_CHECK, never `throw`: checks
// are streamable, centrally counted, policy-switchable (kLogAndCount lets a
// long fleet run degrade gracefully where an exception would unwind through
// the event loop), and they cost one predictable branch on hot paths. When a
// check site can keep going under kLogAndCount, it must follow the failed
// check with an explicit clamp/fallback (see Simulator::schedule_at).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

// SPIDER_HOT — marks a function as a steady-state hot path. The marker
// expands to nothing for the compiler; it is a contract enforced by tooling:
//
//   * `spider-lint` (tools/spider_lint.cc) statically checks the function
//     body for allocation idioms (rule hot-path-alloc: `new`, make_shared/
//     make_unique, std::function construction, push_back on non-member
//     vectors, string building) and for determinism hazards;
//   * ScopedAllocGuard (src/core/alloc_guard.h) proves the property at
//     runtime: tests wrap warmed-up hot loops and assert zero allocations.
//
// Mark a function SPIDER_HOT when it runs once per event/frame/position-tick
// at fleet scale and its allocation budget is therefore zero in steady state
// (scratch must live in reserved members, payloads must be interned or
// pooled). Do NOT mark setup/teardown or per-join control paths — the point
// of the marker is that every allocation inside one is a regression, so it
// must never be diluted with paths where allocation is fine.
#define SPIDER_HOT

namespace spider::check {

enum class Policy : std::uint8_t {
  kFatal,        // print and abort (default)
  kLogAndCount,  // print, bump counters, continue
};

void set_policy(Policy policy);
Policy policy();

// RAII policy override, for tests that exercise failure paths.
class ScopedPolicy {
 public:
  explicit ScopedPolicy(Policy p) : previous_(policy()) { set_policy(p); }
  ~ScopedPolicy() { set_policy(previous_); }
  ScopedPolicy(const ScopedPolicy&) = delete;
  ScopedPolicy& operator=(const ScopedPolicy&) = delete;

 private:
  Policy previous_;
};

// Process-wide failure counters (only advance under kLogAndCount; a kFatal
// failure aborts before anyone could read them).
std::uint64_t failures();             // total across all kinds
std::uint64_t check_failures();       // SPIDER_CHECK
std::uint64_t dcheck_failures();      // SPIDER_DCHECK
std::uint64_t unreachable_failures(); // SPIDER_UNREACHABLE
std::string last_failure_message();
void reset_counters();

namespace detail {

enum class Kind : std::uint8_t { kCheck, kDcheck, kUnreachable };

// Collects the streamed context for one failure; its destructor (end of the
// full expression) formats the message and applies the policy.
class Failure {
 public:
  Failure(Kind kind, const char* expr, const char* file, int line);
  ~Failure();
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  Kind kind_;
  std::ostringstream stream_;
};

// Swallows the ostream& so both ?: branches are void. '&' binds looser than
// '<<', so user context streams into Failure first.
struct Voidify {
  void operator&(std::ostream&) const {}
};

}  // namespace detail
}  // namespace spider::check

#define SPIDER_CHECK_IMPL(kind, cond)                                   \
  (cond) ? (void)0                                                      \
         : ::spider::check::detail::Voidify() &                         \
               ::spider::check::detail::Failure(kind, #cond, __FILE__,  \
                                                __LINE__)               \
                   .stream()

#define SPIDER_CHECK(cond) \
  SPIDER_CHECK_IMPL(::spider::check::detail::Kind::kCheck, cond)

#define SPIDER_UNREACHABLE()                                               \
  ::spider::check::detail::Voidify() &                                     \
      ::spider::check::detail::Failure(                                    \
          ::spider::check::detail::Kind::kUnreachable, "reached", __FILE__, \
          __LINE__)                                                        \
          .stream()

#if !defined(NDEBUG) || defined(SPIDER_FORCE_DCHECKS)
#define SPIDER_DCHECK_ENABLED 1
#else
#define SPIDER_DCHECK_ENABLED 0
#endif

#if SPIDER_DCHECK_ENABLED
#define SPIDER_DCHECK(cond) \
  SPIDER_CHECK_IMPL(::spider::check::detail::Kind::kDcheck, cond)
#else
// Never evaluated, but still compiled, so the condition stays well-formed
// (and its operands stay referenced) in release builds.
#define SPIDER_DCHECK(cond) \
  while (false) SPIDER_CHECK_IMPL(::spider::check::detail::Kind::kDcheck, cond)
#endif
