#include "core/flow_manager.h"

#include <algorithm>
#include <utility>
#include <variant>

namespace spider::core {

FlowManager::FlowManager(sim::Simulator& simulator, ClientDevice& device,
                         tcp::TcpConfig config)
    : sim_(simulator), device_(device), config_(config) {
  // Flow ids are namespaced by the client MAC so several clients can share
  // one content server without collisions.
  next_flow_id_ = (device.address().value() << 16) | 1u;
}

void FlowManager::install_tap() {
  device_.set_default_handler(
      [this](const net::Frame& f, const phy::RxInfo&) { handle_frame(f); });
}

void FlowManager::open_flow(net::Bssid bssid, net::ChannelId channel) {
  if (by_bssid_.contains(bssid)) return;
  const std::uint64_t id = next_flow_id_++;
  ++flows_opened_;

  auto send = [this, bssid, channel](const net::TcpSegment& seg) {
    device_.enqueue(channel, net::make_tcp_frame(device_.address(), bssid,
                                                 bssid, seg));
  };
  Flow flow{id, bssid, channel,
            std::make_unique<tcp::TcpReceiver>(sim_, id, send, config_),
            sim_.now()};
  rates_[bssid] = RateRecord{0, sim_.now(), rates_[bssid].last_rate_bps};
  flow.receiver->set_delivery_handler([this, bssid](std::int64_t bytes) {
    total_bytes_ += bytes;
    rates_[bssid].bytes += bytes;
    if (on_delivered_) on_delivered_(bytes);
  });

  // The "HTTP GET": a SYN from the receiver side opens the server stream.
  net::TcpSegment syn;
  syn.flow_id = id;
  syn.from_sender = false;
  syn.syn = true;
  syn.ts = sim_.now();
  send(syn);

  by_bssid_.emplace(bssid, id);
  flows_.emplace(id, std::move(flow));
}

void FlowManager::close_flow(net::Bssid bssid) {
  // Freeze the rate estimate before dropping state.
  if (auto rit = rates_.find(bssid); rit != rates_.end()) {
    const double elapsed = (sim_.now() - rit->second.since).sec();
    if (elapsed > 0.5) {
      rit->second.last_rate_bps =
          static_cast<double>(rit->second.bytes) * 8.0 / elapsed;
    }
  }
  if (auto it = by_bssid_.find(bssid); it != by_bssid_.end()) {
    const std::uint64_t id = it->second;
    by_bssid_.erase(it);
    flows_.erase(id);
    if (on_closed_) on_closed_(id);
  }
  // Uploads riding the lost AP die with it — closed in flow-id order, not
  // std::erase_if's hash-map order, so the on_closed_ callbacks (and
  // anything the owner does in them) replay identically.
  std::vector<std::uint64_t> closing;
  // spider-lint: allow(det-unordered-iteration) ids are sorted below
  for (const auto& [id, up] : uploads_) {
    if (up.bssid == bssid) closing.push_back(id);
  }
  std::sort(closing.begin(), closing.end());
  for (std::uint64_t id : closing) {
    uploads_.erase(id);
    if (on_closed_) on_closed_(id);
  }
}

std::vector<std::uint64_t> FlowManager::start_striped_upload(
    const std::vector<UploadShare>& shares, std::int64_t total_bytes) {
  std::vector<std::uint64_t> ids;
  double weight_sum = 0.0;
  for (const auto& s : shares) weight_sum += s.weight;
  if (weight_sum <= 0.0 || total_bytes <= 0) return ids;

  for (const auto& s : shares) {
    const auto bytes =
        static_cast<std::int64_t>(total_bytes * (s.weight / weight_sum));
    if (bytes <= 0) continue;
    const std::uint64_t id = next_flow_id_++;
    auto send = [this, bssid = s.bssid,
                 channel = s.channel](const net::TcpSegment& seg_in) {
      net::TcpSegment seg = seg_in;
      seg.syn = seg.seq == 0;  // first segment opens the server-side sink
      device_.enqueue(channel, net::make_tcp_frame(device_.address(), bssid,
                                                   bssid, seg));
    };
    Upload up{id, s.bssid,
              std::make_unique<tcp::TcpSender>(sim_, id, send, bytes, config_)};
    auto* raw = up.sender.get();
    uploads_.emplace(id, std::move(up));
    ids.push_back(id);
    raw->start();
  }
  return ids;
}

std::int64_t FlowManager::upload_bytes_acked() const {
  std::int64_t total = 0;
  // spider-lint: allow(det-unordered-iteration) commutative integer sum — no order-dependent output
  for (const auto& [id, up] : uploads_) total += up.sender->bytes_acked();
  return total;
}

bool FlowManager::uploads_finished() const {
  // spider-lint: allow(det-unordered-iteration) commutative conjunction — no order-dependent output
  for (const auto& [id, up] : uploads_) {
    if (!up.sender->finished()) return false;
  }
  return true;
}

double FlowManager::download_rate_bps(net::Bssid bssid) const {
  auto it = rates_.find(bssid);
  if (it == rates_.end()) return 0.0;
  const double elapsed = (sim_.now() - it->second.since).sec();
  if (by_bssid_.contains(bssid) && elapsed > 0.5) {
    return static_cast<double>(it->second.bytes) * 8.0 / elapsed;
  }
  return it->second.last_rate_bps;
}

void FlowManager::handle_frame(const net::Frame& frame) {
  if (frame.dst != device_.address()) return;
  const auto* seg = frame.payload.get_if<net::TcpSegment>();
  if (seg == nullptr) return;
  if (seg->from_sender) {
    auto it = flows_.find(seg->flow_id);
    if (it != flows_.end()) it->second.receiver->on_segment(*seg);
    return;
  }
  // Acks for our uploads.
  auto it = uploads_.find(seg->flow_id);
  if (it != uploads_.end()) it->second.sender->on_ack(*seg);
}

}  // namespace spider::core
