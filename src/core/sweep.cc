// spider-lint: timing-only steady_clock here measures host wall time for sweep progress/throughput reporting; nothing it reads ever feeds simulation state or the digest
#include "core/sweep.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <utility>

#include "core/check.h"
#include "sim/thread_pool.h"
#include "telemetry/run_report.h"

namespace spider::core {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFFu;
    hash *= kFnvPrime;
  }
  return hash;
}

SweepRunResult run_one(std::size_t index, ExperimentConfig config) {
  SweepRunResult out;
  out.index = index;
  out.seed = config.seed;
  const bool traced = config.trace_enabled;
  Experiment experiment(std::move(config));
  out.results = experiment.run();
  out.digest = experiment.simulator().digest();
  out.events_executed = experiment.simulator().events_executed();
  // Snapshot on the worker thread, inside the world that produced it; only
  // the immutable snapshot crosses back to the caller.
  out.telemetry = experiment.simulator().telemetry().collect();
  if (traced) {
    out.trace_json = experiment.simulator().telemetry().trace().to_json();
  }
  return out;
}

}  // namespace

std::uint64_t SweepReport::combined_digest() const {
  std::uint64_t digest = kFnvOffset;
  for (const SweepRunResult& run : runs) {
    digest = fnv1a_u64(digest, run.digest);
  }
  return digest;
}

telemetry::MetricsSnapshot SweepReport::merged_telemetry() const {
  telemetry::MetricsSnapshot merged;
  for (const SweepRunResult& run : runs) {
    merged.merge_from(run.telemetry);
  }
  return merged;
}

bool append_telemetry_jsonl(const SweepReport& report, const std::string& path,
                            std::string_view label) {
  std::string out;
  for (const SweepRunResult& run : report.runs) {
    out += telemetry::run_report_line(label, run.index, run.seed, run.digest,
                                      run.events_executed, run.telemetry);
    out += '\n';
  }
  out += telemetry::sweep_report_line(label, report.runs.size(),
                                      report.combined_digest(),
                                      report.merged_telemetry());
  out += '\n';
  return telemetry::append_to_file(path, out);
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? sim::ThreadPool::default_thread_count()
                            : threads) {}

SweepReport SweepRunner::run(std::size_t replications,
                             const ConfigFactory& make_config) const {
  // Never spin up more workers than there are replications.
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      threads_, std::max<std::size_t>(replications, 1)));
  return run_impl(replications, make_config, nullptr, workers);
}

SweepReport SweepRunner::run_on(sim::ThreadPool& pool,
                                std::size_t replications,
                                const ConfigFactory& make_config) const {
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      std::max(pool.thread_count(), 1u),
      std::max<std::size_t>(replications, 1)));
  return run_impl(replications, make_config, &pool, workers);
}

SweepReport SweepRunner::run_impl(std::size_t replications,
                                  const ConfigFactory& make_config,
                                  sim::ThreadPool* pool,
                                  unsigned workers) const {
  SPIDER_CHECK(static_cast<bool>(make_config)) << "sweep without a factory";
  SweepReport report;
  report.threads = workers;
  report.runs.resize(replications);

  // Configs are materialized serially so a stateful factory behaves exactly
  // as it would in the old serial for-loop.
  std::vector<ExperimentConfig> configs;
  configs.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    configs.push_back(make_config(i));
    // Streamed lines are tagged with the submission index, never a worker
    // id, so a live stream sorts deterministically by (run, seq) whatever
    // the thread count. Factories that set their own tag keep it.
    if (configs.back().stream != nullptr && configs.back().stream_run_tag == 0)
      configs.back().stream_run_tag = static_cast<std::uint32_t>(i);
  }

  const auto start = std::chrono::steady_clock::now();
  if (report.threads <= 1) {
    for (std::size_t i = 0; i < replications; ++i) {
      report.runs[i] = run_one(i, std::move(configs[i]));
    }
  } else {
    // A private pool unless the caller lent one (run_on); either way each
    // task owns its whole world, so pool provenance cannot affect results.
    std::unique_ptr<sim::ThreadPool> owned;
    if (pool == nullptr) {
      owned = std::make_unique<sim::ThreadPool>(report.threads);
      pool = owned.get();
    }
    std::vector<std::future<void>> done;
    done.reserve(replications);
    for (std::size_t i = 0; i < replications; ++i) {
      done.push_back(pool->submit(
          [i, config = std::move(configs[i]), &report]() mutable {
            report.runs[i] = run_one(i, std::move(config));
          }));
    }
    // get() rather than wait() so a replication's exception propagates; all
    // futures are collected first so outstanding runs finish either way.
    for (std::future<void>& f : done) f.get();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

SweepReport run_seed_sweep(
    const std::vector<std::uint64_t>& seeds,
    const std::function<ExperimentConfig(std::uint64_t seed)>& make_config,
    unsigned threads) {
  SweepRunner runner(threads);
  return runner.run(seeds.size(), [&](std::size_t i) {
    ExperimentConfig cfg = make_config(seeds[i]);
    return cfg;
  });
}

}  // namespace spider::core
