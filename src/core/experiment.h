// End-to-end experiment harness: deployment + mobility + driver + workload.
//
// Assembles the full world — medium, AP hosts with DHCP servers and shaped
// backhauls, a content server, a vehicle-mounted client running either
// Spider or the stock driver — runs it for a configured duration, and
// reports the paper's metrics (throughput, connectivity, join CDFs,
// disruption/connection CDFs). Every vehicular table and figure in the
// evaluation is a parameterization of this harness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backhaul/ap_host.h"
#include "core/client_device.h"
#include "core/flow_manager.h"
#include "core/metrics.h"
#include "core/spider_driver.h"
#include "core/stock_driver.h"
#include "mobility/deployment.h"
#include "mobility/route.h"
#include "phy/medium.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"
#include "trace/connectivity.h"
#include "trace/frame_log.h"

namespace spider::telemetry {
class StreamExporter;
class StreamSession;
}  // namespace spider::telemetry

namespace spider::core {

enum class DriverKind : std::uint8_t { kSpider, kStock };

struct ExperimentConfig {
  std::uint64_t seed = 1;
  // Event scheduler for the world's simulator (wheel by default; heap kept
  // as the digest-equivalent reference — see sim::SimulatorConfig).
  sim::SimulatorConfig scheduler;
  sim::Time duration = sim::Time::seconds(1800);  // paper: 30-60 min drives
  phy::MediumConfig medium;
  std::vector<mobility::ApDescriptor> aps;
  mobility::Vehicle vehicle{mobility::Route::rectangle(600, 400), 10.0};
  sim::Time position_update = sim::Time::millis(100);
  // One-way wired latency AP <-> content server. The paper's D = 400 ms is
  // "equal to two typical RTTs", i.e. end-to-end RTT ~200 ms.
  sim::Time backhaul_latency = sim::Time::millis(100);
  tcp::TcpConfig tcp;
  DriverKind driver = DriverKind::kSpider;
  SpiderConfig spider;
  StockDriverConfig stock;
  mac::AccessPointConfig ap_mac;  // ssid/channel overridden per descriptor
  // Uplink rate adaptation at the client (mirrors ap_mac.auto_rate).
  bool client_auto_rate = false;
  // Turns on the world's trace recorder for this run (Chrome trace-event
  // spans for joins, channel dwells, DHCP). Off by default: recording costs
  // one ring write per span, and sweeps only want it on a chosen run.
  bool trace_enabled = false;
  std::size_t trace_capacity = telemetry::TraceRecorder::kDefaultCapacity;
  // Live telemetry plane (DESIGN.md): when non-null, the experiment attaches
  // a StreamSession to this exporter and publishes metrics deltas at
  // `stream_cadence` of simulated time, plus trace events as they record.
  // Streaming never perturbs the run: digests are identical on and off.
  telemetry::StreamExporter* stream = nullptr;
  std::uint32_t stream_run_tag = 0;  // "run" field on every streamed line
  sim::Time stream_cadence = sim::Time::millis(100);
  std::size_t stream_ring_capacity = 1 << 15;
};

struct ExperimentResults {
  trace::ConnectivityTracker::Report traffic;
  JoinMetrics joins;
  std::uint64_t flows_opened = 0;
  std::uint64_t channel_switches = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_lost = 0;
  // Client-radio energy (state-based model; see phy/energy.h).
  double client_joules = 0.0;
  double joules_per_megabyte() const {
    const double mb = static_cast<double>(traffic.total_bytes) / 1e6;
    return mb > 0.0 ? client_joules / mb : 0.0;
  }

  double avg_throughput_kbps() const {
    return traffic.avg_throughput_bytes_per_sec * 8.0 / 1000.0;
  }
  double avg_throughput_kBps() const {
    return traffic.avg_throughput_bytes_per_sec / 1000.0;
  }
  double connectivity_percent() const {
    return traffic.connectivity_fraction * 100.0;
  }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();  // out of line: stream_ points at an incomplete type here

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Runs to completion and returns the report. Call once.
  ExperimentResults run();

  // Attaches a tcpdump-style tap recording every frame on the medium.
  // Call before run(); the log must outlive the experiment's run.
  void attach_frame_log(trace::FrameLog& log);

  // Exposed for tests and custom benches that want to poke the world.
  sim::Simulator& simulator() { return sim_; }
  phy::Medium& medium() { return *medium_; }
  tcp::ContentServer& server() { return *server_; }
  ClientDevice& device() { return *device_; }
  SpiderDriver* spider() { return spider_.get(); }
  StockDriver* stock() { return stock_.get(); }
  FlowManager& flows() { return *flows_; }
  backhaul::ApHost& ap_host(std::size_t i) { return *ap_hosts_[i]; }
  std::size_t ap_count() const { return ap_hosts_.size(); }

 private:
  void update_position();

  ExperimentConfig config_;
  sim::Simulator sim_;
  sim::Rng rng_;
  std::unique_ptr<phy::Medium> medium_;
  std::unique_ptr<tcp::ContentServer> server_;
  std::vector<std::unique_ptr<backhaul::ApHost>> ap_hosts_;
  std::unique_ptr<ClientDevice> device_;
  std::unique_ptr<SpiderDriver> spider_;
  std::unique_ptr<StockDriver> stock_;
  std::unique_ptr<FlowManager> flows_;
  std::unique_ptr<phy::EnergyMeter> energy_;
  trace::ConnectivityTracker tracker_;
  // Last member: destroyed first, so the session detaches (and drains its
  // ring) while the world and its registry strings are still alive.
  std::unique_ptr<telemetry::StreamSession> stream_;
  bool ran_ = false;
};

}  // namespace spider::core
