// Fleet experiment — several Spider clients sharing one deployment.
//
// Section 4.8 asks what happens "as more users adopt concurrent Wi-Fi
// schemes": clients contend for airtime (the medium serializes each
// channel), for AP backhauls, and for DHCP pools. This harness runs N
// vehicle-mounted clients staggered along the same route and reports
// per-client and aggregate metrics, so the contention ablation can sweep N.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backhaul/ap_host.h"
#include "core/client_device.h"
#include "core/flow_manager.h"
#include "core/metrics.h"
#include "core/spider_driver.h"
#include "mobility/deployment.h"
#include "mobility/route.h"
#include "phy/medium.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"
#include "trace/connectivity.h"

namespace spider::telemetry {
class StreamExporter;
class StreamSession;
}  // namespace spider::telemetry

namespace spider::core {

struct FleetConfig {
  std::uint64_t seed = 1;
  // Event scheduler for the fleet's simulator (see sim::SimulatorConfig).
  sim::SimulatorConfig scheduler;
  sim::Time duration = sim::Time::seconds(600);
  int clients = 4;
  // Clients are spread along the route with this headway (distance the
  // route is "rewound" per client), like vehicles in traffic.
  sim::Time headway = sim::Time::seconds(20);
  phy::MediumConfig medium;
  // MAC-layer knobs applied to every AP (ssid/channel still come from each
  // ApDescriptor) — lets benches toggle e.g. beacon interning fleet-wide.
  mac::AccessPointConfig ap_mac;
  // Move the whole fleet through one Medium::move_radios call per position
  // tick instead of N scalar set_position calls. Same positions, same
  // digests; false keeps the scalar path for cross-checks and benches.
  bool batch_mobility = true;
  std::vector<mobility::ApDescriptor> aps;
  mobility::Vehicle vehicle{mobility::Route::rectangle(600, 400), 10.0};
  sim::Time position_update = sim::Time::millis(100);
  sim::Time backhaul_latency = sim::Time::millis(100);
  tcp::TcpConfig tcp;
  SpiderConfig spider;
  // Live telemetry plane — same contract as ExperimentConfig::stream.
  telemetry::StreamExporter* stream = nullptr;
  std::uint32_t stream_run_tag = 0;
  sim::Time stream_cadence = sim::Time::millis(100);
  std::size_t stream_ring_capacity = 1 << 15;
};

struct FleetClientResults {
  trace::ConnectivityTracker::Report traffic;
  JoinMetrics joins;
};

struct FleetResults {
  std::vector<FleetClientResults> clients;

  double aggregate_throughput_kBps() const;
  double mean_client_throughput_kBps() const;
  // Jain's fairness index over per-client throughput (1 = perfectly fair).
  double fairness() const;
};

class FleetExperiment {
 public:
  explicit FleetExperiment(FleetConfig config);
  ~FleetExperiment();  // out of line: StreamSession is incomplete here

  FleetExperiment(const FleetExperiment&) = delete;
  FleetExperiment& operator=(const FleetExperiment&) = delete;

  FleetResults run();

  sim::Simulator& simulator() { return sim_; }

  // Test access to the fleet's devices (e.g. position assertions).
  std::size_t client_count() const { return clients_.size(); }
  ClientDevice& client_device(std::size_t i) { return *clients_[i]->device; }

  // Which of `shards` equal-width vertical strips each configured AP falls
  // into (see core::fleet_shard_assignment) — the load map used to judge
  // whether a deployment shards evenly before a phy::ShardedWorld-style run.
  std::vector<unsigned> shard_assignment(unsigned shards) const;

 private:
  struct Client {
    std::unique_ptr<ClientDevice> device;
    std::unique_ptr<SpiderDriver> driver;
    std::unique_ptr<FlowManager> flows;
    trace::ConnectivityTracker tracker;
    sim::Time phase;  // how far ahead on the route this client starts
  };

  void update_positions();

  FleetConfig config_;
  sim::Simulator sim_;
  sim::Rng rng_;
  std::unique_ptr<phy::Medium> medium_;
  std::unique_ptr<tcp::ContentServer> server_;
  std::vector<std::unique_ptr<backhaul::ApHost>> ap_hosts_;
  std::vector<std::unique_ptr<Client>> clients_;
  // Last member: destroyed first, detaching/draining before the world dies.
  std::unique_ptr<telemetry::StreamSession> stream_;
  bool ran_ = false;
};

}  // namespace spider::core
