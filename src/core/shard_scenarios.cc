#include "core/shard_scenarios.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/fleet.h"
#include "phy/channel.h"

namespace spider::core {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double hash01(std::uint64_t seed, std::uint64_t a, std::uint64_t salt) {
  const std::uint64_t x =
      mix64(seed ^ mix64(a * 0x9e3779b97f4a7c15ull + salt));
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

phy::ShardScenario make_scale_shard_scenario(int n_radios, std::uint64_t seed,
                                             sim::Time duration) {
  SPIDER_CHECK(n_radios > 0) << "scale scenario with " << n_radios << " radios";
  phy::ShardScenario scenario;
  scenario.seed = seed;
  scenario.duration = duration;
  // Same density the scale bench uses: ~500 radios/km^2.
  const double side_m =
      std::sqrt(static_cast<double>(n_radios) / 500.0) * 1000.0;
  scenario.width_m = std::max(side_m, 400.0);
  scenario.height_m = scenario.width_m;
  scenario.channel_plan.assign(phy::kOrthogonalChannels.begin(),
                               phy::kOrthogonalChannels.end());
  scenario.nodes.reserve(static_cast<std::size_t>(n_radios));
  for (int i = 0; i < n_radios; ++i) {
    const std::uint32_t uid = static_cast<std::uint32_t>(i) + 1;
    phy::ShardNodeSpec spec;
    spec.start = phy::Vec2{hash01(seed, uid, 0x11) * scenario.width_m,
                           hash01(seed, uid, 0x22) * scenario.height_m};
    spec.channel = phy::kOrthogonalChannels[uid % 3];
    spec.step_m = 3.0;        // pedestrian-ish drift per tick
    spec.tx_period_ticks = 8;  // a probe volley every 8th tick (uid-phased)
    spec.retune_period_ticks = 40;
    scenario.nodes.push_back(spec);
  }
  return scenario;
}

phy::ShardScenario make_fleet_shard_scenario(int clients, int aps,
                                             std::uint64_t seed,
                                             sim::Time duration) {
  SPIDER_CHECK(clients > 0 && aps > 0)
      << "fleet scenario with " << clients << " clients, " << aps << " aps";
  phy::ShardScenario scenario;
  scenario.seed = seed;
  scenario.duration = duration;
  scenario.width_m = 2000.0;
  scenario.height_m = 800.0;
  scenario.channel_plan.assign(phy::kOrthogonalChannels.begin(),
                               phy::kOrthogonalChannels.end());
  scenario.nodes.reserve(static_cast<std::size_t>(clients + aps));
  // APs first (uids 1..aps): parked beaconers on a jittered grid, channels
  // striped across the orthogonal plan like a real campus deployment.
  const int columns = std::max(1, static_cast<int>(std::ceil(
                                      std::sqrt(static_cast<double>(aps)))));
  for (int a = 0; a < aps; ++a) {
    const std::uint32_t uid = static_cast<std::uint32_t>(a) + 1;
    phy::ShardNodeSpec spec;
    const int col = a % columns;
    const int row = a / columns;
    const int rows = (aps + columns - 1) / columns;
    spec.start = phy::Vec2{
        (col + 0.3 + 0.4 * hash01(seed, uid, 0x33)) * scenario.width_m /
            columns,
        (row + 0.3 + 0.4 * hash01(seed, uid, 0x44)) * scenario.height_m /
            std::max(rows, 1)};
    spec.channel = phy::kOrthogonalChannels[a % 3];
    spec.beaconer = true;
    spec.tx_period_ticks = 2;  // ~beacon cadence at the tick scale
    scenario.nodes.push_back(spec);
  }
  // Clients: random walkers that probe like scanning drivers and hop
  // channels (the retune edge cases live here: hops start mid-window and
  // complete on barriers while the walker may cross strips).
  for (int c = 0; c < clients; ++c) {
    const std::uint32_t uid = static_cast<std::uint32_t>(aps + c) + 1;
    phy::ShardNodeSpec spec;
    spec.start = phy::Vec2{hash01(seed, uid, 0x55) * scenario.width_m,
                           hash01(seed, uid, 0x66) * scenario.height_m};
    spec.channel = phy::kOrthogonalChannels[uid % 3];
    spec.step_m = 23.0;  // vehicular: crosses cells (and strips) routinely
    spec.tx_period_ticks = 4;
    spec.retune_period_ticks = 12;
    scenario.nodes.push_back(spec);
  }
  return scenario;
}

std::vector<unsigned> fleet_shard_assignment(const FleetConfig& config,
                                             unsigned shards) {
  SPIDER_CHECK(shards >= 1) << "assignment needs at least one shard";
  // The deployment's x-extent: APs plus everywhere the route can put a
  // client.
  double x_min = config.vehicle.route().bounds_min().x;
  double x_max = config.vehicle.route().bounds_max().x;
  for (const mobility::ApDescriptor& ap : config.aps) {
    x_min = std::min(x_min, ap.position.x);
    x_max = std::max(x_max, ap.position.x);
  }
  const double span = std::max(x_max - x_min, 1.0);
  std::vector<unsigned> assignment;
  assignment.reserve(config.aps.size());
  for (const mobility::ApDescriptor& ap : config.aps) {
    const double frac = (ap.position.x - x_min) / span;
    const unsigned strip = std::min(
        shards - 1,
        static_cast<unsigned>(frac * static_cast<double>(shards)));
    assignment.push_back(strip);
  }
  return assignment;
}

}  // namespace spider::core
