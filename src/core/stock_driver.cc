#include "core/stock_driver.h"

#include <algorithm>
#include <utility>

namespace spider::core {

StockDriver::StockDriver(sim::Simulator& simulator, ClientDevice& device,
                         StockDriverConfig config)
    : sim_(simulator), device_(device), config_(std::move(config)) {
  // Stock drivers don't park associations around a scan; no PSM lookup.
  device_.set_connected_lookup(
      [](net::ChannelId) { return std::vector<net::Bssid>{}; });
  collector_id_ = sim_.telemetry().add_collector(
      [this](telemetry::Registry& registry) { publish_metrics(registry); });
}

StockDriver::~StockDriver() {
  sim_.telemetry().remove_collector(collector_id_);
  timer_.cancel();
  if (!bssid_.is_null()) device_.unregister_bssid(bssid_);
}

void StockDriver::publish_metrics(telemetry::Registry& registry) {
  const auto publish = [&registry](const char* name, std::uint64_t total,
                                   std::uint64_t& published) {
    registry.counter(name).inc(total - published);
    published = total;
  };
  publish("driver.join_attempts", metrics_.join_attempts,
          published_.join_attempts);
  publish("driver.associations", metrics_.associations,
          published_.associations);
  publish("driver.joins", metrics_.joins, published_.joins);
  publish("driver.dhcp_attempts", metrics_.dhcp_attempts,
          published_.dhcp_attempts);
  publish("driver.dhcp_attempt_failures", metrics_.dhcp_attempt_failures,
          published_.dhcp_attempt_failures);
  publish("driver.dhcp_failed_joins", metrics_.dhcp_failed_joins,
          published_.dhcp_failed_joins);
}

void StockDriver::start() {
  if (started_) return;
  started_ = true;
  scan_step(0);
}

void StockDriver::scan_step(std::size_t index) {
  state_ = State::kScanning;
  timer_.cancel();
  if (index >= config_.scan_channels.size()) {
    finish_scan();
    return;
  }
  device_.switch_channel(config_.scan_channels[index],
                         [this] { device_.probe_now(); });
  timer_ = sim_.schedule_after(config_.scan_dwell,
                               [this, index] { scan_step(index + 1); });
}

void StockDriver::finish_scan() {
  auto results = device_.scan_results();
  if (results.empty()) {
    // Nothing heard anywhere; sweep again.
    scan_step(0);
    return;
  }
  const auto best = std::max_element(
      results.begin(), results.end(),
      [](const ScanEntry& a, const ScanEntry& b) { return a.rssi_dbm < b.rssi_dbm; });
  begin_join(*best);
}

void StockDriver::begin_join(const ScanEntry& entry) {
  state_ = State::kJoining;
  bssid_ = entry.bssid;
  channel_ = entry.channel;
  join_started_ = sim_.now();
  last_heard_ = sim_.now();
  dhcp_failures_this_join_ = 0;
  ++metrics_.join_attempts;
  telemetry::TraceRecorder& trace = sim_.telemetry().trace();
  if (trace.enabled()) {
    trace.complete("scan", "join", entry.last_seen.us(),
                   (sim_.now() - entry.last_seen).us(), /*track=*/0);
  }

  auto tx = [this](const net::Frame& frame) {
    if (device_.channel() == channel_ && !device_.switching()) {
      return device_.radio().send(frame);
    }
    return false;
  };

  session_ = std::make_unique<mac::ClientSession>(
      sim_, device_.address(), bssid_, channel_, tx, config_.session);
  dhcp_ = std::make_unique<dhcpd::DhcpClient>(sim_, device_.address(), bssid_,
                                              tx, config_.dhcp);

  session_->set_event_handler([this](mac::ClientSession& s, mac::SessionEvent ev) {
    if (ev == mac::SessionEvent::kAssociated) {
      ++metrics_.associations;
      metrics_.association_delay_sec.add(s.association_delay().sec());
      sim_.telemetry()
          .metrics()
          .histogram("driver.assoc_delay_sec")
          .add(s.association_delay().sec());
      dhcp_->start();
    } else {
      sim_.post_after(sim::Time::zero(), [this] { teardown(false); });
    }
  });
  dhcp_->set_event_handler([this](dhcpd::DhcpClient&, dhcpd::DhcpEvent ev) {
    if (ev == dhcpd::DhcpEvent::kBound) {
      ++metrics_.joins;
      ++metrics_.dhcp_attempts;
      const sim::Time join_delay = sim_.now() - join_started_;
      metrics_.join_delay_sec.add(join_delay.sec());
      telemetry::Hub& telemetry = sim_.telemetry();
      telemetry.metrics().histogram("driver.join_delay_sec").add(
          join_delay.sec());
      telemetry.trace().complete("join", "join", join_started_.us(),
                                 join_delay.us(), /*track=*/0);
      state_ = State::kConnected;
      last_heard_ = sim_.now();
      if (on_connected_) on_connected_(Connection{bssid_, channel_});
    } else {
      ++metrics_.dhcp_attempts;
      ++metrics_.dhcp_attempt_failures;
      if (++dhcp_failures_this_join_ >= config_.dhcp_windows_before_rescan) {
        sim_.post_after(sim::Time::zero(), [this] { teardown(false); });
      }
    }
  });

  device_.register_bssid(bssid_, [this](const net::Frame& frame,
                                        const phy::RxInfo&) {
    last_heard_ = sim_.now();
    if (session_) session_->handle_frame(frame);
    if (dhcp_) dhcp_->handle_frame(frame);
  });

  device_.switch_channel(channel_, [this] {
    if (session_) session_->start_join();
  });

  timer_.cancel();
  timer_ = sim_.schedule_after(config_.link_loss_timeout, [this] { watchdog(); });
}

void StockDriver::watchdog() {
  if (state_ == State::kScanning) return;
  if (sim_.now() - last_heard_ > config_.link_loss_timeout) {
    teardown(/*lost=*/state_ == State::kConnected);
    return;
  }
  timer_ = sim_.schedule_after(config_.link_loss_timeout, [this] { watchdog(); });
}

void StockDriver::teardown(bool lost) {
  if (state_ == State::kScanning && bssid_.is_null()) return;  // already down
  timer_.cancel();
  if (state_ == State::kJoining && session_ && session_->associated()) {
    ++metrics_.dhcp_failed_joins;  // associated but never got a lease
  }
  const net::Bssid old = bssid_;
  if (!old.is_null()) {
    device_.unregister_bssid(old);
    device_.forget_scan(old);
  }
  session_.reset();
  dhcp_.reset();
  bssid_ = net::Bssid{};
  state_ = State::kScanning;
  if (lost && on_disconnected_) on_disconnected_(old);
  timer_ = sim_.schedule_after(config_.rejoin_delay, [this] { scan_step(0); });
}

}  // namespace spider::core
