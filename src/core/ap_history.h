// Join-history database.
//
// Spider's AP-selection heuristic (Section 3): because exact multi-AP
// selection maximizing a utility function is NP-hard, Spider greedily picks
// the APs with the best history of quick, successful joins — join time, not
// offered bandwidth, is the dominant factor at vehicular speed.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/addr.h"
#include "sim/time.h"

namespace spider::core {

struct ApRecord {
  std::uint32_t join_attempts = 0;
  std::uint32_t join_successes = 0;
  // EWMA of full join latency (association + DHCP), seconds.
  double ewma_join_sec = 0.0;
  sim::Time last_success = sim::Time::zero();

  // Laplace-smoothed so one unlucky failure does not zero an AP forever.
  double success_rate() const {
    return (static_cast<double>(join_successes) + 1.0) /
           (static_cast<double>(join_attempts) + 2.0);
  }
};

class ApHistoryDb {
 public:
  // EWMA weight for new join-time observations.
  explicit ApHistoryDb(double alpha = 0.3) : alpha_(alpha) {}

  void record_attempt(net::Bssid ap);
  void record_success(net::Bssid ap, sim::Time join_delay, sim::Time now);
  // A failure is an attempt with no matching success; nothing extra to do,
  // but exposed for symmetry / future penalties.
  void record_failure(net::Bssid ap);

  // Higher is better. Blends the Laplace-smoothed success rate with the
  // (inverse) join latency:
  //   score = success_rate / (1 + ewma_join_sec)
  // Unseen APs get the neutral prior 0.5/(1+prior_join), so the ordering is
  // proven-fast > unseen > failed/slow — the exploration/exploitation
  // balance the greedy selector relies on.
  double score(net::Bssid ap) const;

  const ApRecord* find(net::Bssid ap) const;
  std::size_t size() const { return records_.size(); }

  // Prior join time (seconds) assumed for never-seen APs.
  static constexpr double kUnseenPriorJoinSec = 1.5;

 private:
  double alpha_;
  std::unordered_map<net::Bssid, ApRecord> records_;
};

}  // namespace spider::core
