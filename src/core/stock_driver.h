// Stock Wi-Fi baseline ("unmodified MadWiFi" in Table 2).
//
// Classic client behaviour: sweep-scan all channels, camp on the
// best-RSSI open AP, join with default link-layer (1 s) and DHCP
// (1 s / 3 s / 60 s) timers, and stay until the link dies; then scan again.
// No virtualization, no PSM tricks, no history, one AP at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/client_device.h"
#include "core/metrics.h"
#include "dhcpd/dhcp_client.h"
#include "mac/client_session.h"
#include "sim/simulator.h"

namespace spider::core {

struct StockDriverConfig {
  std::vector<net::ChannelId> scan_channels{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  sim::Time scan_dwell = sim::Time::millis(150);
  mac::ClientSessionConfig session{};  // defaults: 1 s link-layer timeout
  dhcpd::DhcpClientConfig dhcp = dhcpd::default_dhcp_timers();
  sim::Time link_loss_timeout = sim::Time::seconds(3);
  // DHCP attempt windows tolerated before abandoning the AP. The default
  // mirrors dhclient's behaviour: after the 3 s window fails it idles 60 s
  // while the Wi-Fi layer stays associated — so a dud AP effectively holds
  // the client until link loss ends the encounter.
  int dhcp_windows_before_rescan = 99;
  // Settle time before the stack rescans after a failed or lost
  // connection (supplicant/dhclient restart churn on 2011 stacks).
  sim::Time rejoin_delay = sim::Time::seconds(2);
};

class StockDriver {
 public:
  struct Connection {
    net::Bssid bssid;
    net::ChannelId channel;
  };
  using ConnectionHandler = std::function<void(const Connection&)>;
  using DisconnectionHandler = std::function<void(net::Bssid)>;

  StockDriver(sim::Simulator& simulator, ClientDevice& device,
              StockDriverConfig config = {});
  ~StockDriver();

  StockDriver(const StockDriver&) = delete;
  StockDriver& operator=(const StockDriver&) = delete;

  void start();

  void set_connection_handler(ConnectionHandler fn) { on_connected_ = std::move(fn); }
  void set_disconnection_handler(DisconnectionHandler fn) {
    on_disconnected_ = std::move(fn);
  }

  const JoinMetrics& metrics() const { return metrics_; }
  bool connected() const { return state_ == State::kConnected; }
  net::Bssid current_ap() const { return bssid_; }

 private:
  enum class State : std::uint8_t { kScanning, kJoining, kConnected };

  void scan_step(std::size_t index);
  void finish_scan();
  void begin_join(const ScanEntry& entry);
  void teardown(bool lost);
  void watchdog();
  void publish_metrics(telemetry::Registry& registry);

  sim::Simulator& sim_;
  ClientDevice& device_;
  StockDriverConfig config_;
  JoinMetrics metrics_;
  ConnectionHandler on_connected_;
  DisconnectionHandler on_disconnected_;

  State state_ = State::kScanning;
  net::Bssid bssid_;
  net::ChannelId channel_ = 0;
  std::unique_ptr<mac::ClientSession> session_;
  std::unique_ptr<dhcpd::DhcpClient> dhcp_;
  sim::Time join_started_ = sim::Time::zero();
  sim::Time last_heard_ = sim::Time::zero();
  int dhcp_failures_this_join_ = 0;
  sim::TimerHandle timer_;      // scan stepping / watchdog
  bool started_ = false;

  // Deltas already folded into the shared driver.* metrics; the stock
  // baseline reports under the same names as SpiderDriver so benches
  // compare the two like-for-like.
  struct Published {
    std::uint64_t join_attempts = 0;
    std::uint64_t associations = 0;
    std::uint64_t joins = 0;
    std::uint64_t dhcp_attempts = 0;
    std::uint64_t dhcp_attempt_failures = 0;
    std::uint64_t dhcp_failed_joins = 0;
  } published_;
  telemetry::Hub::CollectorId collector_id_ = 0;
};

}  // namespace spider::core
