#include "core/ap_history.h"

namespace spider::core {

void ApHistoryDb::record_attempt(net::Bssid ap) {
  ++records_[ap].join_attempts;
}

void ApHistoryDb::record_success(net::Bssid ap, sim::Time join_delay,
                                 sim::Time now) {
  ApRecord& r = records_[ap];
  ++r.join_successes;
  const double sec = join_delay.sec();
  r.ewma_join_sec =
      r.join_successes == 1 ? sec : alpha_ * sec + (1.0 - alpha_) * r.ewma_join_sec;
  r.last_success = now;
}

void ApHistoryDb::record_failure(net::Bssid) {}

double ApHistoryDb::score(net::Bssid ap) const {
  const ApRecord* r = find(ap);
  if (r == nullptr || r->join_attempts == 0) {
    // Unseen: Laplace prior (0+1)/(0+2) over the prior join time — below a
    // proven-fast AP, above a known-bad one.
    return 0.5 / (1.0 + kUnseenPriorJoinSec);
  }
  const double join_sec =
      r->join_successes > 0 ? r->ewma_join_sec : kUnseenPriorJoinSec;
  return r->success_rate() / (1.0 + join_sec);
}

const ApRecord* ApHistoryDb::find(net::Bssid ap) const {
  auto it = records_.find(ap);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace spider::core
