#include "core/fleet.h"

#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/arena.h"
#include "core/check.h"
#include "core/shard_scenarios.h"
#include "telemetry/stream_exporter.h"

namespace spider::core {

double FleetResults::aggregate_throughput_kBps() const {
  double total = 0.0;
  for (const auto& c : clients) {
    total += c.traffic.avg_throughput_bytes_per_sec / 1e3;
  }
  return total;
}

double FleetResults::mean_client_throughput_kBps() const {
  return clients.empty() ? 0.0
                         : aggregate_throughput_kBps() /
                               static_cast<double>(clients.size());
}

double FleetResults::fairness() const {
  if (clients.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& c : clients) {
    const double x = c.traffic.avg_throughput_bytes_per_sec;
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(clients.size()) * sum_sq);
}

FleetExperiment::FleetExperiment(FleetConfig config)
    : config_(std::move(config)), sim_(config_.scheduler), rng_(config_.seed) {
  if (config_.clients < 1)
    throw std::invalid_argument("FleetConfig: clients < 1");

  medium_ = std::make_unique<phy::Medium>(sim_, rng_.fork("medium"),
                                          config_.medium);
  server_ = std::make_unique<tcp::ContentServer>(sim_, config_.tcp);

  std::size_t index = 0;
  for (const auto& desc : config_.aps) {
    backhaul::ApHostConfig host_cfg;
    host_cfg.ap = config_.ap_mac;
    host_cfg.ap.ssid = desc.ssid;
    host_cfg.ap.channel = desc.channel;
    host_cfg.dhcp.offer_delay_min = desc.dhcp_offer_min;
    host_cfg.dhcp.offer_delay_max = desc.dhcp_offer_max;
    host_cfg.dhcp.responsive = !desc.dud;
    host_cfg.backhaul.rate_bps = desc.backhaul_bps;
    host_cfg.backhaul.latency = config_.backhaul_latency;
    ap_hosts_.push_back(std::make_unique<backhaul::ApHost>(
        *medium_, *server_, desc.mac, desc.position, desc.subnet,
        rng_.fork(index), host_cfg));
    ap_hosts_.back()->start();
    ++index;
  }

  for (int i = 0; i < config_.clients; ++i) {
    auto client = std::make_unique<Client>();
    client->phase = config_.headway * i;
    client->device = std::make_unique<ClientDevice>(
        *medium_,
        net::MacAddress::from_index(0x00C10000u +
                                    static_cast<std::uint32_t>(i)));
    client->device->set_position(config_.vehicle.position(client->phase));
    client->driver =
        std::make_unique<SpiderDriver>(sim_, *client->device, config_.spider);
    client->flows = std::make_unique<FlowManager>(sim_, *client->device,
                                                  config_.tcp);
    client->flows->install_tap();
    Client* raw = client.get();
    client->flows->set_delivery_handler([this, raw](std::int64_t bytes) {
      raw->tracker.record(sim_.now(), bytes);
    });
    client->flows->set_flow_closed_handler(
        [this](std::uint64_t flow_id) { server_->remove_flow(flow_id); });
    client->driver->set_connection_handler(
        [raw](const VirtualInterface& vif) {
          raw->flows->open_flow(vif.bssid, vif.channel);
        });
    client->driver->set_disconnection_handler(
        [raw](net::Bssid bssid) { raw->flows->close_flow(bssid); });
    clients_.push_back(std::move(client));
  }

  if (config_.stream != nullptr) {
    stream_ = std::make_unique<telemetry::StreamSession>(
        *config_.stream, sim_.telemetry(), config_.stream_run_tag,
        config_.stream_cadence.us(), config_.stream_ring_capacity);
    stream_->begin(sim_.now().us(), config_.seed);
  }
}

FleetExperiment::~FleetExperiment() = default;

std::vector<unsigned> FleetExperiment::shard_assignment(unsigned shards) const {
  return fleet_shard_assignment(config_, shards);
}

// Hot per mobility tick: the move batch is carved from the drain arena
// (bump-pointer once the first tick warmed the block), and the batched path
// re-buckets crossers per cell group inside the medium.
SPIDER_HOT void FleetExperiment::update_positions() {
  const sim::Time now = sim_.now();
  if (config_.batch_mobility) {
    core::Arena::Scope scope(sim_.arena());
    phy::RadioMove* moves =
        sim_.arena().alloc_array<phy::RadioMove>(clients_.size());
    std::size_t n = 0;
    for (auto& client : clients_) {
      moves[n++] = phy::RadioMove{&client->device->radio(),
                                  config_.vehicle.position(now + client->phase)};
    }
    medium_->move_radios(std::span<const phy::RadioMove>(moves, n));
  } else {
    for (auto& client : clients_) {
      client->device->set_position(
          config_.vehicle.position(now + client->phase));
    }
  }
  // Stop the recurring tick at the horizon: a position applied at or past
  // config_.duration can never influence results, so rescheduling there
  // would only park a dead event chain in the queue.
  if (now + config_.position_update < config_.duration) {
    sim_.post_after(config_.position_update, [this] { update_positions(); });
  }
}

FleetResults FleetExperiment::run() {
  if (ran_) throw std::logic_error("FleetExperiment::run: already ran");
  ran_ = true;
  for (auto& client : clients_) client->driver->start();
  update_positions();
  sim_.run_until(config_.duration);
  if (stream_) {
    stream_->finish(sim_.now().us(), sim_.digest(), sim_.events_executed());
  }

  FleetResults results;
  for (auto& client : clients_) {
    FleetClientResults r;
    r.traffic = client->tracker.report(config_.duration);
    r.joins = client->driver->metrics();
    results.clients.push_back(std::move(r));
  }
  return results;
}

}  // namespace spider::core
