#include "core/client_device.h"

#include <algorithm>
#include <utility>
#include <variant>

namespace spider::core {

ClientDevice::ClientDevice(phy::Medium& medium, net::MacAddress address,
                           ClientDeviceConfig config)
    : sim_(medium.simulator()),
      medium_(medium),
      radio_(medium, address, config.radio),
      config_(config) {
  radio_.set_receive_handler(
      [this](const net::Frame& f, const phy::RxInfo& i) { on_receive(f, i); });
  if (config_.auto_rate) {
    radio_.set_tx_result_handler([this](const net::Frame& f, bool ok) {
      if (f.kind != net::FrameKind::kData) return;
      if (ok) {
        rate_.on_success(f.dst);
      } else {
        rate_.on_failure(f.dst);
      }
    });
  }
  arm_probe_timer();
}

void ClientDevice::apply_rate(net::Frame& frame) {
  if (config_.auto_rate && frame.kind == net::FrameKind::kData) {
    frame.tx_rate_bps = rate_.rate_for(frame.dst);
  }
}

void ClientDevice::register_bssid(net::Bssid bssid, FrameHandler handler) {
  bssid_handlers_[bssid] = std::move(handler);
}

void ClientDevice::unregister_bssid(net::Bssid bssid) {
  bssid_handlers_.erase(bssid);
}

void ClientDevice::on_receive(const net::Frame& frame,
                              const phy::RxInfo& info) {
  // Keep the scan table warm from anything that names an AP.
  if (const auto* beacon = frame.payload.get_if<net::BeaconInfo>()) {
    if (beacon->open) {
      ScanEntry& e = scan_table_[frame.bssid];
      e.bssid = frame.bssid;
      e.info = *beacon;
      e.channel = beacon->channel;
      e.rssi_dbm = info.rssi_dbm;
      e.last_seen = sim_.now();
    }
  }
  if (auto it = bssid_handlers_.find(frame.src); it != bssid_handlers_.end()) {
    it->second(frame, info);
  }
  if (default_handler_) default_handler_(frame, info);
}

bool ClientDevice::enqueue(net::ChannelId channel, net::Frame frame) {
  apply_rate(frame);
  if (channel == radio_.channel() && !radio_.switching()) {
    ++frames_enqueued_;
    radio_.send(std::move(frame));
    return true;
  }
  auto& q = queues_[channel];
  if (q.size() >= config_.max_queue_frames) {
    ++queue_drops_;
    return false;
  }
  ++frames_enqueued_;
  q.push_back(std::move(frame));
  return false;
}

void ClientDevice::flush_queue(net::ChannelId channel) {
  auto it = queues_.find(channel);
  if (it == queues_.end()) return;
  while (!it->second.empty()) {
    net::Frame f = std::move(it->second.front());
    it->second.pop_front();
    apply_rate(f);  // re-stamp: the rate may have adapted while queued
    radio_.send(std::move(f));
  }
}

sim::Time ClientDevice::switch_channel(net::ChannelId channel,
                                       std::function<void()> done) {
  ++switches_;

  // 1. Park every live association on the outgoing channel.
  if (connected_) {
    for (net::Bssid ap : connected_(radio_.channel())) {
      radio_.send(net::make_null_data(address(), ap, /*power_mgmt=*/true));
    }
  }
  // 2. Drain: let in-flight frames on the old channel (our PSM frames and
  //    anything the APs already committed to the air) finish before the
  //    reset, as real MACs do — capped so a busy channel can't stall us.
  const sim::Time idle_at = medium_.channel_idle_at(radio_.channel());
  const sim::Time drain = std::min(idle_at - sim_.now(), sim::Time::millis(3));
  // 3. Hardware reset; 4. wake associations on the incoming channel.
  auto tune = [this, channel, done = std::move(done)]() mutable {
    radio_.tune(channel, [this, channel, done = std::move(done)] {
      if (connected_) {
        for (net::Bssid ap : connected_(channel)) {
          radio_.send(net::make_ps_poll(address(), ap));
        }
      }
      flush_queue(channel);
      probe_now();
      if (done) done();
    });
  };
  if (drain.is_zero() || drain.is_negative()) {
    tune();
  } else {
    sim_.post_after(drain, std::move(tune));
  }

  // Modeled switch latency: hardware reset plus the airtime of the PSM and
  // PS-Poll frames (Table 1: ~4.94 ms base, growing with associated APs).
  sim::Time latency = config_.radio.hardware_reset;
  if (connected_) {
    const std::size_t old_aps = connected_(radio_.channel()).size();
    const std::size_t new_aps = connected_(channel).size();
    const sim::Time frame_cost = sim::Time::micros(192) +  // preamble
                                 sim::transmission_time(net::kNullDataBytes, 11e6);
    latency += static_cast<std::int64_t>(old_aps + new_aps) * frame_cost;
  }
  return latency;
}

std::vector<ScanEntry> ClientDevice::scan_results(net::ChannelId channel) const {
  std::vector<ScanEntry> out;
  const sim::Time now = sim_.now();
  // spider-lint: allow(det-unordered-iteration) result is sorted below
  for (const auto& [bssid, entry] : scan_table_) {
    if (channel != 0 && entry.channel != channel) continue;
    if (now - entry.last_seen > config_.scan_expiry) continue;
    out.push_back(entry);
  }
  // Stable bssid order: callers rank these with policy scores that can tie
  // (fresh APs all score zero), and a tie must never be broken by hash-map
  // iteration order.
  std::sort(out.begin(), out.end(),
            [](const ScanEntry& a, const ScanEntry& b) {
              return a.bssid < b.bssid;
            });
  return out;
}

void ClientDevice::probe_now() {
  if (!radio_.switching()) {
    radio_.send(net::make_probe_request(address()));
  }
}

void ClientDevice::arm_probe_timer() {
  probe_timer_ = sim_.schedule_after(config_.probe_interval, [this] {
    probe_now();
    arm_probe_timer();
  });
}

}  // namespace spider::core
