// Canonical sharded-world scenarios + fleet shard placement.
//
// The N-vs-1-shard digest gates (tests/shard_world_test.cc and perf_smoke's
// shard section) run these two worlds — a uniform "scale" field like the
// scale bench and a fleet-shaped deployment (fixed beaconing APs, wandering
// clients) — so both regimes the paper cares about are covered by the same
// determinism contract. Everything here is a pure function of its arguments;
// the scenarios carry no state.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/shard_world.h"
#include "sim/time.h"

namespace spider::core {

struct FleetConfig;

// Uniform field at the scale bench's density (~500 radios/km^2), channels
// striped across the orthogonal plan, every node drifting, probing and
// periodically retuning. Mirrors bench/perf_smoke.cc's scale section.
phy::ShardScenario make_scale_shard_scenario(int n_radios, std::uint64_t seed,
                                             sim::Time duration);

// Fleet-shaped world: `aps` parked beaconers on a grid, `clients` random
// walkers that probe and channel-hop (the driver scan pattern, reduced to
// pure-function form).
phy::ShardScenario make_fleet_shard_scenario(int clients, int aps,
                                             std::uint64_t seed,
                                             sim::Time duration);

// Strip assignment for a fleet deployment: which of `shards` equal-width
// vertical strips (over the union of the AP positions and the route's
// bounding box) each AP falls into. APs are the anchors of a fleet world's
// load, so this is the placement FleetExperiment::shard_assignment reports
// for capacity planning ahead of a sharded fleet run.
std::vector<unsigned> fleet_shard_assignment(const FleetConfig& config,
                                             unsigned shards);

}  // namespace spider::core
