// Client-side workload: one bulk HTTP-style download per connected AP, and
// optional striped uploads.
//
// Downloads: when a driver reports an AP as connected (association + lease
// complete), the manager opens a TCP flow through it: a SYN/GET uplink
// segment that the content server answers with an endless stream. Downlink
// data is fed to a TcpReceiver whose acks ride the per-channel TX queues,
// so acks for a parked channel wait for the radio — which is how
// multi-channel schedules end up triggering sender RTOs.
//
// Uploads (the Section 4.8 load-balancing extension): a large payload can
// be striped across several connected APs, with per-AP shares chosen by
// the caller — typically proportional to the download-goodput estimates
// this manager keeps per AP ("assign traffic to APs proportional to the
// available end-to-end bandwidth").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/client_device.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"

namespace spider::core {

class FlowManager {
 public:
  // Newly delivered in-order bytes (throughput/connectivity accounting).
  using DeliveryFn = std::function<void(std::int64_t)>;
  // A flow was torn down; gives the experiment a chance to prune the
  // server-side sender.
  using FlowClosedFn = std::function<void(std::uint64_t flow_id)>;

  FlowManager(sim::Simulator& simulator, ClientDevice& device,
              tcp::TcpConfig config = {});

  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  void set_delivery_handler(DeliveryFn fn) { on_delivered_ = std::move(fn); }
  void set_flow_closed_handler(FlowClosedFn fn) { on_closed_ = std::move(fn); }

  // Opens a bulk download through `bssid` on `channel`; no-op if one is
  // already open through that AP.
  void open_flow(net::Bssid bssid, net::ChannelId channel);
  // Tears down every flow riding `bssid` (AP lost / driver disconnected).
  void close_flow(net::Bssid bssid);

  // --- uploads ---------------------------------------------------------

  struct UploadShare {
    net::Bssid bssid;
    net::ChannelId channel = 0;
    double weight = 1.0;  // share of total_bytes, normalized over shares
  };
  // Stripes `total_bytes` across the given APs; returns the flow ids.
  std::vector<std::uint64_t> start_striped_upload(
      const std::vector<UploadShare>& shares, std::int64_t total_bytes);
  std::int64_t upload_bytes_acked() const;
  bool uploads_finished() const;
  std::size_t active_uploads() const { return uploads_.size(); }

  // EWMA-free download-goodput estimate for an AP: bytes delivered over
  // the flow's lifetime so far (b/s); falls back to the last estimate
  // after the flow closes. 0.0 for never-seen APs.
  double download_rate_bps(net::Bssid bssid) const;

  // Call from the device's default handler (or install install_tap()).
  void handle_frame(const net::Frame& frame);
  // Convenience: registers itself as the device's default handler.
  void install_tap();

  std::size_t open_flows() const { return flows_.size(); }
  std::uint64_t flows_opened() const { return flows_opened_; }
  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  struct Flow {
    std::uint64_t id;
    net::Bssid bssid;
    net::ChannelId channel;
    std::unique_ptr<tcp::TcpReceiver> receiver;
    sim::Time opened = sim::Time::zero();
  };
  struct Upload {
    std::uint64_t id;
    net::Bssid bssid;
    std::unique_ptr<tcp::TcpSender> sender;
  };
  struct RateRecord {
    std::int64_t bytes = 0;
    sim::Time since = sim::Time::zero();
    double last_rate_bps = 0.0;
  };

  sim::Simulator& sim_;
  ClientDevice& device_;
  tcp::TcpConfig config_;
  DeliveryFn on_delivered_;
  FlowClosedFn on_closed_;
  std::unordered_map<std::uint64_t, Flow> flows_;         // by flow id
  std::unordered_map<net::Bssid, std::uint64_t> by_bssid_;
  std::unordered_map<std::uint64_t, Upload> uploads_;
  std::unordered_map<net::Bssid, RateRecord> rates_;
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t flows_opened_ = 0;
  std::int64_t total_bytes_ = 0;
};

}  // namespace spider::core
