// Client-side device layer shared by every driver (Spider and stock).
//
// Owns the physical radio and implements the mechanisms the policy layers
// build on:
//   * per-channel TX queues, swapped in and out as the radio moves — the
//     paper's "one packet queue per channel";
//   * the PSM channel-switch dance (Table 1): null-data PM=1 to every
//     connected AP on the old channel, hardware reset, PS-Poll to every
//     connected AP on the new channel;
//   * a scan table fed by overheard beacons and probe responses, plus
//     active probing on channel arrival (opportunistic scanning);
//   * per-BSSID frame dispatch to whoever registered (sessions, DHCP).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "phy/auto_rate.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::core {

struct ScanEntry {
  net::Bssid bssid;
  net::BeaconInfo info;
  net::ChannelId channel = 0;
  double rssi_dbm = -100.0;
  sim::Time last_seen = sim::Time::zero();
};

struct ClientDeviceConfig {
  phy::RadioConfig radio;
  std::size_t max_queue_frames = 256;
  // Active probe on each channel arrival and at this interval while parked.
  sim::Time probe_interval = sim::Time::millis(500);
  // Scan entries older than this are ignored by selection.
  sim::Time scan_expiry = sim::Time::seconds(3);
  // Minstrel-lite rate adaptation on uplink data frames (opt-in), mirroring
  // the AP-side knob: failures step the per-AP rate down, sustained
  // success steps it up.
  bool auto_rate = false;
};

class ClientDevice {
 public:
  using FrameHandler = std::function<void(const net::Frame&, const phy::RxInfo&)>;
  // Driver-provided: BSSIDs with live (post-join) connections on `channel`,
  // used for the PSM announcements around a switch.
  using ConnectedFn = std::function<std::vector<net::Bssid>(net::ChannelId)>;

  ClientDevice(phy::Medium& medium, net::MacAddress address,
               ClientDeviceConfig config = {});

  ClientDevice(const ClientDevice&) = delete;
  ClientDevice& operator=(const ClientDevice&) = delete;

  net::MacAddress address() const { return radio_.address(); }
  net::ChannelId channel() const { return radio_.channel(); }
  bool switching() const { return radio_.switching(); }
  phy::Radio& radio() { return radio_; }
  void set_position(phy::Vec2 p) { radio_.set_position(p); }

  void set_connected_lookup(ConnectedFn fn) { connected_ = std::move(fn); }
  // Every received frame from `bssid` goes to this handler (in addition to
  // the catch-all below).
  void register_bssid(net::Bssid bssid, FrameHandler handler);
  void unregister_bssid(net::Bssid bssid);
  // Catch-all (TCP data, metrics taps); runs for every received frame.
  void set_default_handler(FrameHandler handler) {
    default_handler_ = std::move(handler);
  }

  // Queues `frame` for `channel`; transmits immediately when the radio is
  // already there and not mid-reset. Returns true if the frame left the
  // radio right away.
  bool enqueue(net::ChannelId channel, net::Frame frame);

  // Executes the full PSM switch dance and invokes `done` on arrival.
  // Returns the modeled latency of the switch operation (PSM frames +
  // hardware reset + PS-Poll frames) — the quantity Table 1 reports.
  sim::Time switch_channel(net::ChannelId channel,
                           std::function<void()> done = nullptr);

  // Fresh scan results (age <= scan_expiry), optionally filtered by channel
  // (0 = all channels).
  std::vector<ScanEntry> scan_results(net::ChannelId channel = 0) const;
  void forget_scan(net::Bssid bssid) { scan_table_.erase(bssid); }

  // Sends a probe request on the current channel now.
  void probe_now();

  std::uint64_t frames_enqueued() const { return frames_enqueued_; }
  std::uint64_t queue_drops() const { return queue_drops_; }
  std::uint64_t switches() const { return switches_; }

 private:
  void on_receive(const net::Frame& frame, const phy::RxInfo& info);
  void flush_queue(net::ChannelId channel);
  void arm_probe_timer();

  // Stamps the frame's tx rate when uplink adaptation is enabled.
  void apply_rate(net::Frame& frame);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  phy::Radio radio_;
  ClientDeviceConfig config_;
  phy::AutoRate rate_;
  ConnectedFn connected_;
  std::unordered_map<net::Bssid, FrameHandler> bssid_handlers_;
  FrameHandler default_handler_;
  std::unordered_map<net::ChannelId, std::deque<net::Frame>> queues_;
  std::unordered_map<net::Bssid, ScanEntry> scan_table_;
  sim::TimerHandle probe_timer_;
  std::uint64_t frames_enqueued_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace spider::core
