#include "core/experiment.h"

#include <stdexcept>
#include <utility>

#include "telemetry/stream_exporter.h"

namespace spider::core {

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)), sim_(config_.scheduler), rng_(config_.seed) {
  if (config_.trace_enabled) {
    sim_.telemetry().trace().set_capacity(config_.trace_capacity);
    sim_.telemetry().trace().set_enabled(true);
  }
  medium_ = std::make_unique<phy::Medium>(sim_, rng_.fork("medium"),
                                          config_.medium);
  server_ = std::make_unique<tcp::ContentServer>(sim_, config_.tcp);

  std::size_t index = 0;
  for (const auto& desc : config_.aps) {
    backhaul::ApHostConfig host_cfg;
    host_cfg.ap = config_.ap_mac;
    host_cfg.ap.ssid = desc.ssid;
    host_cfg.ap.channel = desc.channel;
    host_cfg.dhcp.offer_delay_min = desc.dhcp_offer_min;
    host_cfg.dhcp.offer_delay_max = desc.dhcp_offer_max;
    host_cfg.dhcp.responsive = !desc.dud;
    host_cfg.backhaul.rate_bps = desc.backhaul_bps;
    host_cfg.backhaul.latency = config_.backhaul_latency;
    ap_hosts_.push_back(std::make_unique<backhaul::ApHost>(
        *medium_, *server_, desc.mac, desc.position, desc.subnet,
        rng_.fork(index), host_cfg));
    ap_hosts_.back()->start();
    ++index;
  }

  ClientDeviceConfig dev_cfg;
  dev_cfg.auto_rate = config_.client_auto_rate;
  device_ = std::make_unique<ClientDevice>(
      *medium_, net::MacAddress::from_index(0x00C00001u), dev_cfg);
  device_->set_position(config_.vehicle.position(sim::Time::zero()));
  energy_ = std::make_unique<phy::EnergyMeter>(sim_);
  device_->radio().attach_energy_meter(energy_.get());

  flows_ = std::make_unique<FlowManager>(sim_, *device_, config_.tcp);
  flows_->install_tap();
  flows_->set_delivery_handler(
      [this](std::int64_t bytes) { tracker_.record(sim_.now(), bytes); });
  flows_->set_flow_closed_handler(
      [this](std::uint64_t flow_id) { server_->remove_flow(flow_id); });

  switch (config_.driver) {
    case DriverKind::kSpider:
      spider_ = std::make_unique<SpiderDriver>(sim_, *device_, config_.spider);
      spider_->set_connection_handler([this](const VirtualInterface& vif) {
        flows_->open_flow(vif.bssid, vif.channel);
      });
      spider_->set_disconnection_handler(
          [this](net::Bssid bssid) { flows_->close_flow(bssid); });
      break;
    case DriverKind::kStock:
      stock_ = std::make_unique<StockDriver>(sim_, *device_, config_.stock);
      stock_->set_connection_handler([this](const StockDriver::Connection& c) {
        flows_->open_flow(c.bssid, c.channel);
      });
      stock_->set_disconnection_handler(
          [this](net::Bssid bssid) { flows_->close_flow(bssid); });
      break;
  }

  if (config_.stream != nullptr) {
    stream_ = std::make_unique<telemetry::StreamSession>(
        *config_.stream, sim_.telemetry(), config_.stream_run_tag,
        config_.stream_cadence.us(), config_.stream_ring_capacity);
    stream_->begin(sim_.now().us(), config_.seed);
  }
}

Experiment::~Experiment() = default;

void Experiment::attach_frame_log(trace::FrameLog& log) {
  // Ring overflow streams into the trace recorder (instant events) instead
  // of vanishing; a no-op while tracing is off.
  log.stream_evictions_to(sim_.telemetry().trace());
  medium_->set_sniffer(
      [&log](const net::Frame& f, net::ChannelId ch, sim::Time at) {
        log.record(trace::FrameRecord{at, ch, f.kind, f.src, f.dst,
                                      f.size_bytes});
      });
}

void Experiment::update_position() {
  // Same batched entry point the fleet uses — a one-element batch is just
  // set_position — so the two harnesses exercise one mobility code path.
  const phy::RadioMove move{&device_->radio(),
                            config_.vehicle.position(sim_.now())};
  medium_->move_radios({&move, 1});
  // Stop the recurring tick at the horizon (see FleetExperiment).
  if (sim_.now() + config_.position_update < config_.duration) {
    sim_.post_after(config_.position_update, [this] { update_position(); });
  }
}

ExperimentResults Experiment::run() {
  if (ran_) throw std::logic_error("Experiment::run: already ran");
  ran_ = true;

  if (spider_) spider_->start();
  if (stock_) stock_->start();
  update_position();

  sim_.run_until(config_.duration);
  if (stream_) {
    stream_->finish(sim_.now().us(), sim_.digest(), sim_.events_executed());
  }

  ExperimentResults r;
  r.traffic = tracker_.report(config_.duration);
  r.joins = spider_ ? spider_->metrics() : stock_->metrics();
  r.flows_opened = flows_->flows_opened();
  r.channel_switches = device_->switches();
  r.frames_sent = medium_->frames_sent();
  r.frames_lost = medium_->frames_lost();
  r.client_joules = energy_->total_joules();
  return r;
}

}  // namespace spider::core
