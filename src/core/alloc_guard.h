// Runtime teeth for the SPIDER_HOT allocation contract (see core/check.h).
//
// Linking the `spider_alloc_guard` library into a binary replaces the global
// operator new/delete family with counting forwarders. The counters only
// advance while at least one ScopedAllocGuard is alive on the current
// thread, so the interception costs one thread-local load per allocation
// when idle — and nothing at all in binaries that don't link the library
// (src/ libraries never do; it is test- and bench-only by construction).
//
//   {
//     spider::core::ScopedAllocGuard guard("medium delivery");
//     sim.run_until(horizon);          // the warmed-up hot loop under test
//   }                                  // SPIDER_CHECK(allocations == 0)
//
// The destructor check follows the repo-wide check policy: fatal by default,
// log-and-count under check::Policy::kLogAndCount (which is how the guard's
// own tests exercise the tripping path). Guards nest; each one observes the
// allocations made while it was alive, including those seen by inner guards.
//
// Thread model: counters are thread-local, matching the Simulator contract
// (a world and everything scheduled on it belong to one thread). A guard
// must be created and destroyed on the same thread.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spider::core {

// True when the interception TU is linked into this binary; guards created
// without it see no traffic and assert nothing (allocations() stays 0), so
// tests SPIDER_CHECK this first to avoid vacuous passes.
bool alloc_guard_linked();

// Allocations/deallocations observed on this thread since thread start,
// counted only while a guard was active. Exposed for diagnostics; tests
// normally go through ScopedAllocGuard deltas.
std::uint64_t thread_allocations();
std::uint64_t thread_deallocations();

class ScopedAllocGuard {
 public:
  // `label` names the guarded region in the failure message; it must outlive
  // the guard (string literals only — anything else would allocate).
  explicit ScopedAllocGuard(const char* label = "alloc guard");
  ~ScopedAllocGuard();

  ScopedAllocGuard(const ScopedAllocGuard&) = delete;
  ScopedAllocGuard& operator=(const ScopedAllocGuard&) = delete;

  // Allocations (operator new family) observed since construction.
  std::uint64_t allocations() const;
  // Deallocations (operator delete family) observed since construction.
  std::uint64_t deallocations() const;
  // Total bytes requested by the observed allocations.
  std::uint64_t allocated_bytes() const;

  // Disarms the destructor's zero-allocation check, for guards used as
  // passive meters (e.g. asserting that a path DOES allocate).
  void dismiss() { armed_ = false; }

 private:
  const char* label_;
  std::uint64_t start_allocations_;
  std::uint64_t start_deallocations_;
  std::uint64_t start_bytes_;
  bool armed_ = true;
};

}  // namespace spider::core
