#include "core/configs.h"

namespace spider::core {

SpiderConfig single_channel_multi_ap(net::ChannelId channel) {
  SpiderConfig c;
  c.schedule = {{channel, 1.0}};
  c.multi_ap = true;
  c.max_interfaces = 7;
  c.policy = ApSelectionPolicy::kJoinHistory;
  c.session.link_timeout = sim::Time::millis(100);
  c.dhcp = dhcpd::reduced_dhcp_timers(sim::Time::millis(200));
  return c;
}

SpiderConfig single_channel_single_ap(net::ChannelId channel) {
  SpiderConfig c;
  c.schedule = {{channel, 1.0}};
  c.multi_ap = false;
  c.max_interfaces = 1;
  c.policy = ApSelectionPolicy::kBestRssi;
  // Off-the-shelf behaviour: default timers, generous loss detection, no
  // aggressive join abandonment.
  c.session.link_timeout = sim::Time::millis(1000);
  c.dhcp = dhcpd::default_dhcp_timers();
  c.link_loss_timeout = sim::Time::seconds(3);
  c.join_give_up = sim::Time::seconds(20);
  return c;
}

namespace {

std::vector<ChannelSlice> equal_schedule(
    const std::vector<net::ChannelId>& channels) {
  std::vector<ChannelSlice> schedule;
  schedule.reserve(channels.size());
  for (net::ChannelId ch : channels) {
    schedule.push_back({ch, 1.0 / static_cast<double>(channels.size())});
  }
  return schedule;
}

}  // namespace

SpiderConfig multi_channel_multi_ap(sim::Time period,
                                    const std::vector<net::ChannelId>& channels) {
  SpiderConfig c = single_channel_multi_ap(channels.front());
  c.schedule = equal_schedule(channels);
  c.period = period;
  // Fractional dwell stretches every join; scale the abandonment budget by
  // the number of slices so a join gets the same effective on-channel time.
  c.join_give_up = c.join_give_up * static_cast<int>(channels.size());
  return c;
}

SpiderConfig multi_channel_single_ap(sim::Time period,
                                     const std::vector<net::ChannelId>& channels) {
  SpiderConfig c = single_channel_multi_ap(channels.front());
  c.schedule = equal_schedule(channels);
  c.period = period;
  c.multi_ap = false;
  c.max_interfaces = 1;
  c.camp_while_connected = true;
  return c;
}

StockDriverConfig stock_defaults() { return StockDriverConfig{}; }

SpiderConfig dynamic_channel_multi_ap(net::ChannelId initial_channel) {
  SpiderConfig c = single_channel_multi_ap(initial_channel);
  c.dynamic_channel = true;
  return c;
}

}  // namespace spider::core
