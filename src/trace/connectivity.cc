#include "trace/connectivity.h"

#include "core/check.h"

namespace spider::trace {

void ConnectivityTracker::record(sim::Time now, std::int64_t bytes) {
  SPIDER_DCHECK(!now.is_negative())
      << "sample at " << now.to_string() << " predates the run";
  if (bytes <= 0) return;
  const auto idx = static_cast<std::size_t>(now.us() / bucket_.us());
  if (buckets_.size() <= idx) buckets_.resize(idx + 1, 0);
  buckets_[idx] += bytes;
  total_bytes_ += bytes;
}

ConnectivityTracker::Report ConnectivityTracker::report(
    sim::Time duration) const {
  Report r;
  const auto n_buckets =
      static_cast<std::size_t>((duration.us() + bucket_.us() - 1) / bucket_.us());
  if (n_buckets == 0) return r;

  const double bucket_sec = bucket_.sec();
  std::size_t connected = 0;
  std::size_t run = 0;
  bool run_connected = false;

  const auto flush_run = [&](std::size_t len, bool was_connected) {
    if (len == 0) return;
    const double secs = static_cast<double>(len) * bucket_sec;
    if (was_connected) {
      r.connection_durations_sec.add(secs);
    } else {
      r.disruption_durations_sec.add(secs);
    }
  };

  for (std::size_t i = 0; i < n_buckets; ++i) {
    const std::int64_t bytes = i < buckets_.size() ? buckets_[i] : 0;
    const bool is_connected = bytes > 0;
    if (is_connected) {
      ++connected;
      r.instantaneous_bytes_per_sec.add(static_cast<double>(bytes) / bucket_sec);
    }
    if (run == 0 || is_connected == run_connected) {
      run_connected = is_connected;
      ++run;
    } else {
      flush_run(run, run_connected);
      run_connected = is_connected;
      run = 1;
    }
  }
  flush_run(run, run_connected);

  r.total_bytes = total_bytes_;
  r.avg_throughput_bytes_per_sec =
      static_cast<double>(total_bytes_) / duration.sec();
  r.connectivity_fraction =
      static_cast<double>(connected) / static_cast<double>(n_buckets);
  return r;
}

}  // namespace spider::trace
