#include "trace/stats.h"

#include <stdexcept>

#include "core/check.h"

namespace spider::trace {

void EmpiricalCdf::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty())
    throw std::logic_error("EmpiricalCdf::quantile: no samples");
  sort();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the ceil(q*N)-th smallest sample (1-indexed).
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  sort();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::mean() const {
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return samples_.empty() ? 0.0 : sum / static_cast<double>(samples_.size());
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(int points, double x_min,
                                                     double x_max) const {
  SPIDER_CHECK(points >= 2) << "a CDF curve needs at least 2 points, got "
                            << points;
  points = std::max(points, 2);  // kLogAndCount fallback: clamp and continue
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        x_min + (x_max - x_min) * static_cast<double>(i) / (points - 1);
    out.push_back({x, fraction_at_or_below(x)});
  }
  return out;
}

}  // namespace spider::trace
