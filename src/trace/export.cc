#include "trace/export.h"

#include <cmath>
#include <cstdio>

namespace spider::trace {

void write_cdf_csv(std::ostream& out, const std::string& label,
                   const EmpiricalCdf& cdf, int points, double x_min,
                   double x_max) {
  write_cdfs_csv(out, {{label, &cdf}}, points, x_min, x_max);
}

void write_cdfs_csv(std::ostream& out, const std::vector<NamedCdf>& series,
                    int points, double x_min, double x_max) {
  out << "x";
  for (const auto& s : series) out << "," << s.label;
  out << "\n";
  for (int i = 0; i < points; ++i) {
    const double x =
        x_min + (x_max - x_min) * static_cast<double>(i) / (points - 1);
    out << x;
    for (const auto& s : series) {
      out << "," << (s.cdf->empty() ? 0.0 : s.cdf->fraction_at_or_below(x));
    }
    out << "\n";
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::add(const std::string& key, double value) {
  char buf[40];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no NaN/Inf
  }
  fields_.push_back({key, buf});
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& key, std::int64_t value) {
  fields_.push_back({key, std::to_string(value)});
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& key, const std::string& value) {
  fields_.push_back({key, "\"" + json_escape(value) + "\""});
  return *this;
}

void JsonWriter::write(std::ostream& out) const {
  out << "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(fields_[i].key) << "\":" << fields_[i].rendered;
  }
  out << "}";
}

}  // namespace spider::trace
