// Connectivity accounting — the paper's four evaluation metrics:
//   average throughput      bytes delivered / experiment duration
//   average connectivity    % of time buckets in which >0 bytes arrived
//   connection durations    maximal runs of connected buckets   (Fig. 10a)
//   disruption durations    maximal runs of silent buckets      (Fig. 10b)
//   instantaneous bandwidth per-bucket rate while connected     (Fig. 10c)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "trace/stats.h"

namespace spider::trace {

class ConnectivityTracker {
 public:
  explicit ConnectivityTracker(sim::Time bucket = sim::Time::seconds(1))
      : bucket_(bucket) {}

  // Record `bytes` delivered at simulated time `now`.
  void record(sim::Time now, std::int64_t bytes);

  // Summary over [0, duration). Call once the run is over.
  struct Report {
    double avg_throughput_bytes_per_sec = 0.0;
    double connectivity_fraction = 0.0;  // 0..1
    std::int64_t total_bytes = 0;
    EmpiricalCdf connection_durations_sec;
    EmpiricalCdf disruption_durations_sec;
    EmpiricalCdf instantaneous_bytes_per_sec;
  };
  Report report(sim::Time duration) const;

  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  sim::Time bucket_;
  std::vector<std::int64_t> buckets_;
  std::int64_t total_bytes_ = 0;
};

}  // namespace spider::trace
