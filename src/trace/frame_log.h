// Frame log — a tcpdump-style tap on the shared medium.
//
// Records one entry per transmitted frame (time, channel, kind, src/dst,
// size), bounded by a ring capacity so long runs cannot exhaust memory.
// Filters and counters make it usable both as a debugging aid and as a
// measurement instrument (e.g. management-overhead accounting).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/frame.h"
#include "sim/time.h"
#include "telemetry/trace_recorder.h"

namespace spider::trace {

struct FrameRecord {
  sim::Time at;
  net::ChannelId channel = 0;
  net::FrameKind kind = net::FrameKind::kData;
  net::MacAddress src;
  net::MacAddress dst;
  int size_bytes = 0;

  std::string to_string() const;  // "12.345s ch6 AssocRequest aa->bb 62B"
};

class FrameLog {
 public:
  explicit FrameLog(std::size_t capacity = 10000) : capacity_(capacity) {}

  using Filter = std::function<bool(const FrameRecord&)>;
  // Only records matching the filter are kept (counters still see all).
  void set_filter(Filter f) { filter_ = std::move(f); }

  using EvictHandler = std::function<void(const FrameRecord&)>;
  // Invoked for each entry the ring pushes out, before it is destroyed —
  // the hook that lets a bounded log hand its overflow to a second sink
  // instead of silently losing it.
  void set_evict_handler(EvictHandler fn) { evict_handler_ = std::move(fn); }

  // Streams evicted entries into `recorder` as instant events (category
  // "framelog"); no-ops while the recorder is disabled. The recorder must
  // outlive this log.
  void stream_evictions_to(telemetry::TraceRecorder& recorder);

  void record(const FrameRecord& r);

  const std::deque<FrameRecord>& entries() const { return entries_; }
  // Entries pushed out of the ring by capacity pressure.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_frames() const { return total_frames_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t management_frames() const { return management_frames_; }
  std::uint64_t data_frames() const { return data_frames_; }

  // Fraction of bytes spent on management traffic (join overhead).
  double management_byte_fraction() const {
    return total_bytes_ == 0
               ? 0.0
               : static_cast<double>(management_bytes_) / total_bytes_;
  }

  void clear();

 private:
  std::size_t capacity_;
  Filter filter_;
  EvictHandler evict_handler_;
  std::deque<FrameRecord> entries_;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_frames_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t management_frames_ = 0;
  std::uint64_t management_bytes_ = 0;
  std::uint64_t data_frames_ = 0;
};

}  // namespace spider::trace
