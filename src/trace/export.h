// Result exporters: CSV series (for gnuplot/matplotlib) and a small JSON
// writer for experiment summaries. No external dependencies; writers
// target any std::ostream so tests can capture into stringstreams.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "trace/stats.h"

namespace spider::trace {

// "x,<label>" header then one "x,F(x)" row per point.
void write_cdf_csv(std::ostream& out, const std::string& label,
                   const EmpiricalCdf& cdf, int points, double x_min,
                   double x_max);

// Multiple series on a shared x grid: "x,label1,label2,..." —
// the layout a spreadsheet or gnuplot expects for a multi-line figure.
struct NamedCdf {
  std::string label;
  const EmpiricalCdf* cdf;
};
void write_cdfs_csv(std::ostream& out, const std::vector<NamedCdf>& series,
                    int points, double x_min, double x_max);

// Minimal JSON object writer: flat string->double / string->string maps,
// escaped and deterministically ordered (insertion order).
class JsonWriter {
 public:
  JsonWriter& add(const std::string& key, double value);
  JsonWriter& add(const std::string& key, std::int64_t value);
  JsonWriter& add(const std::string& key, const std::string& value);
  void write(std::ostream& out) const;

 private:
  struct Field {
    std::string key;
    std::string rendered;  // already JSON-encoded value
  };
  std::vector<Field> fields_;
};

// Escapes a string for inclusion in JSON output.
std::string json_escape(const std::string& s);

}  // namespace spider::trace
