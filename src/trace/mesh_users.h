// Synthetic stand-in for the paper's downtown-mesh user dataset.
//
// Section 4.7 compares Spider's supply against demand measured from 161
// wireless users on a 25-node mesh (128,587 TCP connections over one day).
// That trace is not public, so we generate a synthetic population with the
// same qualitative shape: heavy-tailed TCP connection durations (most flows
// are short HTTP transfers, a tail of long sessions) and heavy-tailed
// inter-connection gaps. Parameters are chosen so that the generated CDFs
// match the coordinates readable from Figs. 13/14: roughly 80% of user
// connections complete within 30 s, and roughly 75% of inter-connection
// gaps are under 60 s.
#pragma once

#include <cstdint>

#include "sim/random.h"
#include "trace/stats.h"

namespace spider::trace {

struct MeshUserConfig {
  int users = 161;
  int flows_per_user = 800;  // ~129k flows total, matching the dataset scale
  // Connection durations: lognormal. exp(mu) is the median in seconds.
  double duration_mu = 2.0;     // median ~7.4 s
  double duration_sigma = 1.3;
  // Inter-connection gaps: lognormal, heavier tail.
  double gap_mu = 2.7;          // median ~15 s
  double gap_sigma = 1.5;
};

struct MeshUserDemand {
  EmpiricalCdf connection_durations_sec;  // Fig. 13's "users" curve
  EmpiricalCdf inter_connection_sec;      // Fig. 14's "user inter-connection"
};

MeshUserDemand generate_mesh_demand(sim::Rng rng, MeshUserConfig config = {});

}  // namespace spider::trace
