#include "trace/mesh_users.h"

namespace spider::trace {

MeshUserDemand generate_mesh_demand(sim::Rng rng, MeshUserConfig config) {
  MeshUserDemand demand;
  for (int u = 0; u < config.users; ++u) {
    auto user_rng = rng.fork(static_cast<std::uint64_t>(u));
    for (int f = 0; f < config.flows_per_user; ++f) {
      demand.connection_durations_sec.add(
          user_rng.lognormal(config.duration_mu, config.duration_sigma));
      demand.inter_connection_sec.add(
          user_rng.lognormal(config.gap_mu, config.gap_sigma));
    }
  }
  return demand;
}

}  // namespace spider::trace
