// Streaming statistics and empirical distributions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace spider::trace {

// Welford online mean/variance.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Sample container with quantile / CDF queries. Samples are sorted lazily.
class EmpiricalCdf {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // q in [0,1]; nearest-rank quantile. Requires at least one sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  // F(x): fraction of samples <= x.
  double fraction_at_or_below(double x) const;

  double mean() const;

  // Evaluates the CDF at `points` evenly spaced values spanning
  // [0 or min, max] — the series a figure plots.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> curve(int points, double x_min, double x_max) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace spider::trace
