#include "trace/frame_log.h"

#include <cstdio>

namespace spider::trace {

std::string FrameRecord::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s ch%d %s %s->%s %dB",
                at.to_string().c_str(), channel, net::to_string(kind),
                src.to_string().c_str(), dst.to_string().c_str(), size_bytes);
  return buf;
}

void FrameLog::record(const FrameRecord& r) {
  ++total_frames_;
  total_bytes_ += static_cast<std::uint64_t>(r.size_bytes);
  const bool mgmt = r.kind != net::FrameKind::kData;
  if (mgmt) {
    ++management_frames_;
    management_bytes_ += static_cast<std::uint64_t>(r.size_bytes);
  } else {
    ++data_frames_;
  }
  if (filter_ && !filter_(r)) return;
  entries_.push_back(r);
  while (entries_.size() > capacity_) {
    if (evict_handler_) evict_handler_(entries_.front());
    ++dropped_;
    entries_.pop_front();
  }
}

void FrameLog::stream_evictions_to(telemetry::TraceRecorder& recorder) {
  set_evict_handler([&recorder](const FrameRecord& r) {
    recorder.instant("frame_evicted", "framelog", r.at.us(), /*track=*/0,
                     "bytes", r.size_bytes);
  });
}

void FrameLog::clear() {
  entries_.clear();
  dropped_ = 0;
  total_frames_ = total_bytes_ = 0;
  management_frames_ = management_bytes_ = data_frames_ = 0;
}

}  // namespace spider::trace
