// SmallFn: a move-only `void()` callable with a 48-byte inline buffer.
//
// The simulator schedules hundreds of thousands of events per simulated
// minute, and almost every callback is a lambda capturing `this` plus a few
// value parameters — well under 48 bytes. std::function's inline buffer on
// mainstream standard libraries is 16 bytes, so those captures heap-allocate
// on every schedule_at(). SmallFn stores any nothrow-movable callable of at
// most kInlineSize bytes directly in the event record; larger callables fall
// back to a single heap allocation, so correctness never depends on size.
//
// Move semantics are "relocate": moving a SmallFn transfers the callable and
// leaves the source empty. Trivially-copyable callables (the overwhelmingly
// common case — captures of pointers, ints, Time) relocate with a memcpy and
// destroy with a no-op, which keeps priority-queue sift operations cheap.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace spider::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  SmallFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at schedule_at() call sites.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = heap_ops<D>();
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // True when the wrapped callable lives in the inline buffer (no heap).
  bool is_inline() const { return ops_ != nullptr && !ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's callable from src's and destroys src's.
    // Null means "memcpy the whole buffer" (trivially copyable callables
    // and the heap case, where the buffer holds just a pointer).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;  // null — nothing to destroy
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* s) { (*static_cast<D*>(s))(); },
        std::is_trivially_copyable_v<D>
            ? nullptr
            : +[](void* src, void* dst) noexcept {
                ::new (dst) D(std::move(*static_cast<D*>(src)));
                static_cast<D*>(src)->~D();
              },
        std::is_trivially_destructible_v<D>
            ? nullptr
            : +[](void* s) noexcept { static_cast<D*>(s)->~D(); },
        /*heap=*/false,
    };
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* s) { (**static_cast<D**>(s))(); },
        /*relocate=*/nullptr,  // relocating a pointer is a memcpy
        [](void* s) noexcept { delete *static_cast<D**>(s); },
        /*heap=*/true,
    };
    return &ops;
  }

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
    ops_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace spider::sim
