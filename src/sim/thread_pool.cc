#include "sim/thread_pool.h"

#include "core/check.h"

namespace spider::sim {

unsigned ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(SmallFn task) {
  SPIDER_CHECK(static_cast<bool>(task)) << "posted an empty task";
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPIDER_CHECK(!stopping_) << "post() on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    SmallFn task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace spider::sim
