// Fixed-size thread pool for embarrassingly parallel sweeps.
//
// Deliberately minimal: a locked FIFO of SmallFn tasks and N workers. There
// is no work stealing and no task-local shared state — the intended use is
// core::SweepRunner, where each task owns an entire Simulator world, so the
// pool never has to arbitrate access to simulation state. Tasks submitted
// through submit() report exceptions through the returned future; tasks
// posted through post() must not throw (a throw escaping a posted task
// terminates, by design — a silent swallow would hide broken invariants).
//
// Destruction drains the queue: every task already posted runs to completion
// before the workers join.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/small_fn.h"

namespace spider::sim {

class ThreadPool {
 public:
  // Threads to use when the caller does not care: hardware concurrency,
  // never less than 1.
  static unsigned default_thread_count();

  // threads == 0 means default_thread_count().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Enqueues a fire-and-forget task. FIFO per pool: a single-threaded pool
  // executes tasks in post order.
  void post(SmallFn task);

  // Enqueues `fn` and returns a future for its result; exceptions thrown by
  // `fn` surface from future::get() on the calling thread.
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::move(fn));
    std::future<R> result = task.get_future();
    post(SmallFn([t = std::move(task)]() mutable { t(); }));
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<SmallFn> queue_;  // guarded by mu_
  bool stopping_ = false;      // guarded by mu_
};

}  // namespace spider::sim
