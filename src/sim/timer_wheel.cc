#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "core/check.h"

namespace spider::sim {

TimerWheel::TimerWheel() {
  std::memset(head_, 0xFF, sizeof(head_));  // every slot starts at kNil
  std::memset(tail_, 0xFF, sizeof(tail_));
  nodes_.reserve(64);
  free_list_.reserve(nodes_.capacity());
  overflow_.reserve(8);
  late_.reserve(8);
}

std::uint32_t TimerWheel::acquire_node() {
  if (!free_list_.empty()) {
    const std::uint32_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  // Cold growth only: once the pool has grown to the run's high-water mark,
  // every schedule recycles through the free list. Keep the free list's
  // capacity at least the pool's so release_node never reallocates warm.
  if (free_list_.capacity() < nodes_.capacity()) {
    free_list_.reserve(nodes_.capacity());
  }
  return idx;
}

void TimerWheel::release_node(std::uint32_t idx) {
  nodes_[idx].next = kNil;
  free_list_.push_back(idx);
}

SPIDER_HOT void TimerWheel::schedule(std::int64_t at_us, std::uint64_t seq,
                                     std::uint32_t token, SmallFn fn) {
  const std::uint32_t idx = acquire_node();
  Node& n = nodes_[idx];
  n.at_us = at_us;
  n.seq = seq;
  n.token = token;
  n.fn = std::move(fn);
  if (at_us < clock_) {
    // Behind the wheel cursor (cancelled pops moved it past the sim clock):
    // park in the late heap, which drains strictly before the wheel.
    late_push(idx);
  } else {
    place(idx);
  }
  ++size_;
}

bool TimerWheel::late_before(std::uint32_t a, std::uint32_t b) const {
  const Node& x = nodes_[a];
  const Node& y = nodes_[b];
  if (x.at_us != y.at_us) return x.at_us < y.at_us;
  return x.seq < y.seq;
}

void TimerWheel::late_push(std::uint32_t idx) {
  late_.push_back(idx);
  std::size_t i = late_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!late_before(late_[i], late_[parent])) break;
    std::swap(late_[i], late_[parent]);
    i = parent;
  }
}

std::uint32_t TimerWheel::late_pop() {
  const std::uint32_t top = late_.front();
  late_.front() = late_.back();
  late_.pop_back();
  const std::size_t n = late_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t m = i;
    if (l < n && late_before(late_[l], late_[m])) m = l;
    if (r < n && late_before(late_[r], late_[m])) m = r;
    if (m == i) break;
    std::swap(late_[i], late_[m]);
    i = m;
  }
  return top;
}

SPIDER_HOT void TimerWheel::place(std::uint32_t idx) {
  const Node& n = nodes_[idx];
  const auto at = static_cast<std::uint64_t>(n.at_us);
  const std::uint64_t diff = at ^ static_cast<std::uint64_t>(clock_);
  if ((diff >> kSpanBits) != 0) {
    // Beyond the top-level window: parked until the clock's top bits catch
    // up. Rare by construction (2^48 us ahead), so the list growth is cold.
    overflow_.push_back(idx);
    return;
  }
  // Highest differing byte picks the level; byte l of the absolute time
  // picks the slot. diff == 0 means "due now": level 0, current slot.
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) >> 3;
  const int slot =
      static_cast<int>((at >> (kSlotBits * level)) & kSlotMask);
  append(level, slot, idx);
}

SPIDER_HOT void TimerWheel::append(int level, int slot, std::uint32_t idx) {
  nodes_[idx].next = kNil;
  std::uint32_t& t = tail(level, slot);
  if (t == kNil) {
    head(level, slot) = idx;
    set_bit(level, slot);
  } else {
    nodes_[t].next = idx;
  }
  t = idx;
}

void TimerWheel::cascade(int level, int slot) {
  std::uint32_t idx = head(level, slot);
  head(level, slot) = kNil;
  tail(level, slot) = kNil;
  clear_bit(level, slot);
  while (idx != kNil) {
    const std::uint32_t next = nodes_[idx].next;
    place(idx);  // byte `level` now matches the clock: lands a level down
    idx = next;
  }
  ++cascades_;
}

void TimerWheel::refill_from_overflow() {
  // Stable partition: nodes whose top bits entered the wheel's window get
  // placed (in insertion = seq order); later windows stay parked.
  const std::uint64_t window = static_cast<std::uint64_t>(clock_) >> kSpanBits;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < overflow_.size(); ++i) {
    const std::uint32_t idx = overflow_[i];
    if ((static_cast<std::uint64_t>(nodes_[idx].at_us) >> kSpanBits) ==
        window) {
      place(idx);
    } else {
      overflow_[kept++] = idx;
    }
  }
  overflow_.resize(kept);
}

int TimerWheel::first_set_at_or_after(int level, int from) const {
  if (from >= kSlots) return -1;
  int word = from >> 6;
  std::uint64_t bits = occ_[level][word] & (~0ull << (from & 63));
  for (;;) {
    if (bits != 0) return (word << 6) + std::countr_zero(bits);
    if (++word == kWords) return -1;
    bits = occ_[level][word];
  }
}

SPIDER_HOT std::int64_t TimerWheel::find_due(std::int64_t limit_us) {
  if (size_ == 0) return kNone;
  for (;;) {
    const auto clock = static_cast<std::uint64_t>(clock_);
    // Level 0 first: an occupied slot here IS an exact due microsecond (all
    // occupied level-0 slots are at or after the clock's index — earlier
    // ones would be in the past, which schedule() forbids).
    {
      const int idx = static_cast<int>(clock & kSlotMask);
      const int s = first_set_at_or_after(0, idx);
      if (s >= 0) {
        const std::int64_t t =
            static_cast<std::int64_t>((clock & ~kSlotMask) | static_cast<std::uint64_t>(s));
        if (t > limit_us) return kNone;
        clock_ = t;
        return t;
      }
    }
    // Climb. The lowest non-empty level's first occupied slot bounds every
    // pending event from below by its window base: everything beneath lower
    // levels is empty, so jumping the clock straight to that base crosses
    // only empty slots, and the cascade there is the one the clock crossing
    // owes. Invariant: occupied slots at level >= 1 sit strictly after the
    // clock's index (an equal index would have matched a lower level).
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      const int idx = static_cast<int>((clock >> (kSlotBits * level)) & kSlotMask);
      const int s = first_set_at_or_after(level, idx + 1);
      if (s < 0) continue;
      const int shift = kSlotBits * level;
      const std::uint64_t window_mask = (1ull << (shift + kSlotBits)) - 1;
      const std::uint64_t base =
          (clock & ~window_mask) | (static_cast<std::uint64_t>(s) << shift);
      if (static_cast<std::int64_t>(base) > limit_us) return kNone;
      clock_ = static_cast<std::int64_t>(base);
      cascade(level, s);
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Every level is dry: all pending events are parked in the overflow
    // list, which by the placement rule lies entirely beyond the current
    // top-level window — so the earliest overflow timestamp's window base is
    // a safe clock target.
    SPIDER_DCHECK(!overflow_.empty())
        << "wheel counts " << size_ << " pending but holds none";
    std::int64_t min_at = nodes_[overflow_.front()].at_us;
    for (const std::uint32_t idx : overflow_) {
      min_at = std::min(min_at, nodes_[idx].at_us);
    }
    const std::int64_t base =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(min_at) &
                                  ~((1ull << kSpanBits) - 1));
    if (base > limit_us) return kNone;
    clock_ = std::max(clock_, base);
    refill_from_overflow();
  }
}

std::int64_t TimerWheel::next_due(std::int64_t limit_us) {
  // Late events are strictly earlier than everything wheel-resident, so a
  // non-empty late heap's top IS the global minimum.
  if (!late_.empty()) {
    const std::int64_t at = nodes_[late_.front()].at_us;
    return at <= limit_us ? at : kNone;
  }
  return find_due(limit_us);
}

SPIDER_HOT bool TimerWheel::pop_due(std::int64_t limit_us, Fired* out) {
  if (!late_.empty()) {
    if (nodes_[late_.front()].at_us > limit_us) return false;
    const std::uint32_t idx = late_pop();
    Node& n = nodes_[idx];
    out->at_us = n.at_us;
    out->seq = n.seq;
    out->token = n.token;
    out->fn = std::move(n.fn);
    release_node(idx);
    --size_;
    return true;
  }
  const std::int64_t t = find_due(limit_us);
  if (t == kNone) return false;
  // find_due parked the clock exactly on the due tick, so its level-0 slot
  // holds that microsecond's events in seq order; pop the head.
  const int slot = static_cast<int>(static_cast<std::uint64_t>(t) & kSlotMask);
  const std::uint32_t idx = head(0, slot);
  Node& n = nodes_[idx];
  head(0, slot) = n.next;
  if (n.next == kNil) {
    tail(0, slot) = kNil;
    clear_bit(0, slot);
  }
  out->at_us = n.at_us;
  out->seq = n.seq;
  out->token = n.token;
  out->fn = std::move(n.fn);
  release_node(idx);
  --size_;
  return true;
}

}  // namespace spider::sim
