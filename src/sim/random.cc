#include "sim/random.h"

#include <cmath>

namespace spider::sim {
namespace {

// FNV-1a, enough to decorrelate substream seeds.
std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix(std::uint64_t x) {
  // splitmix64 finalizer
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::string_view tag) const {
  return Rng{mix(fnv1a(tag, seed_ ^ 0xcbf29ce484222325ULL))};
}

Rng Rng::fork(std::uint64_t tag) const {
  return Rng{mix(seed_ ^ mix(tag))};
}

}  // namespace spider::sim
