// Simulated time: a strong integer type counting microseconds since the
// start of a run. Kept as a plain value type so it is cheap to copy, totally
// ordered, and impossible to confuse with wall-clock durations or raw
// integers at API boundaries.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace spider::sim {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors; the unit is always explicit at the call site.
  static constexpr Time micros(std::int64_t us) { return Time{us}; }
  static constexpr Time millis(std::int64_t ms) { return Time{ms * 1000}; }
  static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time a, Time b) { return Time{a.us_ + b.us_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.us_ - b.us_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.us_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.us_ * k}; }
  friend constexpr Time operator*(Time a, int k) { return Time{a.us_ * k}; }
  friend constexpr Time operator*(int k, Time a) { return Time{a.us_ * k}; }
  friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }
  friend constexpr Time operator*(double k, Time a) { return a * k; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.us_ / k}; }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }
  constexpr Time& operator+=(Time b) { us_ += b.us_; return *this; }
  constexpr Time& operator-=(Time b) { us_ -= b.us_; return *this; }

  // "12.345s" / "87ms" / "42us" — picks the coarsest exact-ish unit.
  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// Transmission time of `bytes` at `bits_per_second`.
constexpr Time transmission_time(std::int64_t bytes, double bits_per_second) {
  return Time::seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace spider::sim
