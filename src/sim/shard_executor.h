// Barrier-style shard fan-out over the existing ThreadPool.
//
// One window of sharded simulation is a sequence of phases; every phase runs
// a callback once per shard and must fully complete before the next phase
// starts (that completion IS the window barrier). The executor owns that
// fork/join shape and nothing else — shard state, mailboxes and ordering
// rules live with the caller (see phy::ShardedWorld).
//
// Threading contract: within one parallel() call each shard index is handed
// to exactly one task, so callbacks may freely mutate "their" shard without
// locks; the futures' get() edges make every write of phase N visible to
// phase N+1 and to the caller between phases. With no pool (or one worker,
// or one shard) phases run inline on the calling thread — the K=1 engine the
// digest gates compare against is literally this same code path.
#pragma once

#include <functional>

#include "sim/thread_pool.h"

namespace spider::sim {

class ShardExecutor {
 public:
  // `pool` may be null (everything inline) and must outlive the executor.
  ShardExecutor(unsigned shards, ThreadPool* pool)
      : shards_(shards), pool_(pool) {}

  unsigned shards() const { return shards_; }
  // Worker threads a parallel() call can actually occupy (1 when inline).
  // Recorded in bench artifacts so speedups are interpretable per runner.
  unsigned workers() const;

  // Runs fn(shard) for every shard in [0, shards) and returns once all have
  // finished. Exceptions propagate to the caller (lowest shard index first).
  void parallel(const std::function<void(unsigned)>& fn) const;

 private:
  unsigned shards_;
  ThreadPool* pool_;
};

}  // namespace spider::sim
