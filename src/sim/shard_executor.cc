#include "sim/shard_executor.h"

#include <algorithm>
#include <future>
#include <vector>

#include "core/check.h"

namespace spider::sim {

unsigned ShardExecutor::workers() const {
  if (pool_ == nullptr || shards_ <= 1) return 1;
  return std::min(shards_, std::max(pool_->thread_count(), 1u));
}

void ShardExecutor::parallel(const std::function<void(unsigned)>& fn) const {
  SPIDER_CHECK(shards_ >= 1) << "executor with no shards";
  if (workers() <= 1) {
    // Inline path: identical phase semantics, zero scheduling. Ascending
    // shard order here is a convenience, not a contract — phases must not
    // depend on cross-shard execution order either way.
    for (unsigned s = 0; s < shards_; ++s) fn(s);
    return;
  }
  std::vector<std::future<void>> done;
  done.reserve(shards_);
  for (unsigned s = 0; s < shards_; ++s) {
    done.push_back(pool_->submit([&fn, s] { fn(s); }));
  }
  // Collect every future before letting an exception out, so no task is left
  // running against shard state the caller may tear down while unwinding.
  std::exception_ptr first_error;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace spider::sim
