#include "sim/simulator.h"

#include <utility>

#include "core/check.h"

namespace spider::sim {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix at two multiplies. The
// digest runs once per executed event, so this replaced a byte-wise FNV-1a
// (8 multiplies per folded word) as part of the hot-path rework; the digest
// has no golden values anywhere — only run-to-run equality matters — so the
// hash function is free to be as cheap as avalanche quality allows.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Hash of one executed (time, event-id) pair. Pairs within an instant are
// combined with wrapping addition (commutative), so the per-instant
// accumulator identifies the executed set regardless of pop order details.
constexpr std::uint64_t event_hash(std::int64_t at_us, std::uint64_t seq) {
  return mix64(static_cast<std::uint64_t>(at_us) * 0x9e3779b97f4a7c15ull ^
               seq);
}

// Closes an instant: mixes (time, accumulator, count) into the digest.
constexpr std::uint64_t fold(std::uint64_t digest, std::int64_t instant_us,
                             std::uint64_t acc, std::uint64_t count) {
  digest = mix64(digest ^ mix64(static_cast<std::uint64_t>(instant_us)));
  digest = mix64(digest ^ acc);
  return mix64(digest ^ count);
}

}  // namespace

namespace detail {

std::uint32_t TokenSlab::acquire() {
  if (!free_list.empty()) {
    const std::uint32_t slot = free_list.back();
    free_list.pop_back();
    slots[slot].cancelled = false;
    slots[slot].active = true;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots.size());
  slots.push_back(Slot{0, false, true});
  return slot;
}

void TokenSlab::release(std::uint32_t slot) {
  SPIDER_DCHECK(slot < slots.size() && slots[slot].active)
      << "token slab release of slot " << slot;
  ++slots[slot].generation;  // invalidates every outstanding handle
  slots[slot].active = false;
  slots[slot].cancelled = false;
  free_list.push_back(slot);
}

}  // namespace detail

void TimerHandle::cancel() {
  if (slab_ && slab_->matches(slot_, generation_)) {
    slab_->slots[slot_].cancelled = true;
  }
}

bool TimerHandle::pending() const {
  return slab_ && slab_->matches(slot_, generation_) &&
         !slab_->cancelled(slot_);
}

Simulator::Simulator() : Simulator(SimulatorConfig{}) {}

Simulator::Simulator(SimulatorConfig config)
    : config_(config), tokens_(std::make_shared<detail::TokenSlab>()) {
  telemetry_.add_collector([this](telemetry::Registry& registry) {
    registry.counter("sim.events_posted").inc(
        posted_ - registry.counter("sim.events_posted").value());
    registry.counter("sim.events_fired").inc(
        executed_ - registry.counter("sim.events_fired").value());
    registry.counter("sim.events_cancelled").inc(
        cancelled_ - registry.counter("sim.events_cancelled").value());
    auto& depth = registry.gauge("sim.queue_depth");
    depth.set(static_cast<std::int64_t>(depth_high_water_));
    depth.set(static_cast<std::int64_t>(pending_events()));
  });
}

Simulator::~Simulator() { tokens_->dead = true; }

SPIDER_HOT TimerHandle Simulator::schedule_at(Time at, SmallFn fn) {
  // Scheduling in the past is an invariant violation, not a recoverable
  // error: see src/core/check.h for the exceptions-vs-checks policy. Under
  // kLogAndCount the event is clamped to now() so the run can continue.
  SPIDER_CHECK(at >= now_) << "schedule_at(" << at.to_string()
                           << ") behind clock " << now_.to_string();
  if (at < now_) at = now_;
  const std::uint32_t slot = tokens_->acquire();
  const std::uint32_t generation = tokens_->slots[slot].generation;
  if (config_.wheel_scheduler) {
    wheel_.schedule(at.us(), next_seq_++, slot, std::move(fn));
  } else {
    queue_.push(Event{at, next_seq_++, slot, std::move(fn)});
  }
  note_push();
  return TimerHandle{tokens_, slot, generation};
}

SPIDER_HOT TimerHandle Simulator::schedule_after(Time delay, SmallFn fn) {
  SPIDER_CHECK(!delay.is_negative())
      << "schedule_after(" << delay.to_string() << ") with negative delay";
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

SPIDER_HOT void Simulator::post_at(Time at, SmallFn fn) {
  SPIDER_CHECK(at >= now_) << "post_at(" << at.to_string()
                           << ") behind clock " << now_.to_string();
  if (at < now_) at = now_;
  if (config_.wheel_scheduler) {
    wheel_.schedule(at.us(), next_seq_++, kNoToken, std::move(fn));
  } else {
    queue_.push(Event{at, next_seq_++, kNoToken, std::move(fn)});
  }
  note_push();
}

SPIDER_HOT void Simulator::post_after(Time delay, SmallFn fn) {
  SPIDER_CHECK(!delay.is_negative())
      << "post_after(" << delay.to_string() << ") with negative delay";
  if (delay.is_negative()) delay = Time::zero();
  post_at(now_ + delay, std::move(fn));
}

void Simulator::trace_queue_depth(std::int64_t ts_us) {
  if (!telemetry_.trace().enabled()) return;
  const std::size_t depth = pending_events();
  if (depth == last_traced_depth_) return;
  last_traced_depth_ = depth;
  telemetry_.trace().counter("sim.queue_depth", "sim", ts_us,
                             static_cast<std::int64_t>(depth));
}

SPIDER_HOT void Simulator::fold_instant() {
  digest_ = fold(digest_, instant_us_, instant_acc_, instant_count_);
  instant_acc_ = 0;
  instant_count_ = 0;
}

std::uint64_t Simulator::digest() const {
  if (instant_count_ == 0) return digest_;
  return fold(digest_, instant_us_, instant_acc_, instant_count_);
}

// The drain loop itself owns a zero budget: every allocation in a steady-
// state run must come from an event's fn, never the dispatch machinery.
SPIDER_HOT void Simulator::drain(Time limit) {
  stopped_ = false;
  if (config_.wheel_scheduler) {
    drain_wheel(limit);
  } else {
    drain_heap(limit);
  }
  // Drain boundary: everything bumped off the arena during this drain is
  // dead now (the lifetime contract its users sign). Pure cursor rewind —
  // capacity is retained, so a warm drain's reset never allocates.
  arena_.reset();
}

SPIDER_HOT void Simulator::drain_wheel(Time limit) {
  TimerWheel::Fired ev;
  while (!stopped_ && wheel_.pop_due(limit.us(), &ev)) {
    if (ev.token != kNoToken) {
      const bool cancelled = tokens_->cancelled(ev.token);
      // Release before running fn: pending() is false for a firing event,
      // and fn is free to schedule new events that recycle the slot (the
      // bumped generation keeps old handles inert).
      tokens_->release(ev.token);
      if (cancelled) {
        ++cancelled_;
        continue;
      }
    }
    // Event-queue monotonicity: the wheel must never surface an event behind
    // the clock — schedule_at() rejects past times, so a violation here means
    // a cascade bug, and every digest after it is junk.
    SPIDER_CHECK(ev.at_us >= now_.us())
        << "event seq " << ev.seq << " at " << ev.at_us
        << "us behind clock " << now_.to_string();
    if (instant_count_ > 0 && ev.at_us != instant_us_) {
      fold_instant();
      trace_queue_depth(ev.at_us);
      telemetry_.maybe_publish_stream(ev.at_us);
    }
    instant_us_ = ev.at_us;
    instant_acc_ += event_hash(ev.at_us, ev.seq);
    ++instant_count_;
    now_ = Time::micros(ev.at_us);
    ++executed_;
    ev.fn();
  }
}

SPIDER_HOT void Simulator::drain_heap(Time limit) {
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.at > limit) break;
    // Move the event out before popping; fn may schedule more events.
    Event ev{top.at, top.seq, top.token,
             std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    if (ev.token != kNoToken) {
      const bool cancelled = tokens_->cancelled(ev.token);
      // Release before running fn: pending() is false for a firing event,
      // and fn is free to schedule new events that recycle the slot (the
      // bumped generation keeps old handles inert).
      tokens_->release(ev.token);
      if (cancelled) {
        ++cancelled_;
        continue;
      }
    }
    // Event-queue monotonicity: the heap must never surface an event behind
    // the clock — schedule_at() rejects past times, so a violation here means
    // heap corruption or clock tampering, and every digest after it is junk.
    SPIDER_CHECK(ev.at >= now_)
        << "event seq " << ev.seq << " at " << ev.at.to_string()
        << " behind clock " << now_.to_string();
    if (instant_count_ > 0 && ev.at.us() != instant_us_) {
      fold_instant();
      trace_queue_depth(ev.at.us());
      // Live-stream cadence hook, at instant boundaries only so a publish
      // can never observe (or interleave with) a half-executed instant. One
      // branch when no stream is attached; publishing reads metrics and
      // pushes into the lock-free ring — it schedules nothing, consumes no
      // randomness, and never touches the digest.
      telemetry_.maybe_publish_stream(ev.at.us());
    }
    instant_us_ = ev.at.us();
    instant_acc_ += event_hash(ev.at.us(), ev.seq);
    ++instant_count_;
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
}

void Simulator::run_until(Time limit) {
  SPIDER_CHECK(limit >= now_) << "run_until(" << limit.to_string()
                              << ") would rewind clock at "
                              << now_.to_string();
  drain(limit);
  if (!stopped_ && now_ < limit) now_ = limit;
}

void Simulator::run_all() {
  // Clock ends at the last executed event; it does not jump to infinity.
  drain(Time::max());
}

void Simulator::advance_to(Time t) {
  SPIDER_CHECK(t >= now_) << "advance_to(" << t.to_string()
                          << ") would rewind clock at " << now_.to_string();
  if (config_.wheel_scheduler) {
    // next_due() cascades only across verified-empty space and never moves
    // the wheel clock past the probe limit, so the probe itself cannot skip
    // anything — it just proves (deterministically) that nothing is due
    // strictly before t.
    const std::int64_t due = wheel_.next_due(t.us() - 1);
    SPIDER_CHECK(due == TimerWheel::kNone)
        << "advance_to(" << t.to_string() << ") would skip event at " << due
        << "us";
  } else {
    SPIDER_CHECK(queue_.empty() || queue_.top().at >= t)
        << "advance_to(" << t.to_string() << ") would skip event at "
        << queue_.top().at.to_string();
  }
  now_ = t;
}

}  // namespace spider::sim
