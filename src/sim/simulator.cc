#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "core/check.h"

namespace spider::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFFu;
    hash *= kFnvPrime;
  }
  return hash;
}

// Hash of one executed (time, event-id) pair. Pairs within an instant are
// combined with wrapping addition (commutative), so the per-instant
// accumulator identifies the executed set regardless of pop order details.
constexpr std::uint64_t event_hash(std::int64_t at_us, std::uint64_t seq) {
  std::uint64_t h = fnv1a_u64(kFnvOffset, static_cast<std::uint64_t>(at_us));
  return fnv1a_u64(h, seq);
}

// Closes an instant: mixes (time, accumulator, count) into the digest.
constexpr std::uint64_t fold(std::uint64_t digest, std::int64_t instant_us,
                             std::uint64_t acc, std::uint64_t count) {
  digest = fnv1a_u64(digest, static_cast<std::uint64_t>(instant_us));
  digest = fnv1a_u64(digest, acc);
  return fnv1a_u64(digest, count);
}

}  // namespace

void TimerHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::pending() const {
  // use_count > 1 means the event is still in the queue holding its copy.
  return cancelled_ && !*cancelled_ && cancelled_.use_count() > 1;
}

TimerHandle Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  return TimerHandle{std::move(cancelled)};
}

TimerHandle Simulator::schedule_after(Time delay, std::function<void()> fn) {
  if (delay.is_negative())
    throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::fold_instant() {
  digest_ = fold(digest_, instant_us_, instant_acc_, instant_count_);
  instant_acc_ = 0;
  instant_count_ = 0;
}

std::uint64_t Simulator::digest() const {
  if (instant_count_ == 0) return digest_;
  return fold(digest_, instant_us_, instant_acc_, instant_count_);
}

void Simulator::drain(Time limit) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.at > limit) break;
    // Move the event out before popping; fn may schedule more events.
    Event ev{top.at, top.seq, std::move(const_cast<Event&>(top).fn),
             top.cancelled};
    queue_.pop();
    if (*ev.cancelled) continue;
    // Event-queue monotonicity: the heap must never surface an event behind
    // the clock — schedule_at() rejects past times, so a violation here means
    // heap corruption or clock tampering, and every digest after it is junk.
    SPIDER_CHECK(ev.at >= now_)
        << "event seq " << ev.seq << " at " << ev.at.to_string()
        << " behind clock " << now_.to_string();
    if (instant_count_ > 0 && ev.at.us() != instant_us_) fold_instant();
    instant_us_ = ev.at.us();
    instant_acc_ += event_hash(ev.at.us(), ev.seq);
    ++instant_count_;
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
}

void Simulator::run_until(Time limit) {
  SPIDER_CHECK(limit >= now_) << "run_until(" << limit.to_string()
                              << ") would rewind clock at "
                              << now_.to_string();
  drain(limit);
  if (!stopped_ && now_ < limit) now_ = limit;
}

void Simulator::run_all() {
  // Clock ends at the last executed event; it does not jump to infinity.
  drain(Time::max());
}

}  // namespace spider::sim
