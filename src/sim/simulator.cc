#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace spider::sim {

void TimerHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::pending() const {
  // use_count > 1 means the event is still in the queue holding its copy.
  return cancelled_ && !*cancelled_ && cancelled_.use_count() > 1;
}

TimerHandle Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  return TimerHandle{std::move(cancelled)};
}

TimerHandle Simulator::schedule_after(Time delay, std::function<void()> fn) {
  if (delay.is_negative())
    throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::drain(Time limit) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.at > limit) break;
    // Move the event out before popping; fn may schedule more events.
    Event ev{top.at, top.seq, std::move(const_cast<Event&>(top).fn),
             top.cancelled};
    queue_.pop();
    if (*ev.cancelled) continue;
    assert(ev.at >= now_);
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
}

void Simulator::run_until(Time limit) {
  drain(limit);
  if (!stopped_ && now_ < limit) now_ = limit;
}

void Simulator::run_all() {
  // Clock ends at the last executed event; it does not jump to infinity.
  drain(Time::max());
}

}  // namespace spider::sim
