// Seeded random-number streams.
//
// Every experiment takes a single uint64 seed; components derive independent
// substreams with fork(tag) so that adding a random draw in one module does
// not perturb the sequence seen by another (a common source of accidental
// non-reproducibility in simulators).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace spider::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent stream; same (seed, tag) -> same stream.
  Rng fork(std::string_view tag) const;
  Rng fork(std::uint64_t tag) const;

  std::uint64_t seed() const { return seed_; }

  // U[0,1)
  double uniform() { return unit_(engine_); }
  // U[lo,hi)
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }
  // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed durations).
  double pareto(double xm, double alpha) {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  // spider-lint: allow(det-banned-sources) every Rng constructor seeds this engine from an explicit caller-provided seed; it is never default-seeded
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace spider::sim
