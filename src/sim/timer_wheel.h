// Hierarchical timing wheel — the simulator's O(1) event scheduler.
//
// A Varghese/Lauck-style cascading wheel at 1 us granularity: six levels of
// 256 slots each, so level l buckets events by byte l of their absolute
// microsecond timestamp and the wheel spans 2^48 us (~8.9 sim-years) before
// the far-future overflow list takes over. schedule() is O(1): pick the
// highest byte where the event time differs from the wheel clock, append to
// that level's slot. Firing pops the current level-0 slot in list order;
// advancing across empty space walks per-level occupancy bitmaps (four
// 64-bit words per level), so idle gaps cost O(levels) word scans, not one
// heap sift per pending timer.
//
// Determinism contract (the property Simulator's digest gates): events fire
// in exactly (at, seq) order — the same total order the reference min-heap
// produces — without any per-pop comparison. The argument: within any slot,
// list order is seq order. Direct inserts append in schedule order (seq is
// monotone). A slot cascades exactly when the clock reaches its window base,
// and a direct insert into the lower level is only possible at or after that
// base (the byte prefix has to match the clock), i.e. strictly after the
// cascade — so cascaded nodes, themselves in seq order, always precede every
// later direct insert. Re-placement from the overflow list happens at the
// top-level window boundary under the same argument. Cancellation stays in
// the simulator's generation-token slab (lazy: cancelled nodes are dropped
// when their slot fires), so cancel is O(1) and never touches the wheel.
//
// Nodes are pooled: a slab of intrusive singly-linked nodes with a free
// list, so warm schedule/fire/cancel performs no heap allocation (proven
// under core::ScopedAllocGuard in tests/timer_wheel_test.cc). The wheel
// clock may lag the simulator clock (it advances only while searching for
// due work); correctness needs only clock <= every WHEEL-resident
// timestamp.
//
// The one place the wheel clock can instead pass the SIM clock is lazy
// cancellation: popping a run of cancelled events advances the wheel cursor
// to their timestamps while now() stays put (nothing executed). A
// subsequent schedule between the two clocks — legal for the simulator,
// behind the cursor for the wheel — lands in a small (at, seq) min-heap
// (late_) that drains before the wheel: every late timestamp is strictly
// below every wheel-resident one, so the global fire order is still exactly
// (at, seq). Real runs rarely touch it (cancellations come from responses,
// which execute and drag now() along); all-cancelled churn is its stress.
//
// Bounded-horizon interplay: phy::ShardedWorld advances each shard in
// conservative-lookahead windows of ~229 us, entirely inside one level-1
// window — a whole shard window costs at most one cascade, and the
// run_until(end-1)/advance_to(end) barrier dance maps onto next_due()'s
// bitmap walk with no drain-to-empty scans.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.h"

namespace spider::sim {

class TimerWheel {
 public:
  // "No tick" sentinel for next_due(); also the pop_due() miss marker.
  static constexpr std::int64_t kNone = -1;

  // One event popped out of the wheel, ready to execute.
  struct Fired {
    std::int64_t at_us = 0;
    std::uint64_t seq = 0;
    std::uint32_t token = 0;
    SmallFn fn;
  };

  TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Appends an event. at_us may be behind clock() (the late-insert case in
  // the class comment) but must be at or after the latest pop_due() result.
  // seq values must be strictly increasing across calls — they are what
  // same-instant FIFO ordering hangs on.
  void schedule(std::int64_t at_us, std::uint64_t seq, std::uint32_t token,
                SmallFn fn);

  // Pops the earliest pending event with timestamp <= limit_us into *out.
  // Returns false (leaving the wheel untouched beyond lazily-performed
  // cascades) when nothing is due by the limit. Events sharing a timestamp
  // pop in seq order.
  bool pop_due(std::int64_t limit_us, Fired* out);

  // Timestamp of the earliest pending event if it is <= limit_us, else
  // kNone. May cascade internally (deterministically); never pops.
  std::int64_t next_due(std::int64_t limit_us);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::int64_t clock() const { return clock_; }

  // Observability: lifetime cascade count and the pooled-slab footprint.
  std::uint64_t cascades() const { return cascades_; }
  std::size_t node_capacity() const { return nodes_.capacity(); }

 private:
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;           // 256
  static constexpr int kLevels = 6;                       // spans 2^48 us
  static constexpr int kWords = kSlots / 64;              // bitmap words/level
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kSpanBits = kSlotBits * kLevels;   // 48

  struct Node {
    std::int64_t at_us = 0;
    std::uint64_t seq = 0;
    std::uint32_t token = 0;
    std::uint32_t next = kNil;
    SmallFn fn;
  };

  std::uint32_t acquire_node();
  void release_node(std::uint32_t idx);
  // The late_ (at, seq) min-heap: inserts behind the wheel cursor.
  bool late_before(std::uint32_t a, std::uint32_t b) const;
  void late_push(std::uint32_t idx);
  std::uint32_t late_pop();
  // Files the node into (level, slot) by byte prefix against clock_, or into
  // the overflow list when it lies beyond the top-level window.
  void place(std::uint32_t idx);
  void append(int level, int slot, std::uint32_t idx);
  // Empties (level, slot) and re-places every node one level down, in list
  // (= seq) order. Only legal once the clock sits at the slot's window base.
  void cascade(int level, int slot);
  // Moves overflow nodes whose top bits now match the clock into the levels,
  // preserving seq order.
  void refill_from_overflow();
  // Advances the clock to the earliest due tick <= limit_us (cascading along
  // the way) and returns it, or returns kNone with the clock <= limit_us.
  std::int64_t find_due(std::int64_t limit_us);

  int first_set_at_or_after(int level, int from) const;
  void set_bit(int level, int slot) {
    occ_[level][slot >> 6] |= 1ull << (slot & 63);
  }
  void clear_bit(int level, int slot) {
    occ_[level][slot >> 6] &= ~(1ull << (slot & 63));
  }
  std::uint32_t& head(int level, int slot) {
    return head_[level * kSlots + slot];
  }
  std::uint32_t& tail(int level, int slot) {
    return tail_[level * kSlots + slot];
  }

  // Slot lists as parallel index arrays (fixed footprint, no per-slot
  // containers): 6 x 256 head/tail pairs.
  std::uint32_t head_[kLevels * kSlots];
  std::uint32_t tail_[kLevels * kSlots];
  std::uint64_t occ_[kLevels][kWords] = {};
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_list_;
  // Far-future events (beyond 2^48 us of the clock's window), in insertion
  // (= seq) order; re-scanned only when every level runs dry.
  std::vector<std::uint32_t> overflow_;
  // Events scheduled behind the wheel cursor (see class comment): a binary
  // min-heap on (at, seq) over node indices, drained before the wheel.
  std::vector<std::uint32_t> late_;
  std::int64_t clock_ = 0;
  std::size_t size_ = 0;
  std::uint64_t cascades_ = 0;
};

}  // namespace spider::sim
