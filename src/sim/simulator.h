// Deterministic discrete-event simulator.
//
// A Simulator owns an ordered queue of (time, sequence, callback) events —
// a hierarchical timing wheel by default (sim/timer_wheel.h; O(1) schedule
// and cancel), with the original (at, seq) min-heap retained behind
// SimulatorConfig::wheel_scheduler=false as the digest-equivalent reference.
// Events scheduled for the same instant fire in scheduling order, which makes
// runs bit-for-bit reproducible for a fixed seed. Timers are cancellable via
// the handle returned from schedule_at()/schedule_after().
//
// Hot-path design: callbacks are stored in SmallFn (48-byte inline buffer, no
// heap allocation for the common lambda captures), and cancellation state
// lives in a pooled token slab indexed by slot + generation counter instead
// of a per-event make_shared<bool>. Scheduling an event therefore performs no
// per-event heap allocation once the queue and slab have warmed up.
//
// Determinism is a *checked* property, not just a design intent: every
// executed event folds its (time, sequence) pair into a running 64-bit
// digest (see digest()), and tests/determinism_test.cc gates on identical
// digests across repeated seeded runs. Threading contract: a Simulator and
// everything scheduled on it belong to exactly one thread; parallelism comes
// from running independent simulators on independent threads (see
// core::SweepRunner), never from sharing one.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/arena.h"
#include "sim/small_fn.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"
#include "telemetry/hub.h"

namespace spider::sim {

class Simulator;

// Scheduler selection. The hierarchical timing wheel (sim/timer_wheel.h) is
// the production event queue: O(1) schedule and O(1) lazy cancel. The
// (at, seq) min-heap it replaced stays available as the reference path —
// both produce bit-identical digests (gated in tests/timer_wheel_test.cc
// full-stack: drive, fleet, sharded K ∈ {1,2,4,8}), so any divergence is a
// scheduler bug, not a scenario change.
struct SimulatorConfig {
  bool wheel_scheduler = true;
};

namespace detail {

// Pooled cancellation tokens, one slab per Simulator. A token is a (slot,
// generation) pair: slots are recycled through a free list and the slot's
// generation is bumped on every release, so a stale TimerHandle referring to
// a recycled slot simply mismatches and becomes inert. This replaces the old
// per-event shared_ptr<bool> (one heap allocation + refcount per event) with
// plain vector indexing.
struct TokenSlab {
  struct Slot {
    std::uint32_t generation = 0;
    bool cancelled = false;
    bool active = false;
  };

  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_list;
  // Set by ~Simulator so handles that outlive the simulator report not
  // pending (mirrors the old shared_ptr behaviour where the queue's copy
  // vanished with the simulator).
  bool dead = false;

  std::uint32_t acquire();
  void release(std::uint32_t slot);
  bool cancelled(std::uint32_t slot) const { return slots[slot].cancelled; }
  bool matches(std::uint32_t slot, std::uint32_t generation) const {
    return !dead && slot < slots.size() && slots[slot].active &&
           slots[slot].generation == generation;
  }
};

}  // namespace detail

// Cancellable reference to a scheduled event. Default-constructed handles are
// inert; cancel() after the event has fired (or on an inert handle) is a
// harmless no-op, so owners can cancel unconditionally in destructors.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel();
  // True while the underlying event is still queued and not cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  TimerHandle(std::shared_ptr<detail::TokenSlab> slab, std::uint32_t slot,
              std::uint32_t generation)
      : slab_(std::move(slab)), slot_(slot), generation_(generation) {}

  std::shared_ptr<detail::TokenSlab> slab_;  // shared with the Simulator
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator();
  explicit Simulator(SimulatorConfig config);
  ~Simulator();

  // Non-copyable: handles and callbacks capture `this`.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` at absolute time `at`. Scheduling in the past is an
  // invariant violation (SPIDER_CHECK, fatal by default); under
  // check::Policy::kLogAndCount the event is clamped to now() and survives.
  TimerHandle schedule_at(Time at, SmallFn fn);
  // Schedules `fn` at now() + delay; negative delays violate the same check
  // and clamp to zero under kLogAndCount.
  TimerHandle schedule_after(Time delay, SmallFn fn);

  // Fire-and-forget variants: no cancellation token is allocated and no
  // handle is returned, which makes these the cheapest way to schedule.
  // Most events in a vehicular run — frame deliveries, beacon ticks, DHCP
  // server responses — are never cancelled; use these for them.
  void post_at(Time at, SmallFn fn);
  void post_after(Time delay, SmallFn fn);

  // Runs events until the queue drains or the limit is hit. Advances now()
  // to the limit even if the queue drains earlier, so back-to-back run_for()
  // calls tile time exactly.
  void run_until(Time limit);
  void run_for(Time duration) { run_until(now_ + duration); }
  // Runs until the queue is completely empty; now() ends at the last event.
  void run_all();

  // Jumps now() forward to `t` WITHOUT executing anything. Only legal when no
  // queued event is due before `t` — the sharded coordinator uses this to
  // land every shard clock exactly on a window barrier after running the
  // window strictly-before it (see phy::ShardedWorld), so events scheduled
  // exactly at a barrier execute after the barrier's phases for every shard
  // count. An earlier pending event is an invariant violation (SPIDER_CHECK).
  void advance_to(Time t);

  // Makes run_* return after the current event completes; now() is left at
  // the interrupting event's timestamp.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const {
    return config_.wheel_scheduler ? wheel_.size() : queue_.size();
  }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_posted() const { return posted_; }
  std::uint64_t events_cancelled() const { return cancelled_; }
  std::size_t queue_depth_high_water() const { return depth_high_water_; }

  const SimulatorConfig& config() const { return config_; }
  // Lifetime cascade count of the wheel scheduler (0 on the heap path).
  std::uint64_t scheduler_cascades() const { return wheel_.cascades(); }

  // Per-world telemetry (metrics registry + trace recorder). The event-queue
  // counters above are plain members published through a Hub collector at
  // snapshot time, so the dispatch loop pays nothing for the registry.
  telemetry::Hub& telemetry() { return telemetry_; }
  const telemetry::Hub& telemetry() const { return telemetry_; }

  // Per-world bump arena for drain-scoped transients (delivery candidate
  // scratch, RadioMove batches, staging buffers). Reset at the END of every
  // drain, so nothing allocated from it may outlive the drain that made it;
  // per-event users should take a core::Arena::Scope. See DESIGN.md
  // "Memory layout" for the lifetime rules.
  core::Arena& arena() { return arena_; }

  // Running digest (splitmix64-style avalanche mix) over executed
  // (time, event-id) pairs. Two runs of the same scenario must produce
  // identical digests or the simulator is not deterministic. Events that
  // share an instant are folded commutatively, so the digest identifies the
  // *set* of events executed at each time — the property replays depend on —
  // independent of how a scenario happened to interleave its same-timestamp
  // insertions. Digests have no golden values: only run-to-run equality is
  // meaningful, so the mix function may change between revisions.
  std::uint64_t digest() const;

 private:
  void drain(Time limit);
  void drain_heap(Time limit);
  void drain_wheel(Time limit);
  void fold_instant();
  // Samples pending_events() onto the sim.queue_depth counter track when
  // tracing is on and the depth changed since the last sample (one sample
  // per instant boundary at most, so the track stays readable).
  void trace_queue_depth(std::int64_t ts_us);

  // Sentinel token for fire-and-forget events (post_at/post_after).
  static constexpr std::uint32_t kNoToken = 0xFFFFFFFFu;

  struct Event {
    Time at;
    std::uint64_t seq;
    std::uint32_t token;  // slot in the simulator's TokenSlab, or kNoToken
    SmallFn fn;
    // min-heap on (at, seq)
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Event-queue accounting: hot members, kept adjacent to the queue state
  // they travel with; published as sim.* metrics by the collector the
  // constructor registers.
  void note_push() {
    ++posted_;
    const std::size_t depth = pending_events();
    if (depth > depth_high_water_) depth_high_water_ = depth;
  }

  SimulatorConfig config_;
  // Production scheduler (config_.wheel_scheduler, the default) …
  TimerWheel wheel_;
  // … and the reference (at, seq) min-heap, kept for digest cross-checks and
  // as the baseline the perf floors are measured against. Exactly one of the
  // two ever holds events.
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::shared_ptr<detail::TokenSlab> tokens_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t depth_high_water_ = 0;
  // Last value emitted on the queue-depth counter track (-1 = none yet).
  std::size_t last_traced_depth_ = static_cast<std::size_t>(-1);
  bool stopped_ = false;
  telemetry::Hub telemetry_;
  core::Arena arena_;

  // Determinism digest state: digest_ covers all closed instants; the
  // instant_* fields accumulate the (still open) current instant.
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  // arbitrary nonzero basis
  std::int64_t instant_us_ = 0;
  std::uint64_t instant_acc_ = 0;
  std::uint64_t instant_count_ = 0;
};

}  // namespace spider::sim
