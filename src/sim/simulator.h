// Deterministic discrete-event simulator.
//
// A Simulator owns a priority queue of (time, sequence, callback) events.
// Events scheduled for the same instant fire in scheduling order, which makes
// runs bit-for-bit reproducible for a fixed seed. Timers are cancellable via
// the handle returned from schedule_at()/schedule_after().
//
// Determinism is a *checked* property, not just a design intent: every
// executed event folds its (time, sequence) pair into a running FNV-1a
// digest (see digest()), and tests/determinism_test.cc gates on identical
// digests across repeated seeded runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace spider::sim {

class Simulator;

// Cancellable reference to a scheduled event. Default-constructed handles are
// inert; cancel() after the event has fired (or on an inert handle) is a
// harmless no-op, so owners can cancel unconditionally in destructors.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel();
  // True while the underlying event is still queued and not cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;  // shared with the queued event
};

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: handles and callbacks capture `this`.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` at absolute time `at` (must be >= now()).
  TimerHandle schedule_at(Time at, std::function<void()> fn);
  // Schedules `fn` at now() + delay (delay must be >= 0).
  TimerHandle schedule_after(Time delay, std::function<void()> fn);

  // Runs events until the queue drains or the limit is hit. Advances now()
  // to the limit even if the queue drains earlier, so back-to-back run_for()
  // calls tile time exactly.
  void run_until(Time limit);
  void run_for(Time duration) { run_until(now_ + duration); }
  // Runs until the queue is completely empty; now() ends at the last event.
  void run_all();

  // Makes run_* return after the current event completes; now() is left at
  // the interrupting event's timestamp.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  // Running FNV-1a digest over executed (time, event-id) pairs. Two runs of
  // the same scenario must produce identical digests or the simulator is not
  // deterministic. Events that share an instant are folded commutatively, so
  // the digest identifies the *set* of events executed at each time — the
  // property replays depend on — independent of how a scenario happened to
  // interleave its same-timestamp insertions.
  std::uint64_t digest() const;

 private:
  void drain(Time limit);
  void fold_instant();

  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    // min-heap on (at, seq)
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;

  // Determinism digest state: digest_ covers all closed instants; the
  // instant_* fields accumulate the (still open) current instant.
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::int64_t instant_us_ = 0;
  std::uint64_t instant_acc_ = 0;
  std::uint64_t instant_count_ = 0;
};

}  // namespace spider::sim
