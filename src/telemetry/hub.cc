#include "telemetry/hub.h"

#include "telemetry/stream_exporter.h"

namespace spider::telemetry {

void Hub::set_stream(StreamPublisher* stream, std::int64_t cadence_us) {
#if SPIDER_TELEMETRY
  stream_ = stream;
  stream_cadence_us_ = cadence_us > 0 ? cadence_us : 1;
  stream_next_us_ = 0;
  trace_.set_stream(stream);
#else
  (void)stream;
  (void)cadence_us;
#endif
}

void Hub::publish_stream(std::int64_t ts_us) {
#if SPIDER_TELEMETRY
  run_collectors();
  stream_->publish_metrics(ts_us, metrics_);
  // Next boundary strictly after ts_us, aligned to the cadence grid so the
  // publish times are a deterministic function of simulated time alone.
  stream_next_us_ = ts_us - ts_us % stream_cadence_us_ + stream_cadence_us_;
#else
  (void)ts_us;
#endif
}

}  // namespace spider::telemetry
