// Minimal JSON reader for telemetry artifacts.
//
// Parses exactly the JSON this repo emits (run-report JSONL lines, Chrome
// trace files, BENCH_*.json) back into a DOM — what spider-trace and the
// schema round-trip tests consume. Not a general-purpose parser: no \uXXXX
// decoding (the emitters never produce it), numbers are doubles, input must
// be a single value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace spider::telemetry {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered object members (duplicates keep the last value).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  // Convenience accessors with defaults.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
};

// Parses one JSON value (surrounding whitespace allowed). Returns false on
// malformed input or trailing garbage; `error` (optional) gets a short
// byte-offset message.
bool parse_json(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace spider::telemetry
