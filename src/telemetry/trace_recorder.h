// Structured trace recorder — Chrome trace-event JSON out of simulated time.
//
// Records complete spans ('X'), instant events ('i'), and counter samples
// ('C', rendered by Perfetto as stepped graphs) into a bounded ring:
// when the ring is full the *oldest* entry is overwritten and a dropped
// counter advances, so a million-event run costs a flat, configured amount
// of memory and the exported file always holds the most recent window.
// to_json() renders the standard {"traceEvents":[...]} envelope that both
// chrome://tracing and Perfetto load directly; timestamps are microseconds
// (sim::Time's native unit), tracks map to Chrome "tid"s and can be named
// via name_track() metadata records.
//
// Cost model: recording is OFF by default — every record call starts with an
// inlined enabled() check, so the tracing-disabled hot path pays one
// predictable branch (and nothing at all when SPIDER_TELEMETRY is compiled
// out). Name/category/arg-name strings are required to be string literals
// (they are stored as const char*, never copied); every call site in the
// tree complies.
#pragma once

#include "telemetry/metrics.h"  // for the SPIDER_TELEMETRY default

#include <cstdint>
#include <string>
#include <vector>

namespace spider::telemetry {

class StreamPublisher;

struct TraceEvent {
  const char* name = "";      // string literal
  const char* category = "";  // string literal
  char phase = 'X';           // 'X' complete, 'i' instant, 'C' counter
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;    // 'X' only
  std::uint32_t track = 0;    // rendered as Chrome tid
  const char* arg_name = nullptr;  // optional single integer arg (literal)
  std::int64_t arg_value = 0;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
#if SPIDER_TELEMETRY
    enabled_ = on;
#else
    (void)on;
#endif
  }

  // Ring budget in events. Shrinking drops the oldest entries.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  void complete(const char* name, const char* category, std::int64_t ts_us,
                std::int64_t dur_us, std::uint32_t track,
                const char* arg_name = nullptr, std::int64_t arg_value = 0) {
    if (!enabled_) return;
    push(TraceEvent{name, category, 'X', ts_us, dur_us, track, arg_name,
                    arg_value});
  }

  void instant(const char* name, const char* category, std::int64_t ts_us,
               std::uint32_t track, const char* arg_name = nullptr,
               std::int64_t arg_value = 0) {
    if (!enabled_) return;
    push(TraceEvent{name, category, 'i', ts_us, 0, track, arg_name,
                    arg_value});
  }

  // Counter sample ('C'): Perfetto renders each counter name as a stepped
  // graph alongside the span tracks — the export shape for gauges like
  // queue depth or PSM occupancy. `track` distinguishes multiple series
  // under one name (serialized as the Chrome "id" field; 0 = the sole
  // unkeyed series), e.g. one PSM-occupancy line per AP.
  void counter(const char* name, const char* category, std::int64_t ts_us,
               std::int64_t value, std::uint32_t track = 0) {
    if (!enabled_) return;
    push(TraceEvent{name, category, 'C', ts_us, 0, track, "value", value});
  }

  // Attaches a display name to a track (emitted as a thread_name metadata
  // record). Recorded regardless of enabled() so tracks registered during
  // setup survive a later enable.
  void name_track(std::uint32_t track, const char* name);

  // Live-stream tee: while set, every recorded event is also pushed to the
  // stream publisher (which never blocks — see spsc_ring.h). Wired by
  // Hub::set_stream; nullptr detaches.
  void set_stream(StreamPublisher* stream) { stream_ = stream; }

  std::size_t size() const { return buffer_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  // Events overwritten by the ring (recorded - retained).
  std::uint64_t dropped() const { return dropped_; }

  // Events in chronological (recording) order, oldest first.
  std::vector<TraceEvent> events_in_order() const;

  // {"traceEvents":[...]} — chrome://tracing / Perfetto loadable.
  std::string to_json() const;
  bool write_file(const std::string& path) const;

  void clear();

 private:
  void push(const TraceEvent& ev);

  bool enabled_ = false;
  StreamPublisher* stream_ = nullptr;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<TraceEvent> buffer_;
  std::size_t next_ = 0;  // ring write cursor once buffer_ is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::pair<std::uint32_t, const char*>> track_names_;
};

}  // namespace spider::telemetry
