#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>

namespace spider::telemetry {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      fail("malformed value");
    } else {
      skip_ws();
      if (pos_ != text_.size()) fail("trailing garbage");
    }
    if (failed_ && error != nullptr) {
      *error = message_ + " at byte " + std::to_string(pos_);
    }
    return !failed_;
  }

 private:
  void fail(const char* message) {
    if (!failed_) {
      failed_ = true;
      message_ = message;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          default: return false;  // \uXXXX unsupported (never emitted)
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  bool parse_value(JsonValue& out) {
    if (failed_ || depth_ > 64) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (literal("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    ++depth_;
    if (!consume('{')) return false;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    ++depth_;
    if (!consume('[')) return false;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool failed_ = false;
  std::string message_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // duplicates: last one wins
  }
  return found;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string : fallback;
}

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  Parser parser(text);
  return parser.parse(out, error);
}

}  // namespace spider::telemetry
