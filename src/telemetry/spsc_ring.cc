#include "telemetry/spsc_ring.h"

namespace spider::telemetry {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SpscRing::SpscRing(std::size_t capacity)
    : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      buffer_(std::make_unique<StreamRecord[]>(capacity_)) {}

}  // namespace spider::telemetry
