#include "telemetry/metrics.h"

namespace spider::telemetry {
namespace {

// bounds[i] = upper bound of bucket i (i in [0, kSpan]): 1e-6 * 2^i. Exact
// doublings, computed once.
const std::array<double, Histogram::kSpan + 1>& bucket_bounds() {
  static const std::array<double, Histogram::kSpan + 1> bounds = [] {
    std::array<double, Histogram::kSpan + 1> b{};
    double v = Histogram::kFirstBound;
    for (std::size_t i = 0; i <= Histogram::kSpan; ++i) {
      b[i] = v;
      v *= 2.0;
    }
    return b;
  }();
  return bounds;
}

template <typename Sample, typename Merge>
void merge_sorted(std::vector<Sample>& into, const std::vector<Sample>& from,
                  const Merge& merge) {
  std::vector<Sample> out;
  out.reserve(into.size() + from.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() && j < from.size()) {
    if (into[i].name < from[j].name) {
      out.push_back(std::move(into[i++]));
    } else if (from[j].name < into[i].name) {
      out.push_back(from[j++]);
    } else {
      Sample merged = std::move(into[i++]);
      merge(merged, from[j++]);
      out.push_back(std::move(merged));
    }
  }
  while (i < into.size()) out.push_back(std::move(into[i++]));
  while (j < from.size()) out.push_back(from[j++]);
  into = std::move(out);
}

}  // namespace

double Histogram::bucket_lower_bound(std::size_t i) {
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return bucket_bounds()[i - 1];
}

double Histogram::bucket_upper_bound(std::size_t i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_bounds()[i];
}

std::size_t Histogram::bucket_index(double v) {
  const auto& bounds = bucket_bounds();
  // NaN and sub-minimum values (incl. negatives) land in the underflow
  // bucket; the comparison is written so NaN fails it.
  if (!(v >= bounds[0])) return 0;
  if (v >= bounds[kSpan]) return kBuckets - 1;
  // First bound strictly greater than v; v >= bounds[0] and v < bounds[kSpan]
  // guarantee the result is in [1, kSpan].
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  return static_cast<std::size_t>(it - bounds.begin());
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      if (i == 0) return min();
      if (i == kBuckets - 1) return max();
      return bucket_upper_bound(i);
    }
  }
  return max();
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterSample& a, const CounterSample& b) {
                 a.value += b.value;
               });
  merge_sorted(gauges, other.gauges, [](GaugeSample& a, const GaugeSample& b) {
    a.value += b.value;
    a.high_water = std::max(a.high_water, b.high_water);
  });
  merge_sorted(histograms, other.histograms,
               [](HistogramSample& a, const HistogramSample& b) {
                 if (b.count == 0) return;
                 if (a.count == 0) {
                   a.min = b.min;
                   a.max = b.max;
                 } else {
                   a.min = std::min(a.min, b.min);
                   a.max = std::max(a.max, b.max);
                 }
                 a.count += b.count;
                 a.sum += b.sum;
                 // Sorted-by-index sparse union.
                 std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
                 merged.reserve(a.buckets.size() + b.buckets.size());
                 std::size_t i = 0;
                 std::size_t j = 0;
                 while (i < a.buckets.size() && j < b.buckets.size()) {
                   if (a.buckets[i].first < b.buckets[j].first) {
                     merged.push_back(a.buckets[i++]);
                   } else if (b.buckets[j].first < a.buckets[i].first) {
                     merged.push_back(b.buckets[j++]);
                   } else {
                     merged.emplace_back(a.buckets[i].first,
                                         a.buckets[i].second +
                                             b.buckets[j].second);
                     ++i;
                     ++j;
                   }
                 }
                 while (i < a.buckets.size()) merged.push_back(a.buckets[i++]);
                 while (j < b.buckets.size()) merged.push_back(b.buckets[j++]);
                 a.buckets = std::move(merged);
               });
}

namespace {

template <typename Sample>
const Sample* find_by_name(const std::vector<Sample>& v,
                           std::string_view name) {
  for (const Sample& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(CounterSample{name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, g.value(), g.high_water()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) > 0) {
        s.buckets.emplace_back(static_cast<std::uint32_t>(i), h.bucket(i));
      }
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h = Histogram{};
}

Registry& process_registry() {
  static Registry* registry = new Registry;  // leaked: outlives all users
  return *registry;
}

std::mutex& process_registry_mutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

}  // namespace spider::telemetry
