// Run-report serialization: one JSONL line per replication plus one sweep
// summary line (schema "spider-telemetry-v1").
//
// Every field is deterministic for a fixed (config, seed): counters and
// histograms come from the per-world registry, digests from the simulator,
// and no wall-clock value is ever written — which is what lets the
// determinism suite assert byte-identical exports across repeated runs and
// across 1-vs-8-thread sweeps. The sweep wiring (which runs produced which
// snapshot) lives in core/sweep.h; this layer only knows how to render.
//
// Line shapes:
//   {"schema":"spider-telemetry-v1","kind":"run","label":L,"run":i,
//    "seed":s,"digest":"0x…","events":n,"counters":{…},"gauges":{…},
//    "histograms":{…}}
//   {"schema":"spider-telemetry-v1","kind":"sweep","label":L,"runs":N,
//    "combined_digest":"0x…","merged":{…},"process":{…}}
// where "process" snapshots the process-wide registry (check-failure
// counters) and histogram buckets serialize sparsely as [[index,count],…].
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace spider::telemetry {

inline constexpr std::string_view kRunReportSchema = "spider-telemetry-v1";

// Schema tag of the live-stream JSONL lines the StreamExporter writes (see
// stream_exporter.h for the line shapes). Stream lines are a superset
// shape: readers of either schema must tolerate unknown keys (the JSON
// reader in json.h does), so a -v1 consumer can skim -stream-v1 files.
inline constexpr std::string_view kStreamSchema = "spider-telemetry-stream-v1";

// Low-level JSON fragment appenders shared by the run-report renderer, the
// stream exporter, and tools. Deterministic for a given value (doubles
// render as %.17g; hex64 renders as a quoted "0x%016x" string).
void append_json_quoted(std::string& out, std::string_view s);
void append_json_u64(std::string& out, std::uint64_t v);
void append_json_i64(std::string& out, std::int64_t v);
void append_json_double(std::string& out, double v);
void append_json_hex64(std::string& out, std::uint64_t v);

// Renders the three metric maps: "counters":{...},"gauges":{...},
// "histograms":{...} (no surrounding braces), appended to `out`.
void append_snapshot_json(std::string& out, const MetricsSnapshot& snapshot);

// One "kind":"run" line, without trailing newline.
std::string run_report_line(std::string_view label, std::size_t run_index,
                            std::uint64_t seed, std::uint64_t digest,
                            std::uint64_t events_executed,
                            const MetricsSnapshot& snapshot);

// One "kind":"sweep" summary line, without trailing newline. `merged` must
// be the submission-order merge of the per-run snapshots; the process-wide
// registry (check failures) is snapshotted inside.
std::string sweep_report_line(std::string_view label, std::size_t runs,
                              std::uint64_t combined_digest,
                              const MetricsSnapshot& merged);

// Appends `text` to the file at `path` (creating it if needed). Returns
// success. JSONL appends are line-atomic at the sizes we write.
bool append_to_file(const std::string& path, std::string_view text);

}  // namespace spider::telemetry
