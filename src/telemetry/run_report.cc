#include "telemetry/run_report.h"

#include <cstdio>
#include <mutex>

namespace spider::telemetry {

void append_json_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_json_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_json_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

// Shortest-round-trip formatting would be ideal; %.17g is deterministic for
// a given value, which is the property the export actually needs.
void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_hex64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(v));
  out += buf;
}

namespace {

void append_histogram(std::string& out, const HistogramSample& h) {
  out += "{\"count\":";
  append_json_u64(out, h.count);
  out += ",\"sum\":";
  append_json_double(out, h.sum);
  out += ",\"min\":";
  append_json_double(out, h.min);
  out += ",\"max\":";
  append_json_double(out, h.max);
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [index, count] : h.buckets) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('[');
    append_json_u64(out, index);
    out.push_back(',');
    append_json_u64(out, count);
    out.push_back(']');
  }
  out += "]}";
}

}  // namespace

void append_snapshot_json(std::string& out, const MetricsSnapshot& snapshot) {
  out += "\"counters\":{";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_quoted(out, c.name);
    out.push_back(':');
    append_json_u64(out, c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_quoted(out, g.name);
    out += ":{\"value\":";
    append_json_i64(out, g.value);
    out += ",\"high_water\":";
    append_json_i64(out, g.high_water);
    out += "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_quoted(out, h.name);
    out.push_back(':');
    append_histogram(out, h);
  }
  out += "}";
}

std::string run_report_line(std::string_view label, std::size_t run_index,
                            std::uint64_t seed, std::uint64_t digest,
                            std::uint64_t events_executed,
                            const MetricsSnapshot& snapshot) {
  std::string out = "{\"schema\":";
  append_json_quoted(out, kRunReportSchema);
  out += ",\"kind\":\"run\",\"label\":";
  append_json_quoted(out, label);
  out += ",\"run\":";
  append_json_u64(out, run_index);
  out += ",\"seed\":";
  append_json_u64(out, seed);
  out += ",\"digest\":";
  append_json_hex64(out, digest);
  out += ",\"events\":";
  append_json_u64(out, events_executed);
  out.push_back(',');
  append_snapshot_json(out, snapshot);
  out.push_back('}');
  return out;
}

std::string sweep_report_line(std::string_view label, std::size_t runs,
                              std::uint64_t combined_digest,
                              const MetricsSnapshot& merged) {
  std::string out = "{\"schema\":";
  append_json_quoted(out, kRunReportSchema);
  out += ",\"kind\":\"sweep\",\"label\":";
  append_json_quoted(out, label);
  out += ",\"runs\":";
  append_json_u64(out, runs);
  out += ",\"combined_digest\":";
  append_json_hex64(out, combined_digest);
  out += ",\"merged\":{";
  append_snapshot_json(out, merged);
  out += "},\"process\":{";
  {
    std::lock_guard<std::mutex> lock(process_registry_mutex());
    const MetricsSnapshot process = process_registry().snapshot();
    append_snapshot_json(out, process);
  }
  out += "}}";
  return out;
}

bool append_to_file(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace spider::telemetry
