#include "telemetry/stream_exporter.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "telemetry/hub.h"
#include "telemetry/run_report.h"

namespace spider::telemetry {

// ---------------------------------------------------------------------------
// StreamPublisher — producer side (world thread).

void StreamPublisher::begin_run(std::int64_t ts_us, std::uint64_t seed) {
  StreamRecord r;
  r.kind = StreamRecordKind::kRunBegin;
  r.ts_us = ts_us;
  r.u = seed;
  push_control(r);
}

void StreamPublisher::end_run(std::int64_t ts_us, std::uint64_t digest,
                              std::uint64_t events_executed,
                              std::uint64_t trace_dropped) {
  StreamRecord r;
  r.kind = StreamRecordKind::kRunEnd;
  r.ts_us = ts_us;
  r.u = digest;
  r.a = static_cast<std::int64_t>(events_executed);
  r.b = static_cast<std::int64_t>(trace_dropped);
  push_control(r);
}

void StreamPublisher::push_control(const StreamRecord& record) {
  // Lifecycle records are too important to drop on the first try but must
  // still never block the simulation indefinitely: bounded retries with a
  // yield give the exporter thread a chance to drain, then we drop+count
  // like any other record.
  for (int i = 0; i < 1024; ++i) {
    if (ring_->try_push(record)) return;
    std::this_thread::yield();
  }
  ring_->push_or_drop(record);
}

void StreamPublisher::resync(const Registry& registry) {
  // Cold path: a metric appeared since the last publish (or this is the
  // baseline publish). Merge the sorted tracked vectors with the registry's
  // lexicographic iteration, assigning ids to new names and emitting a
  // kMetricDefine carrying the current value for each. Registries never
  // remove metrics, so merge = "keep matches, insert the rest".
  std::vector<TrackedCounter> counters;
  counters.reserve(registry.counters().size());
  std::size_t k = 0;
  for (const auto& entry : registry.counters()) {
    if (k < counters_.size() && counters_[k].name == &entry.first) {
      counters.push_back(counters_[k]);
      ++k;
      continue;
    }
    TrackedCounter t;
    t.name = &entry.first;
    t.id = next_id_++;
    t.last = entry.second.value();
    counters.push_back(t);
    StreamRecord r;
    r.kind = StreamRecordKind::kMetricDefine;
    r.metric_kind = StreamMetricKind::kCounter;
    r.id = t.id;
    r.name = entry.first.c_str();
    r.u = t.last;
    push_control(r);
  }
  counters_ = std::move(counters);

  std::vector<TrackedGauge> gauges;
  gauges.reserve(registry.gauges().size());
  k = 0;
  for (const auto& entry : registry.gauges()) {
    if (k < gauges_.size() && gauges_[k].name == &entry.first) {
      gauges.push_back(gauges_[k]);
      ++k;
      continue;
    }
    TrackedGauge t;
    t.name = &entry.first;
    t.id = next_id_++;
    t.last_value = entry.second.value();
    t.last_high_water = entry.second.high_water();
    gauges.push_back(t);
    StreamRecord r;
    r.kind = StreamRecordKind::kMetricDefine;
    r.metric_kind = StreamMetricKind::kGauge;
    r.id = t.id;
    r.name = entry.first.c_str();
    r.a = t.last_value;
    r.b = t.last_high_water;
    push_control(r);
  }
  gauges_ = std::move(gauges);

  std::vector<TrackedHistogram> histograms;
  histograms.reserve(registry.histograms().size());
  k = 0;
  for (const auto& entry : registry.histograms()) {
    if (k < histograms_.size() && histograms_[k].name == &entry.first) {
      histograms.push_back(histograms_[k]);
      ++k;
      continue;
    }
    TrackedHistogram t;
    t.name = &entry.first;
    t.id = next_id_++;
    t.last_count = entry.second.count();
    histograms.push_back(t);
    StreamRecord r;
    r.kind = StreamRecordKind::kMetricDefine;
    r.metric_kind = StreamMetricKind::kHistogram;
    r.id = t.id;
    r.name = entry.first.c_str();
    r.u = t.last_count;
    r.d = entry.second.sum();
    push_control(r);
  }
  histograms_ = std::move(histograms);
}

SPIDER_HOT void StreamPublisher::publish_metrics(std::int64_t ts_us,
                                                 const Registry& registry) {
  // Warm path precondition: metric sets unchanged since the last publish —
  // then the k-th map entry IS tracked[k] (both lexicographic) and the walk
  // is a zero-lookup, allocation-free lockstep scan over cumulative values.
  if (registry.counters().size() != counters_.size() ||
      registry.gauges().size() != gauges_.size() ||
      registry.histograms().size() != histograms_.size()) {
    resync(registry);
  }

  StreamRecord r;
  r.kind = StreamRecordKind::kPublishBegin;
  r.ts_us = ts_us;
  emit(r);

  std::size_t k = 0;
  for (const auto& entry : registry.counters()) {
    TrackedCounter& t = counters_[k++];
    const std::uint64_t v = entry.second.value();
    if (v == t.last) continue;
    t.last = v;
    StreamRecord u;
    u.kind = StreamRecordKind::kMetricUpdate;
    u.metric_kind = StreamMetricKind::kCounter;
    u.id = t.id;
    u.ts_us = ts_us;
    u.u = v;
    emit(u);
  }
  k = 0;
  for (const auto& entry : registry.gauges()) {
    TrackedGauge& t = gauges_[k++];
    const std::int64_t v = entry.second.value();
    const std::int64_t hw = entry.second.high_water();
    if (v == t.last_value && hw == t.last_high_water) continue;
    t.last_value = v;
    t.last_high_water = hw;
    StreamRecord u;
    u.kind = StreamRecordKind::kMetricUpdate;
    u.metric_kind = StreamMetricKind::kGauge;
    u.id = t.id;
    u.ts_us = ts_us;
    u.a = v;
    u.b = hw;
    emit(u);
  }
  k = 0;
  for (const auto& entry : registry.histograms()) {
    TrackedHistogram& t = histograms_[k++];
    // add() always bumps count, so count alone detects change.
    const std::uint64_t c = entry.second.count();
    if (c == t.last_count) continue;
    t.last_count = c;
    StreamRecord u;
    u.kind = StreamRecordKind::kMetricUpdate;
    u.metric_kind = StreamMetricKind::kHistogram;
    u.id = t.id;
    u.ts_us = ts_us;
    u.u = c;
    u.d = entry.second.sum();
    emit(u);
  }

  r.kind = StreamRecordKind::kPublishEnd;
  emit(r);
}

// ---------------------------------------------------------------------------
// FileStreamSink.

FileStreamSink::FileStreamSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

FileStreamSink::~FileStreamSink() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FileStreamSink::write_line(std::string_view line) {
  if (file_ == nullptr) return false;
  return std::fwrite(line.data(), 1, line.size(), file_) == line.size();
}

void FileStreamSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

// ---------------------------------------------------------------------------
// StreamExporter — consumer side (I/O thread).

StreamExporter::StreamExporter(Options options) : options_(options) {
  if (options_.batch == 0) options_.batch = 1;
  scratch_.resize(options_.batch);
  thread_ = std::thread([this] { thread_main(); });
}

StreamExporter::~StreamExporter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  while (sweep_locked() > 0) {
  }
  flush_locked();
}

void StreamExporter::add_sink(std::shared_ptr<StreamSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void StreamExporter::remove_sink(const StreamSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(sinks_, [sink](const std::shared_ptr<StreamSink>& s) {
    return s.get() == sink;
  });
}

std::uint64_t StreamExporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

std::uint64_t StreamExporter::ring_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& s : sources_) total += s->ring->dropped();
  for (const auto& s : finished_) total += s->dropped_at_close;
  return total;
}

std::size_t StreamExporter::open_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

void StreamExporter::attach(SpscRing* ring, std::uint32_t run_tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto source = std::make_unique<Source>();
  source->ring = ring;
  source->run = run_tag;
  source->attach_order = next_attach_order_++;
  sources_.push_back(std::move(source));
}

void StreamExporter::detach(SpscRing* ring) {
  std::unique_lock<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i]->ring != ring) continue;
    Source& source = *sources_[i];
    // The producer has stopped (StreamSession destructor); drain everything
    // left inline so no record outlives the world's registry strings.
    std::size_t n;
    while ((n = ring->pop_batch(scratch_.data(), scratch_.size())) > 0) {
      for (std::size_t j = 0; j < n; ++j) consume_locked(source, scratch_[j]);
    }
    source.dropped_at_close = ring->dropped();
    source.ring = nullptr;
    finished_.push_back(std::move(sources_[i]));
    sources_.erase(sources_.begin() + static_cast<std::ptrdiff_t>(i));
    flush_locked();
    return;
  }
}

void StreamExporter::thread_main() {
  for (;;) {
    bool busy;
    {
      // The lock is re-acquired every iteration — never held across a whole
      // busy period — so snapshot_json(), add_sink() (a follower joining
      // mid-run), and attach/detach stay responsive while records flow.
      std::unique_lock<std::mutex> lock(mu_);
      busy = sweep_locked() > 0;
      if (!busy) {
        flush_locked();
        if (stop_) return;
        cv_.wait_for(lock, std::chrono::microseconds(options_.poll_us));
      }
    }
    if (busy) std::this_thread::yield();  // let blocked waiters in
  }
}

std::size_t StreamExporter::sweep_locked() {
  std::size_t consumed = 0;
  for (auto& source : sources_) {
    const std::size_t n =
        source->ring->pop_batch(scratch_.data(), scratch_.size());
    for (std::size_t j = 0; j < n; ++j) {
      consume_locked(*source, scratch_[j]);
    }
    consumed += n;
  }
  return consumed;
}

namespace {

void append_line_head(std::string& out, const char* kind, std::uint32_t run,
                      std::uint64_t seq, std::int64_t ts_us) {
  out += "{\"schema\":";
  append_json_quoted(out, kStreamSchema);
  out += ",\"kind\":\"";
  out += kind;
  out += "\",\"run\":";
  append_json_u64(out, run);
  out += ",\"seq\":";
  append_json_u64(out, seq);
  out += ",\"ts_us\":";
  append_json_i64(out, ts_us);
}

void append_metric_value(std::string& out, StreamMetricKind kind,
                         std::uint64_t u, std::int64_t a, std::int64_t b,
                         double d) {
  switch (kind) {
    case StreamMetricKind::kCounter:
      append_json_u64(out, u);
      break;
    case StreamMetricKind::kGauge:
      out += "{\"value\":";
      append_json_i64(out, a);
      out += ",\"high_water\":";
      append_json_i64(out, b);
      out += "}";
      break;
    case StreamMetricKind::kHistogram:
      out += "{\"count\":";
      append_json_u64(out, u);
      out += ",\"sum\":";
      append_json_double(out, d);
      out += "}";
      break;
  }
}

}  // namespace

void StreamExporter::consume_locked(Source& source,
                                    const StreamRecord& record) {
  switch (record.kind) {
    case StreamRecordKind::kRunBegin: {
      source.begun = true;
      source.seed = record.u;
      source.last_ts_us = record.ts_us;
      std::string line;
      append_line_head(line, "run_begin", source.run, source.seq++,
                       record.ts_us);
      line += ",\"seed\":";
      append_json_u64(line, record.u);
      line += "}\n";
      write_locked(line);
      return;
    }
    case StreamRecordKind::kRunEnd: {
      source.finished = true;
      source.digest = record.u;
      source.events = static_cast<std::uint64_t>(record.a);
      source.last_ts_us = record.ts_us;
      std::string line;
      append_line_head(line, "run_end", source.run, source.seq++,
                       record.ts_us);
      line += ",\"digest\":";
      append_json_hex64(line, record.u);
      line += ",\"events\":";
      append_json_i64(line, record.a);
      line += ",\"stream_dropped\":";
      append_json_u64(line, source.ring != nullptr ? source.ring->dropped()
                                                   : source.dropped_at_close);
      line += ",\"trace_dropped\":";
      append_json_i64(line, record.b);
      line += "}\n";
      write_locked(line);
      return;
    }
    case StreamRecordKind::kMetricDefine: {
      const std::size_t id = record.id;
      if (source.metrics.size() <= id) source.metrics.resize(id + 1);
      MetricState& m = source.metrics[id];
      m.name = record.name != nullptr ? record.name : "";
      m.kind = record.metric_kind;
      m.defined = true;
      m.u = record.u;
      m.a = record.a;
      m.b = record.b;
      m.d = record.d;
      // Baseline values ride the next metrics line so followers that join
      // at run start see every metric at least once.
      if (std::find(source.pending.begin(), source.pending.end(), record.id) ==
          source.pending.end()) {
        source.pending.push_back(record.id);
      }
      return;
    }
    case StreamRecordKind::kMetricUpdate: {
      if (!source.in_batch && record.ts_us > source.batch_ts_us) {
        // The kPublishBegin bracket was lost to ring overflow: fall back to
        // the newest update timestamp so the flushed "metrics" line isn't
        // stamped with a stale earlier batch time.
        source.batch_ts_us = record.ts_us;
      }
      const std::size_t id = record.id;
      if (source.metrics.size() <= id) source.metrics.resize(id + 1);
      MetricState& m = source.metrics[id];
      if (!m.defined) {
        // The define record was dropped in an overflow; synthesize a name so
        // the value still streams (self-healing, values are cumulative).
        m.name = "metric." + std::to_string(record.id);
        m.kind = record.metric_kind;
        m.defined = true;
      }
      m.u = record.u;
      m.a = record.a;
      m.b = record.b;
      m.d = record.d;
      if (std::find(source.pending.begin(), source.pending.end(), record.id) ==
          source.pending.end()) {
        source.pending.push_back(record.id);
      }
      return;
    }
    case StreamRecordKind::kPublishBegin:
      source.in_batch = true;
      source.batch_ts_us = record.ts_us;
      source.last_ts_us = record.ts_us;
      return;
    case StreamRecordKind::kPublishEnd: {
      source.in_batch = false;
      if (source.pending.empty()) return;
      // One line per publish, ids sorted by (kind, name) for deterministic
      // key order regardless of update arrival order.
      std::sort(source.pending.begin(), source.pending.end(),
                [&source](std::uint32_t lhs, std::uint32_t rhs) {
                  const MetricState& a = source.metrics[lhs];
                  const MetricState& b = source.metrics[rhs];
                  if (a.kind != b.kind) return a.kind < b.kind;
                  return a.name < b.name;
                });
      std::string line;
      append_line_head(line, "metrics", source.run, source.seq++,
                       source.batch_ts_us);
      StreamMetricKind open_kind = StreamMetricKind::kCounter;
      bool any_open = false;
      bool first_in_section = true;
      for (std::uint32_t id : source.pending) {
        const MetricState& m = source.metrics[id];
        if (!any_open || m.kind != open_kind) {
          if (any_open) line += "}";
          switch (m.kind) {
            case StreamMetricKind::kCounter: line += ",\"counters\":{"; break;
            case StreamMetricKind::kGauge: line += ",\"gauges\":{"; break;
            case StreamMetricKind::kHistogram:
              line += ",\"histograms\":{";
              break;
          }
          open_kind = m.kind;
          any_open = true;
          first_in_section = true;
        }
        if (!first_in_section) line.push_back(',');
        first_in_section = false;
        append_json_quoted(line, m.name);
        line.push_back(':');
        append_metric_value(line, m.kind, m.u, m.a, m.b, m.d);
      }
      if (any_open) line += "}";
      line += "}\n";
      source.pending.clear();
      write_locked(line);
      return;
    }
    case StreamRecordKind::kSpan:
    case StreamRecordKind::kInstant:
    case StreamRecordKind::kCounterSample: {
      source.last_ts_us = record.ts_us;
      std::string line;
      const char* kind = record.kind == StreamRecordKind::kSpan ? "span"
                         : record.kind == StreamRecordKind::kInstant
                             ? "instant"
                             : "counter_sample";
      append_line_head(line, kind, source.run, source.seq++, record.ts_us);
      if (record.kind == StreamRecordKind::kSpan) {
        line += ",\"dur_us\":";
        append_json_i64(line, record.a);
      } else if (record.kind == StreamRecordKind::kCounterSample) {
        line += ",\"value\":";
        append_json_i64(line, record.a);
      }
      line += ",\"name\":";
      append_json_quoted(line, record.name != nullptr ? record.name : "");
      line += ",\"cat\":";
      append_json_quoted(line,
                         record.category != nullptr && record.category[0] != 0
                             ? record.category
                             : "spider");
      line += ",\"track\":";
      append_json_u64(line, record.id);
      line += "}\n";
      write_locked(line);
      return;
    }
  }
}

void StreamExporter::write_locked(const std::string& line) {
  ++lines_;
  std::erase_if(sinks_, [&line](const std::shared_ptr<StreamSink>& sink) {
    return !sink->write_line(line);
  });
}

void StreamExporter::flush_locked() {
  for (auto& sink : sinks_) sink->flush();
}

void StreamExporter::append_source_state(std::string& out,
                                         const Source& source,
                                         bool open) const {
  out += "{\"run\":";
  append_json_u64(out, source.run);
  out += ",\"state\":\"";
  if (open) {
    out += source.begun ? "running" : "attached";
  } else {
    out += source.finished ? "finished" : "aborted";
  }
  out += "\",\"seed\":";
  append_json_u64(out, source.seed);
  if (source.finished) {
    out += ",\"digest\":";
    append_json_hex64(out, source.digest);
    out += ",\"events\":";
    append_json_u64(out, source.events);
  }
  out += ",\"ts_us\":";
  append_json_i64(out, source.last_ts_us);
  out += ",\"lines\":";
  append_json_u64(out, source.seq);
  out += ",\"stream_dropped\":";
  append_json_u64(out, source.ring != nullptr ? source.ring->dropped()
                                              : source.dropped_at_close);
  // Latest values, grouped by kind, names sorted — same shapes as the
  // "metrics" stream lines.
  std::vector<const MetricState*> by_kind[3];
  for (const MetricState& m : source.metrics) {
    if (m.defined) by_kind[static_cast<int>(m.kind)].push_back(&m);
  }
  static constexpr const char* kSection[3] = {"counters", "gauges",
                                              "histograms"};
  for (int kind = 0; kind < 3; ++kind) {
    std::sort(by_kind[kind].begin(), by_kind[kind].end(),
              [](const MetricState* a, const MetricState* b) {
                return a->name < b->name;
              });
    out += ",\"";
    out += kSection[kind];
    out += "\":{";
    bool first = true;
    for (const MetricState* m : by_kind[kind]) {
      if (!first) out.push_back(',');
      first = false;
      append_json_quoted(out, m->name);
      out.push_back(':');
      append_metric_value(out, m->kind, m->u, m->a, m->b, m->d);
    }
    out += "}";
  }
  out += "}";
}

std::string StreamExporter::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<const Source*, bool>> runs;
  runs.reserve(sources_.size() + finished_.size());
  for (const auto& s : sources_) runs.emplace_back(s.get(), true);
  for (const auto& s : finished_) runs.emplace_back(s.get(), false);
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) {
              if (a.first->run != b.first->run)
                return a.first->run < b.first->run;
              return a.first->attach_order < b.first->attach_order;
            });
  std::string out = "{\"schema\":";
  append_json_quoted(out, kStreamSchema);
  out += ",\"kind\":\"snapshot\",\"lines\":";
  append_json_u64(out, lines_);
  out += ",\"runs\":[";
  bool first = true;
  for (const auto& [source, open] : runs) {
    if (!first) out.push_back(',');
    first = false;
    append_source_state(out, *source, open);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// StreamSession.

StreamSession::StreamSession(StreamExporter& exporter, Hub& hub,
                             std::uint32_t run_tag, std::int64_t cadence_us,
                             std::size_t ring_capacity)
    : exporter_(exporter),
      hub_(hub),
      ring_(ring_capacity),
      publisher_(ring_),
      cadence_us_(cadence_us) {
  exporter_.attach(&ring_, run_tag);
}

StreamSession::~StreamSession() {
  hub_.set_stream(nullptr, 0);
  exporter_.detach(&ring_);
}

void StreamSession::begin(std::int64_t ts_us, std::uint64_t seed) {
  if (begun_) return;
  begun_ = true;
  publisher_.begin_run(ts_us, seed);
  // Baseline publish so followers see the full metric set up front, then
  // arm the cadence hook and the trace tee. Patient: this is not the hot
  // path yet, and the baseline must not be lost to a cold backlog.
  hub_.run_collectors();
  publisher_.set_patient(true);
  publisher_.publish_metrics(ts_us, hub_.metrics());
  publisher_.set_patient(false);
  hub_.set_stream(&publisher_, cadence_us_);
}

void StreamSession::finish(std::int64_t ts_us, std::uint64_t digest,
                           std::uint64_t events_executed) {
  if (finished_ || !begun_) return;
  finished_ = true;
  hub_.set_stream(nullptr, 0);
  hub_.run_collectors();
  // Patient final publish: the run is over, so briefly waiting out a
  // backlogged ring is free — and it guarantees the streamed end state
  // matches the end-of-run MetricsSnapshot exactly even after mid-run drops
  // (cumulative values self-heal here).
  publisher_.set_patient(true);
  publisher_.publish_metrics(ts_us, hub_.metrics());
  publisher_.set_patient(false);
  publisher_.end_run(ts_us, digest, events_executed, hub_.trace().dropped());
}

}  // namespace spider::telemetry
