// Per-world telemetry hub: one Registry + one TraceRecorder, owned by each
// Simulator (sim::Simulator::telemetry()). Components reach it through the
// simulator reference they already hold, register their hot counters once,
// and optionally add a *collector* — a callback that publishes plain member
// counters into the registry at snapshot time, so genuinely hot paths (the
// event queue, per-frame PHY accounting) pay zero telemetry cost between
// snapshots.
//
// Threading: a Hub belongs to its Simulator's thread, like everything else
// in a world. Cross-world aggregation happens on MetricsSnapshots only.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_recorder.h"

namespace spider::telemetry {

class Hub {
 public:
  using Collector = std::function<void(Registry&)>;
  using CollectorId = std::uint64_t;

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  // Registers a publish-on-snapshot callback. Components that can be
  // destroyed before the simulator must remove_collector() in their
  // destructor (everything in an Experiment is, by member order).
  CollectorId add_collector(Collector fn) {
    const CollectorId id = next_collector_id_++;
    collectors_.emplace_back(id, std::move(fn));
    return id;
  }

  void remove_collector(CollectorId id) {
    std::erase_if(collectors_,
                  [id](const auto& entry) { return entry.first == id; });
  }

  // Runs every collector, then snapshots the registry. The standard export
  // path (SweepRunner calls this once per finished replication).
  MetricsSnapshot collect() {
#if SPIDER_TELEMETRY
    for (auto& [id, fn] : collectors_) fn(metrics_);
    return metrics_.snapshot();
#else
    return MetricsSnapshot{};
#endif
  }

 private:
  Registry metrics_;
  TraceRecorder trace_;
  std::vector<std::pair<CollectorId, Collector>> collectors_;
  CollectorId next_collector_id_ = 1;
};

}  // namespace spider::telemetry
