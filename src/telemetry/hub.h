// Per-world telemetry hub: one Registry + one TraceRecorder, owned by each
// Simulator (sim::Simulator::telemetry()). Components reach it through the
// simulator reference they already hold, register their hot counters once,
// and optionally add a *collector* — a callback that publishes plain member
// counters into the registry at snapshot time, so genuinely hot paths (the
// event queue, per-frame PHY accounting) pay zero telemetry cost between
// snapshots.
//
// Threading: a Hub belongs to its Simulator's thread, like everything else
// in a world. Cross-world aggregation happens on MetricsSnapshots only.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/check.h"  // SPIDER_HOT marker (header-only; no link dep)
#include "telemetry/metrics.h"
#include "telemetry/trace_recorder.h"

namespace spider::telemetry {

class StreamPublisher;

class Hub {
 public:
  using Collector = std::function<void(Registry&)>;
  using CollectorId = std::uint64_t;

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  // Registers a publish-on-snapshot callback. Components that can be
  // destroyed before the simulator must remove_collector() in their
  // destructor (everything in an Experiment is, by member order).
  CollectorId add_collector(Collector fn) {
    const CollectorId id = next_collector_id_++;
    collectors_.emplace_back(id, std::move(fn));
    return id;
  }

  void remove_collector(CollectorId id) {
    std::erase_if(collectors_,
                  [id](const auto& entry) { return entry.first == id; });
  }

  // Runs every collector, then snapshots the registry. The standard export
  // path (SweepRunner calls this once per finished replication).
  MetricsSnapshot collect() {
#if SPIDER_TELEMETRY
    run_collectors();
    return metrics_.snapshot();
#else
    return MetricsSnapshot{};
#endif
  }

  // Folds every collector's plain members into the registry without
  // snapshotting (collectors are idempotent "copy current totals" writers,
  // so running them early never perturbs a later collect()).
  void run_collectors() {
#if SPIDER_TELEMETRY
    for (auto& [id, fn] : collectors_) fn(metrics_);
#endif
  }

  // Arms (or, with nullptr, disarms) the live-stream cadence hook: while
  // armed, maybe_publish_stream() folds collectors and publishes changed
  // metrics to `stream` whenever simulated time crosses a cadence boundary.
  // Also tees trace events into the stream. Owned by StreamSession — see
  // stream_exporter.h.
  void set_stream(StreamPublisher* stream, std::int64_t cadence_us);
  StreamPublisher* stream() const { return stream_; }

  // Hot-path hook, called from Simulator::drain at instant boundaries. One
  // compare when no stream is attached or the next boundary is ahead.
  SPIDER_HOT void maybe_publish_stream(std::int64_t ts_us) {
#if SPIDER_TELEMETRY
    if (stream_ == nullptr || ts_us < stream_next_us_) return;
    publish_stream(ts_us);
#else
    (void)ts_us;
#endif
  }

 private:
  void publish_stream(std::int64_t ts_us);  // cold half of the hook

  Registry metrics_;
  TraceRecorder trace_;
  std::vector<std::pair<CollectorId, Collector>> collectors_;
  CollectorId next_collector_id_ = 1;
  StreamPublisher* stream_ = nullptr;
  std::int64_t stream_cadence_us_ = 0;
  std::int64_t stream_next_us_ = 0;
};

}  // namespace spider::telemetry
