// Live telemetry plane, consumer half (DESIGN.md "Live telemetry plane").
//
// Data flow:
//
//   sim thread                        exporter I/O thread
//   ----------                        -------------------
//   Hub::maybe_publish_stream ──┐
//   TraceRecorder tee ──────────┼──> SpscRing ──> StreamExporter ──> sinks
//   StreamSession begin/finish ─┘                 (JSONL renderer)    (file,
//                                                                    socket)
//
// StreamPublisher is the producer-side encoder: it walks the registry's
// ordered maps at each cadence publish and pushes one fixed-size record per
// *changed* metric, carrying cumulative values (not deltas) so a dropped
// update self-heals at the next publish. Warm publishes are allocation-free;
// only the first sighting of a new metric (re-sync) allocates.
//
// StreamExporter owns the I/O thread. It drains every attached ring,
// renders JSONL lines (schema "spider-telemetry-stream-v1"), assigns each
// line a per-run sequence number in ring order — producer order, so a
// multi-world stream sorts deterministically by (run, seq) regardless of
// worker count or host timing — and fans lines out to the registered sinks.
// It also keeps a live per-run metric table, served as one snapshot line to
// anyone who asks (the run-server's "snapshot" command).
//
// StreamSession ties one world to one exporter for one run: it owns the
// ring, wires the Hub and trace tee on begin(), publishes the final state
// plus the run_end record on finish(), and on destruction detaches — which
// drains every remaining record inline, *before* the world (and the
// registry strings records point into) can die.
//
// Line shapes (all carry "schema":"spider-telemetry-stream-v1"):
//   {"kind":"run_begin","run":R,"seq":0,"ts_us":T,"seed":S}
//   {"kind":"metrics","run":R,"seq":N,"ts_us":T,
//    "counters":{name:value,…},"gauges":{name:{"value":v,"high_water":h},…},
//    "histograms":{name:{"count":c,"sum":s},…}}        — changed metrics only
//   {"kind":"span","run":R,"seq":N,"ts_us":T,"dur_us":D,"name":…,"cat":…,
//    "track":K}                                         (instant/counter_sample
//                                                        analogous)
//   {"kind":"run_end","run":R,"seq":N,"ts_us":T,"digest":"0x…","events":E,
//    "stream_dropped":D,"trace_dropped":T}
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/spsc_ring.h"
#include "telemetry/trace_recorder.h"

namespace spider::telemetry {

class Hub;

// Producer-side encoder. One per StreamSession; runs on the world's thread.
class StreamPublisher {
 public:
  explicit StreamPublisher(SpscRing& ring) : ring_(&ring) {}

  void begin_run(std::int64_t ts_us, std::uint64_t seed);
  void end_run(std::int64_t ts_us, std::uint64_t digest,
               std::uint64_t events_executed, std::uint64_t trace_dropped);

  // One cadence publish: walks the registry in lexicographic order and
  // pushes a record per changed metric, bracketed by publish begin/end so
  // the exporter renders the batch as a single "metrics" line. Warm calls
  // (no new metrics since the last publish) are allocation-free.
  SPIDER_HOT void publish_metrics(std::int64_t ts_us,
                                  const Registry& registry);

  // Patient mode (off on the hot path): metric records go through the
  // bounded-retry push instead of drop-on-full. StreamSession turns it on
  // for the begin/finish publishes so the baseline and the final totals
  // survive a backlogged ring — which is what makes the streamed end state
  // reconcile exactly with the end-of-run MetricsSnapshot.
  void set_patient(bool on) { patient_ = on; }

  // Trace tee: spans/instants/counter samples stream as they are recorded.
  SPIDER_HOT void publish_trace(const TraceEvent& event) {
    StreamRecord r;
    r.kind = event.phase == 'X'   ? StreamRecordKind::kSpan
             : event.phase == 'C' ? StreamRecordKind::kCounterSample
                                  : StreamRecordKind::kInstant;
    r.id = event.track;
    r.ts_us = event.ts_us;
    r.name = event.name;
    r.category = event.category;
    r.a = event.phase == 'X' ? event.dur_us : event.arg_value;
    ring_->push_or_drop(r);
  }

 private:
  // Last-published state, parallel (in lexicographic name order) to the
  // registry's maps. Metrics are never removed from a Registry, so when the
  // map sizes match, the k-th map entry IS tracked[k] and the publish walk
  // is a zero-lookup lockstep scan; a size mismatch re-syncs (cold path).
  struct TrackedCounter {
    const std::string* name = nullptr;
    std::uint32_t id = 0;
    std::uint64_t last = 0;
  };
  struct TrackedGauge {
    const std::string* name = nullptr;
    std::uint32_t id = 0;
    std::int64_t last_value = 0;
    std::int64_t last_high_water = 0;
  };
  struct TrackedHistogram {
    const std::string* name = nullptr;
    std::uint32_t id = 0;
    std::uint64_t last_count = 0;
  };

  void resync(const Registry& registry);
  // Bounded-retry push for lifecycle records (never used on the hot path):
  // yields to let the exporter drain, then counts a drop and gives up.
  void push_control(const StreamRecord& record);
  // Hot-path spelling: drop-and-count, unless patient mode is on.
  SPIDER_HOT void emit(const StreamRecord& record) {
    if (patient_) {
      push_control(record);
    } else {
      ring_->push_or_drop(record);
    }
  }

  SpscRing* ring_;
  bool patient_ = false;
  std::uint32_t next_id_ = 1;
  std::vector<TrackedCounter> counters_;
  std::vector<TrackedGauge> gauges_;
  std::vector<TrackedHistogram> histograms_;
};

// Where rendered lines go. write_line is called with the exporter's lock
// held (implementations must not call back into the exporter) and receives
// one full line including the trailing newline. Returning false
// unsubscribes the sink (e.g. a follower hung up).
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual bool write_line(std::string_view line) = 0;
  virtual void flush() {}
};

class FileStreamSink : public StreamSink {
 public:
  explicit FileStreamSink(const std::string& path);
  ~FileStreamSink() override;
  bool ok() const { return file_ != nullptr; }
  bool write_line(std::string_view line) override;
  void flush() override;

 private:
  std::FILE* file_ = nullptr;
};

class StreamExporter {
 public:
  struct Options {
    // Host-time poll period of the I/O thread while idle, microseconds.
    // Host timing can never influence line *content* or order — only how
    // soon a line reaches a sink.
    std::int64_t poll_us = 500;
    // Records drained per ring per sweep (bounds exporter latency spikes).
    std::size_t batch = 512;
  };

  StreamExporter() : StreamExporter(Options{}) {}
  explicit StreamExporter(Options options);
  // All sessions must be destroyed first (they detach themselves); joins
  // the I/O thread and flushes sinks.
  ~StreamExporter();

  StreamExporter(const StreamExporter&) = delete;
  StreamExporter& operator=(const StreamExporter&) = delete;

  void add_sink(std::shared_ptr<StreamSink> sink);
  void remove_sink(const StreamSink* sink);

  // One JSONL snapshot line: every run this exporter has seen (open and
  // finished) with its latest metric values, runs ordered by (tag, attach
  // order), metrics by name.
  std::string snapshot_json() const;

  std::uint64_t lines_written() const;
  // Total ring overflow drops across all sources, open and closed.
  std::uint64_t ring_dropped() const;
  std::size_t open_runs() const;

 private:
  friend class StreamSession;

  struct MetricState {
    std::string name;
    StreamMetricKind kind = StreamMetricKind::kCounter;
    bool defined = false;
    std::uint64_t u = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    double d = 0.0;
  };

  struct Source {
    SpscRing* ring = nullptr;
    std::uint32_t run = 0;
    std::uint64_t attach_order = 0;
    std::uint64_t seq = 0;  // next line sequence number for this run
    std::uint64_t seed = 0;
    std::uint64_t digest = 0;  // valid once finished
    std::uint64_t events = 0;
    std::int64_t last_ts_us = 0;
    bool begun = false;
    bool finished = false;
    std::vector<MetricState> metrics;     // indexed by metric id
    std::vector<std::uint32_t> pending;   // ids updated in the open batch
    bool in_batch = false;
    std::int64_t batch_ts_us = 0;
    std::uint64_t dropped_at_close = 0;   // ring drop count, frozen on detach
  };

  void attach(SpscRing* ring, std::uint32_t run_tag);
  // Drains everything still in `ring` inline (the producer has stopped),
  // freezes its drop count, and moves the source to the finished list.
  void detach(SpscRing* ring);

  void thread_main();
  // Returns the number of records consumed across all open sources.
  std::size_t sweep_locked();
  void consume_locked(Source& source, const StreamRecord& record);
  void write_locked(const std::string& line);
  void flush_locked();
  void append_source_state(std::string& out, const Source& source,
                           bool open) const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t next_attach_order_ = 0;
  std::vector<std::unique_ptr<Source>> sources_;   // open (ring attached)
  std::vector<std::unique_ptr<Source>> finished_;  // detached; ring == null
  std::vector<std::shared_ptr<StreamSink>> sinks_;
  std::uint64_t lines_ = 0;
  std::vector<StreamRecord> scratch_;  // consumer-side drain buffer
  std::thread thread_;
};

// One world's attachment to an exporter for one run. Construct with the
// world's Hub, call begin() once the seed is known (emits run_begin plus a
// baseline metrics publish and arms the Hub cadence hook + trace tee), and
// finish() after the run (final publish + run_end with the digest).
// Destruction detaches from the Hub and drains the ring synchronously, so
// no record can outlive the registry strings it points into. Declare the
// session *after* the Simulator it watches (destroyed first).
class StreamSession {
 public:
  StreamSession(StreamExporter& exporter, Hub& hub, std::uint32_t run_tag,
                std::int64_t cadence_us,
                std::size_t ring_capacity = SpscRing::kDefaultCapacity);
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  StreamPublisher& publisher() { return publisher_; }
  SpscRing& ring() { return ring_; }

  void begin(std::int64_t ts_us, std::uint64_t seed);
  void finish(std::int64_t ts_us, std::uint64_t digest,
              std::uint64_t events_executed);

 private:
  StreamExporter& exporter_;
  Hub& hub_;
  SpscRing ring_;
  StreamPublisher publisher_;
  std::int64_t cadence_us_;
  bool begun_ = false;
  bool finished_ = false;
};

}  // namespace spider::telemetry
