// Bounded lock-free single-producer/single-consumer ring for the live
// telemetry plane (DESIGN.md "Live telemetry plane").
//
// The producer is a simulation thread publishing StreamRecords from inside
// Simulator::drain; the consumer is the StreamExporter's I/O thread. The
// contract the whole plane hangs off:
//
//   * the producer NEVER blocks and NEVER allocates — try_push is a couple
//     of relaxed loads, one store, one release store, all into memory owned
//     since construction (SPIDER_HOT, proven allocation-free under
//     core::ScopedAllocGuard in tests/stream_plane_test.cc);
//   * on overflow the record is dropped and counted, never waited for —
//     a slow consumer can lose telemetry, it cannot slow the simulation;
//   * exactly one thread pushes and exactly one thread pops. Cross-thread
//     visibility is acquire/release on the two cursors; the cursors live on
//     separate cache lines so the producer and consumer don't false-share.
//
// Records are fixed-size PODs. String fields are `const char*` that must
// stay valid until the consumer has rendered the record: string literals
// (trace names) or registry map-key c_str()s (metric names — stable for the
// world's lifetime; StreamExporter::detach drains the ring before a world
// dies, see stream_exporter.h).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/check.h"  // SPIDER_HOT marker

namespace spider::telemetry {

enum class StreamRecordKind : std::uint8_t {
  kRunBegin = 1,    // u = seed
  kRunEnd,          // u = digest, a = events executed, b = trace dropped
  kMetricDefine,    // id + name + metric_kind + current value fields
  kMetricUpdate,    // id + current (cumulative) value fields
  kPublishBegin,    // brackets one cadence publish
  kPublishEnd,
  kSpan,            // name/category/ts/a=dur_us/id=track
  kInstant,         // name/category/ts/id=track
  kCounterSample,   // name/category/ts/a=value/id=track (trace 'C' samples)
};

enum class StreamMetricKind : std::uint8_t {
  kCounter = 0,   // u = cumulative value
  kGauge,         // a = value, b = high water
  kHistogram,     // u = count, d = sum
};

struct StreamRecord {
  StreamRecordKind kind = StreamRecordKind::kInstant;
  StreamMetricKind metric_kind = StreamMetricKind::kCounter;
  std::uint32_t id = 0;            // metric id, or trace track
  std::int64_t ts_us = 0;          // simulated time, never wall clock
  const char* name = nullptr;
  const char* category = nullptr;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::uint64_t u = 0;
  double d = 0.0;
};

class SpscRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  // Capacity is rounded up to a power of two (minimum 2) so the cursor
  // masks are a single AND.
  explicit SpscRing(std::size_t capacity = kDefaultCapacity);

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side. try_push returns false when the ring is full and does
  // NOT count a drop (callers that retry — run lifecycle records — would
  // inflate the counter); push_or_drop is the hot-path spelling that counts.
  SPIDER_HOT bool try_push(const StreamRecord& record) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    buffer_[tail & mask_] = record;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  SPIDER_HOT void push_or_drop(const StreamRecord& record) {
    if (!try_push(record)) dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  // Consumer side: copies up to `max` records into `out`, oldest first.
  std::size_t pop_batch(StreamRecord* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::uint64_t n = tail - head;
    if (n > max) n = max;
    for (std::uint64_t i = 0; i < n; ++i) {
      out[i] = buffer_[(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return static_cast<std::size_t>(n);
  }

  // Records currently queued (racy by nature; exact once the producer has
  // stopped).
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  // Records accepted into the ring since construction.
  std::uint64_t pushed() const {
    return tail_.load(std::memory_order_relaxed);
  }
  // Records lost to overflow (push_or_drop on a full ring).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<StreamRecord[]> buffer_;

  // Consumer cursor, producer cursor, and the producer's cached view of the
  // consumer cursor on three separate cache lines: the producer re-reads
  // head_ only when the ring looks full, so steady-state pushes touch no
  // line the consumer writes.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t cached_head_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace spider::telemetry
