#include "telemetry/trace_recorder.h"

#include <cstdio>

#include "telemetry/stream_exporter.h"

namespace spider::telemetry {
namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(*s);
    }
  }
}

void append_event(std::string& out, const TraceEvent& ev) {
  char buf[96];
  out += "{\"name\":\"";
  append_escaped(out, ev.name);
  out += "\",\"cat\":\"";
  append_escaped(out, ev.category[0] != '\0' ? ev.category : "spider");
  out += "\",\"ph\":\"";
  out.push_back(ev.phase);
  std::snprintf(buf, sizeof(buf), "\",\"ts\":%lld",
                static_cast<long long>(ev.ts_us));
  out += buf;
  if (ev.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%lld",
                  static_cast<long long>(ev.dur_us));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":0,\"tid\":%u",
                static_cast<unsigned>(ev.track));
  out += buf;
  // Counter series are keyed by (pid, name, id), not tid; a nonzero track
  // becomes the "id" so several same-named series (one per AP, say) render
  // as separate graphs.
  if (ev.phase == 'C' && ev.track != 0) {
    std::snprintf(buf, sizeof(buf), ",\"id\":\"%u\"",
                  static_cast<unsigned>(ev.track));
    out += buf;
  }
  if (ev.arg_name != nullptr) {
    out += ",\"args\":{\"";
    append_escaped(out, ev.arg_name);
    std::snprintf(buf, sizeof(buf), "\":%lld}",
                  static_cast<long long>(ev.arg_value));
    out += buf;
  }
  out += "}";
}

}  // namespace

void TraceRecorder::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  // Re-linearize so the ring cursor can restart from a compact buffer.
  std::vector<TraceEvent> ordered = events_in_order();
  if (ordered.size() > capacity) {
    dropped_ += ordered.size() - capacity;
    ordered.erase(ordered.begin(),
                  ordered.begin() +
                      static_cast<std::ptrdiff_t>(ordered.size() - capacity));
  }
  buffer_ = std::move(ordered);
  capacity_ = capacity;
  next_ = 0;
}

void TraceRecorder::push(const TraceEvent& ev) {
  ++recorded_;
  if (stream_ != nullptr) stream_->publish_trace(ev);
  if (buffer_.size() < capacity_) {
    buffer_.push_back(ev);
    return;
  }
  buffer_[next_] = ev;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::name_track(std::uint32_t track, const char* name) {
#if SPIDER_TELEMETRY
  for (auto& [id, existing] : track_names_) {
    if (id == track) {
      existing = name;
      return;
    }
  }
  track_names_.emplace_back(track, name);
#else
  (void)track;
  (void)name;
#endif
}

std::vector<TraceEvent> TraceRecorder::events_in_order() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  if (buffer_.size() < capacity_) {
    out = buffer_;
    return out;
  }
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

std::string TraceRecorder::to_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) out.push_back(',');
    first = false;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"",
                  static_cast<unsigned>(track));
    out += buf;
    append_escaped(out, name);
    out += "\"}}";
  }
  for (const TraceEvent& ev : events_in_order()) {
    if (!first) out.push_back(',');
    first = false;
    append_event(out, ev);
  }
  out += "],\"displayTimeUnit\":\"ms\"";
  // Surfaced so spider-trace can report ring overwrites (--strict gates on
  // it); readers that don't know the key ignore it.
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"droppedEvents\":%llu",
                static_cast<unsigned long long>(dropped_));
  out += buf;
  out += "}";
  return out;
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json() + "\n";
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void TraceRecorder::clear() {
  buffer_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace spider::telemetry
