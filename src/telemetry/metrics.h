// Metrics registry — the naming/aggregation layer every subsystem reports
// through (ROADMAP: "unified telemetry layer").
//
// Model: a Registry is *per world* (one per Simulator, unsynchronized — the
// Simulator threading contract already pins a world to one thread), and
// metric objects returned by counter()/gauge()/histogram() are stable
// references that call sites cache once and bump directly, so the hot-path
// cost of a counter is one pointer dereference and an add. Cross-world
// aggregation happens on immutable MetricsSnapshots, merged deterministically
// in sweep submission order (see core::SweepReport::merged_telemetry), which
// is what makes a 1-thread and an 8-thread sweep export byte-identical
// reports.
//
// Three metric kinds:
//   Counter   — monotonically increasing u64;
//   Gauge     — signed level with a high-water mark (queue depths, PSM
//               buffer occupancy);
//   Histogram — doubles bucketed into *fixed* log-scale buckets (exact
//               power-of-two boundaries from 1e-6 up, so bucketing is
//               bit-deterministic across platforms), plus count/sum/min/max.
//
// Compile-time switch: SPIDER_TELEMETRY (default 1). When 0, gauge and
// histogram mutation, trace recording, and Hub::collect() compile to no-ops
// — the types and export paths stay well-formed, exports are simply empty.
// Counters stay live in both modes: they back the check-failure shim
// (core/check.cc) and every genuinely hot path publishes plain members
// through a collector instead of touching Counter at event rate. The runtime
// knob for the expensive pillar (tracing) lives on TraceRecorder, not here.
//
// This header is a dependency leaf (it may not use SPIDER_CHECK: check.cc
// itself reports its failure counters through the process registry below).
#pragma once

#if !defined(SPIDER_TELEMETRY)
#define SPIDER_TELEMETRY 1
#endif

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spider::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void reset() { value_ = 0; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) {
#if SPIDER_TELEMETRY
    value_ = v;
    high_water_ = std::max(high_water_, v);
#else
    (void)v;
#endif
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  // Raises the high-water mark without touching the level — for collectors
  // that track peaks at event granularity but only publish at snapshot time.
  void record_peak(std::int64_t v) {
#if SPIDER_TELEMETRY
    high_water_ = std::max(high_water_, v);
#else
    (void)v;
#endif
  }
  void reset() { value_ = 0; high_water_ = 0; }
  std::int64_t value() const { return value_; }
  std::int64_t high_water() const { return high_water_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

// Log-scale histogram with fixed boundaries. Bucket 0 is the underflow
// bucket (v < 1e-6, also NaN and negatives); bucket i for 1 <= i <= kSpan
// covers [1e-6 * 2^(i-1), 1e-6 * 2^i); the last bucket is overflow. The
// boundaries are exact IEEE doublings of 1e-6, so bucket_index() is
// bit-deterministic everywhere.
class Histogram {
 public:
  static constexpr std::size_t kSpan = 54;           // doubling buckets
  static constexpr std::size_t kBuckets = kSpan + 2; // + underflow + overflow
  static constexpr double kFirstBound = 1e-6;

  // Inclusive lower / exclusive upper bound of bucket i. Bucket 0 has lower
  // bound -inf; the overflow bucket has upper bound +inf.
  static double bucket_lower_bound(std::size_t i);
  static double bucket_upper_bound(std::size_t i);
  static std::size_t bucket_index(double v);

  void add(double v) {
#if SPIDER_TELEMETRY
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++buckets_[bucket_index(v)];
#else
    (void)v;
#endif
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  // Nearest-bucket quantile estimate: the upper bound of the bucket where
  // the cumulative count crosses q (min/max for the edge buckets). Good
  // enough for summaries; exact samples stay in trace::EmpiricalCdf.
  double quantile(double q) const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, kBuckets> buckets_{};
};

// Immutable, mergeable view of a registry — what crosses thread boundaries.
// Vectors are sorted by name; merge_from is a sorted union with counters and
// histogram contents summed and gauge high-waters maxed.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Sparse (bucket index, count) pairs, ascending by index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Deterministic merge: counters/histograms add, gauge values add and
  // high-waters take the max (a merged gauge reads as "sum of final levels,
  // worst single-world peak").
  void merge_from(const MetricsSnapshot& other);

  const CounterSample* find_counter(std::string_view name) const;
  const GaugeSample* find_gauge(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;
  std::uint64_t counter_value(std::string_view name) const {
    const CounterSample* c = find_counter(name);
    return c ? c->value : 0;
  }
};

// Name -> metric map with stable references (std::map nodes never move).
// Iteration order is lexicographic, which is what makes snapshot() — and
// therefore every export — deterministic.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  void reset();  // zeroes every registered metric (keeps registrations)

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Ordered read-only views for in-process consumers that want to walk the
  // live maps without paying for a snapshot (the stream publisher's
  // changed-metric scan). Map keys are stable for the registry's lifetime,
  // so `&entry.first` may be cached across calls.
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Process-wide registry for metrics that outlive any single world — the
// SPIDER_CHECK failure counters report here (core/check.cc), keeping one
// export path for health metrics. Unlike per-world registries this one *is*
// shared across threads: hold process_registry_mutex() around any access.
Registry& process_registry();
std::mutex& process_registry_mutex();

}  // namespace spider::telemetry
