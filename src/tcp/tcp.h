// Simplified TCP Reno.
//
// Enough of TCP to reproduce the paper's transport-level effects: slow
// start, AIMD congestion avoidance, triple-duplicate-ack fast retransmit,
// and — critically for Figs. 7/8 — an RFC 6298-style retransmission timer
// with exponential backoff. When a virtualized client parks an AP and stops
// acking, the sender's RTO fires, cwnd collapses to one segment, and the
// connection must climb out of slow start after the client returns; that
// dynamic is what makes multi-channel schedules strangle throughput.
//
// Segments carry a timestamp that the receiver echoes (RFC 1323 style), so
// RTT samples stay valid across retransmissions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "net/frame.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::tcp {

struct TcpConfig {
  int mss_bytes = net::kTcpMssBytes;
  double initial_cwnd_segments = 3.0;
  int receive_window_segments = 512;  // ~750 KB (autotuned receive windows)
  sim::Time initial_rto = sim::Time::seconds(1);
  sim::Time min_rto = sim::Time::millis(200);
  sim::Time max_rto = sim::Time::seconds(60);
};

// --- Sender ------------------------------------------------------------------

class TcpSender {
 public:
  using SendFn = std::function<void(const net::TcpSegment&)>;

  // total_bytes < 0 streams forever (bulk HTTP download of a huge file).
  TcpSender(sim::Simulator& simulator, std::uint64_t flow_id, SendFn send,
            std::int64_t total_bytes = -1, TcpConfig config = {});
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  void start();
  void on_ack(const net::TcpSegment& ack);

  std::uint64_t flow_id() const { return flow_id_; }
  bool finished() const;
  std::int64_t bytes_acked() const { return snd_una_; }
  double cwnd_segments() const { return cwnd_; }
  sim::Time current_rto() const { return rto_; }
  sim::Time smoothed_rtt() const { return srtt_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }

 private:
  void try_send();
  void emit(std::int64_t seq, bool retransmit);
  void arm_rto();
  void on_rto();
  void sample_rtt(sim::Time rtt);
  std::int64_t window_bytes() const;
  std::int64_t segment_len(std::int64_t seq) const;

  sim::Simulator& sim_;
  std::uint64_t flow_id_;
  SendFn send_;
  std::int64_t total_bytes_;
  TcpConfig config_;

  std::int64_t snd_una_ = 0;   // first unacked byte
  std::int64_t snd_nxt_ = 0;   // next new byte to send
  double cwnd_;
  double ssthresh_ = 1e18;
  int dupacks_ = 0;
  sim::Time srtt_ = sim::Time::zero();   // zero = no sample yet
  sim::Time rttvar_ = sim::Time::zero();
  sim::Time rto_;
  sim::TimerHandle rto_timer_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
};

// --- Receiver ------------------------------------------------------------------

class TcpReceiver {
 public:
  using SendFn = std::function<void(const net::TcpSegment&)>;
  // (newly in-order bytes, now) — throughput accounting hook.
  using DeliveryFn = std::function<void(std::int64_t)>;

  TcpReceiver(sim::Simulator& simulator, std::uint64_t flow_id, SendFn send,
              TcpConfig config = {});

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void set_delivery_handler(DeliveryFn fn) { on_delivered_ = std::move(fn); }

  void on_segment(const net::TcpSegment& segment);

  std::int64_t bytes_in_order() const { return rcv_next_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t out_of_order_segments() const { return out_of_order_; }

 private:
  sim::Simulator& sim_;
  std::uint64_t flow_id_;
  SendFn send_;
  TcpConfig config_;
  DeliveryFn on_delivered_;

  std::int64_t rcv_next_ = 0;
  std::map<std::int64_t, std::int64_t> ooo_;  // start -> end (exclusive)
  std::uint64_t acks_sent_ = 0;
  std::uint64_t out_of_order_ = 0;
};

// --- Content server ------------------------------------------------------------

// The wired-side endpoint. Downloads: the first uplink segment with `syn`
// (the HTTP GET) spawns a bulk TcpSender whose reply path is captured per
// flow, pinning each connection to the AP it was opened through — the
// per-AP NAT behaviour that makes multi-AP clients carry one TCP
// connection per AP. Uploads: a data segment with `syn` spawns a
// TcpReceiver (the POST sink) that acks back down the same path.
class ContentServer {
 public:
  using ReplyFn = std::function<void(const net::TcpSegment&)>;

  explicit ContentServer(sim::Simulator& simulator, TcpConfig config = {});

  ContentServer(const ContentServer&) = delete;
  ContentServer& operator=(const ContentServer&) = delete;

  // Uplink entry: request segments open download flows; acks feed the
  // flow's sender; client data segments feed (or open) upload sinks.
  void handle_segment(const net::TcpSegment& segment, ReplyFn reply);
  void remove_flow(std::uint64_t flow_id);

  std::size_t active_flows() const { return senders_.size(); }
  std::size_t active_uploads() const { return receivers_.size(); }
  const TcpSender* find(std::uint64_t flow_id) const;
  // Bytes received in-order on an upload flow (0 if unknown).
  std::int64_t upload_bytes(std::uint64_t flow_id) const;

 private:
  sim::Simulator& sim_;
  TcpConfig config_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TcpSender>> senders_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TcpReceiver>> receivers_;
};

}  // namespace spider::tcp
