#include "tcp/tcp.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace spider::tcp {

// --- Sender ------------------------------------------------------------------

TcpSender::TcpSender(sim::Simulator& simulator, std::uint64_t flow_id,
                     SendFn send, std::int64_t total_bytes, TcpConfig config)
    : sim_(simulator),
      flow_id_(flow_id),
      send_(std::move(send)),
      total_bytes_(total_bytes < 0 ? std::numeric_limits<std::int64_t>::max()
                                   : total_bytes),
      config_(config),
      cwnd_(config.initial_cwnd_segments),
      rto_(config.initial_rto) {}

TcpSender::~TcpSender() { rto_timer_.cancel(); }

bool TcpSender::finished() const { return snd_una_ >= total_bytes_; }

std::int64_t TcpSender::window_bytes() const {
  const double win_segments =
      std::min(cwnd_, static_cast<double>(config_.receive_window_segments));
  return static_cast<std::int64_t>(win_segments) * config_.mss_bytes;
}

std::int64_t TcpSender::segment_len(std::int64_t seq) const {
  return std::min<std::int64_t>(config_.mss_bytes, total_bytes_ - seq);
}

void TcpSender::start() { try_send(); }

void TcpSender::emit(std::int64_t seq, bool retransmit) {
  net::TcpSegment segment;
  segment.flow_id = flow_id_;
  segment.from_sender = true;
  segment.seq = seq;
  segment.payload_bytes = segment_len(seq);
  segment.ts = sim_.now();
  if (retransmit) ++retransmissions_;
  send_(segment);
}

void TcpSender::try_send() {
  const std::int64_t limit = std::min(snd_una_ + window_bytes(), total_bytes_);
  while (snd_nxt_ < limit) {
    emit(snd_nxt_, /*retransmit=*/false);
    snd_nxt_ += segment_len(snd_nxt_);
  }
  if (snd_una_ < snd_nxt_ && !rto_timer_.pending()) arm_rto();
}

void TcpSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = sim_.schedule_after(rto_, [this] { on_rto(); });
}

void TcpSender::sample_rtt(sim::Time rtt) {
  if (srtt_.is_zero()) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    const sim::Time err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + rtt * 0.125;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.min_rto, config_.max_rto);
}

void TcpSender::on_ack(const net::TcpSegment& ack) {
  if (ack.ack < 0) return;

  if (ack.has_ts_echo) sample_rtt(sim_.now() - ack.ts_echo);

  if (ack.ack > snd_una_) {  // new data acked
    const std::int64_t acked = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    dupacks_ = 0;
    const double acked_segments =
        static_cast<double>(acked) / config_.mss_bytes;
    if (cwnd_ < ssthresh_) {
      cwnd_ += acked_segments;  // slow start
    } else {
      cwnd_ += acked_segments / cwnd_;  // congestion avoidance
    }
    if (snd_una_ >= snd_nxt_) {
      rto_timer_.cancel();  // everything in flight is acked
    } else {
      arm_rto();  // restart for the remaining flight
    }
    try_send();
  } else if (ack.ack == snd_una_ && snd_una_ < snd_nxt_) {
    ++dupacks_;
    if (dupacks_ == 3) {
      // Fast retransmit + (simplified) fast recovery.
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      emit(snd_una_, /*retransmit=*/true);
      arm_rto();
    }
  }
}

void TcpSender::on_rto() {
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding
  ++timeouts_;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  rto_ = std::min(rto_ * 2, config_.max_rto);  // Karn backoff
  // Go-back-N from the loss point: retransmit the first unacked segment and
  // let acks clock out the rest.
  snd_nxt_ = snd_una_ + segment_len(snd_una_);
  emit(snd_una_, /*retransmit=*/true);
  arm_rto();
}

// --- Receiver ------------------------------------------------------------------

TcpReceiver::TcpReceiver(sim::Simulator& simulator, std::uint64_t flow_id,
                         SendFn send, TcpConfig config)
    : sim_(simulator),
      flow_id_(flow_id),
      send_(std::move(send)),
      config_(config) {}

void TcpReceiver::on_segment(const net::TcpSegment& segment) {
  if (!segment.from_sender || segment.payload_bytes <= 0) return;

  const std::int64_t seg_end = segment.seq + segment.payload_bytes;
  const std::int64_t before = rcv_next_;

  if (segment.seq <= rcv_next_ && seg_end > rcv_next_) {
    rcv_next_ = seg_end;
    // Merge any buffered out-of-order runs that are now contiguous.
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      if (it->first > rcv_next_) break;
      rcv_next_ = std::max(rcv_next_, it->second);
      it = ooo_.erase(it);
    }
  } else if (segment.seq > rcv_next_) {
    ++out_of_order_;
    auto [it, inserted] = ooo_.emplace(segment.seq, seg_end);
    if (!inserted) it->second = std::max(it->second, seg_end);
  }
  // else: fully duplicate segment; just re-ack.

  if (on_delivered_ && rcv_next_ > before) on_delivered_(rcv_next_ - before);

  net::TcpSegment ack;
  ack.flow_id = flow_id_;
  ack.from_sender = false;
  ack.ack = rcv_next_;
  ack.ts = sim_.now();
  ack.ts_echo = segment.ts;
  ack.has_ts_echo = true;
  ++acks_sent_;
  send_(ack);
}

// --- Content server ------------------------------------------------------------

ContentServer::ContentServer(sim::Simulator& simulator, TcpConfig config)
    : sim_(simulator), config_(config) {}

void ContentServer::handle_segment(const net::TcpSegment& segment,
                                   ReplyFn reply) {
  if (segment.from_sender) {
    // Client-originated data: an upload. Open the sink on the first (syn)
    // segment; later segments just feed it.
    auto it = receivers_.find(segment.flow_id);
    if (it == receivers_.end()) {
      if (!segment.syn) return;  // data for an upload we never opened
      auto receiver = std::make_unique<TcpReceiver>(
          sim_, segment.flow_id, std::move(reply), config_);
      it = receivers_.emplace(segment.flow_id, std::move(receiver)).first;
    }
    it->second->on_segment(segment);
    return;
  }

  auto it = senders_.find(segment.flow_id);
  if (it == senders_.end()) {
    if (!segment.syn) return;  // ack for a flow we already tore down
    auto sender = std::make_unique<TcpSender>(sim_, segment.flow_id,
                                              std::move(reply),
                                              /*total_bytes=*/-1, config_);
    auto* raw = sender.get();
    senders_.emplace(segment.flow_id, std::move(sender));
    raw->start();
    return;
  }
  it->second->on_ack(segment);
}

void ContentServer::remove_flow(std::uint64_t flow_id) {
  senders_.erase(flow_id);
  receivers_.erase(flow_id);
}

std::int64_t ContentServer::upload_bytes(std::uint64_t flow_id) const {
  auto it = receivers_.find(flow_id);
  return it == receivers_.end() ? 0 : it->second->bytes_in_order();
}

const TcpSender* ContentServer::find(std::uint64_t flow_id) const {
  auto it = senders_.find(flow_id);
  return it == senders_.end() ? nullptr : it->second.get();
}

}  // namespace spider::tcp
