#include "server/run_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

#include <cstring>
#include <utility>

#include "core/check.h"
#include "mobility/deployment.h"
#include "mobility/route.h"
#include "telemetry/json.h"
#include "telemetry/run_report.h"

namespace spider::server {
namespace {

// Follower connection: the sink owns the fd once "follow" is accepted and
// closes it when the exporter unsubscribes (write failure) or shuts down.
//
// write_line is called with the exporter lock held, so it must never block
// indefinitely: a follower that stops reading (paused pager, SIGSTOP) would
// otherwise wedge the exporter I/O thread and, through its mutex, the
// runner's end-of-run detach and the snapshot/add_sink paths. The fd is
// therefore non-blocking, and a full socket buffer gets a short bounded
// POLLOUT wait before the sink fails out and is unsubscribed.
class SocketSink : public telemetry::StreamSink {
 public:
  explicit SocketSink(int fd) : fd_(fd) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
  ~SocketSink() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool write_line(std::string_view line) override {
    const char* p = line.data();
    std::size_t n = line.size();
    // Total wait budget per line for a congested-but-alive follower; a
    // buffer still full past this is a stalled consumer, and stalled
    // consumers get dropped rather than slow the exporter.
    int budget_ms = 100;
    while (n > 0) {
      const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (w > 0) {
        p += static_cast<std::size_t>(w);
        n -= static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (budget_ms <= 0) return false;
        const int slice_ms = budget_ms < 20 ? budget_ms : 20;
        pollfd pfd{fd_, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, slice_ms);
        if (ready < 0 && errno != EINTR) return false;
        budget_ms -= slice_ms;
        continue;
      }
      return false;
    }
    return true;
  }

 private:
  int fd_;
};

bool send_all(int fd, std::string_view text) {
  const char* p = text.data();
  std::size_t n = text.size();
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

std::string error_line(std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":";
  telemetry::append_json_quoted(out, message);
  out += "}\n";
  return out;
}

}  // namespace

core::ExperimentConfig drive_scenario(std::uint64_t seed, sim::Time duration,
                                      int aps) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  sim::Rng rng(seed ^ 0x5eedf00dULL);
  cfg.aps = mobility::area_deployment(700.0, 500.0, aps, rng);
  cfg.vehicle =
      mobility::Vehicle{mobility::Route::rectangle(600.0, 400.0), 10.0};
  return cfg;
}

core::FleetConfig fleet_scenario(std::uint64_t seed, sim::Time duration,
                                 int clients, int aps) {
  core::FleetConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  cfg.clients = clients;
  sim::Rng rng(seed ^ 0x5eedf00dULL);
  cfg.aps = mobility::area_deployment(700.0, 500.0, aps, rng);
  cfg.vehicle =
      mobility::Vehicle{mobility::Route::rectangle(600.0, 400.0), 10.0};
  return cfg;
}

RunServer::RunServer(RunServerConfig config) : config_(std::move(config)) {}

RunServer::~RunServer() { stop(); }

bool RunServer::start() {
  SPIDER_CHECK(!running()) << "RunServer::start: already running";
  if (!config_.stream_file.empty()) {
    auto sink = std::make_shared<telemetry::FileStreamSink>(
        config_.stream_file);
    if (sink->ok()) exporter_.add_sink(std::move(sink));
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  stop_.store(false, std::memory_order_release);
  shutdown_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  runner_thread_ = std::thread([this] { runner_loop(); });
  return true;
}

void RunServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    // stop_ is waited on through mu_-guarded predicates (runner_loop,
    // wait_idle): set it under the lock so a waiter can't evaluate its
    // predicate false, miss the notify, and block forever.
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  idle_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // The accept thread spawns one handler thread per connection; all of
    // them check stop_ at least every poll slice, so this drains quickly.
    std::unique_lock<std::mutex> lock(clients_mu_);
    clients_cv_.wait(lock, [this] { return active_clients_ == 0; });
  }
  if (runner_thread_.joinable()) runner_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
}

std::uint32_t RunServer::submit(const RunSubmission& submission) {
  std::uint32_t tag;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tag = next_run_tag_++;
    queue_.emplace_back(submission, tag);
    // Inside the lock for the same lost-wakeup reason as stop_: wait_idle's
    // predicate reads it under mu_.
    runs_submitted_.fetch_add(1, std::memory_order_acq_rel);
  }
  cv_.notify_all();
  return tag;
}

void RunServer::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return stop_.load(std::memory_order_acquire) ||
           (queue_.empty() &&
            runs_completed_.load(std::memory_order_acquire) ==
                runs_submitted_.load(std::memory_order_acquire));
  });
}

void RunServer::runner_loop() {
  for (;;) {
    std::pair<RunSubmission, std::uint32_t> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !queue_.empty();
      });
      // Abandon queued-but-not-started runs on stop: a shutdown shouldn't
      // wait out a backlog of multi-second simulations.
      if (stop_.load(std::memory_order_acquire)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(job.first, job.second);
    {
      std::lock_guard<std::mutex> lock(mu_);
      runs_completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    idle_cv_.notify_all();
  }
}

void RunServer::execute(const RunSubmission& submission,
                        std::uint32_t run_tag) {
  try {
    if (submission.scenario == "fleet") {
      core::FleetConfig cfg = fleet_scenario(submission.seed,
                                             submission.duration,
                                             submission.clients,
                                             submission.aps);
      cfg.stream = &exporter_;
      cfg.stream_run_tag = run_tag;
      cfg.stream_cadence = config_.stream_cadence;
      cfg.stream_ring_capacity = config_.ring_capacity;
      core::FleetExperiment experiment(std::move(cfg));
      if (config_.trace_runs) {
        experiment.simulator().telemetry().trace().set_enabled(true);
      }
      experiment.run();
      return;
    }
    core::ExperimentConfig cfg = drive_scenario(submission.seed,
                                                submission.duration,
                                                submission.aps);
    cfg.trace_enabled = config_.trace_runs;
    cfg.stream = &exporter_;
    cfg.stream_run_tag = run_tag;
    cfg.stream_cadence = config_.stream_cadence;
    cfg.stream_ring_capacity = config_.ring_capacity;
    core::Experiment experiment(std::move(cfg));
    experiment.run();
  } catch (const std::exception&) {
    // A failed run must not take the server down; the aborted state stays
    // visible in the snapshot (run attached but never finished).
    runs_failed_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void RunServer::accept_loop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stop_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // One handler thread per connection so a client sitting in its idle
    // window (or streaming commands) can't starve other clients' accepts.
    // stop() waits for active_clients_ to reach zero before returning, so a
    // detached handler never outlives the server.
    {
      std::lock_guard<std::mutex> lock(clients_mu_);
      ++active_clients_;
    }
    std::thread([this, fd] {
      handle_client(fd);
      std::lock_guard<std::mutex> lock(clients_mu_);
      --active_clients_;
      clients_cv_.notify_all();
    }).detach();
  }
}

void RunServer::handle_client(int fd) {
  // Bound outbound writes so a client that stops reading its responses
  // can't pin this handler thread past stop().
  timeval send_timeout{};
  send_timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // One request line at a time; drop connections idle for >5 s so a stuck
    // client can't hold its handler thread forever. Poll in short slices so
    // stop() stays responsive mid-window.
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = -1;
      for (int idle_ms = 0; idle_ms < 5000;) {
        if (stop_.load(std::memory_order_acquire)) break;
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) break;
        if (ready == 0) {
          idle_ms += 200;
          continue;
        }
        n = ::recv(fd, chunk, sizeof(chunk), 0);
        break;
      }
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (line.empty()) continue;

    telemetry::JsonValue request;
    if (!telemetry::parse_json(line, request) || !request.is_object()) {
      if (!send_all(fd, error_line("malformed request"))) break;
      continue;
    }
    const std::string cmd = request.string_or("cmd", "");
    if (cmd == "ping") {
      std::string out = "{\"ok\":true,\"kind\":\"pong\",\"runs_submitted\":";
      telemetry::append_json_u64(out, runs_submitted());
      out += ",\"runs_completed\":";
      telemetry::append_json_u64(out, runs_completed());
      out += ",\"lines\":";
      telemetry::append_json_u64(out, exporter_.lines_written());
      out += "}\n";
      if (!send_all(fd, out)) break;
      continue;
    }
    if (cmd == "snapshot") {
      if (!send_all(fd, exporter_.snapshot_json() + "\n")) break;
      continue;
    }
    if (cmd == "follow") {
      // Snapshot first so a late joiner has every run's current state, then
      // hand the fd to the exporter as a live sink. Ownership transfers:
      // this connection is now written to only under the exporter lock.
      if (!send_all(fd, exporter_.snapshot_json() + "\n")) break;
      exporter_.add_sink(std::make_shared<SocketSink>(fd));
      return;
    }
    if (cmd == "submit") {
      RunSubmission submission;
      submission.scenario = request.string_or("scenario", "drive");
      submission.seed =
          static_cast<std::uint64_t>(request.number_or("seed", 1));
      submission.duration = sim::Time::millis(static_cast<std::int64_t>(
          request.number_or("duration_s", 30.0) * 1e3));
      submission.aps = static_cast<int>(request.number_or("aps", 12));
      submission.clients = static_cast<int>(request.number_or("clients", 4));
      if (submission.scenario != "drive" && submission.scenario != "fleet") {
        if (!send_all(fd, error_line("unknown scenario"))) break;
        continue;
      }
      if (submission.duration <= sim::Time::zero() || submission.aps < 1 ||
          submission.clients < 1) {
        if (!send_all(fd, error_line("bad submission parameters"))) break;
        continue;
      }
      const std::uint32_t tag = submit(submission);
      std::string out = "{\"ok\":true,\"run\":";
      telemetry::append_json_u64(out, tag);
      out += "}\n";
      if (!send_all(fd, out)) break;
      continue;
    }
    if (cmd == "shutdown") {
      // Flag first, then acknowledge: a client that has read the reply must
      // be able to observe shutdown_requested() == true.
      shutdown_.store(true, std::memory_order_release);
      send_all(fd, "{\"ok\":true}\n");
      break;
    }
    if (!send_all(fd, error_line("unknown cmd"))) break;
  }
  ::close(fd);
}

}  // namespace spider::server
