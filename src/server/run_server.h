// Run server: hosts simulation worlds behind a local AF_UNIX socket and
// streams their live telemetry to anyone who connects (DESIGN.md "Live
// telemetry plane"). `spider-serve` is the CLI wrapper; `spider-trace
// --follow <socket>` is the first consumer.
//
// Protocol: line-delimited JSON, one request per line, one response line per
// request (every response carries "ok"):
//   {"cmd":"ping"}                         -> {"ok":true,"kind":"pong",...}
//   {"cmd":"snapshot"}                     -> the exporter's registry
//                                             snapshot line (every run seen,
//                                             latest metric values)
//   {"cmd":"follow"}                       -> one snapshot line, then the
//                                             live stream (JSONL, schema
//                                             spider-telemetry-stream-v1)
//                                             until the client hangs up
//   {"cmd":"submit","scenario":"drive",    -> {"ok":true,"run":R}; the run
//    "seed":1,"duration_s":30,"aps":12}       executes on the server's
//                                             runner thread, tagged R
//   {"cmd":"shutdown"}                     -> {"ok":true}; flags the host
//                                             loop to stop (see
//                                             shutdown_requested())
//
// Threading: one accept thread (poll + accept), one short-lived handler
// thread per accepted connection (so one client can't starve another's
// accept), one runner thread executing queued submissions serially, plus
// the exporter's own I/O thread. Worlds only ever live on the runner
// thread, preserving the one-world-one-thread simulator contract;
// followers observe through the lock-free ring, never through the world —
// and follower sockets are non-blocking, so a stalled consumer is dropped
// rather than allowed to slow the exporter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/experiment.h"
#include "core/fleet.h"
#include "telemetry/stream_exporter.h"

namespace spider::server {

struct RunServerConfig {
  std::string socket_path;  // AF_UNIX path; bound on start(), unlinked first
  std::string stream_file;  // optional JSONL mirror of every streamed line
  sim::Time stream_cadence = sim::Time::millis(100);
  std::size_t ring_capacity = 1 << 15;
  bool trace_runs = true;  // enable the trace recorder on hosted runs
};

// One hosted run request. "drive" is the single-client vehicular harness
// (core::Experiment); "fleet" is N clients sharing the deployment
// (core::FleetExperiment).
struct RunSubmission {
  std::string scenario = "drive";  // "drive" | "fleet"
  std::uint64_t seed = 1;
  sim::Time duration = sim::Time::seconds(30);
  int aps = 12;
  int clients = 4;  // fleet only
};

// Canonical hosted scenarios, exposed so tests and benches can run the exact
// world the server would. Deterministic for a given argument tuple.
core::ExperimentConfig drive_scenario(std::uint64_t seed, sim::Time duration,
                                      int aps);
core::FleetConfig fleet_scenario(std::uint64_t seed, sim::Time duration,
                                 int clients, int aps);

class RunServer {
 public:
  explicit RunServer(RunServerConfig config);
  ~RunServer();

  RunServer(const RunServer&) = delete;
  RunServer& operator=(const RunServer&) = delete;

  // Binds the socket and starts the accept + runner threads. Returns false
  // (with the server stopped) if the socket can't be bound.
  bool start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  // Set by the "shutdown" command; the hosting loop (spider-serve) polls
  // this and calls stop().
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  telemetry::StreamExporter& exporter() { return exporter_; }

  // Enqueues a run (same path the socket "submit" command uses). Returns
  // the run tag its streamed lines will carry.
  std::uint32_t submit(const RunSubmission& submission);

  std::uint64_t runs_submitted() const {
    return runs_submitted_.load(std::memory_order_acquire);
  }
  std::uint64_t runs_completed() const {
    return runs_completed_.load(std::memory_order_acquire);
  }
  std::uint64_t runs_failed() const {
    return runs_failed_.load(std::memory_order_acquire);
  }
  // Blocks until every submitted run has executed, or until stop() abandons
  // the queue (tests; the accept/handler threads never call this).
  void wait_idle();

 private:
  void accept_loop();
  void runner_loop();
  void handle_client(int fd);
  void execute(const RunSubmission& submission, std::uint32_t run_tag);

  RunServerConfig config_;
  telemetry::StreamExporter exporter_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> runs_submitted_{0};
  std::atomic<std::uint64_t> runs_completed_{0};
  std::atomic<std::uint64_t> runs_failed_{0};
  int listen_fd_ = -1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::pair<RunSubmission, std::uint32_t>> queue_;
  std::uint32_t next_run_tag_ = 0;
  std::thread accept_thread_;
  std::thread runner_thread_;
  // Detached per-connection handler threads; stop() blocks until the count
  // drains to zero so no handler can outlive the server.
  std::mutex clients_mu_;
  std::condition_variable clients_cv_;
  int active_clients_ = 0;
};

}  // namespace spider::server
