// An "AP host" bundles everything that lives at one access point: the
// 802.11 MAC, its private DHCP server, and a shaped backhaul pipe to the
// wired content server. It bridges the two worlds:
//
//   uplink:   client data frame -> demux -> DHCP server | backhaul -> server
//   downlink: server segment -> backhaul -> AccessPoint::send_to_client()
//             (power-save buffering applies transparently)
//
// The host learns flow -> client-MAC bindings from uplink traffic, like the
// NAT in a home gateway; a TCP connection is therefore pinned to the AP it
// was opened through for its whole life.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "backhaul/wired_link.h"
#include "dhcpd/dhcp_server.h"
#include "mac/access_point.h"
#include "phy/medium.h"
#include "sim/random.h"
#include "tcp/tcp.h"

namespace spider::backhaul {

struct ApHostConfig {
  mac::AccessPointConfig ap;
  dhcpd::DhcpServerConfig dhcp;
  WiredLinkConfig backhaul;  // applied to both directions
};

class ApHost {
 public:
  ApHost(phy::Medium& medium, tcp::ContentServer& server,
         net::MacAddress address, phy::Vec2 position, net::Ipv4Address subnet,
         sim::Rng rng, ApHostConfig config = {});

  ApHost(const ApHost&) = delete;
  ApHost& operator=(const ApHost&) = delete;

  void start() { ap_.start(); }

  mac::AccessPoint& ap() { return ap_; }
  const mac::AccessPoint& ap() const { return ap_; }
  dhcpd::DhcpServer& dhcp() { return dhcp_; }
  void set_backhaul_rate(double bps);

  std::uint64_t uplink_segments() const { return uplink_segments_; }
  std::uint64_t downlink_segments() const { return downlink_segments_; }

 private:
  void on_client_data(const net::Frame& frame);
  void on_downlink(const net::TcpSegment& segment);

  tcp::ContentServer& server_;
  mac::AccessPoint ap_;
  dhcpd::DhcpServer dhcp_;
  WiredLink uplink_;
  WiredLink downlink_;
  std::unordered_map<std::uint64_t, net::MacAddress> flow_client_;
  std::uint64_t uplink_segments_ = 0;
  std::uint64_t downlink_segments_ = 0;
};

}  // namespace spider::backhaul
