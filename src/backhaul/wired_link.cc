#include "backhaul/wired_link.h"

#include <algorithm>
#include <utility>

namespace spider::backhaul {

WiredLink::WiredLink(sim::Simulator& simulator, WiredLinkConfig config)
    : sim_(simulator), config_(config) {}

std::int64_t WiredLink::backlog_bytes() const {
  if (config_.rate_bps <= 0.0 || busy_until_ <= sim_.now()) return 0;
  const double secs = (busy_until_ - sim_.now()).sec();
  return static_cast<std::int64_t>(secs * config_.rate_bps / 8.0);
}

void WiredLink::send(net::TcpSegment segment) {
  const int size = segment.size_bytes();
  sim::Time ready = sim_.now();
  if (config_.rate_bps > 0.0) {
    if (backlog_bytes() + size > config_.queue_limit_bytes) {
      ++dropped_;
      return;
    }
    const sim::Time start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + sim::transmission_time(size, config_.rate_bps);
    ready = busy_until_;
  }
  sim_.post_at(ready + config_.latency, [this, segment] {
    ++delivered_;
    if (deliver_) deliver_(segment);
  });
}

}  // namespace spider::backhaul
