#include "backhaul/ap_host.h"

#include <utility>
#include <variant>

namespace spider::backhaul {

ApHost::ApHost(phy::Medium& medium, tcp::ContentServer& server,
               net::MacAddress address, phy::Vec2 position,
               net::Ipv4Address subnet, sim::Rng rng, ApHostConfig config)
    : server_(server),
      ap_(medium, address, position, rng.fork("ap"), config.ap),
      dhcp_(medium.simulator(), ap_,
            net::Ipv4Address{subnet.value() | 1u},  // gateway at .1
            rng.fork("dhcp"), config.dhcp),
      uplink_(medium.simulator(), config.backhaul),
      downlink_(medium.simulator(), config.backhaul) {
  ap_.set_data_sink([this](const net::Frame& f) { on_client_data(f); });
  uplink_.set_deliver_handler([this](const net::TcpSegment& seg) {
    // Reply path captured per flow: down this AP's shaped backhaul.
    server_.handle_segment(
        seg, [this](const net::TcpSegment& reply) { downlink_.send(reply); });
  });
  downlink_.set_deliver_handler(
      [this](const net::TcpSegment& seg) { on_downlink(seg); });
}

void ApHost::set_backhaul_rate(double bps) {
  uplink_.set_rate(bps);
  downlink_.set_rate(bps);
}

void ApHost::on_client_data(const net::Frame& frame) {
  if (frame.payload.holds<net::DhcpMessage>()) {
    dhcp_.handle_frame(frame);
    return;
  }
  if (const auto* seg = frame.payload.get_if<net::TcpSegment>()) {
    flow_client_[seg->flow_id] = frame.src;
    ++uplink_segments_;
    uplink_.send(*seg);
  }
}

void ApHost::on_downlink(const net::TcpSegment& segment) {
  auto it = flow_client_.find(segment.flow_id);
  if (it == flow_client_.end()) return;  // flow opened elsewhere
  ++downlink_segments_;
  ap_.send_to_client(it->second, net::make_tcp_frame(ap_.address(), it->second,
                                                     ap_.address(), segment));
}

}  // namespace spider::backhaul
