// One-way wired link with a token-bucket-equivalent rate shaper and a
// drop-tail byte queue — the stand-in for each AP's DSL/cable backhaul and
// the traffic shaper used in the paper's Fig. 9 micro-benchmark.
#pragma once

#include <cstdint>
#include <functional>

#include "net/frame.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::backhaul {

struct WiredLinkConfig {
  double rate_bps = 0.0;  // 0 = unshaped (infinite rate)
  sim::Time latency = sim::Time::millis(20);
  // Residential gateways of the era were famously over-buffered; a deep
  // drop-tail queue also lets TCP slow-start discover the path capacity.
  std::int64_t queue_limit_bytes = 256 * 1024;
};

class WiredLink {
 public:
  using DeliverFn = std::function<void(const net::TcpSegment&)>;

  WiredLink(sim::Simulator& simulator, WiredLinkConfig config = {});

  WiredLink(const WiredLink&) = delete;
  WiredLink& operator=(const WiredLink&) = delete;

  void set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_rate(double bps) { config_.rate_bps = bps; }
  const WiredLinkConfig& config() const { return config_; }

  // Enqueues the segment; drops it if the shaper queue is full.
  void send(net::TcpSegment segment);

  std::int64_t backlog_bytes() const;
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  sim::Simulator& sim_;
  WiredLinkConfig config_;
  DeliverFn deliver_;
  sim::Time busy_until_ = sim::Time::zero();
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace spider::backhaul
