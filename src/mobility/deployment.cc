#include "mobility/deployment.h"

#include <algorithm>
#include <cstdio>

#include "mobility/route.h"
#include "phy/channel.h"

namespace spider::mobility {

net::ChannelId sample_channel(const ChannelMix& mix, sim::Rng& rng) {
  const double u = rng.uniform();
  if (u < mix.ch1) return 1;
  if (u < mix.ch1 + mix.ch6) return 6;
  if (u < mix.ch1 + mix.ch6 + mix.ch11) return 11;
  // Remainder: uniformly one of the overlapped channels.
  static constexpr net::ChannelId kOthers[] = {2, 3, 4, 5, 7, 8, 9, 10};
  return kOthers[rng.uniform_int(0, 7)];
}

namespace {

ApDescriptor make_descriptor(std::size_t index, phy::Vec2 position,
                             sim::Rng& rng, const DeploymentConfig& config) {
  ApDescriptor d;
  char name[32];
  std::snprintf(name, sizeof(name), "ap-%03zu", index);
  d.ssid = name;
  d.mac = net::MacAddress::from_index(
      0x00A90000u | static_cast<std::uint32_t>(index));
  // Distinct /24 per AP: 10.<hi>.<lo>.0
  d.subnet = net::Ipv4Address{(10u << 24) |
                              ((static_cast<std::uint32_t>(index) >> 8) << 16) |
                              ((static_cast<std::uint32_t>(index) & 0xFF) << 8)};
  d.position = position;
  d.channel = sample_channel(config.mix, rng);
  d.backhaul_bps = rng.uniform(config.backhaul_min_bps, config.backhaul_max_bps);
  if (rng.bernoulli(config.fast_fraction)) {
    d.dhcp_offer_min = config.fast_offer_min;
    d.dhcp_offer_max = config.fast_offer_max;
  } else {
    d.dhcp_offer_min = config.slow_offer_min;
    d.dhcp_offer_max = config.slow_offer_max;
  }
  d.dud = rng.bernoulli(config.dud_fraction);
  return d;
}

}  // namespace

namespace {

// Expands one site location into a single AP or a building cluster.
void emit_site(std::vector<ApDescriptor>& aps, phy::Vec2 site, sim::Rng& rng,
               const DeploymentConfig& config) {
  int count = 1;
  if (rng.bernoulli(config.cluster_fraction)) {
    count = static_cast<int>(
        rng.uniform_int(config.cluster_min, config.cluster_max));
  }
  if (count == 1) {
    // Standalone AP: exactly at the site (offsets stay meaningful).
    aps.push_back(make_descriptor(aps.size(), site, rng, config));
    return;
  }
  for (int i = 0; i < count; ++i) {
    const phy::Vec2 jitter{rng.uniform(-config.cluster_radius_m,
                                       config.cluster_radius_m),
                           rng.uniform(-config.cluster_radius_m,
                                       config.cluster_radius_m)};
    aps.push_back(make_descriptor(aps.size(), site + jitter, rng, config));
  }
}

}  // namespace

std::vector<ApDescriptor> linear_road_deployment(
    double road_length_m, sim::Rng& rng, const DeploymentConfig& config) {
  std::vector<ApDescriptor> aps;
  double x = rng.exponential(config.mean_spacing_m);
  while (x < road_length_m) {
    const double offset = rng.uniform(config.min_offset_m, config.max_offset_m);
    const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
    emit_site(aps, phy::Vec2{x, side * offset}, rng, config);
    x += rng.exponential(config.mean_spacing_m);
  }
  return aps;
}

std::vector<ApDescriptor> area_deployment(double width_m, double height_m,
                                          int site_count, sim::Rng& rng,
                                          const DeploymentConfig& config) {
  std::vector<ApDescriptor> aps;
  for (int i = 0; i < site_count; ++i) {
    const phy::Vec2 site{rng.uniform(0.0, width_m),
                         rng.uniform(0.0, height_m)};
    emit_site(aps, site, rng, config);
  }
  return aps;
}

std::vector<Encounter> encounters(const Route& route, double speed_mps,
                                  phy::Vec2 ap_position, double range_m,
                                  sim::Time horizon) {
  std::vector<Encounter> result;
  if (speed_mps <= 0.0) {
    const bool inside =
        distance(route.position_at_distance(0.0), ap_position) <= range_m;
    if (inside) result.push_back({sim::Time::zero(), horizon});
    return result;
  }

  const auto inside_at = [&](sim::Time t) {
    return distance(route.position_at_distance(speed_mps * t.sec()),
                    ap_position) <= range_m;
  };
  // Coarse scan fine enough to see any crossing of a 2*range chord.
  const sim::Time step = std::min(
      sim::Time::millis(200),
      sim::Time::seconds(std::max(range_m / speed_mps / 8.0, 1e-3)));
  const auto refine = [&](sim::Time lo, sim::Time hi) {
    // invariant: inside_at(lo) != inside_at(hi)
    const bool lo_inside = inside_at(lo);
    while ((hi - lo) > sim::Time::millis(1)) {
      const sim::Time mid = lo + (hi - lo) / 2;
      if (inside_at(mid) == lo_inside) lo = mid; else hi = mid;
    }
    return hi;
  };

  bool inside = inside_at(sim::Time::zero());
  sim::Time enter = sim::Time::zero();
  sim::Time prev = sim::Time::zero();
  for (sim::Time t = step; t <= horizon; t += step) {
    const bool now_inside = inside_at(t);
    if (now_inside != inside) {
      const sim::Time crossing = refine(prev, t);
      if (now_inside) {
        enter = crossing;
      } else {
        result.push_back({enter, crossing});
      }
      inside = now_inside;
    }
    prev = t;
  }
  if (inside) result.push_back({enter, horizon});
  return result;
}

}  // namespace spider::mobility
