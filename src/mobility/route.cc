#include "mobility/route.h"

#include <algorithm>
#include <cmath>

namespace spider::mobility {

Route::Route(std::vector<phy::Vec2> waypoints, RouteWrap wrap)
    : waypoints_(std::move(waypoints)), wrap_(wrap) {
  if (waypoints_.size() < 2)
    throw std::invalid_argument("Route: need at least two waypoints");
  cumulative_.reserve(waypoints_.size());
  cumulative_.push_back(0.0);
  bounds_min_ = bounds_max_ = waypoints_.front();
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    total_length_ += distance(waypoints_[i - 1], waypoints_[i]);
    cumulative_.push_back(total_length_);
    bounds_min_ = {std::min(bounds_min_.x, waypoints_[i].x),
                   std::min(bounds_min_.y, waypoints_[i].y)};
    bounds_max_ = {std::max(bounds_max_.x, waypoints_[i].x),
                   std::max(bounds_max_.y, waypoints_[i].y)};
  }
  if (total_length_ <= 0.0)
    throw std::invalid_argument("Route: zero total length");
}

Route Route::straight(double length_m, RouteWrap wrap) {
  return Route{{{0.0, 0.0}, {length_m, 0.0}}, wrap};
}

Route Route::rectangle(double width_m, double height_m) {
  return Route{{{0.0, 0.0},
                {width_m, 0.0},
                {width_m, height_m},
                {0.0, height_m},
                {0.0, 0.0}},
               RouteWrap::kLoop};
}

phy::Vec2 Route::position_at_distance(double distance_m) const {
  double d = distance_m;
  switch (wrap_) {
    case RouteWrap::kLoop:
      d = std::fmod(d, total_length_);
      if (d < 0.0) d += total_length_;
      break;
    case RouteWrap::kPingPong: {
      const double cycle = 2.0 * total_length_;
      d = std::fmod(d, cycle);
      if (d < 0.0) d += cycle;
      if (d > total_length_) d = cycle - d;
      break;
    }
    case RouteWrap::kStop:
      if (d <= 0.0) return waypoints_.front();
      if (d >= total_length_) return waypoints_.back();
      break;
  }
  // Find the segment containing d (cumulative_ is sorted).
  const auto it =
      std::lower_bound(cumulative_.begin() + 1, cumulative_.end() - 1, d);
  const std::size_t hi = static_cast<std::size_t>(it - cumulative_.begin());
  const double seg_start = cumulative_[hi - 1];
  const double seg_len = cumulative_[hi] - seg_start;
  const double frac = seg_len > 0.0 ? (d - seg_start) / seg_len : 0.0;
  return waypoints_[hi - 1] + frac * (waypoints_[hi] - waypoints_[hi - 1]);
}

}  // namespace spider::mobility
