// Vehicle routes and motion.
//
// A Route is a polyline; a Vehicle moves along it at constant speed, either
// looping (the paper's drives repeat the same loop for 30-60 minutes) or
// bouncing back and forth. Position is a pure function of time so tests and
// the analytical model can reason about encounters exactly.
#pragma once

#include <stdexcept>
#include <vector>

#include "phy/geom.h"
#include "sim/time.h"

namespace spider::mobility {

enum class RouteWrap { kLoop, kPingPong, kStop };

class Route {
 public:
  explicit Route(std::vector<phy::Vec2> waypoints,
                 RouteWrap wrap = RouteWrap::kLoop);

  // Straight road along +x starting at the origin.
  static Route straight(double length_m, RouteWrap wrap = RouteWrap::kStop);
  // Rectangular loop (the "downtown block" drive).
  static Route rectangle(double width_m, double height_m);

  double length() const { return total_length_; }
  RouteWrap wrap() const { return wrap_; }
  const std::vector<phy::Vec2>& waypoints() const { return waypoints_; }

  // Position after travelling `distance_m` from the start, applying wrap.
  // O(log waypoints): fleet runs call this once per client per position
  // tick, so the segment lookup binary-searches the cumulative lengths.
  phy::Vec2 position_at_distance(double distance_m) const;

  // Axis-aligned bounding box of the polyline — lets callers size worlds
  // (deployment areas, spatial grids, benchmark layouts) from the route.
  phy::Vec2 bounds_min() const { return bounds_min_; }
  phy::Vec2 bounds_max() const { return bounds_max_; }

 private:
  std::vector<phy::Vec2> waypoints_;
  std::vector<double> cumulative_;  // cumulative length at each waypoint
  double total_length_ = 0.0;
  phy::Vec2 bounds_min_{};
  phy::Vec2 bounds_max_{};
  RouteWrap wrap_;
};

class Vehicle {
 public:
  Vehicle(Route route, double speed_mps)
      : route_(std::move(route)), speed_(speed_mps) {
    if (speed_mps < 0.0) throw std::invalid_argument("Vehicle: speed < 0");
  }

  double speed() const { return speed_; }
  const Route& route() const { return route_; }

  phy::Vec2 position(sim::Time t) const {
    return route_.position_at_distance(speed_ * t.sec());
  }

 private:
  Route route_;
  double speed_;
};

}  // namespace spider::mobility
