// AP deployment generators.
//
// Produces the descriptor list an experiment instantiates ApHosts from.
// Calibrated to the paper's measurements: in Amherst almost all open APs sat
// on channels 1 (28%), 6 (33%), or 11 (34%); encounters at town speeds had a
// median of ~8 s and mean of ~22 s, which at 10 m/s corresponds to APs
// strung out every few hundred metres with ~100 m range.
#pragma once

#include <string>
#include <vector>

#include "net/addr.h"
#include "net/frame.h"
#include "phy/geom.h"
#include "sim/random.h"
#include "sim/time.h"

namespace spider::mobility {

struct ApDescriptor {
  std::string ssid;
  net::MacAddress mac;
  net::Ipv4Address subnet;  // /24 base, gateway .1
  phy::Vec2 position;
  net::ChannelId channel = 6;
  double backhaul_bps = 2e6;
  // Per-AP DHCP server responsiveness (the join-time beta spread).
  sim::Time dhcp_offer_min = sim::Time::millis(100);
  sim::Time dhcp_offer_max = sim::Time::millis(2000);
  // A "dud": looks open, associates, but never completes DHCP (NATed out,
  // MAC-filtered, exhausted pool, ...). Vehicular surveys consistently find
  // a large fraction of open-looking APs unusable.
  bool dud = false;
};

struct ChannelMix {
  // Probability mass on channels 1/6/11; the remainder is spread uniformly
  // over the in-between channels. Defaults match the Amherst survey.
  double ch1 = 0.28;
  double ch6 = 0.33;
  double ch11 = 0.34;
};

struct DeploymentConfig {
  // Mean distance between consecutive APs along the road (exponential
  // spacing -> Poisson process). 250 m at 100 m range gives town-like
  // intermittent coverage.
  double mean_spacing_m = 250.0;
  // Perpendicular offset from the road (houses set back from the street).
  double min_offset_m = 5.0;
  double max_offset_m = 40.0;
  ChannelMix mix;
  // Backhaul: uniform in [min,max] (urban DSL/cable spread).
  double backhaul_min_bps = 1e6;
  double backhaul_max_bps = 4e6;
  // DHCP responsiveness classes: a `fast_fraction` of APs answer quickly;
  // the rest are the slow gateways that dominate beta_max.
  double fast_fraction = 0.5;
  sim::Time fast_offer_min = sim::Time::millis(80);
  sim::Time fast_offer_max = sim::Time::millis(600);
  sim::Time slow_offer_min = sim::Time::millis(500);
  sim::Time slow_offer_max = sim::Time::millis(2500);
  // Fraction of open-looking APs that never hand out a usable lease.
  double dud_fraction = 0.2;
  // Downtown buildings host several tenant APs: a site is a cluster with
  // probability cluster_fraction, containing uniform[cluster_min,
  // cluster_max] APs jittered within cluster_radius_m of the site.
  double cluster_fraction = 0.4;
  int cluster_min = 2;
  int cluster_max = 4;
  double cluster_radius_m = 20.0;
};

// APs scattered along a straight road of `road_length_m` metres (x axis).
std::vector<ApDescriptor> linear_road_deployment(double road_length_m,
                                                 sim::Rng& rng,
                                                 const DeploymentConfig& config
                                                 = {});

// APs scattered uniformly over a rectangle (downtown-core drives).
std::vector<ApDescriptor> area_deployment(double width_m, double height_m,
                                          int site_count, sim::Rng& rng,
                                          const DeploymentConfig& config = {});

// Samples a channel from the mix.
net::ChannelId sample_channel(const ChannelMix& mix, sim::Rng& rng);

// [t_enter, t_exit) intervals during which a vehicle on `route` at `speed`
// is within `range_m` of `ap_position`, up to `horizon`. Boundary crossings
// are found by coarse sampling and refined by bisection to ~1 ms.
struct Encounter {
  sim::Time enter;
  sim::Time exit;
  sim::Time duration() const { return exit - enter; }
};

std::vector<Encounter> encounters(const class Route& route, double speed_mps,
                                  phy::Vec2 ap_position, double range_m,
                                  sim::Time horizon);

}  // namespace spider::mobility
