// Throughput-maximization framework (Section 2.1.3, Eqs. 8-10).
//
//   max_f  T * sum_i f_i * Bw
//   s.t.   0 <= f_i <= (Bj_i + (1 - g_T(f_i)/T) * Ba_i) / Bw     (Eq. 9)
//          sum_i (f_i * D + ceil(f_i) * w) <= D                  (Eq. 10)
//
// Bj_i: end-to-end bandwidth already joined on channel i; Ba_i: bandwidth
// available from APs the node would still have to join (discounted by the
// expected join time g_T). The key output is the *dividing speed*: the node
// speed above which the optimum puts zero time on the second channel.
#pragma once

#include <vector>

#include "model/join_model.h"

namespace spider::model {

struct ChannelOffer {
  double joined_bps = 0.0;     // Bj_i: already-joined end-to-end bandwidth
  double available_bps = 0.0;  // Ba_i: bandwidth pending a successful join
};

struct OptimizerParams {
  JoinModelParams join;      // supplies D, w, and the join-time curve g_T
  double wireless_bps = 11e6;  // Bw
  double time_in_range = 20.0;  // T (s)
  double grid_step = 0.005;   // search resolution on each f_i
};

struct Allocation {
  std::vector<double> fractions;      // f_i
  std::vector<double> extracted_bps;  // f_i * Bw per channel
  double total_bps = 0.0;             // sum of extracted
  bool feasible = true;
};

// Right-hand side of Eq. 9 for one channel.
double channel_cap_fraction(const OptimizerParams& params,
                            const ChannelOffer& offer, double fraction);

// Exhaustive grid solve for the two-channel case the paper evaluates
// (channel 1 joined, channel 2 pending). Exact to grid_step.
Allocation optimize_two_channels(const OptimizerParams& params,
                                 ChannelOffer ch1, ChannelOffer ch2);

// General k-channel solve by coordinate ascent from several starts; exact
// for k <= 2, good-quality heuristic beyond (the selection problem is
// NP-hard per the paper's technical report).
Allocation optimize_channels(const OptimizerParams& params,
                             const std::vector<ChannelOffer>& offers);

// Time in range of an AP for a vehicle crossing the coverage disc through
// its center: 2 * range / speed.
double time_in_range_for_speed(double speed_mps, double range_m = 100.0);

// The dividing speed for a two-channel scenario: the lowest speed (within
// [lo, hi] m/s, bisected to `tol`) at which the optimal schedule puts less
// than `epsilon` of the period on the to-be-joined channel.
double dividing_speed(OptimizerParams params, ChannelOffer ch1,
                      ChannelOffer ch2, double range_m = 100.0,
                      double lo = 0.5, double hi = 40.0, double tol = 0.05,
                      double epsilon = 0.01);

}  // namespace spider::model
