#include "model/join_sim.h"

#include <cmath>

#include "trace/stats.h"

namespace spider::model {

bool simulate_join_trial(const JoinModelParams& params, double fraction,
                         double time_in_range, sim::Rng& rng) {
  const int rounds = static_cast<int>(std::floor(time_in_range / params.period));
  const int k_max = requests_per_round(params, fraction);
  const double D = params.period;

  for (int m = 1; m <= rounds; ++m) {
    const double round_start = (m - 1) * D;
    for (int k = 1; k <= k_max; ++k) {
      // Request sent at the beginning of segment k (after the switch-in).
      const double sent =
          round_start + params.switch_delay + (k - 1) * params.request_interval;
      if (rng.bernoulli(params.loss)) continue;  // request lost
      const double beta = rng.uniform(params.beta_min, params.beta_max);
      if (rng.bernoulli(params.loss)) continue;  // response lost
      const double arrival = sent + beta;
      // Success iff the arrival falls inside an on-channel window of the
      // current or a later round (windows sit at the start of each round).
      for (int n = m; n <= rounds; ++n) {
        const double win_start = (n - 1) * D;
        const double win_end = win_start + fraction * D;
        if (arrival >= win_start && arrival <= win_end) return true;
        if (win_start > arrival) break;
      }
    }
  }
  return false;
}

MonteCarloResult monte_carlo_join_probability(const JoinModelParams& params,
                                              double fraction,
                                              double time_in_range,
                                              sim::Rng rng, int runs,
                                              int trials_per_run) {
  trace::OnlineStats per_run;
  for (int r = 0; r < runs; ++r) {
    auto run_rng = rng.fork(static_cast<std::uint64_t>(r));
    int successes = 0;
    for (int t = 0; t < trials_per_run; ++t) {
      if (simulate_join_trial(params, fraction, time_in_range, run_rng)) {
        ++successes;
      }
    }
    per_run.add(static_cast<double>(successes) / trials_per_run);
  }
  return MonteCarloResult{per_run.mean(), per_run.stddev()};
}

}  // namespace spider::model
