// The paper's analytical join model (Section 2.1.1, Eqs. 1-7).
//
// A mobile node spends a fraction f_i of every scheduling period D on
// channel i (at the start of the period), paying a switching delay w on each
// hop. While on the channel it fires a join request every c seconds; the
// AP's response arrives after beta ~ U[beta_min, beta_max] and is only
// received if it lands inside one of the node's future on-channel windows.
// Requests and responses are each lost independently with probability h.
//
//   q(m,n,k)   Eq. 5 — probability that the request sent in segment k of
//              round m has its response land in round n's on-channel window
//              (lossless channel).
//   qbar(m,n)  Eq. 6 — probability that NO request of round m joins in
//              round n, with loss h applied to both directions.
//   p(f_i,t)   Eq. 7 — probability of at least one successful join within
//              the first t seconds in range (t ~ s*D rounds).
//
// All quantities are in seconds (pure math; no simulator types).
#pragma once

namespace spider::model {

struct JoinModelParams {
  double period = 0.5;        // D: scheduling period (s)
  double switch_delay = 0.007;  // w: channel-switch cost (s)
  double request_interval = 0.1;  // c: gap between join requests (s)
  double beta_min = 0.5;      // fastest AP response (s)
  double beta_max = 10.0;     // slowest AP response (s)
  double loss = 0.1;          // h: per-message loss probability

  bool valid() const {
    return period > 0 && switch_delay >= 0 && request_interval > 0 &&
           beta_min >= 0 && beta_max >= beta_min && loss >= 0 && loss < 1;
  }
};

// Maximum number of join requests per round (the product limit of Eq. 6):
// ceil((D*f_i - w) / c), clamped at zero.
int requests_per_round(const JoinModelParams& params, double fraction);

// Eq. 5. `round_delta` is (n - m) >= 0; `segment` is k >= 1.
double q_single(const JoinModelParams& params, double fraction,
                int round_delta, int segment);

// Eq. 6: probability that no request from a round joins `round_delta`
// rounds later, including loss on request and response.
double q_round_failure(const JoinModelParams& params, double fraction,
                       int round_delta);

// Eq. 7: probability of obtaining at least one lease within time t.
double join_probability(const JoinModelParams& params, double fraction,
                        double time_in_range);

// Expected time spent before the join completes, capped at T:
//   g_T(f_i) = sum over rounds of D * (1 - p(f_i, j*D))
// This is the g_T(f_i) of the throughput optimization (Section 2.1.3);
// if joining is hopeless it approaches T and the channel contributes
// nothing.
double expected_join_time(const JoinModelParams& params, double fraction,
                          double time_in_range);

}  // namespace spider::model
