#include "model/ap_selection_problem.h"

#include <algorithm>
#include <numeric>

namespace spider::model {

namespace {

Selection finish(const SelectionProblem& problem,
                 std::vector<std::size_t> chosen) {
  Selection s;
  for (std::size_t i : chosen) {
    s.total_utility += problem.candidates[i].utility();
    s.total_cost_sec += problem.candidates[i].join_cost_sec;
  }
  s.chosen = std::move(chosen);
  return s;
}

// Greedy skeleton shared by both heuristics: take in `order` while the
// budget and the slot count allow.
Selection greedy(const SelectionProblem& problem,
                 std::vector<std::size_t> order) {
  std::vector<std::size_t> chosen;
  double budget = problem.join_budget_sec;
  for (std::size_t i : order) {
    if (static_cast<int>(chosen.size()) >= problem.max_selection) break;
    const ApCandidate& c = problem.candidates[i];
    if (c.utility() <= 0.0) continue;
    if (c.join_cost_sec > budget) continue;
    budget -= c.join_cost_sec;
    chosen.push_back(i);
  }
  return finish(problem, std::move(chosen));
}

}  // namespace

Selection solve_spider_greedy(const SelectionProblem& problem) {
  std::vector<std::size_t> order(problem.candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Spider's history score: success rate over (1 + join time); bandwidth
  // does not enter — the paper's bet that join time dominates at speed.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ApCandidate& ca = problem.candidates[a];
    const ApCandidate& cb = problem.candidates[b];
    return ca.join_success / (1.0 + ca.join_cost_sec) >
           cb.join_success / (1.0 + cb.join_cost_sec);
  });
  return greedy(problem, std::move(order));
}

Selection solve_density_greedy(const SelectionProblem& problem) {
  std::vector<std::size_t> order(problem.candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ApCandidate& ca = problem.candidates[a];
    const ApCandidate& cb = problem.candidates[b];
    return ca.utility() / std::max(ca.join_cost_sec, 1e-9) >
           cb.utility() / std::max(cb.join_cost_sec, 1e-9);
  });
  return greedy(problem, std::move(order));
}

namespace {

struct BnbState {
  const SelectionProblem* problem;
  std::vector<std::size_t> density_order;  // candidates by utility density
  std::vector<std::size_t> best_chosen;
  double best_utility = 0.0;

  // Optimistic bound: fill the remaining budget fractionally in density
  // order from position `pos`.
  double bound(std::size_t pos, double budget, int slots,
               double utility) const {
    for (std::size_t k = pos; k < density_order.size() && slots > 0; ++k) {
      const ApCandidate& c = problem->candidates[density_order[k]];
      if (c.utility() <= 0.0) continue;
      if (c.join_cost_sec <= budget) {
        budget -= c.join_cost_sec;
        utility += c.utility();
        --slots;
      } else {
        utility += c.utility() * (budget / c.join_cost_sec);
        break;
      }
    }
    return utility;
  }

  void search(std::size_t pos, double budget, int slots, double utility,
              std::vector<std::size_t>& chosen) {
    if (utility > best_utility) {
      best_utility = utility;
      best_chosen = chosen;
    }
    if (pos >= density_order.size() || slots == 0) return;
    if (bound(pos, budget, slots, utility) <= best_utility) return;

    const std::size_t idx = density_order[pos];
    const ApCandidate& c = problem->candidates[idx];
    // Branch 1: take it (if it fits and is worth anything).
    if (c.join_cost_sec <= budget && c.utility() > 0.0) {
      chosen.push_back(idx);
      search(pos + 1, budget - c.join_cost_sec, slots - 1,
             utility + c.utility(), chosen);
      chosen.pop_back();
    }
    // Branch 2: skip it.
    search(pos + 1, budget, slots, utility, chosen);
  }
};

}  // namespace

Selection solve_exact(const SelectionProblem& problem) {
  BnbState state;
  state.problem = &problem;
  state.density_order.resize(problem.candidates.size());
  std::iota(state.density_order.begin(), state.density_order.end(),
            std::size_t{0});
  std::sort(state.density_order.begin(), state.density_order.end(),
            [&](std::size_t a, std::size_t b) {
              const ApCandidate& ca = problem.candidates[a];
              const ApCandidate& cb = problem.candidates[b];
              return ca.utility() / std::max(ca.join_cost_sec, 1e-9) >
                     cb.utility() / std::max(cb.join_cost_sec, 1e-9);
            });
  std::vector<std::size_t> chosen;
  state.search(0, problem.join_budget_sec, problem.max_selection, 0.0,
               chosen);
  Selection s = finish(problem, std::move(state.best_chosen));
  std::sort(s.chosen.begin(), s.chosen.end());
  return s;
}

}  // namespace spider::model
