// Monte-Carlo corroboration of the analytical join model (Fig. 2).
//
// Simulates the same simplified process the closed form describes — one
// join request per segment, uniform response time, independent per-message
// loss, success iff the response lands inside a future on-channel window —
// and estimates the join probability empirically. Matching the closed form
// validates the derivation; both are then compared against the full-stack
// simulator, which adds the multi-phase handshake the model elides.
#pragma once

#include "model/join_model.h"
#include "sim/random.h"

namespace spider::model {

struct MonteCarloResult {
  double mean = 0.0;    // estimated join probability
  double stddev = 0.0;  // std-dev across runs (the paper's error bars)
};

// `runs` independent runs of `trials_per_run` trials each (the paper uses
// 100 x 100); mean/stddev are over the per-run success fractions.
MonteCarloResult monte_carlo_join_probability(const JoinModelParams& params,
                                              double fraction,
                                              double time_in_range,
                                              sim::Rng rng, int runs = 100,
                                              int trials_per_run = 100);

// Single trial (exposed for tests): true if any request joins.
bool simulate_join_trial(const JoinModelParams& params, double fraction,
                         double time_in_range, sim::Rng& rng);

}  // namespace spider::model
