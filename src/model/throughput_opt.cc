#include "model/throughput_opt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::model {

double channel_cap_fraction(const OptimizerParams& params,
                            const ChannelOffer& offer, double fraction) {
  double cap = offer.joined_bps;
  if (offer.available_bps > 0.0) {
    const double g =
        expected_join_time(params.join, fraction, params.time_in_range);
    cap += (1.0 - g / params.time_in_range) * offer.available_bps;
  }
  return std::clamp(cap / params.wireless_bps, 0.0, 1.0);
}

namespace {

// Largest f <= budget satisfying f <= cap(f). cap(f) is non-decreasing in f
// (more channel time -> faster join -> higher discount factor), so
// f - cap(f) is increasing and the crossing is unique.
double max_feasible_fraction(const OptimizerParams& params,
                             const ChannelOffer& offer, double budget) {
  budget = std::clamp(budget, 0.0, 1.0);
  if (budget <= 0.0) return 0.0;
  if (budget <= channel_cap_fraction(params, offer, budget)) return budget;
  double lo = 0.0, hi = budget;
  for (int i = 0; i < 40; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (mid <= channel_cap_fraction(params, offer, mid)) lo = mid; else hi = mid;
  }
  return lo;
}

double switch_tax(const OptimizerParams& params, double fraction) {
  // ceil(f_i) * w / D from Eq. 10.
  return fraction > 0.0 ? params.join.switch_delay / params.join.period : 0.0;
}

Allocation finish(const OptimizerParams& params, std::vector<double> fractions) {
  Allocation a;
  a.extracted_bps.reserve(fractions.size());
  for (double f : fractions) {
    a.extracted_bps.push_back(f * params.wireless_bps);
    a.total_bps += f * params.wireless_bps;
  }
  a.fractions = std::move(fractions);
  return a;
}

}  // namespace

Allocation optimize_two_channels(const OptimizerParams& params,
                                 ChannelOffer ch1, ChannelOffer ch2) {
  if (params.time_in_range <= 0.0)
    throw std::invalid_argument("optimize_two_channels: T <= 0");

  double best_obj = -1.0;
  double best_f1 = 0.0, best_f2 = 0.0;

  const int steps = static_cast<int>(std::round(1.0 / params.grid_step));
  for (int i = 0; i <= steps; ++i) {
    const double f2_try = static_cast<double>(i) / steps;
    // Budget left for channel 2 itself, then clip by its own cap.
    const double f2 = std::min(
        f2_try, max_feasible_fraction(params, ch2, f2_try));
    const double budget1 =
        1.0 - f2 - switch_tax(params, f2) - switch_tax(params, 1.0);
    // (channel 1 is always used in this scenario; if its optimum were zero
    // the fixed tax term vanishes from both candidates equally.)
    const double f1 = max_feasible_fraction(params, ch1, budget1);
    const double obj = f1 + f2;
    if (obj > best_obj) {
      best_obj = obj;
      best_f1 = f1;
      best_f2 = f2;
    }
  }
  return finish(params, {best_f1, best_f2});
}

Allocation optimize_channels(const OptimizerParams& params,
                             const std::vector<ChannelOffer>& offers) {
  if (offers.empty()) return Allocation{};
  if (offers.size() == 1) {
    const double tax = params.join.switch_delay / params.join.period;
    return finish(params, {max_feasible_fraction(params, offers[0], 1.0 - tax)});
  }
  if (offers.size() == 2) {
    return optimize_two_channels(params, offers[0], offers[1]);
  }

  // Coordinate ascent with a handful of deterministic starts.
  const std::size_t k = offers.size();
  std::vector<double> best(k, 0.0);
  double best_obj = -1.0;
  for (std::size_t start = 0; start <= k; ++start) {
    std::vector<double> f(k, 0.0);
    if (start < k) {
      f[start] = 0.5;  // seed biased toward one channel
    } else {
      std::fill(f.begin(), f.end(), 1.0 / static_cast<double>(k));
    }
    for (int sweep = 0; sweep < 8; ++sweep) {
      for (std::size_t i = 0; i < k; ++i) {
        double used = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          if (j == i) continue;
          used += f[j] + switch_tax(params, f[j]);
        }
        const double budget = 1.0 - used - switch_tax(params, 1.0);
        f[i] = max_feasible_fraction(params, offers[i], budget);
      }
    }
    double obj = 0.0;
    for (double v : f) obj += v;
    if (obj > best_obj) {
      best_obj = obj;
      best = f;
    }
  }
  return finish(params, best);
}

double time_in_range_for_speed(double speed_mps, double range_m) {
  if (speed_mps <= 0.0)
    throw std::invalid_argument("time_in_range_for_speed: speed <= 0");
  return 2.0 * range_m / speed_mps;
}

double dividing_speed(OptimizerParams params, ChannelOffer ch1,
                      ChannelOffer ch2, double range_m, double lo, double hi,
                      double tol, double epsilon) {
  const auto f2_at = [&](double speed) {
    params.time_in_range = time_in_range_for_speed(speed, range_m);
    return optimize_two_channels(params, ch1, ch2).fractions[1];
  };
  if (f2_at(lo) < epsilon) return lo;
  if (f2_at(hi) >= epsilon) return hi;
  while (hi - lo > tol) {
    const double mid = (lo + hi) / 2.0;
    if (f2_at(mid) < epsilon) hi = mid; else lo = mid;
  }
  return (lo + hi) / 2.0;
}

}  // namespace spider::model
