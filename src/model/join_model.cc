#include "model/join_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::model {

int requests_per_round(const JoinModelParams& params, double fraction) {
  // ceil((D*f_i - w) / c), per Eq. 6. The ceiling is what produces the
  // discontinuities Fig. 2 shows at f_i = 0.2, 0.4, 0.6, 0.8 (with the
  // paper's D = 500 ms and c = 100 ms).
  const double window = params.period * fraction - params.switch_delay;
  if (window <= 0.0) return 0;
  return static_cast<int>(std::ceil(window / params.request_interval));
}

double q_single(const JoinModelParams& params, double fraction,
                int round_delta, int segment) {
  if (!params.valid()) throw std::invalid_argument("JoinModelParams invalid");
  if (round_delta < 0 || segment < 1) return 0.0;

  const double c = params.request_interval;
  const double D = params.period;
  const double w = params.switch_delay;

  const double alpha_min = segment * c + params.beta_min;
  const double alpha_max = segment * c + params.beta_max;
  const double delta_min = round_delta * D + c - w;
  const double delta_max = (round_delta + fraction) * D + c - w;

  if (delta_min > alpha_max) return 0.0;
  if (delta_max < alpha_min) return 0.0;
  if (alpha_max == alpha_min) {
    // Degenerate (beta_max == beta_min): point mass either in or out.
    return (alpha_min >= delta_min && alpha_min <= delta_max) ? 1.0 : 0.0;
  }
  const double overlap =
      std::min(alpha_max, delta_max) - std::max(alpha_min, delta_min);
  return std::clamp(overlap / (alpha_max - alpha_min), 0.0, 1.0);
}

double q_round_failure(const JoinModelParams& params, double fraction,
                       int round_delta) {
  const int k_max = requests_per_round(params, fraction);
  const double both_survive = (1.0 - params.loss) * (1.0 - params.loss);
  double failure = 1.0;
  for (int k = 1; k <= k_max; ++k) {
    failure *= 1.0 - q_single(params, fraction, round_delta, k) * both_survive;
  }
  return failure;
}

double join_probability(const JoinModelParams& params, double fraction,
                        double time_in_range) {
  if (!params.valid()) throw std::invalid_argument("JoinModelParams invalid");
  if (fraction <= 0.0 || time_in_range <= 0.0) return 0.0;
  fraction = std::min(fraction, 1.0);

  const int rounds = static_cast<int>(std::floor(time_in_range / params.period));
  if (rounds < 1) return 0.0;

  // Eq. 7's double product; q_round_failure depends only on n - m, so the
  // term for delta = n - m appears (rounds - delta) times.
  double total_failure = 1.0;
  for (int delta = 0; delta < rounds; ++delta) {
    const double qf = q_round_failure(params, fraction, delta);
    if (qf >= 1.0) continue;
    total_failure *= std::pow(qf, rounds - delta);
    if (total_failure < 1e-15) return 1.0;
  }
  return 1.0 - total_failure;
}

double expected_join_time(const JoinModelParams& params, double fraction,
                          double time_in_range) {
  if (time_in_range <= 0.0) return 0.0;
  const int rounds = static_cast<int>(std::floor(time_in_range / params.period));
  // E[min(T_join, T)] = integral over [0,T] of P(not yet joined at t) dt,
  // evaluated at round granularity (the model's native resolution).
  double expected = 0.0;
  for (int j = 0; j < rounds; ++j) {
    expected +=
        params.period *
        (1.0 - join_probability(params, fraction, j * params.period));
  }
  // Partial tail beyond the last whole round.
  expected += (time_in_range - rounds * params.period) *
              (1.0 - join_probability(params, fraction, rounds * params.period));
  return std::min(expected, time_in_range);
}

}  // namespace spider::model
