// The multi-AP selection problem (the paper's Appendix A, technical
// report): choose a subset of candidate APs — each with an expected join
// cost (radio time spent joining), an offered end-to-end bandwidth, and a
// residual encounter duration — maximizing total expected utility subject
// to the radio's time budget. The paper proves the general problem NP-hard
// (knapsack-like) and ships a greedy heuristic instead.
//
// This module states the optimization problem explicitly and provides
//   * an exact branch-and-bound solver (fine for the ≤ 20-candidate
//     instances a scan produces),
//   * Spider's greedy (score-ordered, take-while-it-fits),
//   * a utility-density greedy (classic knapsack heuristic),
// so the quality gap the heuristic gives up can be measured
// (bench/ablation_selection_problem).
#pragma once

#include <cstdint>
#include <vector>

namespace spider::model {

struct ApCandidate {
  // Expected radio-time cost of joining (association + DHCP), seconds.
  double join_cost_sec = 1.0;
  // Expected bandwidth once joined (end-to-end), bits/s.
  double bandwidth_bps = 1e6;
  // Remaining time this AP will stay in range, seconds.
  double residual_sec = 10.0;
  // Probability the join succeeds at all (duds, losses).
  double join_success = 1.0;

  // Expected utility of selecting this AP: bytes it would deliver over the
  // usable remainder of the encounter.
  double utility() const {
    const double usable = residual_sec - join_cost_sec;
    return usable > 0.0 ? join_success * bandwidth_bps * usable : 0.0;
  }
};

struct SelectionProblem {
  std::vector<ApCandidate> candidates;
  // Radio-time budget available for joining within the planning horizon
  // (joins cannot be parallelized on one radio), seconds.
  double join_budget_sec = 5.0;
  // Maximum virtual interfaces (Spider: 7).
  int max_selection = 7;
};

struct Selection {
  std::vector<std::size_t> chosen;  // indices into candidates
  double total_utility = 0.0;
  double total_cost_sec = 0.0;
};

// Exact optimum by branch-and-bound with a fractional-relaxation bound.
// Exponential worst case; intended for instances up to ~24 candidates.
Selection solve_exact(const SelectionProblem& problem);

// Spider's heuristic: rank by join-history-style score (success over
// cost), then take candidates while budget and interface slots last.
Selection solve_spider_greedy(const SelectionProblem& problem);

// Knapsack density greedy: rank by utility per second of join cost.
Selection solve_density_greedy(const SelectionProblem& problem);

}  // namespace spider::model
