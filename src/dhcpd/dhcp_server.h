// AP-side DHCP server.
//
// Each open AP runs its own server (urban APs are in disjoint administrative
// domains — the paper's reason cross-AP DHCP coordination is impractical).
// The server's response latency is the knob that produces the paper's
// [betamin, betamax] join-time spread: commodity gateways take anywhere from
// ~100 ms to multiple seconds to produce an OFFER.
//
// Responses are sent through AccessPoint::send_to_client(), so they are
// subject to the same delivery rules as all downlink traffic: a client that
// has switched away (and could not announce PSM, because a joining interface
// has no lease yet and never parks) simply misses them.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mac/access_point.h"
#include "net/addr.h"
#include "net/frame.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace spider::dhcpd {

struct DhcpServerConfig {
  // OFFER latency (dominates the join time beta in the paper's model).
  sim::Time offer_delay_min = sim::Time::millis(100);
  sim::Time offer_delay_max = sim::Time::millis(2000);
  // ACK latency (usually quick once the lease is staged).
  sim::Time ack_delay_min = sim::Time::millis(20);
  sim::Time ack_delay_max = sim::Time::millis(200);
  sim::Time lease_duration = sim::Time::seconds(3600);
  std::uint32_t pool_size = 253;  // addresses .2 .. .254
  // When false the server silently ignores all DHCP traffic — the "dud" AP
  // that associates clients but never yields a usable lease.
  bool responsive = true;
};

class DhcpServer {
 public:
  DhcpServer(sim::Simulator& simulator, mac::AccessPoint& ap,
             net::Ipv4Address server_ip, sim::Rng rng,
             DhcpServerConfig config = {});

  DhcpServer(const DhcpServer&) = delete;
  DhcpServer& operator=(const DhcpServer&) = delete;

  // Feed DHCP data frames here (the AP host demultiplexes its data sink).
  void handle_frame(const net::Frame& frame);

  net::Ipv4Address server_ip() const { return server_ip_; }
  std::size_t active_leases() const { return leases_.size(); }
  std::uint64_t offers_sent() const { return offers_sent_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t pool_exhaustions() const { return pool_exhaustions_; }

 private:
  sim::Time sample(sim::Time lo, sim::Time hi);
  net::Ipv4Address allocate(net::MacAddress client);
  void send_later(net::MacAddress client, net::DhcpMessage msg, sim::Time lo,
                  sim::Time hi);

  sim::Simulator& sim_;
  mac::AccessPoint& ap_;
  // Lifetime guard for delayed-response lambdas (see AccessPoint::alive_).
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  net::Ipv4Address server_ip_;
  sim::Rng rng_;
  DhcpServerConfig config_;
  std::unordered_map<net::MacAddress, net::Ipv4Address> leases_;
  std::uint32_t next_host_ = 2;
  std::uint64_t offers_sent_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t pool_exhaustions_ = 0;
};

}  // namespace spider::dhcpd
