// Client-side DHCP state machine, one per joined AP.
//
// Mirrors the two retry regimes the paper studies:
//   * stock:   per-message timeout 1 s, keep trying for 3 s, then go idle for
//              60 s before the next attempt;
//   * reduced: per-message timeout 100-600 ms, short attempt window — the
//              Cabernet-style tuning Spider adopts (and whose failure-rate
//              cost Table 3 quantifies).
//
// Like the association machine, all sends go through a driver-gated Tx
// function; sending while the radio is elsewhere is a silent no-op and the
// timers carry the retry.
#pragma once

#include <cstdint>
#include <functional>

#include "net/addr.h"
#include "net/frame.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::dhcpd {

enum class DhcpState : std::uint8_t {
  kIdle,
  kDiscovering,   // DISCOVER sent, waiting for OFFER
  kRequesting,    // REQUEST sent, waiting for ACK
  kBound,
  kBackoff,       // attempt window expired; idling before retry
};

const char* to_string(DhcpState s);

enum class DhcpEvent : std::uint8_t {
  kBound,          // lease acquired
  kAttemptFailed,  // one attempt window expired without a lease
};

struct DhcpClientConfig {
  sim::Time message_timeout = sim::Time::millis(1000);
  sim::Time attempt_duration = sim::Time::seconds(3);
  sim::Time idle_after_failure = sim::Time::seconds(60);
  // 0 = keep attempting while alive.
  int max_attempt_windows = 0;
  // Telemetry track for the "dhcp" span emitted when a lease binds while the
  // world's trace recorder is enabled (same lane as the owning interface's
  // auth/assoc spans).
  std::uint32_t trace_track = 0;
};

// Stock timers (the "default" rows of Table 3 / Fig. 11).
DhcpClientConfig default_dhcp_timers();
// Reduced timers with the given per-message timeout (200/400/600 ms rows).
DhcpClientConfig reduced_dhcp_timers(sim::Time message_timeout);

struct Lease {
  net::Ipv4Address ip;
  net::Ipv4Address server;
  sim::Time duration = sim::Time::zero();
  sim::Time acquired_at = sim::Time::zero();
};

class DhcpClient {
 public:
  using TxFn = std::function<bool(const net::Frame&)>;
  using EventFn = std::function<void(DhcpClient&, DhcpEvent)>;

  DhcpClient(sim::Simulator& simulator, net::MacAddress self, net::Bssid bssid,
             TxFn tx, DhcpClientConfig config = {});
  ~DhcpClient();

  DhcpClient(const DhcpClient&) = delete;
  DhcpClient& operator=(const DhcpClient&) = delete;

  DhcpState state() const { return state_; }
  bool bound() const { return state_ == DhcpState::kBound; }
  const Lease& lease() const { return lease_; }
  net::Bssid bssid() const { return bssid_; }

  void set_event_handler(EventFn handler) { event_handler_ = std::move(handler); }

  // Starts lease acquisition (call after association succeeds).
  void start();
  // INIT-REBOOT (RFC 2131 §3.2): we hold a previously issued lease for
  // this AP, so skip DISCOVER/OFFER and go straight to REQUEST. If the
  // server NAKs (lease reassigned), falls back to full discovery within
  // the same acquisition. This is the "caching dhcp leases" technique the
  // paper's Section 2.1.2 calls essential for multi-AP systems.
  void start_with_cached(const Lease& cached);
  void abandon();

  // Route DHCP data frames from this BSSID here.
  void handle_frame(const net::Frame& frame);
  // Radio returned to our channel: retransmit the outstanding message now.
  void radio_on_channel();

  // Time from start() to kBound for the last successful acquisition.
  sim::Time acquisition_delay() const { return acquisition_delay_; }
  int failed_attempts() const { return failed_attempts_; }
  int messages_sent() const { return messages_sent_; }

 private:
  // Sole write path for state_; SPIDER_CHECKs the transition's legality.
  void enter(DhcpState next);
  void begin_attempt();
  void transmit_current();
  void arm_message_timer();
  void on_message_timeout();
  void on_attempt_expired();

  sim::Simulator& sim_;
  net::MacAddress self_;
  net::Bssid bssid_;
  TxFn tx_;
  DhcpClientConfig config_;
  EventFn event_handler_;

  DhcpState state_ = DhcpState::kIdle;
  sim::TimerHandle message_timer_;
  sim::TimerHandle attempt_timer_;
  std::uint32_t transaction_id_ = 0;
  net::Ipv4Address offered_ip_;
  net::Ipv4Address server_ip_;
  Lease lease_;
  sim::Time started_ = sim::Time::zero();
  sim::Time acquisition_delay_ = sim::Time::zero();
  int failed_attempts_ = 0;
  int attempt_windows_ = 0;
  int messages_sent_ = 0;
};

}  // namespace spider::dhcpd
