#include "dhcpd/dhcp_server.h"

#include <utility>
#include <variant>

#include "core/check.h"

namespace spider::dhcpd {

DhcpServer::DhcpServer(sim::Simulator& simulator, mac::AccessPoint& ap,
                       net::Ipv4Address server_ip, sim::Rng rng,
                       DhcpServerConfig config)
    : sim_(simulator),
      ap_(ap),
      server_ip_(server_ip),
      rng_(std::move(rng)),
      config_(config) {}

sim::Time DhcpServer::sample(sim::Time lo, sim::Time hi) {
  if (hi <= lo) return lo;
  return lo + sim::Time::micros(rng_.uniform_int(0, (hi - lo).us()));
}

net::Ipv4Address DhcpServer::allocate(net::MacAddress client) {
  if (auto it = leases_.find(client); it != leases_.end()) return it->second;
  if (leases_.size() >= config_.pool_size) {
    ++pool_exhaustions_;
    return net::Ipv4Address{};
  }
  // Derive the subnet from the server address; hand out sequential hosts.
  const auto ip = net::Ipv4Address{(server_ip_.value() & 0xFFFFFF00u) |
                                   (next_host_++ & 0xFFu)};
  leases_.emplace(client, ip);
  // Lease-table consistency: the pool never overruns, the sequential
  // allocator and the table never drift apart, and every handed-out address
  // sits inside the server's /24 without colliding with .0/.1/.255.
  SPIDER_CHECK(leases_.size() <= config_.pool_size)
      << "lease table overran pool of " << config_.pool_size;
  SPIDER_CHECK(next_host_ == 2 + leases_.size())
      << "allocator cursor " << next_host_ << " vs " << leases_.size()
      << " leases";
  SPIDER_DCHECK((ip.value() & 0xFFFFFF00u) ==
                (server_ip_.value() & 0xFFFFFF00u))
      << "allocated " << ip.to_string() << " outside subnet of "
      << server_ip_.to_string();
  SPIDER_DCHECK((ip.value() & 0xFFu) >= 2 && (ip.value() & 0xFFu) <= 254)
      << "allocated reserved host byte in " << ip.to_string();
  return ip;
}

void DhcpServer::send_later(net::MacAddress client, net::DhcpMessage msg,
                            sim::Time lo, sim::Time hi) {
  sim_.post_after(
      sample(lo, hi),
      [this, alive = std::weak_ptr<char>(alive_), client, msg] {
        if (alive.expired()) return;
        ap_.send_to_client(client, net::make_dhcp_frame(ap_.address(), client,
                                                        ap_.address(), msg));
      });
}

void DhcpServer::handle_frame(const net::Frame& frame) {
  if (!config_.responsive) return;
  const auto* msg = frame.payload.get_if<net::DhcpMessage>();
  if (msg == nullptr) return;

  switch (msg->kind) {
    case net::DhcpMessage::Kind::kDiscover: {
      const auto ip = allocate(frame.src);
      if (ip.is_null()) return;  // pool exhausted: silence, client retries
      net::DhcpMessage offer;
      offer.kind = net::DhcpMessage::Kind::kOffer;
      offer.transaction_id = msg->transaction_id;
      offer.client_mac = frame.src;
      offer.offered_ip = ip;
      offer.server_ip = server_ip_;
      offer.lease_duration = config_.lease_duration;
      ++offers_sent_;
      send_later(frame.src, offer, config_.offer_delay_min,
                 config_.offer_delay_max);
      break;
    }

    case net::DhcpMessage::Kind::kRequest: {
      auto it = leases_.find(frame.src);
      net::DhcpMessage reply;
      reply.transaction_id = msg->transaction_id;
      reply.client_mac = frame.src;
      reply.server_ip = server_ip_;
      if (it == leases_.end() || it->second != msg->offered_ip) {
        reply.kind = net::DhcpMessage::Kind::kNak;
      } else {
        reply.kind = net::DhcpMessage::Kind::kAck;
        reply.offered_ip = it->second;
        reply.lease_duration = config_.lease_duration;
        ++acks_sent_;
      }
      send_later(frame.src, reply, config_.ack_delay_min,
                 config_.ack_delay_max);
      break;
    }

    case net::DhcpMessage::Kind::kOffer:
    case net::DhcpMessage::Kind::kAck:
    case net::DhcpMessage::Kind::kNak:
      break;  // server-originated kinds; ignore if echoed back
  }
}

}  // namespace spider::dhcpd
