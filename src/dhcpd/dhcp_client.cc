#include "dhcpd/dhcp_client.h"

#include <utility>
#include <variant>

#include "core/check.h"

namespace spider::dhcpd {
namespace {

// Legal DHCP-machine transitions. Teardown (-> Idle) is allowed from
// anywhere; discovery restarts from Idle/Backoff and from Requesting on a
// NAK; Requesting is reachable from discovery, from a late OFFER landing in
// Backoff, and directly from Idle via INIT-REBOOT; only Requesting binds.
bool transition_legal(DhcpState from, DhcpState to) {
  switch (to) {
    case DhcpState::kIdle:
      return true;
    case DhcpState::kDiscovering:
      return from == DhcpState::kIdle || from == DhcpState::kBackoff ||
             from == DhcpState::kRequesting;
    case DhcpState::kRequesting:
      return from == DhcpState::kIdle || from == DhcpState::kDiscovering ||
             from == DhcpState::kBackoff;
    case DhcpState::kBound:
      return from == DhcpState::kRequesting;
    case DhcpState::kBackoff:
      return from == DhcpState::kDiscovering ||
             from == DhcpState::kRequesting;
  }
  return false;
}

}  // namespace

const char* to_string(DhcpState s) {
  switch (s) {
    case DhcpState::kIdle: return "Idle";
    case DhcpState::kDiscovering: return "Discovering";
    case DhcpState::kRequesting: return "Requesting";
    case DhcpState::kBound: return "Bound";
    case DhcpState::kBackoff: return "Backoff";
  }
  SPIDER_UNREACHABLE() << "DhcpState " << static_cast<int>(s);
  return "?";
}

DhcpClientConfig default_dhcp_timers() {
  return DhcpClientConfig{};  // 1 s / 3 s / 60 s
}

DhcpClientConfig reduced_dhcp_timers(sim::Time message_timeout) {
  DhcpClientConfig c;
  c.message_timeout = message_timeout;
  // Short attempt window: four message timeouts, then a brief pause — the
  // aggressive rejoin loop a mobile client needs.
  c.attempt_duration = message_timeout * std::int64_t{4};
  c.idle_after_failure = sim::Time::millis(500);
  return c;
}

DhcpClient::DhcpClient(sim::Simulator& simulator, net::MacAddress self,
                       net::Bssid bssid, TxFn tx, DhcpClientConfig config)
    : sim_(simulator),
      self_(self),
      bssid_(bssid),
      tx_(std::move(tx)),
      config_(config) {}

DhcpClient::~DhcpClient() {
  message_timer_.cancel();
  attempt_timer_.cancel();
}

void DhcpClient::start() {
  abandon();
  started_ = sim_.now();
  failed_attempts_ = 0;
  attempt_windows_ = 0;
  messages_sent_ = 0;
  begin_attempt();
}

void DhcpClient::start_with_cached(const Lease& cached) {
  abandon();
  started_ = sim_.now();
  failed_attempts_ = 0;
  attempt_windows_ = 1;
  messages_sent_ = 0;
  transaction_id_ = static_cast<std::uint32_t>(
      (self_.value() << 8) ^ static_cast<std::uint64_t>(sim_.now().us()) ^
      0x1B07u);
  SPIDER_CHECK(!cached.ip.is_null())
      << "INIT-REBOOT with a null cached lease for " << bssid_.to_string();
  offered_ip_ = cached.ip;
  server_ip_ = cached.server;
  sim_.telemetry().metrics().counter("dhcp.attempt_windows").inc();
  sim_.telemetry().metrics().counter("dhcp.init_reboots").inc();
  enter(DhcpState::kRequesting);
  transmit_current();
  arm_message_timer();
  attempt_timer_.cancel();
  attempt_timer_ = sim_.schedule_after(config_.attempt_duration,
                                       [this] { on_attempt_expired(); });
}

void DhcpClient::enter(DhcpState next) {
  SPIDER_CHECK(transition_legal(state_, next))
      << "illegal DHCP transition " << to_string(state_) << " -> "
      << to_string(next) << " (bssid " << bssid_.to_string() << ", xid "
      << transaction_id_ << ")";
  state_ = next;
}

void DhcpClient::abandon() {
  message_timer_.cancel();
  attempt_timer_.cancel();
  enter(DhcpState::kIdle);
}

void DhcpClient::begin_attempt() {
  ++attempt_windows_;
  // Fresh transaction per attempt window, as dhclient restarts do. An OFFER
  // answering a previous window's DISCOVER is stale and will be ignored —
  // one of the reasons fractional channel schedules are so hostile to DHCP.
  // (An offer arriving during the *backoff* after its own window still
  // matches and is honoured; see handle_frame.)
  transaction_id_ = static_cast<std::uint32_t>(
      (self_.value() << 8) ^ static_cast<std::uint64_t>(sim_.now().us()));
  offered_ip_ = net::Ipv4Address{};
  server_ip_ = net::Ipv4Address{};
  sim_.telemetry().metrics().counter("dhcp.attempt_windows").inc();
  enter(DhcpState::kDiscovering);
  transmit_current();
  arm_message_timer();
  attempt_timer_.cancel();
  attempt_timer_ = sim_.schedule_after(config_.attempt_duration,
                                       [this] { on_attempt_expired(); });
}

void DhcpClient::transmit_current() {
  net::DhcpMessage msg;
  msg.transaction_id = transaction_id_;
  msg.client_mac = self_;
  switch (state_) {
    case DhcpState::kDiscovering:
      msg.kind = net::DhcpMessage::Kind::kDiscover;
      sim_.telemetry().metrics().counter("dhcp.discover_sent").inc();
      break;
    case DhcpState::kRequesting:
      msg.kind = net::DhcpMessage::Kind::kRequest;
      msg.offered_ip = offered_ip_;
      msg.server_ip = server_ip_;
      sim_.telemetry().metrics().counter("dhcp.request_sent").inc();
      break;
    default:
      return;
  }
  ++messages_sent_;
  tx_(net::make_dhcp_frame(self_, bssid_, bssid_, msg));
}

void DhcpClient::arm_message_timer() {
  message_timer_.cancel();
  message_timer_ = sim_.schedule_after(config_.message_timeout,
                                       [this] { on_message_timeout(); });
}

void DhcpClient::on_message_timeout() {
  if (state_ != DhcpState::kDiscovering && state_ != DhcpState::kRequesting)
    return;
  sim_.telemetry().metrics().counter("dhcp.message_timeouts").inc();
  transmit_current();
  arm_message_timer();
}

void DhcpClient::on_attempt_expired() {
  if (state_ == DhcpState::kBound || state_ == DhcpState::kIdle) return;
  message_timer_.cancel();
  ++failed_attempts_;
  sim_.telemetry().metrics().counter("dhcp.attempt_failures").inc();
  enter(DhcpState::kBackoff);
  if (event_handler_) event_handler_(*this, DhcpEvent::kAttemptFailed);
  if (state_ != DhcpState::kBackoff) return;  // handler may have abandoned us
  if (config_.max_attempt_windows > 0 &&
      attempt_windows_ >= config_.max_attempt_windows) {
    enter(DhcpState::kIdle);
    return;
  }
  attempt_timer_.cancel();
  attempt_timer_ = sim_.schedule_after(config_.idle_after_failure,
                                       [this] { begin_attempt(); });
}

void DhcpClient::handle_frame(const net::Frame& frame) {
  if (frame.src != bssid_ || frame.dst != self_) return;
  const auto* msg = frame.payload.get_if<net::DhcpMessage>();
  if (msg == nullptr || msg->transaction_id != transaction_id_) return;
  // Past the filter above, everything we act on carries our current xid —
  // the consistency the stale-OFFER logic in begin_attempt() relies on.
  SPIDER_DCHECK(msg->client_mac == self_)
      << "xid " << msg->transaction_id << " matched but client mac "
      << msg->client_mac.to_string() << " is not ours";

  switch (msg->kind) {
    case net::DhcpMessage::Kind::kOffer:
      // A late OFFER that lands during backoff is still a lease opportunity
      // (the radio may simply have been elsewhere when it first arrived).
      if (state_ == DhcpState::kDiscovering || state_ == DhcpState::kBackoff) {
        const bool was_backoff = state_ == DhcpState::kBackoff;
        SPIDER_CHECK(!msg->offered_ip.is_null())
            << "OFFER with null address from " << bssid_.to_string();
        offered_ip_ = msg->offered_ip;
        server_ip_ = msg->server_ip;
        enter(DhcpState::kRequesting);
        transmit_current();
        arm_message_timer();
        if (was_backoff) {
          attempt_timer_.cancel();
          attempt_timer_ = sim_.schedule_after(config_.attempt_duration,
                                               [this] { on_attempt_expired(); });
        }
      }
      break;

    case net::DhcpMessage::Kind::kAck:
      if (state_ == DhcpState::kRequesting) {
        message_timer_.cancel();
        attempt_timer_.cancel();
        // Lease consistency: the ACK must confirm the address we requested;
        // a server re-assigning mid-exchange must NAK instead.
        SPIDER_CHECK(!msg->offered_ip.is_null() &&
                     msg->offered_ip == offered_ip_)
            << "ACK for " << msg->offered_ip.to_string()
            << " but we requested " << offered_ip_.to_string() << " (xid "
            << transaction_id_ << ")";
        lease_ = Lease{msg->offered_ip, msg->server_ip, msg->lease_duration,
                       sim_.now()};
        acquisition_delay_ = sim_.now() - started_;
        telemetry::Hub& telemetry = sim_.telemetry();
        telemetry.metrics().counter("dhcp.bound").inc();
        telemetry.metrics()
            .histogram("dhcp.acquisition_delay_sec")
            .add(acquisition_delay_.sec());
        telemetry.trace().complete("dhcp", "join", started_.us(),
                                   acquisition_delay_.us(),
                                   config_.trace_track);
        enter(DhcpState::kBound);
        if (event_handler_) event_handler_(*this, DhcpEvent::kBound);
      }
      break;

    case net::DhcpMessage::Kind::kNak:
      if (state_ == DhcpState::kRequesting) {
        // Stale offer; restart discovery within the same attempt window.
        sim_.telemetry().metrics().counter("dhcp.naks").inc();
        enter(DhcpState::kDiscovering);
        offered_ip_ = net::Ipv4Address{};
        transmit_current();
        arm_message_timer();
      }
      break;

    case net::DhcpMessage::Kind::kDiscover:
    case net::DhcpMessage::Kind::kRequest:
      break;  // client-originated kinds
  }
}

void DhcpClient::radio_on_channel() {
  if (state_ == DhcpState::kDiscovering || state_ == DhcpState::kRequesting) {
    transmit_current();
    arm_message_timer();
  }
}

}  // namespace spider::dhcpd
