#include "mac/client_session.h"

#include <utility>

#include "core/check.h"

namespace spider::mac {
namespace {

// Legal association-machine transitions. Any state may restart (start_join
// -> Authenticating) or be torn down (abandon -> Idle); forward progress is
// strictly Auth -> Assoc -> Associated, and only an in-flight exchange may
// exhaust its attempts into Failed.
bool transition_legal(SessionState from, SessionState to) {
  switch (to) {
    case SessionState::kIdle:
    case SessionState::kAuthenticating:
      return true;
    case SessionState::kAssociating:
      return from == SessionState::kAuthenticating;
    case SessionState::kAssociated:
      return from == SessionState::kAssociating;
    case SessionState::kFailed:
      return from == SessionState::kAuthenticating ||
             from == SessionState::kAssociating;
  }
  return false;
}

}  // namespace

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kAuthenticating: return "Authenticating";
    case SessionState::kAssociating: return "Associating";
    case SessionState::kAssociated: return "Associated";
    case SessionState::kFailed: return "Failed";
  }
  SPIDER_UNREACHABLE() << "SessionState " << static_cast<int>(s);
  return "?";
}

ClientSession::ClientSession(sim::Simulator& simulator, net::MacAddress self,
                             net::Bssid bssid, net::ChannelId channel, TxFn tx,
                             ClientSessionConfig config)
    : sim_(simulator),
      self_(self),
      bssid_(bssid),
      channel_(channel),
      tx_(std::move(tx)),
      config_(config) {}

ClientSession::~ClientSession() { retry_timer_.cancel(); }

void ClientSession::enter(SessionState next) {
  SPIDER_CHECK(transition_legal(state_, next))
      << "illegal session transition " << to_string(state_) << " -> "
      << to_string(next) << " (bssid " << bssid_.to_string() << ")";
  // Transition counters go straight to the registry: sessions transition a
  // handful of times per join, so the name lookup is off the hot path.
  telemetry::Registry& metrics = sim_.telemetry().metrics();
  switch (next) {
    case SessionState::kAuthenticating:
      metrics.counter("mac.session.auth_starts").inc();
      break;
    case SessionState::kAssociating:
      metrics.counter("mac.session.assoc_starts").inc();
      break;
    case SessionState::kAssociated:
      metrics.counter("mac.session.associations").inc();
      break;
    case SessionState::kFailed:
      metrics.counter("mac.session.failures").inc();
      break;
    case SessionState::kIdle:
      break;
  }
  state_ = next;
  stage_retries_ = 0;
}

void ClientSession::start_join() {
  retry_timer_.cancel();
  join_started_ = sim_.now();
  attempts_ = 0;
  enter(SessionState::kAuthenticating);
  transmit_current();
  arm_retry_timer();
}

void ClientSession::abandon() {
  retry_timer_.cancel();
  enter(SessionState::kIdle);
}

void ClientSession::transmit_current() {
  net::Frame frame;
  switch (state_) {
    case SessionState::kAuthenticating:
      frame = net::make_auth_request(self_, bssid_);
      break;
    case SessionState::kAssociating:
      frame = net::make_assoc_request(self_, bssid_);
      break;
    default:
      return;  // nothing outstanding
  }
  ++attempts_;
  tx_(frame);  // false (off-channel) is fine: the retry timer keeps running
  if (config_.max_attempts > 0 && attempts_ >= config_.max_attempts) {
    retry_timer_.cancel();
    enter(SessionState::kFailed);
    if (event_handler_) event_handler_(*this, SessionEvent::kFailed);
  }
}

void ClientSession::arm_retry_timer() {
  retry_timer_.cancel();
  retry_timer_ = sim_.schedule_after(config_.link_timeout,
                                     [this] { on_retry_timeout(); });
}

void ClientSession::on_retry_timeout() {
  if (state_ != SessionState::kAuthenticating &&
      state_ != SessionState::kAssociating) {
    return;
  }
  ++stage_retries_;
  sim_.telemetry().metrics().counter("mac.session.retries").inc();
  if (state_ == SessionState::kAssociating &&
      stage_retries_ > config_.assoc_retries_before_reauth) {
    // The AP may have dropped our auth state; start over.
    enter(SessionState::kAuthenticating);
  }
  transmit_current();
  if (state_ == SessionState::kAuthenticating ||
      state_ == SessionState::kAssociating) {
    arm_retry_timer();
  }
}

void ClientSession::handle_frame(const net::Frame& frame) {
  if (frame.src != bssid_) return;
  last_heard_ = sim_.now();

  switch (frame.kind) {
    case net::FrameKind::kAuthResponse:
      if (state_ == SessionState::kAuthenticating &&
          (frame.dst == self_ || frame.dst.is_broadcast())) {
        auth_done_ = sim_.now();
        enter(SessionState::kAssociating);
        transmit_current();
        arm_retry_timer();
      }
      break;

    case net::FrameKind::kAssocResponse:
      if (state_ == SessionState::kAssociating && frame.dst == self_) {
        retry_timer_.cancel();
        association_delay_ = sim_.now() - join_started_;
        enter(SessionState::kAssociated);
        telemetry::TraceRecorder& trace = sim_.telemetry().trace();
        if (trace.enabled()) {
          // Two back-to-back spans per completed join: [start, auth done)
          // and [auth done, assoc done). Re-auth restarts fold into the
          // auth span (auth_done_ tracks the *last* auth completion).
          trace.complete("auth", "join", join_started_.us(),
                         (auth_done_ - join_started_).us(),
                         config_.trace_track);
          trace.complete("assoc", "join", auth_done_.us(),
                         (sim_.now() - auth_done_).us(), config_.trace_track);
        }
        if (event_handler_) event_handler_(*this, SessionEvent::kAssociated);
      }
      break;

    case net::FrameKind::kDisassoc:
      if (frame.dst == self_ || frame.dst.is_broadcast()) {
        abandon();
      }
      break;

    default:
      break;  // beacons / data just refresh last_heard_
  }
}

void ClientSession::radio_on_channel() {
  if (state_ == SessionState::kAuthenticating ||
      state_ == SessionState::kAssociating) {
    transmit_current();
    if (state_ == SessionState::kAuthenticating ||
        state_ == SessionState::kAssociating) {
      arm_retry_timer();
    }
  }
}

}  // namespace spider::mac
