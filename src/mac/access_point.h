// Access-point MAC.
//
// A stationary AP beacons on a fixed channel, answers probe/auth/assoc
// exchanges, tracks per-client power-save state, and buffers downlink
// frames for clients that have announced power-save mode — the mechanism
// virtualized-Wi-Fi clients exploit to be "absent" without losing packets.
//
// Received data frames (DHCP requests, uplink TCP segments) are handed to a
// pluggable sink; higher layers (the DHCP server, the backhaul bridge) send
// downlink traffic through send_to_client(), which transparently respects
// power-save buffering.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "phy/auto_rate.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace spider::mac {

struct AccessPointConfig {
  std::string ssid = "open-ap";
  net::ChannelId channel = 6;
  sim::Time beacon_interval = sim::Time::millis(100);
  // Management-plane responsiveness: auth/assoc responses are sent after a
  // uniform delay in [response_delay_min, response_delay_max], modelling
  // firmware/queueing variance observed on commodity APs.
  sim::Time response_delay_min = sim::Time::millis(2);
  sim::Time response_delay_max = sim::Time::millis(40);
  // Power-save buffering.
  std::size_t max_buffered_frames = 1024;
  bool open = true;
  // Build the beacon payload once and hand the refcounted storage out on
  // every beacon tick and probe response, instead of minting a fresh
  // BeaconInfo (SSID string included) per frame. The frames on the air are
  // identical either way; false keeps the per-frame path for benches and
  // cross-checks.
  bool intern_beacons = true;
  // Same treatment for the immutable management responses: auth and assoc
  // grants carry the AP's capability payload, and with interning on the
  // payload is the one refcounted BeaconInfo built at construction — a warm
  // auth/assoc exchange then allocates nothing. False reverts to
  // payload-less responses (identical sizes, identical digests).
  bool intern_mgmt_responses = true;
  // Minstrel-lite per-client rate adaptation on downlink data (opt-in):
  // failures step the client's rate down, sustained success steps it up;
  // low rates trade airtime for reach at the cell edge.
  bool auto_rate = false;
};

class AccessPoint {
 public:
  using DataSink = std::function<void(const net::Frame&)>;

  AccessPoint(phy::Medium& medium, net::MacAddress address, phy::Vec2 position,
              sim::Rng rng, AccessPointConfig config = {});
  ~AccessPoint();

  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  net::MacAddress address() const { return radio_.address(); }
  net::ChannelId channel() const { return config_.channel; }
  const std::string& ssid() const { return config_.ssid; }
  phy::Vec2 position() const { return radio_.position(); }
  const AccessPointConfig& config() const { return config_; }

  // Starts beaconing. Safe to call once.
  void start();

  // Uplink data frames (anything FrameKind::kData from an associated or
  // associating client) are delivered here.
  void set_data_sink(DataSink sink) { data_sink_ = std::move(sink); }

  // Downlink entry point: wraps and transmits, or buffers if `dst` is in
  // power-save. Returns false if the client is not associated (frame dropped,
  // as a real AP would).
  bool send_to_client(net::MacAddress dst, net::Frame frame);

  bool is_associated(net::MacAddress client) const;
  bool in_power_save(net::MacAddress client) const;
  std::size_t buffered_frames(net::MacAddress client) const;
  std::size_t association_count() const { return stations_.size(); }

  // Counters. Published as mac.ap.* metrics (aggregated across the world's
  // APs) by the telemetry collector each AP registers.
  std::uint64_t auth_grants() const { return auth_grants_; }
  std::uint64_t assoc_grants() const { return assoc_grants_; }
  std::uint64_t buffered_total() const { return buffered_total_; }
  std::uint64_t buffer_drops() const { return buffer_drops_; }
  std::uint64_t psm_enters() const { return psm_enters_; }
  std::uint64_t psm_exits() const { return psm_exits_; }
  std::size_t buffered_high_water() const { return buffered_high_water_; }
  // Current downlink rate for a client (medium default if auto_rate off).
  double downlink_rate_bps(net::MacAddress client) const;

 private:
  struct ClientState {
    bool authenticated = false;
    bool associated = false;
    bool power_save = false;
    std::deque<net::Frame> buffer;
  };

  // A delayed management response waiting on its firmware-jitter timer.
  // Pooled so the scheduled closure captures {this, node, weak alive} —
  // small enough for SmallFn's inline buffer — instead of a whole Frame,
  // which would heap-spill on every auth/assoc grant.
  struct PendingResponse {
    net::Frame frame;
  };

  void on_receive(const net::Frame& frame, const phy::RxInfo& info);
  void beacon_tick();
  void respond_after_delay(net::Frame response);
  PendingResponse* acquire_pending_response();
  void release_pending_response(PendingResponse* node);
  void flush_buffer(net::MacAddress client, ClientState& state);
  net::BeaconInfo beacon_info() const;
  void note_buffered();
  // Samples buffered_now_ onto the per-AP mac.ap.psm_buffered counter track
  // (keyed by the radio's attach order) whenever occupancy changes; no-op
  // while tracing is off.
  void trace_psm_occupancy();
  void publish_metrics(telemetry::Registry& registry);

  phy::Medium& medium_;
  phy::Radio radio_;
  // Lifetime guard: scheduled beacon/response lambdas hold a weak_ptr and
  // become no-ops once the AP is destroyed mid-simulation.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  sim::Rng rng_;
  AccessPointConfig config_;
  // Interned beacon payload (see AccessPointConfig::intern_beacons); empty
  // (monostate) when interning is off.
  net::SharedPayload beacon_payload_;
  DataSink data_sink_;
  phy::AutoRate rate_;
  // Free-listed delayed-response nodes (see PendingResponse). The pool only
  // grows while more responses are in flight at once than ever before; the
  // steady state recycles.
  std::vector<std::unique_ptr<PendingResponse>> response_pool_;
  std::vector<PendingResponse*> response_free_;
  std::unordered_map<net::MacAddress, ClientState> stations_;
  bool started_ = false;
  std::uint64_t auth_grants_ = 0;
  std::uint64_t assoc_grants_ = 0;
  std::uint64_t buffered_total_ = 0;
  std::uint64_t buffer_drops_ = 0;
  std::uint64_t psm_enters_ = 0;
  std::uint64_t psm_exits_ = 0;
  // PSM occupancy across all clients of this AP, tracked at event
  // granularity so the published gauge's high-water is exact.
  std::size_t buffered_now_ = 0;
  std::size_t buffered_high_water_ = 0;
  // Values already folded into the shared mac.ap.* metrics — several APs in
  // one world publish deltas into the same registry entries.
  struct Published {
    std::uint64_t auth = 0;
    std::uint64_t assoc = 0;
    std::uint64_t buffered = 0;
    std::uint64_t drops = 0;
    std::uint64_t psm_enters = 0;
    std::uint64_t psm_exits = 0;
    std::size_t occupancy = 0;
  } published_;
  telemetry::Hub::CollectorId collector_id_ = 0;
};

}  // namespace spider::mac
