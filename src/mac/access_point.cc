#include "mac/access_point.h"

#include <utility>

#include "core/check.h"

namespace spider::mac {

AccessPoint::AccessPoint(phy::Medium& medium, net::MacAddress address,
                         phy::Vec2 position, sim::Rng rng,
                         AccessPointConfig config)
    : medium_(medium),
      radio_(medium, address,
             phy::RadioConfig{.initial_channel = config.channel}),
      rng_(std::move(rng)),
      config_(std::move(config)) {
  SPIDER_CHECK(config_.beacon_interval > sim::Time::zero())
      << "AP " << address.to_string() << " beacon interval "
      << config_.beacon_interval.to_string();
  SPIDER_CHECK(config_.response_delay_min <= config_.response_delay_max)
      << "AP response delay window inverted: "
      << config_.response_delay_min.to_string() << " > "
      << config_.response_delay_max.to_string();
  SPIDER_CHECK(config_.max_buffered_frames > 0)
      << "AP power-save buffer capacity must be positive";
  radio_.set_position(position);
  // Built here, not in start(): probe responses and management grants reuse
  // the interned payload and the receive handler below is live before
  // start() is called.
  if (config_.intern_beacons || config_.intern_mgmt_responses) {
    beacon_payload_ = beacon_info();
  }
  radio_.set_receive_handler(
      [this](const net::Frame& f, const phy::RxInfo& i) { on_receive(f, i); });
  // Link-layer retry failure: an associated client that went absent (e.g.
  // parked on another channel before our PM=1 bookkeeping caught up) gets
  // its frames re-queued into the power-save buffer instead of dropped —
  // the standard AP behaviour virtualized clients rely on.
  radio_.set_tx_failure_handler([this](const net::Frame& f) {
    if (f.kind != net::FrameKind::kData) return;
    auto it = stations_.find(f.dst);
    if (it == stations_.end() || !it->second.associated) return;
    // Re-queue only for clients that announced power-save: that's the race
    // where data was in flight when the PM=1 arrived. A client that is
    // simply absent without PSM (e.g. mid-join on another channel) loses
    // the frame, exactly as the paper's join analysis assumes.
    if (!it->second.power_save) return;
    if (it->second.buffer.size() >= config_.max_buffered_frames) {
      ++buffer_drops_;
      return;
    }
    ++buffered_total_;
    it->second.buffer.push_back(f);
    note_buffered();
    SPIDER_DCHECK(it->second.buffer.size() <= config_.max_buffered_frames)
        << "power-save buffer overran its cap for "
        << f.dst.to_string();
  });
  collector_id_ = medium_.simulator().telemetry().add_collector(
      [this](telemetry::Registry& registry) { publish_metrics(registry); });
  if (config_.auto_rate) {
    radio_.set_tx_result_handler([this](const net::Frame& f, bool ok) {
      if (f.kind != net::FrameKind::kData) return;
      if (ok) {
        rate_.on_success(f.dst);
      } else {
        rate_.on_failure(f.dst);
      }
    });
  }
}

AccessPoint::~AccessPoint() {
  medium_.simulator().telemetry().remove_collector(collector_id_);
}

void AccessPoint::note_buffered() {
  ++buffered_now_;
  if (buffered_now_ > buffered_high_water_) {
    buffered_high_water_ = buffered_now_;
  }
  trace_psm_occupancy();
}

void AccessPoint::trace_psm_occupancy() {
  telemetry::TraceRecorder& trace = medium_.simulator().telemetry().trace();
  if (!trace.enabled()) return;
  trace.counter("mac.ap.psm_buffered", "mac",
                medium_.simulator().now().us(),
                static_cast<std::int64_t>(buffered_now_),
                static_cast<std::uint32_t>(radio_.attach_order()));
}

void AccessPoint::publish_metrics(telemetry::Registry& registry) {
  // Deltas since the last collect: several APs share one world registry, so
  // each folds only its unpublished growth into the common mac.ap.* names.
  const auto publish = [&registry](const char* name, std::uint64_t total,
                                   std::uint64_t& published) {
    registry.counter(name).inc(total - published);
    published = total;
  };
  publish("mac.ap.auth_grants", auth_grants_, published_.auth);
  publish("mac.ap.assoc_grants", assoc_grants_, published_.assoc);
  publish("mac.ap.frames_buffered", buffered_total_, published_.buffered);
  publish("mac.ap.buffer_drops", buffer_drops_, published_.drops);
  publish("mac.ap.psm_enters", psm_enters_, published_.psm_enters);
  publish("mac.ap.psm_exits", psm_exits_, published_.psm_exits);
  telemetry::Gauge& occupancy = registry.gauge("mac.ap.psm_buffered");
  occupancy.add(static_cast<std::int64_t>(buffered_now_) -
                static_cast<std::int64_t>(published_.occupancy));
  occupancy.record_peak(static_cast<std::int64_t>(buffered_high_water_));
  published_.occupancy = buffered_now_;
}

double AccessPoint::downlink_rate_bps(net::MacAddress client) const {
  return config_.auto_rate ? rate_.rate_for(client)
                           : medium_.config().bitrate_bps;
}

void AccessPoint::start() {
  if (started_) return;
  started_ = true;
  // Desynchronize beacons across APs.
  const sim::Time offset =
      sim::Time::micros(rng_.uniform_int(0, config_.beacon_interval.us() - 1));
  medium_.simulator().post_after(
      offset, [this, alive = std::weak_ptr<char>(alive_)] {
        if (!alive.expired()) beacon_tick();
      });
}

net::BeaconInfo AccessPoint::beacon_info() const {
  return net::BeaconInfo{config_.ssid, config_.channel, config_.open};
}

// Hot at fleet scale (every AP, 10 Hz): the interned path bumps a refcount
// on beacon_payload_; only the legacy non-interned path builds a payload
// per tick, and it exists as the benchmark's "old path".
SPIDER_HOT void AccessPoint::beacon_tick() {
  radio_.send(config_.intern_beacons
                  ? net::make_beacon(address(), beacon_payload_)
                  : net::make_beacon(address(), beacon_info()));
  medium_.simulator().post_after(
      config_.beacon_interval, [this, alive = std::weak_ptr<char>(alive_)] {
        if (!alive.expired()) beacon_tick();
      });
}

AccessPoint::PendingResponse* AccessPoint::acquire_pending_response() {
  if (response_free_.empty()) {
    response_pool_.push_back(std::make_unique<PendingResponse>());
    return response_pool_.back().get();
  }
  PendingResponse* node = response_free_.back();
  response_free_.pop_back();
  return node;
}

void AccessPoint::release_pending_response(PendingResponse* node) {
  node->frame = net::Frame{};  // drop the payload refcount eagerly
  response_free_.push_back(node);
}

// Hot on every auth/assoc grant: the response parks on a pooled node so the
// scheduled closure captures {this, node, weak alive} — 32 bytes, inside
// SmallFn's inline buffer. Capturing the Frame itself would heap-spill the
// closure on every management exchange.
SPIDER_HOT void AccessPoint::respond_after_delay(net::Frame response) {
  const sim::Time lo = config_.response_delay_min;
  const sim::Time hi = config_.response_delay_max;
  const sim::Time delay =
      lo + sim::Time::micros(rng_.uniform_int(0, (hi - lo).us()));
  SPIDER_DCHECK(delay >= lo && delay <= hi)
      << "management response delay " << delay.to_string()
      << " outside configured [" << lo.to_string() << ", " << hi.to_string()
      << "]";
  PendingResponse* node = acquire_pending_response();
  node->frame = std::move(response);
  medium_.simulator().post_after(
      delay, [this, node, alive = std::weak_ptr<char>(alive_)] {
        // If the AP died, `this` is gone and the node's memory went with the
        // pool; touching neither is the only safe move.
        if (alive.expired()) return;
        radio_.send(std::move(node->frame));
        release_pending_response(node);
      });
}

void AccessPoint::on_receive(const net::Frame& frame, const phy::RxInfo&) {
  const bool for_us = frame.dst == address() || frame.dst.is_broadcast();
  if (!for_us) return;

  switch (frame.kind) {
    case net::FrameKind::kProbeRequest:
      respond_after_delay(
          config_.intern_beacons
              ? net::make_probe_response(address(), frame.src, beacon_payload_)
              : net::make_probe_response(address(), frame.src, beacon_info()));
      break;

    case net::FrameKind::kAuthRequest: {
      ClientState& state = stations_[frame.src];
      if (!state.authenticated) ++auth_grants_;
      state.authenticated = true;
      respond_after_delay(
          config_.intern_mgmt_responses
              ? net::make_auth_response(address(), frame.src, beacon_payload_)
              : net::make_auth_response(address(), frame.src));
      break;
    }

    case net::FrameKind::kAssocRequest: {
      auto it = stations_.find(frame.src);
      if (it == stations_.end() || !it->second.authenticated) {
        // Real APs reject association before authentication; we stay silent
        // and let the client's link-layer timeout drive a retry of auth.
        break;
      }
      // MAC state-transition legality: association is only ever granted on
      // top of authentication (the 802.11 state ladder).
      SPIDER_CHECK(it->second.authenticated)
          << "assoc grant for unauthenticated client "
          << frame.src.to_string();
      if (!it->second.associated) ++assoc_grants_;
      it->second.associated = true;
      respond_after_delay(
          config_.intern_mgmt_responses
              ? net::make_assoc_response(address(), frame.src, beacon_payload_)
              : net::make_assoc_response(address(), frame.src));
      break;
    }

    case net::FrameKind::kDisassoc: {
      auto it = stations_.find(frame.src);
      if (it != stations_.end()) {
        const std::size_t dropped = it->second.buffer.size();
        buffered_now_ -= dropped;
        stations_.erase(it);
        if (dropped > 0) trace_psm_occupancy();
      }
      break;
    }

    case net::FrameKind::kNullData: {
      auto it = stations_.find(frame.src);
      if (it == stations_.end() || !it->second.associated) break;
      if (frame.power_mgmt) {
        if (!it->second.power_save) ++psm_enters_;
        it->second.power_save = true;
      } else {
        if (it->second.power_save) ++psm_exits_;
        it->second.power_save = false;
        flush_buffer(frame.src, it->second);
      }
      break;
    }

    case net::FrameKind::kPsPoll: {
      // Spider wakes a parked association by polling; we flush everything
      // buffered and clear the PS bit so downlink flows until the next
      // PM=1 announcement.
      auto it = stations_.find(frame.src);
      if (it == stations_.end() || !it->second.associated) break;
      if (it->second.power_save) ++psm_exits_;
      it->second.power_save = false;
      flush_buffer(frame.src, it->second);
      break;
    }

    case net::FrameKind::kData: {
      // DHCP exchanges legitimately arrive before association completes in
      // our simplified stack only if the client is associated; enforce that.
      auto it = stations_.find(frame.src);
      if (it == stations_.end() || !it->second.associated) break;
      // An awake client that transmits proves it is listening; deliver
      // anything that accumulated during a PSM race window.
      if (!it->second.power_save && !it->second.buffer.empty()) {
        flush_buffer(frame.src, it->second);
      }
      if (data_sink_) data_sink_(frame);
      break;
    }

    case net::FrameKind::kBeacon:
    case net::FrameKind::kProbeResponse:
    case net::FrameKind::kAuthResponse:
    case net::FrameKind::kAssocResponse:
      break;  // AP ignores other APs' management traffic
  }
}

void AccessPoint::flush_buffer(net::MacAddress client, ClientState& state) {
  // Flushing only makes sense for an associated client that is awake; both
  // call sites clear the PS bit before draining.
  SPIDER_DCHECK(state.associated && !state.power_save)
      << "flush for " << client.to_string() << " in associated="
      << state.associated << " power_save=" << state.power_save;
  const bool drained = !state.buffer.empty();
  while (!state.buffer.empty()) {
    net::Frame f = std::move(state.buffer.front());
    state.buffer.pop_front();
    --buffered_now_;
    if (config_.auto_rate) f.tx_rate_bps = rate_.rate_for(client);
    radio_.send(std::move(f));
  }
  if (drained) trace_psm_occupancy();
}

bool AccessPoint::send_to_client(net::MacAddress dst, net::Frame frame) {
  auto it = stations_.find(dst);
  if (it == stations_.end() || !it->second.associated) return false;
  if (it->second.power_save) {
    if (it->second.buffer.size() >= config_.max_buffered_frames) {
      ++buffer_drops_;
      return true;  // associated, but the frame aged out of the buffer
    }
    ++buffered_total_;
    it->second.buffer.push_back(std::move(frame));
    note_buffered();
    return true;
  }
  if (config_.auto_rate) frame.tx_rate_bps = rate_.rate_for(dst);
  radio_.send(std::move(frame));
  return true;
}

bool AccessPoint::is_associated(net::MacAddress client) const {
  auto it = stations_.find(client);
  return it != stations_.end() && it->second.associated;
}

bool AccessPoint::in_power_save(net::MacAddress client) const {
  auto it = stations_.find(client);
  return it != stations_.end() && it->second.power_save;
}

std::size_t AccessPoint::buffered_frames(net::MacAddress client) const {
  auto it = stations_.find(client);
  return it == stations_.end() ? 0 : it->second.buffer.size();
}

}  // namespace spider::mac
