// Client-side per-BSS association state machine ("virtual interface" at the
// MAC level).
//
// A session walks Idle -> Authenticating -> Associating -> Associated using
// the open-system auth + association four-way exchange. Each outstanding
// message is guarded by a link-layer retry timer (the paper's link-layer
// timeout: 1 s stock, 100 ms in Spider's reduced configuration). All
// transmissions go through a driver-supplied Tx function that returns false
// when the shared radio is parked on another channel — the retry timer keeps
// running, so the message goes out on the next on-channel opportunity.
#pragma once

#include <cstdint>
#include <functional>

#include "net/frame.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::mac {

enum class SessionState : std::uint8_t {
  kIdle,
  kAuthenticating,
  kAssociating,
  kAssociated,
  kFailed,  // gave up after max_attempts
};

const char* to_string(SessionState s);

enum class SessionEvent : std::uint8_t {
  kAssociated,  // four-way exchange completed
  kFailed,      // max_attempts exhausted
};

struct ClientSessionConfig {
  // Per-message retry interval (NOT a whole-join timeout).
  sim::Time link_timeout = sim::Time::millis(1000);
  // Total message transmissions allowed before declaring kFailed; 0 means
  // retry for as long as the driver keeps the session alive.
  int max_attempts = 0;
  // Consecutive association-stage retries before restarting from auth (the
  // AP may have evicted our auth state).
  int assoc_retries_before_reauth = 3;
  // Telemetry track (Chrome tid) for the auth/assoc spans this session emits
  // when the world's trace recorder is enabled. Drivers assign one track per
  // virtual interface so joins render as parallel lanes in Perfetto.
  std::uint32_t trace_track = 0;
};

class ClientSession {
 public:
  using TxFn = std::function<bool(const net::Frame&)>;
  using EventFn = std::function<void(ClientSession&, SessionEvent)>;

  ClientSession(sim::Simulator& simulator, net::MacAddress self,
                net::Bssid bssid, net::ChannelId channel, TxFn tx,
                ClientSessionConfig config = {});
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  net::Bssid bssid() const { return bssid_; }
  net::ChannelId channel() const { return channel_; }
  SessionState state() const { return state_; }
  bool associated() const { return state_ == SessionState::kAssociated; }

  void set_event_handler(EventFn handler) { event_handler_ = std::move(handler); }

  // Begins (or restarts) the join. Valid from any state.
  void start_join();
  // Stops all timers and returns to Idle; sends nothing.
  void abandon();

  // The driver routes every frame whose src is this session's BSSID here.
  void handle_frame(const net::Frame& frame);

  // Driver notification: the radio just (re)arrived on this session's
  // channel. Pending messages are retransmitted immediately instead of
  // waiting out the rest of the retry timer.
  void radio_on_channel();

  // Time any frame was last heard from the AP (for link-loss policies).
  sim::Time last_heard() const { return last_heard_; }
  // Association latency of the most recent successful join.
  sim::Time association_delay() const { return association_delay_; }
  // Message transmissions attempted during the current/most recent join.
  int attempts() const { return attempts_; }

 private:
  void transmit_current();
  void arm_retry_timer();
  void on_retry_timeout();
  void enter(SessionState next);

  sim::Simulator& sim_;
  net::MacAddress self_;
  net::Bssid bssid_;
  net::ChannelId channel_;
  TxFn tx_;
  ClientSessionConfig config_;
  EventFn event_handler_;

  SessionState state_ = SessionState::kIdle;
  sim::TimerHandle retry_timer_;
  sim::Time join_started_ = sim::Time::zero();
  sim::Time auth_done_ = sim::Time::zero();
  sim::Time association_delay_ = sim::Time::zero();
  sim::Time last_heard_ = sim::Time::zero();
  int attempts_ = 0;
  int stage_retries_ = 0;
};

}  // namespace spider::mac
