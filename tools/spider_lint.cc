// spider-lint — determinism & hot-path allocation linter for the spider tree.
//
// The simulator's headline guarantee is a run digest that depends only on
// (seed, config): independent of container internals, pointer values, wall
// clocks, and — once the memory-layout work lands — of shard count. Generic
// clang-tidy cannot express the project-specific rules that protect that
// guarantee, so this tool does, lexically: comments, string literals, and
// preprocessor lines are stripped, then a small registry of rules scans the
// remaining code. It is deliberately not a compiler; a rule that cannot be
// decided lexically errs on the side of flagging, and the suppression
// grammar (reason mandatory) is the escape hatch.
//
// Usage:
//   spider-lint [--json] [--list-rules] <path>...   # dirs recurse over .h/.cc
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Rules:
//   det-unordered-iteration  range-for / .begin() / std::erase_if over an
//                            unordered_{map,set} — iteration order is a
//                            function of hashing internals and must never
//                            reach the digest, event order, or output.
//   det-banned-sources       std::rand, random_device, time(nullptr),
//                            system_clock, default-constructed engines;
//                            steady_clock unless the file is annotated
//                            `// spider-lint: timing-only <reason>`.
//   det-pointer-order        std::hash<T*>, std::less<T*>, address
//                            comparisons, comparators ordering raw pointer
//                            values — addresses differ run to run.
//   det-unsorted-mailbox     range-for over a cross-shard message container
//                            (an identifier containing "inbox"/"mailbox")
//                            in a file that never sorts it — arrival order
//                            is producer-dependent even in a plain vector,
//                            so the coordinator must sort by a stable key
//                            (time, tx key) before applying.
//   hot-path-alloc           inside a function marked SPIDER_HOT: `new`,
//                            make_shared/make_unique, std::function,
//                            container growth (push_back/emplace_back/
//                            resize) whose receiver has no visible
//                            `reserve(` anywhere in the same file, string
//                            building. Hot paths allocate nothing in
//                            steady state (core/alloc_guard.h proves it at
//                            runtime; this rule catches it in review).
//   check-policy             raw assert()/abort() where SPIDER_CHECK /
//                            SPIDER_DCHECK / SPIDER_UNREACHABLE is the
//                            documented policy (core/check.h).
//   lint-suppression         malformed suppression: unknown rule name or
//                            missing reason. Suppressions are part of the
//                            tree's audit trail; a reason is mandatory.
//
// Suppression grammar (inside any comment):
//   // spider-lint: allow(rule-name) <reason>        one line: its own line
//   //                                               if code shares it, else
//   //                                               the next line
//   // spider-lint: allow-file(rule-name) <reason>   whole file
//   // spider-lint: timing-only <reason>             whole file, exempts
//   //                                               steady_clock only
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule registry.

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
  std::string_view hint;  // the fix hint attached to every finding
};

constexpr RuleInfo kRules[] = {
    {"det-unordered-iteration",
     "iteration over an unordered container (order is hashing-internal)",
     "copy the elements and sort by a stable key before anything "
     "order-dependent, switch to std::map/sorted vector, or suppress with a "
     "reason proving the order cannot escape"},
    {"det-banned-sources",
     "non-deterministic source (wall clock / global RNG / unseeded engine)",
     "draw from the world's seeded sim::Rng; wall-clock timing belongs in "
     "timing-only annotated files (e.g. sweep.cc)"},
    {"det-pointer-order",
     "ordering derived from pointer values (addresses differ run to run)",
     "order by a stable id (attach id, bssid, name) instead of the pointer"},
    {"det-unsorted-mailbox",
     "cross-shard mailbox applied without a stable sort (arrival order is "
     "producer-dependent)",
     "sort the mailbox by a stable key — (time, tx key) in the sharded-world "
     "coordinator — before the apply loop, or suppress with a reason proving "
     "the order cannot escape"},
    {"hot-path-alloc",
     "allocation idiom inside a SPIDER_HOT function",
     "hot paths allocate nothing in steady state: reserve() the container "
     "up front, or use arena scratch, pooled nodes, or interned payloads "
     "(see DESIGN.md)"},
    {"check-policy",
     "raw assert()/abort() bypasses the SPIDER_CHECK policy layer",
     "use SPIDER_CHECK / SPIDER_DCHECK / SPIDER_UNREACHABLE from "
     "core/check.h so failures are streamed, counted, and policy-switchable"},
    {"lint-suppression",
     "malformed spider-lint suppression directive",
     "write `// spider-lint: allow(rule-name) <reason>` — the rule must "
     "exist and the reason must not be empty"},
};

bool known_rule(std::string_view name) {
  for (const RuleInfo& r : kRules) {
    if (r.name == name) return true;
  }
  return false;
}

std::string_view hint_for(std::string_view rule) {
  for (const RuleInfo& r : kRules) {
    if (r.name == rule) return r.hint;
  }
  return {};
}

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Source model: raw lines for directive parsing, a stripped "code view"
// (comments, string/char literals, and preprocessor lines blanked to spaces,
// preserving offsets) for rule matching.

struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::string flat;                  // code lines joined by '\n'
  std::vector<std::size_t> starts;   // flat offset of each line's first char
  std::set<std::string> file_allow;  // rules allowed file-wide
  std::map<int, std::set<std::string>> line_allow;  // 1-based
  bool timing_only = false;
};

int line_of(const SourceFile& f, std::size_t flat_offset) {
  auto it = std::upper_bound(f.starts.begin(), f.starts.end(), flat_offset);
  return static_cast<int>(it - f.starts.begin());
}

// Blanks comments and literal contents. State machine over the whole file so
// block comments and raw strings spanning lines are handled.
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out(raw.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the `)delim"` closer
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& in = raw[li];
    std::string& line = out[li];
    line.assign(in.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            ++i;
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     in[i - 1])) &&
                                 in[i - 1] != '_'))) {
            std::size_t open = in.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = ")" + in.substr(i + 2, open - i - 2) + "\"";
              state = State::kRawString;
              i = open;
            }
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          } else {
            line[i] = c;
          }
          break;
        case State::kLineComment:
          break;  // rest of line is comment
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString:
          if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
      }
    }
    if (state == State::kLineComment) state = State::kCode;
  }
  return out;
}

void blank_preprocessor_lines(const std::vector<std::string>& raw,
                              std::vector<std::string>& code) {
  bool continuation = false;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& c = code[li];
    const std::size_t first = c.find_first_not_of(" \t");
    const bool directive = first != std::string::npos && c[first] == '#';
    if (directive || continuation) {
      continuation = !raw[li].empty() && raw[li].back() == '\\';
      std::fill(code[li].begin(), code[li].end(), ' ');
    } else {
      continuation = false;
    }
  }
}

std::string trim(std::string_view s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return {};
  std::size_t e = s.find_last_not_of(" \t");
  return std::string(s.substr(b, e - b + 1));
}

// Parses `spider-lint:` directives out of the raw lines.
void parse_directives(SourceFile& f, std::vector<Finding>& findings) {
  static constexpr std::string_view kTag = "spider-lint:";
  for (std::size_t li = 0; li < f.raw.size(); ++li) {
    const std::string& line = f.raw[li];
    const std::size_t tag = line.find(kTag);
    if (tag == std::string::npos) continue;
    const int lineno = static_cast<int>(li + 1);
    std::string rest = trim(line.substr(tag + kTag.size()));
    const auto bad = [&](std::string message) {
      findings.push_back(
          {f.path, lineno, "lint-suppression", std::move(message)});
    };
    if (rest.rfind("timing-only", 0) == 0) {
      if (trim(rest.substr(std::string_view("timing-only").size())).empty()) {
        bad("timing-only annotation without a reason");
      } else {
        f.timing_only = true;
      }
      continue;
    }
    const bool file_wide = rest.rfind("allow-file(", 0) == 0;
    const bool one_line = rest.rfind("allow(", 0) == 0;
    if (!file_wide && !one_line) {
      bad("unknown spider-lint directive: '" + rest + "'");
      continue;
    }
    const std::size_t open = rest.find('(');
    const std::size_t close = rest.find(')', open);
    if (close == std::string::npos) {
      bad("suppression missing closing ')'");
      continue;
    }
    const std::string rule = trim(rest.substr(open + 1, close - open - 1));
    const std::string reason = trim(rest.substr(close + 1));
    if (!known_rule(rule)) {
      bad("suppression names unknown rule '" + rule + "'");
      continue;
    }
    if (reason.empty()) {
      bad("suppression of '" + rule + "' carries no reason");
      continue;
    }
    if (file_wide) {
      f.file_allow.insert(rule);
    } else {
      // A comment-only line shields the next line; a trailing comment
      // shields its own.
      const bool own_code = trim(f.code[li]).empty() == false;
      const int target = own_code ? lineno : lineno + 1;
      f.line_allow[target].insert(rule);
    }
  }
}

bool suppressed(const SourceFile& f, std::string_view rule, int line) {
  if (f.file_allow.count(std::string(rule)) != 0) return true;
  auto it = f.line_allow.find(line);
  return it != f.line_allow.end() && it->second.count(std::string(rule)) != 0;
}

// ---------------------------------------------------------------------------
// Identifier helpers.

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool token_at(const std::string& text, std::size_t pos,
              std::string_view token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  return end >= text.size() || !ident_char(text[end]);
}

// Finds every whole-token occurrence of `token` in `text`.
std::vector<std::size_t> token_positions(const std::string& text,
                                         std::string_view token) {
  std::vector<std::size_t> out;
  for (std::size_t pos = text.find(token); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (token_at(text, pos, token)) out.push_back(pos);
  }
  return out;
}

// Matches `<...>` starting at the '<' at `open`; returns offset past the
// closing '>' or npos. Treats '>>' as two closes (template context).
std::size_t match_angles(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      if (--depth == 0) return i + 1;
    }
    if (text[i] == ';') return std::string::npos;  // gave up: not a template
  }
  return std::string::npos;
}

std::size_t match_parens(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  return i;
}

// ---------------------------------------------------------------------------
// Pass 1: project-wide table of identifiers with unordered container types
// (variables, members, parameters, and functions returning one), plus type
// aliases of unordered containers. Lexical and project-wide by design: a
// name collision costs one suppression, a missed member costs a digest bug.

struct UnorderedSymbols {
  std::set<std::string> vars;
  std::set<std::string> aliases;
};

void collect_unordered_symbols(const SourceFile& f, UnorderedSymbols& table) {
  const std::string& text = f.flat;
  static const std::regex kAlias(
      R"(\busing\s+(\w+)\s*=\s*[^;]*\bunordered_(?:map|set|multimap|multiset)\b)");
  for (std::sregex_iterator it(text.begin(), text.end(), kAlias), end;
       it != end; ++it) {
    table.aliases.insert((*it)[1].str());
  }
  static constexpr std::string_view kKinds[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (std::string_view kind : kKinds) {
    for (std::size_t pos : token_positions(text, kind)) {
      std::size_t i = skip_ws(text, pos + kind.size());
      if (i >= text.size() || text[i] != '<') continue;
      i = match_angles(text, i);
      if (i == std::string::npos) continue;
      i = skip_ws(text, i);
      while (i < text.size() && (text[i] == '&' || text[i] == '*')) {
        i = skip_ws(text, i + 1);
      }
      std::size_t name_begin = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      if (i == name_begin) continue;  // e.g. `unordered_map<...>::iterator`
      const std::string name = text.substr(name_begin, i - name_begin);
      i = skip_ws(text, i);
      if (i < text.size() &&
          (text[i] == ';' || text[i] == '=' || text[i] == '{' ||
           text[i] == '(' || text[i] == ',' || text[i] == ')')) {
        table.vars.insert(name);
      }
    }
  }
}

void collect_alias_vars(const SourceFile& f, UnorderedSymbols& table) {
  const std::string& text = f.flat;
  for (const std::string& alias : table.aliases) {
    for (std::size_t pos : token_positions(text, alias)) {
      std::size_t i = skip_ws(text, pos + alias.size());
      while (i < text.size() && (text[i] == '&' || text[i] == '*')) {
        i = skip_ws(text, i + 1);
      }
      std::size_t name_begin = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      if (i == name_begin) continue;
      table.vars.insert(text.substr(name_begin, i - name_begin));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: det-unordered-iteration.

void check_unordered_iteration(const SourceFile& f,
                               const UnorderedSymbols& table,
                               std::vector<Finding>& findings) {
  const std::string& text = f.flat;
  const auto flag = [&](std::size_t off, const std::string& name,
                        std::string_view via) {
    findings.push_back({f.path, line_of(f, off), "det-unordered-iteration",
                        "iteration over unordered container '" + name +
                            "' via " + std::string(via) +
                            " — order depends on hashing internals"});
  };
  // Range-for: `for (decl : expr)` where expr mentions an unordered symbol.
  for (std::size_t pos : token_positions(text, "for")) {
    std::size_t open = skip_ws(text, pos + 3);
    if (open >= text.size() || text[open] != '(') continue;
    const std::size_t close = match_parens(text, open);
    if (close == std::string::npos) continue;
    const std::string inside = text.substr(open + 1, close - open - 2);
    // Find the range-for ':' at top level (not '::', not in nested parens).
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      const char c = inside[i];
      if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
      if (c == ';') {
        colon = std::string::npos;
        break;  // classic for loop
      }
      if (c == ':' && depth == 0) {
        if ((i > 0 && inside[i - 1] == ':') ||
            (i + 1 < inside.size() && inside[i + 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = inside.substr(colon + 1);
    for (std::size_t i = 0; i < range.size();) {
      if (!ident_char(range[i])) {
        ++i;
        continue;
      }
      std::size_t b = i;
      while (i < range.size() && ident_char(range[i])) ++i;
      const std::string name = range.substr(b, i - b);
      if (table.vars.count(name) != 0) {
        flag(pos, name, "range-for");
        break;
      }
    }
  }
  // Iterator walks and in-order mutation: name.begin()/cbegin()/rbegin(),
  // std::erase_if(name, ...).
  static const std::regex kBegin(R"(\b(\w+)\s*(?:\.|->)\s*c?r?begin\s*\()");
  for (std::sregex_iterator it(text.begin(), text.end(), kBegin), end;
       it != end; ++it) {
    const std::string name = (*it)[1].str();
    if (table.vars.count(name) != 0) {
      flag(static_cast<std::size_t>(it->position()), name, "iterators");
    }
  }
  static const std::regex kEraseIf(R"(\berase_if\s*\(\s*(\w+))");
  for (std::sregex_iterator it(text.begin(), text.end(), kEraseIf), end;
       it != end; ++it) {
    const std::string name = (*it)[1].str();
    if (table.vars.count(name) != 0) {
      flag(static_cast<std::size_t>(it->position()), name, "std::erase_if");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: det-unsorted-mailbox.
//
// The sharded-world coordinator collects cross-shard messages from
// concurrently-filled per-shard outboxes, so a mailbox's arrival order is
// producer-dependent even though the container is an ordinary vector —
// invisible to det-unordered-iteration. Applying without first sorting by a
// stable key is a determinism bug. Lexical contract: any file that
// range-fors an identifier containing "inbox" or "mailbox" must also pass
// that identifier to a sort call somewhere in the same file.

bool mailbox_name(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("inbox") != std::string::npos ||
         lower.find("mailbox") != std::string::npos;
}

void check_unsorted_mailbox(const SourceFile& f,
                            std::vector<Finding>& findings) {
  const std::string& text = f.flat;
  // Every identifier appearing inside a sort(...) / stable_sort(...)
  // argument list counts as sorted-in-this-file.
  std::set<std::string> sorted_names;
  for (const std::string_view sorter : {"sort", "stable_sort"}) {
    for (std::size_t pos : token_positions(text, sorter)) {
      const std::size_t open = skip_ws(text, pos + sorter.size());
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = match_parens(text, open);
      if (close == std::string::npos) continue;
      const std::string inside = text.substr(open + 1, close - open - 2);
      for (std::size_t i = 0; i < inside.size();) {
        if (!ident_char(inside[i])) {
          ++i;
          continue;
        }
        std::size_t b = i;
        while (i < inside.size() && ident_char(inside[i])) ++i;
        sorted_names.insert(inside.substr(b, i - b));
      }
    }
  }
  // Range-for whose range expression names an unsorted mailbox identifier.
  for (std::size_t pos : token_positions(text, "for")) {
    const std::size_t open = skip_ws(text, pos + 3);
    if (open >= text.size() || text[open] != '(') continue;
    const std::size_t close = match_parens(text, open);
    if (close == std::string::npos) continue;
    const std::string inside = text.substr(open + 1, close - open - 2);
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      const char c = inside[i];
      if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
      if (c == ';') {
        colon = std::string::npos;
        break;  // classic for loop
      }
      if (c == ':' && depth == 0) {
        if ((i > 0 && inside[i - 1] == ':') ||
            (i + 1 < inside.size() && inside[i + 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = inside.substr(colon + 1);
    for (std::size_t i = 0; i < range.size();) {
      if (!ident_char(range[i])) {
        ++i;
        continue;
      }
      std::size_t b = i;
      while (i < range.size() && ident_char(range[i])) ++i;
      const std::string name = range.substr(b, i - b);
      if (mailbox_name(name) && sorted_names.count(name) == 0) {
        findings.push_back(
            {f.path, line_of(f, pos), "det-unsorted-mailbox",
             "mailbox '" + name +
                 "' applied without a stable sort in this file — cross-shard "
                 "arrival order is producer-dependent"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: det-banned-sources.

void check_banned_sources(const SourceFile& f,
                          std::vector<Finding>& findings) {
  const std::string& text = f.flat;
  const auto flag = [&](std::size_t off, std::string message) {
    findings.push_back(
        {f.path, line_of(f, off), "det-banned-sources", std::move(message)});
  };
  struct Banned {
    std::string_view token;
    std::string_view message;
  };
  static constexpr Banned kTokens[] = {
      {"random_device", "std::random_device is hardware entropy — draws "
                        "differ every run"},
      {"system_clock", "std::chrono::system_clock reads the wall clock"},
  };
  for (const Banned& b : kTokens) {
    for (std::size_t pos : token_positions(text, b.token)) {
      flag(pos, std::string(b.message));
    }
  }
  if (!f.timing_only) {
    for (std::size_t pos : token_positions(text, "steady_clock")) {
      flag(pos,
           "std::chrono::steady_clock reads a host clock — allowed only in "
           "files annotated `spider-lint: timing-only`");
    }
  }
  for (std::size_t pos : token_positions(text, "rand")) {
    const std::size_t i = skip_ws(text, pos + 4);
    if (i < text.size() && text[i] == '(') {
      flag(pos, "std::rand() is a global, shared-state RNG");
    }
  }
  static const std::regex kTime(R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))");
  for (std::sregex_iterator it(text.begin(), text.end(), kTime), end;
       it != end; ++it) {
    flag(static_cast<std::size_t>(it->position()),
         "time(nullptr) reads the wall clock");
  }
  static const std::regex kUnseeded(
      R"(\b(mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux(?:24|48)(?:_base)?|knuth_b)\s+\w+\s*;)");
  for (std::sregex_iterator it(text.begin(), text.end(), kUnseeded), end;
       it != end; ++it) {
    flag(static_cast<std::size_t>(it->position()),
         "default-constructed " + (*it)[1].str() +
             " uses the fixed default seed — seed it from the world's "
             "sim::Rng stream");
  }
}

// ---------------------------------------------------------------------------
// Rule: det-pointer-order.

void check_pointer_order(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& text = f.flat;
  const auto flag = [&](std::size_t off, std::string message) {
    findings.push_back(
        {f.path, line_of(f, off), "det-pointer-order", std::move(message)});
  };
  static const std::regex kHashOrLess(
      R"(\bstd::(hash|less)\s*<[^<>;]*\*[^<>;]*>)");
  for (std::sregex_iterator it(text.begin(), text.end(), kHashOrLess), end;
       it != end; ++it) {
    flag(static_cast<std::size_t>(it->position()),
         "std::" + (*it)[1].str() +
             "<T*> keys on the pointer value, which differs run to run");
  }
  static const std::regex kAddrCmp(
      R"(&\s*\w[\w.\[\]]*\s*[<>]=?\s*&\s*\w)");
  for (std::sregex_iterator it(text.begin(), text.end(), kAddrCmp), end;
       it != end; ++it) {
    flag(static_cast<std::size_t>(it->position()),
         "relational comparison of addresses orders on allocation layout");
  }
  // Comparator lambda ordering raw pointer values: (T* a, T* b) { return
  // a < b; } — dereferencing comparators (a->id < b->id) do not match.
  static const std::regex kPtrComparator(
      R"(\(\s*(?:const\s+)?\w+\s*\*\s*(?:const\s+)?(\w+)\s*,\s*(?:const\s+)?\w+\s*\*\s*(?:const\s+)?(\w+)\s*\)\s*\{\s*return\s+(\w+)\s*[<>]=?\s*(\w+)\s*;)");
  for (std::sregex_iterator it(text.begin(), text.end(), kPtrComparator), end;
       it != end; ++it) {
    const std::string a = (*it)[1].str();
    const std::string b = (*it)[2].str();
    const std::string lhs = (*it)[3].str();
    const std::string rhs = (*it)[4].str();
    if ((lhs == a && rhs == b) || (lhs == b && rhs == a)) {
      flag(static_cast<std::size_t>(it->position()),
           "comparator orders raw pointer values '" + a + "'/'" + b + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-alloc. Finds SPIDER_HOT-marked function bodies, then scans
// them for allocation idioms.

struct HotBody {
  std::size_t begin = 0;  // flat offset of '{'
  std::size_t end = 0;    // flat offset past '}'
};

std::vector<HotBody> find_hot_bodies(const SourceFile& f) {
  std::vector<HotBody> bodies;
  const std::string& text = f.flat;
  for (std::size_t pos : token_positions(text, "SPIDER_HOT")) {
    // Walk to the body '{': skip the signature, including parameter lists
    // (default arguments may contain braces — they live inside the parens).
    std::size_t i = pos + std::string_view("SPIDER_HOT").size();
    int paren_depth = 0;
    std::size_t body = std::string::npos;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth != 0) continue;
      if (c == ';') break;  // declaration only — no body here
      if (c == '{') {
        body = i;
        break;
      }
    }
    if (body == std::string::npos) continue;
    int depth = 0;
    for (i = body; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      if (text[i] == '}') {
        if (--depth == 0) {
          bodies.push_back({body, i + 1});
          break;
        }
      }
    }
  }
  return bodies;
}

void check_hot_path_alloc(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& text = f.flat;
  const auto flag = [&](std::size_t off, std::string message) {
    findings.push_back(
        {f.path, line_of(f, off), "hot-path-alloc", std::move(message)});
  };
  for (const HotBody& body : find_hot_bodies(f)) {
    const std::string scope =
        text.substr(body.begin, body.end - body.begin);
    const auto at = [&](std::size_t local) { return body.begin + local; };
    for (std::size_t pos : token_positions(scope, "new")) {
      flag(at(pos), "operator new in a SPIDER_HOT body");
    }
    for (std::string_view maker : {std::string_view("make_shared"),
                                   std::string_view("make_unique")}) {
      for (std::size_t pos : token_positions(scope, maker)) {
        flag(at(pos), std::string(maker) + " allocates in a SPIDER_HOT body");
      }
    }
    for (std::size_t pos : token_positions(scope, "function")) {
      if (pos >= 5 && scope.compare(pos - 5, 5, "std::") == 0) {
        flag(at(pos - 5),
             "std::function in a SPIDER_HOT body type-erases through the "
             "heap — use sim::SmallFn or a pooled node");
      }
    }
    // Container growth — push_back/emplace_back/resize — can reallocate. A
    // receiver is exempt only when the same file visibly reserves capacity
    // on it (`name.reserve(` / `name->reserve(`): constructors and init
    // paths count, because the contract is reserved-then-grown, not
    // reserved-inside-the-hot-body. Member spelling alone proves nothing.
    static const std::regex kGrow(
        R"((?:\.|->)\s*((?:push|emplace)_back|resize)\s*\()");
    for (std::sregex_iterator it(scope.begin(), scope.end(), kGrow), end;
         it != end; ++it) {
      std::size_t r = static_cast<std::size_t>(it->position());
      const std::string method = (*it)[1].str();
      // Walk back over the receiver: trailing index `[...]` then identifier.
      std::size_t j = r;
      while (j > 0 && std::isspace(static_cast<unsigned char>(scope[j - 1]))) {
        --j;
      }
      if (j > 0 && scope[j - 1] == ']') {
        int depth = 0;
        while (j > 0) {
          --j;
          if (scope[j] == ']') ++depth;
          if (scope[j] == '[' && --depth == 0) break;
        }
      }
      std::size_t name_end = j;
      while (j > 0 && ident_char(scope[j - 1])) --j;
      const std::string name = scope.substr(j, name_end - j);
      // Identifier characters only, so splicing the name into a regex is
      // safe without escaping.
      const bool reserved =
          !name.empty() &&
          std::regex_search(
              text, std::regex("\\b" + name + R"(\s*(?:\.|->)\s*reserve\s*\()"));
      if (!reserved) {
        flag(at(r), method + " on container '" + name +
                        "' with no visible reserve can reallocate on the "
                        "hot path");
      }
    }
    for (std::size_t pos : token_positions(scope, "to_string")) {
      if (pos >= 5 && scope.compare(pos - 5, 5, "std::") == 0) {
        flag(at(pos - 5), "std::to_string builds a heap string");
      }
    }
    static const std::regex kStringBuild(
        R"(\b(?:std::o?stringstream|std::string\s+\w+\s*[=({]|std::format\b))");
    for (std::sregex_iterator it(scope.begin(), scope.end(), kStringBuild),
         end;
         it != end; ++it) {
      flag(at(static_cast<std::size_t>(it->position())),
           "string building in a SPIDER_HOT body");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: check-policy.

void check_check_policy(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& text = f.flat;
  for (std::size_t pos : token_positions(text, "assert")) {
    const std::size_t i = skip_ws(text, pos + 6);
    if (i >= text.size() || text[i] != '(') continue;
    if (pos > 0 && text[pos - 1] == '.') continue;  // method named assert
    findings.push_back({f.path, line_of(f, pos), "check-policy",
                        "raw assert() — invariants go through SPIDER_CHECK / "
                        "SPIDER_DCHECK so they are streamed and counted"});
  }
  for (std::size_t pos : token_positions(text, "abort")) {
    const std::size_t i = skip_ws(text, pos + 5);
    if (i >= text.size() || text[i] != '(') continue;
    if (pos > 0 && text[pos - 1] == '.') continue;
    findings.push_back({f.path, line_of(f, pos), "check-policy",
                        "raw abort() — fatal paths belong to the check "
                        "policy layer (SPIDER_CHECK under Policy::kFatal)"});
  }
}

// ---------------------------------------------------------------------------
// Driver.

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

bool load_file(const fs::path& path, SourceFile& f) {
  std::ifstream in(path);
  if (!in) return false;
  f.path = path.generic_string();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
  }
  f.code = strip_comments_and_strings(f.raw);
  blank_preprocessor_lines(f.raw, f.code);
  f.starts.reserve(f.code.size());
  for (const std::string& c : f.code) {
    f.starts.push_back(f.flat.size());
    f.flat += c;
    f.flat += '\n';
  }
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_usage() {
  std::cerr << "usage: spider-lint [--json] [--list-rules] <path>...\n"
            << "  paths may be files or directories (recursed for "
               ".h/.cc/.hpp/.cpp)\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.name << "\n  " << r.summary << "\n  fix: " << r.hint
                  << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "spider-lint: unknown flag '" << arg << "'\n";
      print_usage();
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }

  std::vector<fs::path> paths;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      std::cerr << "spider-lint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  std::vector<Finding> findings;
  for (const fs::path& p : paths) {
    SourceFile f;
    if (!load_file(p, f)) {
      std::cerr << "spider-lint: cannot read '" << p.string() << "'\n";
      return 2;
    }
    parse_directives(f, findings);
    files.push_back(std::move(f));
  }

  // Pass 1: project-wide unordered symbol table (types first, then variables
  // declared through aliases).
  UnorderedSymbols table;
  for (const SourceFile& f : files) collect_unordered_symbols(f, table);
  for (const SourceFile& f : files) collect_alias_vars(f, table);

  // Pass 2: rules.
  for (const SourceFile& f : files) {
    check_unordered_iteration(f, table, findings);
    check_unsorted_mailbox(f, findings);
    check_banned_sources(f, findings);
    check_pointer_order(f, findings);
    check_hot_path_alloc(f, findings);
    check_check_policy(f, findings);
  }

  // Suppressions (lint-suppression findings are never suppressible: they
  // report defects in the suppressions themselves).
  std::vector<Finding> kept;
  for (Finding& fd : findings) {
    const SourceFile* file = nullptr;
    for (const SourceFile& f : files) {
      if (f.path == fd.file) {
        file = &f;
        break;
      }
    }
    if (fd.rule != "lint-suppression" && file != nullptr &&
        suppressed(*file, fd.rule, fd.line)) {
      continue;
    }
    kept.push_back(std::move(fd));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });

  if (json) {
    std::cout << "{\"tool\":\"spider-lint\",\"count\":" << kept.size()
              << ",\"findings\":[";
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const Finding& fd = kept[i];
      if (i != 0) std::cout << ",";
      std::cout << "{\"file\":\"" << json_escape(fd.file)
                << "\",\"line\":" << fd.line << ",\"rule\":\""
                << json_escape(fd.rule) << "\",\"message\":\""
                << json_escape(fd.message) << "\",\"hint\":\""
                << json_escape(hint_for(fd.rule)) << "\"}";
    }
    std::cout << "]}\n";
  } else {
    for (const Finding& fd : kept) {
      std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                << fd.message << "\n    hint: " << hint_for(fd.rule) << "\n";
    }
    std::cout << (kept.empty() ? "spider-lint: clean"
                               : "spider-lint: " +
                                     std::to_string(kept.size()) +
                                     " finding(s)")
              << " (" << paths.size() << " files)\n";
  }
  return kept.empty() ? 0 : 1;
}
