// spider-serve — host simulation runs behind a local socket and stream
// their live telemetry (schema spider-telemetry-stream-v1).
//
//   spider-serve --socket /tmp/spider.sock [--stream out.jsonl]
//                [--cadence-ms 100] [--no-trace]
//                [--run drive|fleet [--seed N] [--duration-s S]
//                 [--aps N] [--clients N]]
//
// With --run, one submission is queued immediately (handy for demos and CI:
// start the server, watch it with `spider-trace --follow /tmp/spider.sock`).
// Further runs are submitted over the socket:
//   {"cmd":"submit","scenario":"drive","seed":2,"duration_s":30,"aps":12}
// The server exits on {"cmd":"shutdown"} or SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/run_server.h"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void handle_signal(int) { g_interrupted = 1; }

const char* value_of(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  spider::server::RunServerConfig config;
  config.socket_path = "/tmp/spider-serve.sock";
  if (const char* v = value_of(argc, argv, "--socket")) config.socket_path = v;
  if (const char* v = value_of(argc, argv, "--stream")) config.stream_file = v;
  if (const char* v = value_of(argc, argv, "--cadence-ms")) {
    config.stream_cadence = spider::sim::Time::millis(std::atoll(v));
  }
  if (has_flag(argc, argv, "--no-trace")) config.trace_runs = false;

  spider::server::RunServer server(config);
  if (!server.start()) {
    std::fprintf(stderr, "spider-serve: cannot bind %s\n",
                 config.socket_path.c_str());
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr, "spider-serve: listening on %s\n",
               config.socket_path.c_str());

  if (const char* scenario = value_of(argc, argv, "--run")) {
    spider::server::RunSubmission submission;
    submission.scenario = scenario;
    if (const char* v = value_of(argc, argv, "--seed")) {
      submission.seed = static_cast<std::uint64_t>(std::atoll(v));
    }
    if (const char* v = value_of(argc, argv, "--duration-s")) {
      submission.duration =
          spider::sim::Time::millis(static_cast<std::int64_t>(
              std::atof(v) * 1e3));
    }
    if (const char* v = value_of(argc, argv, "--aps")) {
      submission.aps = std::atoi(v);
    }
    if (const char* v = value_of(argc, argv, "--clients")) {
      submission.clients = std::atoi(v);
    }
    const std::uint32_t tag = server.submit(submission);
    std::fprintf(stderr, "spider-serve: queued %s run %u\n",
                 submission.scenario.c_str(), static_cast<unsigned>(tag));
  }

  while (!g_interrupted && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::fprintf(stderr,
               "spider-serve: shutting down (%llu submitted, %llu completed, "
               "%llu lines)\n",
               static_cast<unsigned long long>(server.runs_submitted()),
               static_cast<unsigned long long>(server.runs_completed()),
               static_cast<unsigned long long>(
                   server.exporter().lines_written()));
  server.stop();
  return 0;
}
