#!/usr/bin/env python3
"""CI perf gate over BENCH_perf.json.

Usage: check_perf.py <baseline.json> <measurement.json> [more measurements...]

Every numeric leaf in the baseline (bench/BENCH_perf_baseline.json), except
the "schema"/"note" annotations, is a floor: the corresponding metric in the
measurements must reach floor minus a 5% tolerance. A leaf whose name starts
with "max_" is a ceiling instead: it gates the measurement key without the
prefix (e.g. baseline "max_bytes_per_radio" gates measured "bytes_per_radio")
and the measurements must stay at or under it plus the same tolerance. Most
gated metrics are ratios of two throughputs measured in the same binary on
the same machine (event-queue speedup, PHY indexed-vs-scan speedup), so they
are hardware-normalized; several measurement files may be passed and the
gate takes the best value per metric (highest for floors, lowest for
ceilings), since CI runners are noisy.

Exits 0 when every metric clears its bar, 1 otherwise.
"""
import json
import sys

TOLERANCE = 0.05

CEILING_PREFIX = "max_"


def numeric_leaves(doc, prefix=""):
    """Yields (dotted.path, value) for every numeric leaf of the baseline."""
    for key, value in doc.items():
        if key in ("schema", "note"):
            continue
        if isinstance(value, dict):
            yield from numeric_leaves(value, prefix + key + ".")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield prefix + key, float(value)


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        node = node[part]
    return float(node)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    measurements = []
    for path in argv[2:]:
        with open(path) as f:
            measurements.append(json.load(f))

    ok = True
    for path, base in numeric_leaves(baseline):
        parts = path.split(".")
        is_ceiling = parts[-1].startswith(CEILING_PREFIX)
        if is_ceiling:
            measured_path = ".".join(
                parts[:-1] + [parts[-1][len(CEILING_PREFIX):]]
            )
            ceiling = base * (1.0 + TOLERANCE)
            best = min(lookup(m, measured_path) for m in measurements)
            passed = best <= ceiling
            print(
                f"{'PASS' if passed else 'FAIL'}: {measured_path} best "
                f"{best:.3f} vs ceiling {ceiling:.3f} "
                f"(baseline {base:.3f} + {TOLERANCE:.0%})"
            )
        else:
            floor = base * (1.0 - TOLERANCE)
            best = max(lookup(m, path) for m in measurements)
            passed = best >= floor
            print(
                f"{'PASS' if passed else 'FAIL'}: {path} best {best:.3f} vs "
                f"floor {floor:.3f} (baseline {base:.3f} - {TOLERANCE:.0%})"
            )
        ok = ok and passed
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
