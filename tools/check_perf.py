#!/usr/bin/env python3
"""CI perf gate over BENCH_perf.json.

Usage: check_perf.py <baseline.json> <measurement.json> [more measurements...]

Compares the event-queue speedup_vs_baseline of each measurement against the
checked-in floor (bench/BENCH_perf_baseline.json) minus a 5% tolerance. The
metric is a ratio of two throughputs measured in the same binary on the same
machine, so it is hardware-normalized; several measurement files may be
passed and the gate takes the best one, since CI runners are noisy.

Exits 0 when any measurement clears the bar, 1 otherwise.
"""
import json
import sys

TOLERANCE = 0.05


def speedup(path):
    with open(path) as f:
        doc = json.load(f)
    return float(doc["event_queue"]["speedup_vs_baseline"])


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    floor = speedup(argv[1]) * (1.0 - TOLERANCE)
    best = max(speedup(path) for path in argv[2:])
    verdict = "PASS" if best >= floor else "FAIL"
    print(
        f"{verdict}: best event-queue speedup {best:.3f} vs floor "
        f"{floor:.3f} (baseline {speedup(argv[1]):.3f} - {TOLERANCE:.0%})"
    )
    return 0 if best >= floor else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
