#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every translation unit in src/,
# tests/ and bench/, in parallel, against a compile database produced by the
# `tidy` CMake preset.
#
# Usage:
#   tools/run_clang_tidy.sh [path ...]
#
# With no arguments, all of src/**/*.cc, tests/**/*.cc and bench/**/*.cc is
# checked. Pass file paths to check a subset (e.g. the files touched by a
# branch). Exits non-zero on any finding — .clang-tidy promotes all enabled
# checks to errors — so this is directly usable as a CI gate.
#
# tests/lint_fixtures/ is excluded: those files are deliberately-defective
# spider-lint inputs that are never compiled.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${SPIDER_TIDY_BUILD_DIR:-${repo_root}/build-tidy}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to" >&2
  echo "override); install clang-tidy or run the 'tidy' CI job instead." >&2
  exit 2
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "== configuring compile database in ${build_dir}"
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(find "${repo_root}/src" "${repo_root}/tests" \
    "${repo_root}/bench" -name '*.cc' \
    -not -path '*/lint_fixtures/*' | sort)
fi

echo "== ${tidy_bin} over ${#files[@]} files"
jobs="$(nproc 2>/dev/null || echo 4)"
printf '%s\0' "${files[@]}" |
  xargs -0 -n 1 -P "${jobs}" \
    "${tidy_bin}" -p "${build_dir}" --quiet
echo "== clang-tidy clean"
