// spider-trace — terminal summaries of the repo's telemetry artifacts.
//
// Accepts any artifact the benches and the run server emit:
//   * a spider-telemetry-v1 JSONL file (from --telemetry): prints each
//     sweep's top counters, gauge levels/peaks, histogram summaries with
//     log-bucket quantiles, and a per-channel dwell/traffic table;
//   * a spider-telemetry-stream-v1 JSONL file (from --stream / spider-serve):
//     prints per-run stream statistics and the final streamed metric values;
//     mixed files work — lines with an unknown schema or kind are skipped
//     with a warning, so v1 consumers can skim stream files and vice versa;
//   * a Chrome trace JSON file (from --trace): prints per-(category, name)
//     span statistics, instant-event counts, counter-track statistics
//     (samples / value range / final value, per series id), the named
//     tracks, and the ring's dropped-event count.
//
// Usage: spider-trace <file> [--top N] [--strict]
//        spider-trace --follow <socket> [--top N] [--strict]
//
// --follow connects to a spider-serve socket, prints the snapshot, then
// tails the live stream until the server hangs up. --strict exits nonzero
// when any drop counter (stream ring overflow, trace ring overwrite) is
// nonzero — the CI guard that telemetry windows were big enough.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"

namespace {

using spider::telemetry::Histogram;
using spider::telemetry::JsonValue;

// ---------------------------------------------------------------------------
// Shared helpers

std::string read_file(const char* path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

// Nearest-bucket quantile over the sparse (index, count) pairs a JSONL
// histogram carries; mirrors Histogram::quantile but works on the export.
double bucket_quantile(const JsonValue& buckets, double q, double min_v,
                       double max_v) {
  std::uint64_t total = 0;
  for (const JsonValue& pair : buckets.array) {
    if (pair.array.size() == 2) {
      total += static_cast<std::uint64_t>(pair.array[1].number);
    }
  }
  if (total == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t cum = 0;
  for (const JsonValue& pair : buckets.array) {
    if (pair.array.size() != 2) continue;
    const auto index = static_cast<std::size_t>(pair.array[0].number);
    cum += static_cast<std::uint64_t>(pair.array[1].number);
    if (cum > target) {
      if (index == 0) return min_v;
      if (index >= Histogram::kBuckets - 1) return max_v;
      return Histogram::bucket_upper_bound(index);
    }
  }
  return max_v;
}

// ---------------------------------------------------------------------------
// spider-telemetry-v1 JSONL mode

void print_counters(const JsonValue& counters, int top) {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  for (const auto& [name, value] : counters.object) {
    rows.emplace_back(name, static_cast<std::uint64_t>(value.number));
  }
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  const std::size_t shown =
      std::min<std::size_t>(rows.size(), static_cast<std::size_t>(top));
  std::printf("  counters (top %zu of %zu):\n", shown, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("    %-40s %12llu\n", rows[i].first.c_str(),
                static_cast<unsigned long long>(rows[i].second));
  }
}

void print_gauges(const JsonValue& gauges) {
  if (gauges.object.empty()) return;
  std::printf("  gauges (level / high-water):\n");
  for (const auto& [name, g] : gauges.object) {
    std::printf("    %-40s %10.0f / %.0f\n", name.c_str(),
                g.number_or("value", 0.0), g.number_or("high_water", 0.0));
  }
}

void print_histograms(const JsonValue& histograms) {
  if (histograms.object.empty()) return;
  std::printf("  histograms:\n");
  for (const auto& [name, h] : histograms.object) {
    const double count = h.number_or("count", 0.0);
    const double sum = h.number_or("sum", 0.0);
    const double min_v = h.number_or("min", 0.0);
    const double max_v = h.number_or("max", 0.0);
    double p50 = 0.0;
    double p90 = 0.0;
    if (const JsonValue* buckets = h.find("buckets")) {
      p50 = bucket_quantile(*buckets, 0.5, min_v, max_v);
      p90 = bucket_quantile(*buckets, 0.9, min_v, max_v);
    }
    std::printf(
        "    %-32s n=%-7.0f mean=%-9.4g p50~%-9.4g p90~%-9.4g max=%.4g\n",
        name.c_str(), count, count > 0 ? sum / count : 0.0, p50, p90, max_v);
  }
}

// The per-channel table: dwell time (driver.dwell_us.chN) against the frames
// the medium carried there — the figure-level "where did airtime go" view.
void print_channel_table(const JsonValue& counters) {
  struct Row {
    double dwell_us = 0.0;
    double sent = 0.0;
    double delivered = 0.0;
    bool any = false;
  };
  std::map<int, Row> rows;
  const auto channel_of = [](const std::string& name,
                             const char* prefix) -> int {
    const std::size_t len = std::strlen(prefix);
    if (name.compare(0, len, prefix) != 0) return -1;
    return std::atoi(name.c_str() + len);
  };
  for (const auto& [name, value] : counters.object) {
    if (int ch = channel_of(name, "driver.dwell_us.ch"); ch >= 0) {
      rows[ch].dwell_us = value.number;
      rows[ch].any = true;
    } else if (ch = channel_of(name, "phy.frames_sent.ch"); ch >= 0) {
      rows[ch].sent = value.number;
      rows[ch].any = true;
    } else if (ch = channel_of(name, "phy.frames_delivered.ch"); ch >= 0) {
      rows[ch].delivered = value.number;
      rows[ch].any = true;
    }
  }
  if (rows.empty()) return;
  double total_dwell = 0.0;
  for (const auto& [ch, row] : rows) total_dwell += row.dwell_us;
  std::printf("  per-channel (dwell from driver, frames from medium):\n");
  std::printf("    %3s %12s %7s %12s %12s\n", "ch", "dwell_s", "share",
              "sent", "delivered");
  for (const auto& [ch, row] : rows) {
    if (!row.any) continue;
    std::printf("    %3d %12.3f %6.1f%% %12.0f %12.0f\n", ch,
                row.dwell_us / 1e6,
                total_dwell > 0.0 ? 100.0 * row.dwell_us / total_dwell : 0.0,
                row.sent, row.delivered);
  }
}

// ---------------------------------------------------------------------------
// spider-telemetry-stream-v1 mode (files and --follow)

// Accumulates one run's stream. Metric values are cumulative on the wire, so
// "latest value seen" IS the final total — which is what reconciles against
// the end-of-run MetricsSnapshot.
struct RunStreamState {
  double seed = 0.0;
  bool begun = false;
  bool ended = false;
  std::int64_t first_ts_us = 0;
  std::int64_t last_ts_us = 0;
  std::uint64_t metrics_lines = 0;
  std::uint64_t spans = 0;
  std::uint64_t instants = 0;
  std::uint64_t counter_samples = 0;
  double events = 0.0;
  double stream_dropped = 0.0;
  double trace_dropped = 0.0;
  std::string digest;
  std::map<std::string, double> counters;                      // latest
  std::map<std::string, std::pair<double, double>> gauges;     // value, hw
  std::map<std::string, std::pair<double, double>> histograms; // count, sum
};

class StreamSummary {
 public:
  void consume(const JsonValue& doc) {
    const std::string kind = doc.string_or("kind", "");
    if (kind == "snapshot") {
      if (const JsonValue* runs = doc.find("runs")) {
        for (const JsonValue& run : runs->array) consume_run_state(run);
      }
      return;
    }
    RunStreamState& run =
        runs_[static_cast<std::uint32_t>(doc.number_or("run", 0.0))];
    const auto ts = static_cast<std::int64_t>(doc.number_or("ts_us", 0.0));
    if (!run.begun || ts < run.first_ts_us) run.first_ts_us = ts;
    if (ts > run.last_ts_us) run.last_ts_us = ts;
    if (kind == "run_begin") {
      run.begun = true;
      run.seed = doc.number_or("seed", 0.0);
    } else if (kind == "metrics") {
      ++run.metrics_lines;
      merge_metrics(run, doc);
    } else if (kind == "span") {
      ++run.spans;
    } else if (kind == "instant") {
      ++run.instants;
    } else if (kind == "counter_sample") {
      ++run.counter_samples;
    } else if (kind == "run_end") {
      run.ended = true;
      run.events = doc.number_or("events", 0.0);
      run.stream_dropped = doc.number_or("stream_dropped", 0.0);
      run.trace_dropped = doc.number_or("trace_dropped", 0.0);
      run.digest = doc.string_or("digest", "?");
    }
    // Unknown kinds within the stream schema are forward-compatible: the
    // timestamps above were already folded in, nothing else to do.
  }

  std::size_t lines_consumed() const { return lines_; }
  void count_line() { ++lines_; }

  double total_drops() const {
    double total = 0.0;
    for (const auto& [tag, run] : runs_) {
      total += run.stream_dropped + run.trace_dropped;
    }
    return total;
  }

  void print(int top) const {
    for (const auto& [tag, run] : runs_) {
      std::printf("stream run %-3u seed=%-6.0f %s window=%.3fs..%.3fs",
                  static_cast<unsigned>(tag), run.seed,
                  run.ended ? "finished" : (run.begun ? "running" : "partial"),
                  static_cast<double>(run.first_ts_us) / 1e6,
                  static_cast<double>(run.last_ts_us) / 1e6);
      if (run.ended) {
        std::printf(" events=%.0f digest=%s", run.events, run.digest.c_str());
      }
      std::printf("\n");
      std::printf(
          "  lines: %llu metrics, %llu spans, %llu instants, %llu samples; "
          "dropped: %.0f stream, %.0f trace\n",
          static_cast<unsigned long long>(run.metrics_lines),
          static_cast<unsigned long long>(run.spans),
          static_cast<unsigned long long>(run.instants),
          static_cast<unsigned long long>(run.counter_samples),
          run.stream_dropped, run.trace_dropped);
      std::vector<std::pair<std::string, double>> rows(run.counters.begin(),
                                                       run.counters.end());
      std::stable_sort(rows.begin(), rows.end(),
                       [](const auto& a, const auto& b) {
                         return a.second > b.second;
                       });
      const std::size_t shown =
          std::min<std::size_t>(rows.size(), static_cast<std::size_t>(top));
      if (shown > 0) {
        std::printf("  final counters (top %zu of %zu):\n", shown,
                    rows.size());
        for (std::size_t i = 0; i < shown; ++i) {
          std::printf("    %-40s %12.0f\n", rows[i].first.c_str(),
                      rows[i].second);
        }
      }
      for (const auto& [name, g] : run.gauges) {
        std::printf("  gauge %-36s %10.0f / %.0f\n", name.c_str(), g.first,
                    g.second);
      }
      for (const auto& [name, h] : run.histograms) {
        std::printf("  histogram %-32s n=%-8.0f mean=%.4g\n", name.c_str(),
                    h.first, h.first > 0 ? h.second / h.first : 0.0);
      }
    }
  }

 private:
  void merge_metrics(RunStreamState& run, const JsonValue& doc) {
    if (const JsonValue* counters = doc.find("counters")) {
      for (const auto& [name, value] : counters->object) {
        run.counters[name] = value.number;
      }
    }
    if (const JsonValue* gauges = doc.find("gauges")) {
      for (const auto& [name, g] : gauges->object) {
        run.gauges[name] = {g.number_or("value", 0.0),
                            g.number_or("high_water", 0.0)};
      }
    }
    if (const JsonValue* histograms = doc.find("histograms")) {
      for (const auto& [name, h] : histograms->object) {
        run.histograms[name] = {h.number_or("count", 0.0),
                                h.number_or("sum", 0.0)};
      }
    }
  }

  void consume_run_state(const JsonValue& state) {
    RunStreamState& run =
        runs_[static_cast<std::uint32_t>(state.number_or("run", 0.0))];
    run.seed = state.number_or("seed", run.seed);
    run.events = state.number_or("events", run.events);
    run.digest = state.string_or("digest", run.digest);
    run.last_ts_us = static_cast<std::int64_t>(
        state.number_or("ts_us", static_cast<double>(run.last_ts_us)));
    run.stream_dropped = state.number_or("stream_dropped", run.stream_dropped);
    const std::string s = state.string_or("state", "");
    if (s == "running") run.begun = true;
    if (s == "finished") run.begun = run.ended = true;
    merge_metrics(run, state);
  }

  std::map<std::uint32_t, RunStreamState> runs_;
  std::size_t lines_ = 0;
};

int summarize_jsonl(const std::string& text, int top, bool strict) {
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t runs_seen = 0;
  std::size_t sweeps_seen = 0;
  std::size_t skipped = 0;
  StreamSummary stream;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    if (!spider::telemetry::parse_json(line, doc, &error)) {
      std::fprintf(stderr, "line %zu: parse error: %s\n", line_no,
                   error.c_str());
      return 1;
    }
    const std::string schema = doc.string_or("schema", "");
    if (schema == spider::telemetry::kStreamSchema) {
      stream.consume(doc);
      stream.count_line();
      continue;
    }
    // Unknown schemas are skipped, not fatal: consumers of either schema
    // must tolerate lines (and keys) they don't know.
    if (schema != spider::telemetry::kRunReportSchema) {
      std::fprintf(stderr, "line %zu: skipping unknown schema \"%s\"\n",
                   line_no, schema.c_str());
      ++skipped;
      continue;
    }
    const std::string kind = doc.string_or("kind", "");
    if (kind == "run") {
      ++runs_seen;
      std::uint64_t samples = 0;
      if (const JsonValue* counters = doc.find("counters")) {
        samples = static_cast<std::uint64_t>(
            counters->number_or("driver.joins", 0.0));
      }
      std::printf("run   %-20s #%-3.0f seed=%-6.0f events=%-9.0f "
                  "joins=%llu digest=%s\n",
                  doc.string_or("label", "?").c_str(),
                  doc.number_or("run", 0.0), doc.number_or("seed", 0.0),
                  doc.number_or("events", 0.0),
                  static_cast<unsigned long long>(samples),
                  doc.string_or("digest", "?").c_str());
    } else if (kind == "sweep") {
      ++sweeps_seen;
      std::printf("sweep %-20s runs=%-3.0f combined_digest=%s\n",
                  doc.string_or("label", "?").c_str(),
                  doc.number_or("runs", 0.0),
                  doc.string_or("combined_digest", "?").c_str());
      if (const JsonValue* merged = doc.find("merged")) {
        if (const JsonValue* counters = merged->find("counters")) {
          print_counters(*counters, top);
          print_channel_table(*counters);
        }
        if (const JsonValue* gauges = merged->find("gauges")) {
          print_gauges(*gauges);
        }
        if (const JsonValue* histograms = merged->find("histograms")) {
          print_histograms(*histograms);
        }
      }
      if (const JsonValue* process = doc.find("process")) {
        if (const JsonValue* counters = process->find("counters")) {
          for (const auto& [name, value] : counters->object) {
            if (value.number != 0.0) {
              std::printf("  process %-30s %12.0f\n", name.c_str(),
                          value.number);
            }
          }
        }
      }
    } else {
      std::fprintf(stderr, "line %zu: skipping unknown kind \"%s\"\n",
                   line_no, kind.c_str());
      ++skipped;
    }
  }
  if (runs_seen == 0 && sweeps_seen == 0 && stream.lines_consumed() == 0) {
    std::fprintf(stderr, "no telemetry lines found\n");
    return 1;
  }
  if (stream.lines_consumed() > 0) stream.print(top);
  std::printf("%zu run line(s), %zu sweep block(s), %zu stream line(s)",
              runs_seen, sweeps_seen, stream.lines_consumed());
  if (skipped > 0) std::printf(", %zu skipped", skipped);
  std::printf("\n");
  if (strict && stream.total_drops() > 0.0) {
    std::fprintf(stderr, "--strict: %.0f dropped record(s) in the stream\n",
                 stream.total_drops());
    return 3;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Chrome trace mode

int summarize_trace(const JsonValue& doc, int top, bool strict) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "no traceEvents array\n");
    return 1;
  }
  struct SpanStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
  };
  struct CounterStats {
    std::uint64_t samples = 0;
    double min_v = 0.0;
    double max_v = 0.0;
    double last_v = 0.0;
  };
  std::map<std::string, SpanStats> spans;    // "category/name"
  std::map<std::string, std::uint64_t> instants;
  std::map<std::string, CounterStats> counters;  // "category/name[id]"
  std::map<std::uint32_t, std::string> tracks;
  std::int64_t first_ts = 0;
  std::int64_t last_ts = 0;
  bool any_ts = false;
  for (const JsonValue& ev : events->array) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") {
      if (const JsonValue* args = ev.find("args")) {
        tracks[static_cast<std::uint32_t>(ev.number_or("tid", 0.0))] =
            args->string_or("name", "?");
      }
      continue;
    }
    const double ts = ev.number_or("ts", 0.0);
    const double dur = ev.number_or("dur", 0.0);
    if (!any_ts || static_cast<std::int64_t>(ts) < first_ts) {
      first_ts = static_cast<std::int64_t>(ts);
    }
    if (!any_ts || static_cast<std::int64_t>(ts + dur) > last_ts) {
      last_ts = static_cast<std::int64_t>(ts + dur);
    }
    any_ts = true;
    const std::string key =
        ev.string_or("cat", "?") + "/" + ev.string_or("name", "?");
    if (ph == "X") {
      SpanStats& s = spans[key];
      if (s.count == 0 || dur < s.min_us) s.min_us = dur;
      if (s.count == 0 || dur > s.max_us) s.max_us = dur;
      ++s.count;
      s.total_us += dur;
    } else if (ph == "i") {
      ++instants[key];
    } else if (ph == "C") {
      // Counter series are keyed per "id" (one series per AP, say); the
      // sampled value is the single integer arg the recorder emits.
      std::string ckey = key;
      const std::string id = ev.string_or("id", "");
      if (!id.empty()) ckey += "[" + id + "]";
      double value = 0.0;
      if (const JsonValue* args = ev.find("args")) {
        value = args->number_or("value", 0.0);
      }
      CounterStats& c = counters[ckey];
      if (c.samples == 0 || value < c.min_v) c.min_v = value;
      if (c.samples == 0 || value > c.max_v) c.max_v = value;
      ++c.samples;
      c.last_v = value;
    }
  }
  if (any_ts) {
    std::printf("trace window: %.3f s .. %.3f s (%.3f s)\n",
                static_cast<double>(first_ts) / 1e6,
                static_cast<double>(last_ts) / 1e6,
                static_cast<double>(last_ts - first_ts) / 1e6);
  }
  if (!tracks.empty()) {
    std::printf("tracks:");
    for (const auto& [tid, name] : tracks) {
      std::printf(" %u=%s", static_cast<unsigned>(tid), name.c_str());
    }
    std::printf("\n");
  }
  if (!spans.empty()) {
    std::printf("spans (cat/name, durations in ms):\n");
    std::printf("  %-28s %8s %10s %10s %10s %10s\n", "span", "count", "total",
                "mean", "min", "max");
    std::vector<std::pair<std::string, SpanStats>> rows(spans.begin(),
                                                        spans.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.total_us > b.second.total_us;
                     });
    const std::size_t shown =
        std::min<std::size_t>(rows.size(), static_cast<std::size_t>(top));
    for (std::size_t i = 0; i < shown; ++i) {
      const SpanStats& s = rows[i].second;
      std::printf("  %-28s %8llu %10.2f %10.2f %10.2f %10.2f\n",
                  rows[i].first.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_us / 1e3,
                  s.total_us / 1e3 / static_cast<double>(s.count),
                  s.min_us / 1e3, s.max_us / 1e3);
    }
  }
  if (!instants.empty()) {
    std::printf("instants:\n");
    for (const auto& [name, count] : instants) {
      std::printf("  %-28s %8llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  if (!counters.empty()) {
    std::printf("counters (samples, value range, final):\n");
    std::printf("  %-32s %8s %10s %10s %10s\n", "counter", "samples", "min",
                "max", "last");
    for (const auto& [name, c] : counters) {
      std::printf("  %-32s %8llu %10.0f %10.0f %10.0f\n", name.c_str(),
                  static_cast<unsigned long long>(c.samples), c.min_v,
                  c.max_v, c.last_v);
    }
  }
  // Events overwritten by the recorder's bounded ring — the exported file
  // holds only the most recent window when this is nonzero.
  const double dropped = doc.number_or("droppedEvents", 0.0);
  if (dropped > 0.0) {
    std::printf("dropped events (ring overwrites): %.0f\n", dropped);
  }
  if (strict && dropped > 0.0) {
    std::fprintf(stderr,
                 "--strict: %.0f event(s) overwritten; raise trace_capacity\n",
                 dropped);
    return 3;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --follow: tail a spider-serve socket

int follow_socket(const char* path, int top, bool strict) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "cannot create socket\n");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (std::strlen(path) >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long\n");
    ::close(fd);
    return 1;
  }
  std::memcpy(addr.sun_path, path, std::strlen(path) + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "cannot connect to %s (is spider-serve running?)\n",
                 path);
    ::close(fd);
    return 1;
  }
  const char request[] = "{\"cmd\":\"follow\"}\n";
  if (::send(fd, request, sizeof(request) - 1, 0) < 0) {
    std::fprintf(stderr, "cannot send follow request\n");
    ::close(fd);
    return 1;
  }

  StreamSummary stream;
  std::string buffer;
  char chunk[8192];
  bool snapshot_seen = false;
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      JsonValue doc;
      if (!spider::telemetry::parse_json(line, doc)) continue;
      const std::string kind = doc.string_or("kind", "");
      stream.consume(doc);
      if (kind == "snapshot") {
        snapshot_seen = true;
        const JsonValue* runs = doc.find("runs");
        std::printf("connected: %zu run(s) known to the server\n",
                    runs != nullptr ? runs->array.size() : 0);
        std::fflush(stdout);
        continue;
      }
      stream.count_line();
      // Live one-liner per streamed record so mid-run progress is visible.
      std::printf("[run %.0f] seq %.0f t=%.3fs %s", doc.number_or("run", 0.0),
                  doc.number_or("seq", 0.0),
                  doc.number_or("ts_us", 0.0) / 1e6, kind.c_str());
      if (kind == "metrics") {
        std::size_t changed = 0;
        for (const char* section : {"counters", "gauges", "histograms"}) {
          if (const JsonValue* group = doc.find(section)) {
            changed += group->object.size();
          }
        }
        std::printf(" (%zu changed)", changed);
      } else if (kind == "span") {
        std::printf(" %s/%s dur=%.3fms", doc.string_or("cat", "?").c_str(),
                    doc.string_or("name", "?").c_str(),
                    doc.number_or("dur_us", 0.0) / 1e3);
      } else if (kind == "instant" || kind == "counter_sample") {
        std::printf(" %s/%s", doc.string_or("cat", "?").c_str(),
                    doc.string_or("name", "?").c_str());
      } else if (kind == "run_end") {
        std::printf(" digest=%s events=%.0f dropped=%.0f/%.0f",
                    doc.string_or("digest", "?").c_str(),
                    doc.number_or("events", 0.0),
                    doc.number_or("stream_dropped", 0.0),
                    doc.number_or("trace_dropped", 0.0));
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // server hung up (or shut down) — summarize and exit
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::printf("stream closed after %zu line(s)\n", stream.lines_consumed());
  stream.print(top);
  if (!snapshot_seen && stream.lines_consumed() == 0) {
    std::fprintf(stderr, "no stream data received\n");
    return 1;
  }
  if (strict && stream.total_drops() > 0.0) {
    std::fprintf(stderr, "--strict: %.0f dropped record(s) in the stream\n",
                 stream.total_drops());
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* follow = nullptr;
  int top = 12;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top = std::atoi(argv[i] + 6);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--follow") == 0 && i + 1 < argc) {
      follow = argv[++i];
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if ((path == nullptr && follow == nullptr) || top <= 0) {
    std::fprintf(stderr,
                 "usage: spider-trace <telemetry.jsonl | stream.jsonl | "
                 "trace.json> [--top N] [--strict]\n"
                 "       spider-trace --follow <socket> [--top N] "
                 "[--strict]\n");
    return 2;
  }
  if (follow != nullptr) return follow_socket(follow, top, strict);
  bool ok = false;
  const std::string text = read_file(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  // A Chrome trace is one JSON object with "traceEvents"; everything else
  // that parses line-by-line is treated as JSONL (run-report or stream).
  JsonValue doc;
  if (spider::telemetry::parse_json(text, doc, nullptr) &&
      doc.find("traceEvents") != nullptr) {
    return summarize_trace(doc, top, strict);
  }
  return summarize_jsonl(text, top, strict);
}
