// spider-trace — terminal summaries of the repo's telemetry artifacts.
//
// Accepts either artifact the benches emit:
//   * a spider-telemetry-v1 JSONL file (from --telemetry): prints each
//     sweep's top counters, gauge levels/peaks, histogram summaries with
//     log-bucket quantiles, and a per-channel dwell/traffic table;
//   * a Chrome trace JSON file (from --trace): prints per-(category, name)
//     span statistics, instant-event counts, counter-track statistics
//     (samples / value range / final value, per series id), and the named
//     tracks.
//
// Usage: spider-trace <file> [--top N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"

namespace {

using spider::telemetry::Histogram;
using spider::telemetry::JsonValue;

// ---------------------------------------------------------------------------
// Shared helpers

std::string read_file(const char* path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

// Nearest-bucket quantile over the sparse (index, count) pairs a JSONL
// histogram carries; mirrors Histogram::quantile but works on the export.
double bucket_quantile(const JsonValue& buckets, double q, double min_v,
                       double max_v) {
  std::uint64_t total = 0;
  for (const JsonValue& pair : buckets.array) {
    if (pair.array.size() == 2) {
      total += static_cast<std::uint64_t>(pair.array[1].number);
    }
  }
  if (total == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t cum = 0;
  for (const JsonValue& pair : buckets.array) {
    if (pair.array.size() != 2) continue;
    const auto index = static_cast<std::size_t>(pair.array[0].number);
    cum += static_cast<std::uint64_t>(pair.array[1].number);
    if (cum > target) {
      if (index == 0) return min_v;
      if (index >= Histogram::kBuckets - 1) return max_v;
      return Histogram::bucket_upper_bound(index);
    }
  }
  return max_v;
}

// ---------------------------------------------------------------------------
// spider-telemetry-v1 JSONL mode

void print_counters(const JsonValue& counters, int top) {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  for (const auto& [name, value] : counters.object) {
    rows.emplace_back(name, static_cast<std::uint64_t>(value.number));
  }
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  const std::size_t shown =
      std::min<std::size_t>(rows.size(), static_cast<std::size_t>(top));
  std::printf("  counters (top %zu of %zu):\n", shown, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("    %-40s %12llu\n", rows[i].first.c_str(),
                static_cast<unsigned long long>(rows[i].second));
  }
}

void print_gauges(const JsonValue& gauges) {
  if (gauges.object.empty()) return;
  std::printf("  gauges (level / high-water):\n");
  for (const auto& [name, g] : gauges.object) {
    std::printf("    %-40s %10.0f / %.0f\n", name.c_str(),
                g.number_or("value", 0.0), g.number_or("high_water", 0.0));
  }
}

void print_histograms(const JsonValue& histograms) {
  if (histograms.object.empty()) return;
  std::printf("  histograms:\n");
  for (const auto& [name, h] : histograms.object) {
    const double count = h.number_or("count", 0.0);
    const double sum = h.number_or("sum", 0.0);
    const double min_v = h.number_or("min", 0.0);
    const double max_v = h.number_or("max", 0.0);
    double p50 = 0.0;
    double p90 = 0.0;
    if (const JsonValue* buckets = h.find("buckets")) {
      p50 = bucket_quantile(*buckets, 0.5, min_v, max_v);
      p90 = bucket_quantile(*buckets, 0.9, min_v, max_v);
    }
    std::printf(
        "    %-32s n=%-7.0f mean=%-9.4g p50~%-9.4g p90~%-9.4g max=%.4g\n",
        name.c_str(), count, count > 0 ? sum / count : 0.0, p50, p90, max_v);
  }
}

// The per-channel table: dwell time (driver.dwell_us.chN) against the frames
// the medium carried there — the figure-level "where did airtime go" view.
void print_channel_table(const JsonValue& counters) {
  struct Row {
    double dwell_us = 0.0;
    double sent = 0.0;
    double delivered = 0.0;
    bool any = false;
  };
  std::map<int, Row> rows;
  const auto channel_of = [](const std::string& name,
                             const char* prefix) -> int {
    const std::size_t len = std::strlen(prefix);
    if (name.compare(0, len, prefix) != 0) return -1;
    return std::atoi(name.c_str() + len);
  };
  for (const auto& [name, value] : counters.object) {
    if (int ch = channel_of(name, "driver.dwell_us.ch"); ch >= 0) {
      rows[ch].dwell_us = value.number;
      rows[ch].any = true;
    } else if (ch = channel_of(name, "phy.frames_sent.ch"); ch >= 0) {
      rows[ch].sent = value.number;
      rows[ch].any = true;
    } else if (ch = channel_of(name, "phy.frames_delivered.ch"); ch >= 0) {
      rows[ch].delivered = value.number;
      rows[ch].any = true;
    }
  }
  if (rows.empty()) return;
  double total_dwell = 0.0;
  for (const auto& [ch, row] : rows) total_dwell += row.dwell_us;
  std::printf("  per-channel (dwell from driver, frames from medium):\n");
  std::printf("    %3s %12s %7s %12s %12s\n", "ch", "dwell_s", "share",
              "sent", "delivered");
  for (const auto& [ch, row] : rows) {
    if (!row.any) continue;
    std::printf("    %3d %12.3f %6.1f%% %12.0f %12.0f\n", ch,
                row.dwell_us / 1e6,
                total_dwell > 0.0 ? 100.0 * row.dwell_us / total_dwell : 0.0,
                row.sent, row.delivered);
  }
}

int summarize_jsonl(const std::string& text, int top) {
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t runs_seen = 0;
  std::size_t sweeps_seen = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    if (!spider::telemetry::parse_json(line, doc, &error)) {
      std::fprintf(stderr, "line %zu: parse error: %s\n", line_no,
                   error.c_str());
      return 1;
    }
    const std::string schema = doc.string_or("schema", "");
    if (schema != spider::telemetry::kRunReportSchema) {
      std::fprintf(stderr, "line %zu: unexpected schema \"%s\"\n", line_no,
                   schema.c_str());
      return 1;
    }
    const std::string kind = doc.string_or("kind", "");
    if (kind == "run") {
      ++runs_seen;
      std::uint64_t samples = 0;
      if (const JsonValue* counters = doc.find("counters")) {
        samples = static_cast<std::uint64_t>(
            counters->number_or("driver.joins", 0.0));
      }
      std::printf("run   %-20s #%-3.0f seed=%-6.0f events=%-9.0f "
                  "joins=%llu digest=%s\n",
                  doc.string_or("label", "?").c_str(),
                  doc.number_or("run", 0.0), doc.number_or("seed", 0.0),
                  doc.number_or("events", 0.0),
                  static_cast<unsigned long long>(samples),
                  doc.string_or("digest", "?").c_str());
    } else if (kind == "sweep") {
      ++sweeps_seen;
      std::printf("sweep %-20s runs=%-3.0f combined_digest=%s\n",
                  doc.string_or("label", "?").c_str(),
                  doc.number_or("runs", 0.0),
                  doc.string_or("combined_digest", "?").c_str());
      if (const JsonValue* merged = doc.find("merged")) {
        if (const JsonValue* counters = merged->find("counters")) {
          print_counters(*counters, top);
          print_channel_table(*counters);
        }
        if (const JsonValue* gauges = merged->find("gauges")) {
          print_gauges(*gauges);
        }
        if (const JsonValue* histograms = merged->find("histograms")) {
          print_histograms(*histograms);
        }
      }
      if (const JsonValue* process = doc.find("process")) {
        if (const JsonValue* counters = process->find("counters")) {
          for (const auto& [name, value] : counters->object) {
            if (value.number != 0.0) {
              std::printf("  process %-30s %12.0f\n", name.c_str(),
                          value.number);
            }
          }
        }
      }
    } else {
      std::fprintf(stderr, "line %zu: unknown kind \"%s\"\n", line_no,
                   kind.c_str());
      return 1;
    }
  }
  if (runs_seen == 0 && sweeps_seen == 0) {
    std::fprintf(stderr, "no telemetry lines found\n");
    return 1;
  }
  std::printf("%zu run line(s), %zu sweep block(s)\n", runs_seen, sweeps_seen);
  return 0;
}

// ---------------------------------------------------------------------------
// Chrome trace mode

int summarize_trace(const JsonValue& doc, int top) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "no traceEvents array\n");
    return 1;
  }
  struct SpanStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
  };
  struct CounterStats {
    std::uint64_t samples = 0;
    double min_v = 0.0;
    double max_v = 0.0;
    double last_v = 0.0;
  };
  std::map<std::string, SpanStats> spans;    // "category/name"
  std::map<std::string, std::uint64_t> instants;
  std::map<std::string, CounterStats> counters;  // "category/name[id]"
  std::map<std::uint32_t, std::string> tracks;
  std::int64_t first_ts = 0;
  std::int64_t last_ts = 0;
  bool any_ts = false;
  for (const JsonValue& ev : events->array) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") {
      if (const JsonValue* args = ev.find("args")) {
        tracks[static_cast<std::uint32_t>(ev.number_or("tid", 0.0))] =
            args->string_or("name", "?");
      }
      continue;
    }
    const double ts = ev.number_or("ts", 0.0);
    const double dur = ev.number_or("dur", 0.0);
    if (!any_ts || static_cast<std::int64_t>(ts) < first_ts) {
      first_ts = static_cast<std::int64_t>(ts);
    }
    if (!any_ts || static_cast<std::int64_t>(ts + dur) > last_ts) {
      last_ts = static_cast<std::int64_t>(ts + dur);
    }
    any_ts = true;
    const std::string key =
        ev.string_or("cat", "?") + "/" + ev.string_or("name", "?");
    if (ph == "X") {
      SpanStats& s = spans[key];
      if (s.count == 0 || dur < s.min_us) s.min_us = dur;
      if (s.count == 0 || dur > s.max_us) s.max_us = dur;
      ++s.count;
      s.total_us += dur;
    } else if (ph == "i") {
      ++instants[key];
    } else if (ph == "C") {
      // Counter series are keyed per "id" (one series per AP, say); the
      // sampled value is the single integer arg the recorder emits.
      std::string ckey = key;
      const std::string id = ev.string_or("id", "");
      if (!id.empty()) ckey += "[" + id + "]";
      double value = 0.0;
      if (const JsonValue* args = ev.find("args")) {
        value = args->number_or("value", 0.0);
      }
      CounterStats& c = counters[ckey];
      if (c.samples == 0 || value < c.min_v) c.min_v = value;
      if (c.samples == 0 || value > c.max_v) c.max_v = value;
      ++c.samples;
      c.last_v = value;
    }
  }
  if (any_ts) {
    std::printf("trace window: %.3f s .. %.3f s (%.3f s)\n",
                static_cast<double>(first_ts) / 1e6,
                static_cast<double>(last_ts) / 1e6,
                static_cast<double>(last_ts - first_ts) / 1e6);
  }
  if (!tracks.empty()) {
    std::printf("tracks:");
    for (const auto& [tid, name] : tracks) {
      std::printf(" %u=%s", static_cast<unsigned>(tid), name.c_str());
    }
    std::printf("\n");
  }
  if (!spans.empty()) {
    std::printf("spans (cat/name, durations in ms):\n");
    std::printf("  %-28s %8s %10s %10s %10s %10s\n", "span", "count", "total",
                "mean", "min", "max");
    std::vector<std::pair<std::string, SpanStats>> rows(spans.begin(),
                                                        spans.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.total_us > b.second.total_us;
                     });
    const std::size_t shown =
        std::min<std::size_t>(rows.size(), static_cast<std::size_t>(top));
    for (std::size_t i = 0; i < shown; ++i) {
      const SpanStats& s = rows[i].second;
      std::printf("  %-28s %8llu %10.2f %10.2f %10.2f %10.2f\n",
                  rows[i].first.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_us / 1e3,
                  s.total_us / 1e3 / static_cast<double>(s.count),
                  s.min_us / 1e3, s.max_us / 1e3);
    }
  }
  if (!instants.empty()) {
    std::printf("instants:\n");
    for (const auto& [name, count] : instants) {
      std::printf("  %-28s %8llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  if (!counters.empty()) {
    std::printf("counters (samples, value range, final):\n");
    std::printf("  %-32s %8s %10s %10s %10s\n", "counter", "samples", "min",
                "max", "last");
    for (const auto& [name, c] : counters) {
      std::printf("  %-32s %8llu %10.0f %10.0f %10.0f\n", name.c_str(),
                  static_cast<unsigned long long>(c.samples), c.min_v,
                  c.max_v, c.last_v);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  int top = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top = std::atoi(argv[i] + 6);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr || top <= 0) {
    std::fprintf(stderr,
                 "usage: spider-trace <telemetry.jsonl | trace.json> "
                 "[--top N]\n");
    return 2;
  }
  bool ok = false;
  const std::string text = read_file(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  // A Chrome trace is one JSON object with "traceEvents"; everything else
  // that parses line-by-line is treated as run-report JSONL.
  JsonValue doc;
  if (spider::telemetry::parse_json(text, doc, nullptr) &&
      doc.find("traceEvents") != nullptr) {
    return summarize_trace(doc, top);
  }
  return summarize_jsonl(text, top);
}
