// Ablation — dynamic channel selection (Section 4.8 future work).
// Spider's published prototype camps on a statically chosen channel; the
// obvious extension re-camps wherever the (history-weighted) AP supply is
// best, paying brief scan excursions. We compare, over drives where the
// per-channel supply varies by layout:
//   * static channel 1 (may be a poor pick for this layout),
//   * static best channel chosen by an oracle (per-seed upper bound),
//   * dynamic selection starting from channel 1.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

// Per-seed throughput for one Spider configuration across all seeds, run as
// one parallel sweep (seed order preserved).
std::vector<double> run_all(const std::vector<std::uint64_t>& seeds,
                            core::SpiderConfig sc) {
  const auto runs =
      bench::run_seed_replications(seeds, [&sc](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        cfg.spider = sc;
        return cfg;
      });
  std::vector<double> kBps;
  kBps.reserve(runs.size());
  for (const auto& r : runs) kBps.push_back(r.avg_throughput_kBps());
  return kBps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_dynamic_channel",
                      "DESIGN.md ablation — static vs. dynamic channel");
  std::printf("  %-6s %-12s %-12s %-12s %-14s\n", "seed", "static ch1",
              "oracle best", "dynamic", "dynamic/oracle");

  const std::vector<std::uint64_t> seeds = {7, 17, 27, 37, 47};
  const auto ch1 = run_all(seeds, core::single_channel_multi_ap(1));
  const auto ch6 = run_all(seeds, core::single_channel_multi_ap(6));
  const auto ch11 = run_all(seeds, core::single_channel_multi_ap(11));
  const auto dyn = run_all(seeds, core::dynamic_channel_multi_ap(1));

  trace::OnlineStats ratio;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const double best = std::max({ch1[i], ch6[i], ch11[i]});
    ratio.add(best > 0 ? dyn[i] / best : 1.0);
    std::printf("  %-6llu %-12.1f %-12.1f %-12.1f %-14.2f\n",
                static_cast<unsigned long long>(seeds[i]), ch1[i], best,
                dyn[i], best > 0 ? dyn[i] / best : 1.0);
  }
  std::printf("\n  mean dynamic/oracle ratio: %.2f\n", ratio.mean());
  std::printf(
      "\nexpected shape: dynamic recovers a large share of the per-layout\n"
      "oracle's throughput without knowing the layout, and never does much\n"
      "worse than the naive static pick.\n");
  return 0;
}
