// Ablation — dynamic channel selection (Section 4.8 future work).
// Spider's published prototype camps on a statically chosen channel; the
// obvious extension re-camps wherever the (history-weighted) AP supply is
// best, paying brief scan excursions. We compare, over drives where the
// per-channel supply varies by layout:
//   * static channel 1 (may be a poor pick for this layout),
//   * static best channel chosen by an oracle (per-seed upper bound),
//   * dynamic selection starting from channel 1.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

double run(std::uint64_t seed, core::SpiderConfig sc) {
  auto cfg = spider::bench::amherst_drive(seed);
  cfg.spider = sc;
  return core::Experiment(std::move(cfg)).run().avg_throughput_kBps();
}

}  // namespace

int main() {
  bench::print_header("ablation_dynamic_channel",
                      "DESIGN.md ablation — static vs. dynamic channel");
  std::printf("  %-6s %-12s %-12s %-12s %-14s\n", "seed", "static ch1",
              "oracle best", "dynamic", "dynamic/oracle");

  trace::OnlineStats ratio;
  for (std::uint64_t seed : {7ULL, 17ULL, 27ULL, 37ULL, 47ULL}) {
    const double ch1 = run(seed, core::single_channel_multi_ap(1));
    double best = ch1;
    for (net::ChannelId ch : {6, 11}) {
      best = std::max(best, run(seed, core::single_channel_multi_ap(ch)));
    }
    const double dynamic = run(seed, core::dynamic_channel_multi_ap(1));
    ratio.add(best > 0 ? dynamic / best : 1.0);
    std::printf("  %-6llu %-12.1f %-12.1f %-12.1f %-14.2f\n",
                static_cast<unsigned long long>(seed), ch1, best, dynamic,
                best > 0 ? dynamic / best : 1.0);
  }
  std::printf("\n  mean dynamic/oracle ratio: %.2f\n", ratio.mean());
  std::printf(
      "\nexpected shape: dynamic recovers a large share of the per-layout\n"
      "oracle's throughput without knowing the layout, and never does much\n"
      "worse than the naive static pick.\n");
  return 0;
}
