// Ablation — 802.11b rate adaptation at the cell edge. Fixed-11 Mb/s
// downlinks die at the nominal range; Minstrel-lite adaptation trades
// airtime for reach, extending the serviceable cell and smoothing the
// fade-out a vehicular client sees on every encounter exit.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

double mean_goodput_at(double distance_m, bool auto_rate,
                       const std::vector<std::uint64_t>& seeds) {
  const auto runs = bench::run_seed_replications(
      seeds, [distance_m, auto_rate](std::uint64_t seed) {
        core::ExperimentConfig cfg =
            bench::static_lab(seed, 1, 1, 4e6, sim::Time::seconds(60));
        cfg.medium.base_loss = 0.1;
        cfg.medium.edge_degradation = true;  // vehicular-style fringe
        cfg.aps[0].position = {distance_m, 0.0};
        cfg.ap_mac.auto_rate = auto_rate;
        cfg.client_auto_rate = auto_rate;
        cfg.spider = core::single_channel_multi_ap(1);
        return cfg;
      });
  trace::OnlineStats kbps;
  for (const auto& r : runs) kbps.add(r.avg_throughput_kbps());
  return kbps.mean();
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_rate_adapt",
                      "substrate ablation — fixed 11 Mb/s vs. auto-rate");
  std::printf("(static client at increasing distance from one 4 Mbps AP;\n"
              " nominal range 100 m, edge degradation from 75 m)\n\n");
  std::printf("  %-14s %-18s %-18s\n", "distance (m)", "fixed 11 Mb/s",
              "auto-rate (kb/s)");
  const std::vector<std::uint64_t> seeds = {3, 5, 9};
  for (double d : {40.0, 70.0, 85.0, 92.0, 98.0, 104.0}) {
    std::printf("  %-14.0f %-18.0f %-18.0f\n", d,
                mean_goodput_at(d, false, seeds),
                mean_goodput_at(d, true, seeds));
  }
  std::printf(
      "\nexpected shape: identical well inside the cell (adaptation stays\n"
      "at 11 Mb/s); in the fade zone the fixed rate collapses while\n"
      "auto-rate keeps a usable (slower) data link. The association itself\n"
      "is still gated at the nominal rate (our management frames are not\n"
      "rate-scaled — a documented simplification), so the joinable cell\n"
      "does not grow; the win is a graceful data-plane fade-out.\n");
  return 0;
}
