// Fig. 12 — CDF of the join delay (association + DHCP) for six scheduling /
// timeout / interface-count policies. Single channel with reduced timeouts
// joins fastest; cutting the interface budget to one or spreading the
// schedule over channels pushes the CDF right.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

trace::EmpiricalCdf run_policy(core::SpiderConfig sc) {
  sc.join_give_up = sim::Time::seconds(15);
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  const auto runs =
      bench::run_seed_replications(seeds, [&sc](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        cfg.spider = sc;
        return cfg;
      });
  trace::EmpiricalCdf join;
  for (const auto& r : runs) {
    for (double d : r.joins.join_delay_sec.samples()) join.add(d);
  }
  return join;
}

core::SpiderConfig with_ifaces(core::SpiderConfig sc, int n) {
  sc.max_interfaces = n;
  sc.multi_ap = n > 1;
  return sc;
}

core::SpiderConfig with_timers(core::SpiderConfig sc,
                               dhcpd::DhcpClientConfig dhcp,
                               sim::Time link_timeout) {
  sc.dhcp = dhcp;
  sc.session.link_timeout = link_timeout;
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig12_join_policies",
                      "Fig. 12 — join-delay CDF per scheduling policy");

  const auto def = dhcpd::default_dhcp_timers();
  const auto fast = dhcpd::reduced_dhcp_timers(sim::Time::millis(200));
  const auto ll_def = sim::Time::millis(1000);
  const auto ll_fast = sim::Time::millis(100);

  struct Row {
    const char* label;
    core::SpiderConfig sc;
  };
  const Row rows[] = {
      {"1 iface, ch1 (100%), default TO",
       with_ifaces(with_timers(core::single_channel_multi_ap(1), def, ll_def),
                   1)},
      {"7 ifaces, ch1 (100%), default TO",
       with_timers(core::single_channel_multi_ap(1), def, ll_def)},
      {"7 ifaces, ch1 (100%), dhcp=200ms ll=100ms",
       with_timers(core::single_channel_multi_ap(1), fast, ll_fast)},
      {"7 ifaces, ch1(50%) ch6(50%), default TO",
       with_timers(core::multi_channel_multi_ap(sim::Time::millis(400), {1, 6}),
                   def, ll_def)},
      {"7 ifaces, 3 chans eq., default TO",
       with_timers(core::multi_channel_multi_ap(), def, ll_def)},
      {"7 ifaces, 3 chans eq., dhcp=200ms ll=100ms",
       with_timers(core::multi_channel_multi_ap(), fast, ll_fast)},
  };
  for (const auto& row : rows) {
    bench::print_cdf(row.label, run_policy(row.sc), 15.0, 16);
  }
  std::printf(
      "\nexpected shape: the single-channel reduced-timeout policy joins\n"
      "fastest; default timers and multi-channel schedules push the curves\n"
      "right (paper: multi-channel medians ~4-5 s).\n");
  return 0;
}
