// Table 3 — DHCP failure probability for different timeout configurations,
// with seven virtual interfaces. Reduced timers speed up the median join
// (Fig. 11) but roughly double the failure rate versus the default timers;
// switching among channels while joining pushes failures higher still.
#include <cmath>
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

void run_row(const char* label, bool three_channels,
             dhcpd::DhcpClientConfig timers) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27, 37};
  const auto runs = bench::run_seed_replications(
      seeds, [three_channels, &timers](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        core::SpiderConfig sc = three_channels
                                    ? core::multi_channel_multi_ap()
                                    : core::single_channel_multi_ap(1);
        sc.dhcp = timers;
        cfg.spider = sc;
        return cfg;
      });
  trace::OnlineStats failure_pct;
  for (const auto& r : runs) {
    if (r.joins.dhcp_failed_joins + r.joins.joins > 0) {
      failure_pct.add(100.0 * r.joins.dhcp_join_failure_rate());
    }
  }
  std::printf("  %-52s %5.1f%% +/- %4.1f%%\n", label, failure_pct.mean(),
              failure_pct.stddev());
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("table3_dhcp_failures",
                      "Table 3 — DHCP failure probability vs. timers");
  std::printf("(failure = an associated interface abandoned without ever\n"
              " obtaining a lease; 7 interfaces, 4 seeds)\n\n");

  run_row("Chan 1, linklayer 100ms, dhcp 600ms", false,
          dhcpd::reduced_dhcp_timers(sim::Time::millis(600)));
  run_row("Chan 1, linklayer 100ms, dhcp 400ms", false,
          dhcpd::reduced_dhcp_timers(sim::Time::millis(400)));
  run_row("Chan 1, linklayer 100ms, dhcp 200ms", false,
          dhcpd::reduced_dhcp_timers(sim::Time::millis(200)));
  run_row("3 chans, static 1/3, linklayer 100ms, dhcp 200ms", true,
          dhcpd::reduced_dhcp_timers(sim::Time::millis(200)));
  run_row("Chan 1, default timers", false, dhcpd::default_dhcp_timers());
  run_row("3 chans, static 1/3, default timers", true,
          dhcpd::default_dhcp_timers());

  std::printf(
      "\npaper's values: 23.0 / 27.1 / 28.2 / 23.6 / 13.5 / 21.8 %%\n"
      "expected shape: shorter timeouts raise the failure rate (roughly 2x\n"
      "default), and multi-channel schedules raise it for default timers.\n");
  return 0;
}
