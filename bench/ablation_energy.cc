// Ablation — energy cost of concurrency (Section 4.8 future work).
// State-based radio energy model: how much does each driver configuration
// pay per megabyte delivered, and how does the bill split across idle /
// receive / transmit / reset time? Multi-channel schedules pay resets and
// extra overhearing; the single-channel multi-AP configuration amortizes
// the (dominant) idle floor over far more bytes.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_energy",
                      "DESIGN.md ablation — energy per configuration");
  std::printf("(state-based model: idle 0.74 W, rx 0.90 W, tx 1.34 W,\n"
              " reset 0.74 W; Amherst drive, 3 seeds)\n\n");
  std::printf("  %-30s %-10s %-12s %-12s\n", "configuration", "joules",
              "J/MB", "switches");

  struct Row {
    const char* label;
    core::SpiderConfig sc;
    bool stock = false;
  };
  const Row rows[] = {
      {"Spider ch1 multi-AP", core::single_channel_multi_ap(1)},
      {"Spider ch1 single-AP", core::single_channel_single_ap(1)},
      {"Spider 3ch multi-AP", core::multi_channel_multi_ap()},
      {"Spider dynamic channel", core::dynamic_channel_multi_ap(1)},
      {"stock driver", core::SpiderConfig{}, true},
  };
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  for (const auto& row : rows) {
    const auto runs =
        bench::run_seed_replications(seeds, [&row](std::uint64_t seed) {
          auto cfg = bench::amherst_drive(seed);
          if (row.stock) {
            cfg.driver = core::DriverKind::kStock;
          } else {
            cfg.spider = row.sc;
          }
          return cfg;
        });
    trace::OnlineStats joules, jpm;
    std::uint64_t switches = 0;
    for (const auto& r : runs) {
      joules.add(r.client_joules);
      if (r.traffic.total_bytes > 0) jpm.add(r.joules_per_megabyte());
      switches += r.channel_switches;
    }
    std::printf("  %-30s %-10.0f %-12.1f %-12llu\n", row.label, joules.mean(),
                jpm.mean(), static_cast<unsigned long long>(switches / 3));
  }
  std::printf(
      "\nexpected shape: total joules are dominated by the idle floor and\n"
      "so are similar across configurations — but joules PER MEGABYTE vary\n"
      "by the throughput each configuration extracts: single-channel\n"
      "multi-AP is by far the most energy-efficient way to move bytes.\n");
  return 0;
}
