// Shared scaffolding for the reproduction benches: canonical deployments
// (an "Amherst-style" downtown area and a "Boston-style" denser one), the
// standard vehicle, config constructors, and CDF printing in the gnuplot-
// friendly two-column format each figure plots.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/configs.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "telemetry/stream_exporter.h"
#include "trace/stats.h"

namespace spider::bench {

// Telemetry export options shared by every bench binary:
//   --telemetry <path>   append one spider-telemetry-v1 JSONL block per sweep
//                        (inspect with `spider-trace <path>`);
//   --trace <path>       record the binary's *first* replication with the
//                        Chrome trace recorder and write the JSON there
//                        (load in Perfetto / chrome://tracing);
//   --stream <path>      stream every replication live as
//                        spider-telemetry-stream-v1 JSONL (inspect with
//                        `spider-trace <path>`; see DESIGN.md "Live
//                        telemetry plane").
// All also accept the --flag=value spelling.
struct TelemetryOptions {
  std::string telemetry_path;
  std::string trace_path;
  std::string stream_path;
};

inline TelemetryOptions& telemetry_options() {
  static TelemetryOptions options;
  return options;
}

// Parses the shared flags above; call first thing in main. Unknown
// arguments are ignored (benches have no other flags).
inline void parse_common_flags(int argc, char** argv) {
  TelemetryOptions& options = telemetry_options();
  const auto value_of = [&](const char* flag, int& i) -> const char* {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
    if (argv[i][len] == '=') return argv[i] + len + 1;
    if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of("--telemetry", i)) {
      options.telemetry_path = v;
    } else if (const char* v = value_of("--trace", i)) {
      options.trace_path = v;
    } else if (const char* v = value_of("--stream", i)) {
      options.stream_path = v;
    }
  }
}

// The binary's shared stream exporter, created on first use when --stream is
// set (nullptr otherwise). One exporter serves every sweep in the binary;
// its I/O thread outlives all runs and flushes the file sink at exit.
inline telemetry::StreamExporter* stream_exporter() {
  const TelemetryOptions& options = telemetry_options();
  if (options.stream_path.empty()) return nullptr;
  static telemetry::StreamExporter exporter;
  static const bool wired = [] {
    auto sink = std::make_shared<telemetry::FileStreamSink>(
        telemetry_options().stream_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "warning: could not open stream file %s\n",
                   telemetry_options().stream_path.c_str());
      return false;
    }
    exporter.add_sink(std::move(sink));
    return true;
  }();
  return wired ? &exporter : nullptr;
}

// Binary-wide run tags for --stream: configs materialize serially in
// submission order (core/sweep.cc), so consecutive tags are deterministic
// across worker counts and a multi-sweep bench never reuses a tag.
inline std::uint32_t next_stream_run_tag() {
  static std::uint32_t next = 1;
  return next++;
}

// Worker threads for bench sweeps: SPIDER_BENCH_THREADS if set (>0), else
// hardware concurrency. Per-seed results are bit-identical either way — the
// sweep determinism gate in tests/sweep_test.cc is what lets every bench
// default to parallel without perturbing a single reproduced number.
inline unsigned sweep_threads() {
  if (const char* env = std::getenv("SPIDER_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return 0;  // SweepRunner resolves 0 to hardware concurrency
}

// Replicates one scenario across seeds (one Simulator world per worker) and
// returns per-seed results in seed order, exactly as the old serial loops
// produced them. When --telemetry is set, every sweep appends its JSONL
// block under `label`; when --trace is set, the binary's first replication
// runs with the trace recorder on and its Chrome trace JSON lands at the
// given path.
inline std::vector<core::ExperimentResults> run_seed_replications(
    const std::vector<std::uint64_t>& seeds,
    const std::function<core::ExperimentConfig(std::uint64_t)>& make_config,
    const char* label = "sweep") {
  const TelemetryOptions& options = telemetry_options();
  static bool trace_written = false;
  const bool want_trace = !options.trace_path.empty() && !trace_written;
  std::size_t invocation = 0;
  core::SweepReport report = core::run_seed_sweep(
      seeds,
      [&](std::uint64_t seed) {
        core::ExperimentConfig cfg = make_config(seed);
        // Configs materialize serially in submission order, so invocation 0
        // is exactly run 0 of this sweep.
        if (want_trace && invocation == 0) cfg.trace_enabled = true;
        if (telemetry::StreamExporter* stream = stream_exporter()) {
          cfg.stream = stream;
          cfg.stream_run_tag = next_stream_run_tag();
        }
        ++invocation;
        return cfg;
      },
      sweep_threads());
  if (!options.telemetry_path.empty()) {
    if (!core::append_telemetry_jsonl(report, options.telemetry_path, label)) {
      std::fprintf(stderr, "warning: could not append telemetry to %s\n",
                   options.telemetry_path.c_str());
    }
  }
  if (want_trace && !report.runs.empty() &&
      !report.runs.front().trace_json.empty()) {
    if (std::FILE* f = std::fopen(options.trace_path.c_str(), "w")) {
      std::fwrite(report.runs.front().trace_json.data(), 1,
                  report.runs.front().trace_json.size(), f);
      std::fclose(f);
      trace_written = true;
    } else {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   options.trace_path.c_str());
    }
  }
  std::vector<core::ExperimentResults> results;
  results.reserve(report.runs.size());
  for (core::SweepRunResult& run : report.runs) {
    results.push_back(std::move(run.results));
  }
  return results;
}

// Downtown-core drive: ~0.35 km^2 area, 30 building sites (roughly doubled
// by clustering), rectangular loop at 10 m/s (the paper's town speeds).
inline core::ExperimentConfig amherst_drive(std::uint64_t seed,
                                            sim::Time duration =
                                                sim::Time::seconds(600)) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  sim::Rng rng(seed);
  auto deploy_rng = rng.fork("deploy");
  cfg.aps = mobility::area_deployment(700, 500, 30, deploy_rng);
  cfg.vehicle = mobility::Vehicle(mobility::Route::rectangle(600, 400), 10.0);
  return cfg;
}

// Boston-style: denser sites, bigger clusters, slightly faster drive.
inline core::ExperimentConfig boston_drive(std::uint64_t seed,
                                           sim::Time duration =
                                               sim::Time::seconds(600)) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  sim::Rng rng(seed ^ 0xB057);
  auto deploy_rng = rng.fork("deploy");
  mobility::DeploymentConfig dcfg;
  dcfg.cluster_fraction = 0.55;
  dcfg.backhaul_min_bps = 1.5e6;
  dcfg.backhaul_max_bps = 6e6;
  cfg.aps = mobility::area_deployment(800, 600, 45, deploy_rng, dcfg);
  cfg.vehicle = mobility::Vehicle(mobility::Route::rectangle(700, 500), 12.0);
  return cfg;
}

// Static-lab world with `n_aps` APs near the client (micro-benchmarks).
inline core::ExperimentConfig static_lab(std::uint64_t seed, int n_aps,
                                         net::ChannelId channel,
                                         double backhaul_bps,
                                         sim::Time duration =
                                             sim::Time::seconds(120)) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  cfg.medium.base_loss = 0.05;
  cfg.medium.edge_degradation = false;
  cfg.vehicle = mobility::Vehicle(mobility::Route::straight(1.0), 0.0);
  for (int i = 0; i < n_aps; ++i) {
    mobility::ApDescriptor d;
    d.ssid = "lab-" + std::to_string(i);
    d.mac = net::MacAddress::from_index(0xA0 + static_cast<std::uint32_t>(i));
    d.subnet = net::Ipv4Address{(10u << 24) |
                                (static_cast<std::uint32_t>(0xA0 + i) << 8)};
    d.position = {10.0 + 2.0 * i, 0.0};
    d.channel = channel;
    d.backhaul_bps = backhaul_bps;
    d.dhcp_offer_min = sim::Time::millis(50);
    d.dhcp_offer_max = sim::Time::millis(150);
    cfg.aps.push_back(d);
  }
  return cfg;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

// Prints a CDF as "x F(x)" rows, one series per call. Labels are plain
// C strings (every caller passes a literal or a local char buffer); taking
// std::string here used to construct and destroy a throwaway heap string on
// every row of every figure's inner loop.
inline void print_cdf(const char* label, const trace::EmpiricalCdf& cdf,
                      double x_max, int points = 16) {
  std::printf("# series: %s (%zu samples)\n", label, cdf.count());
  if (cdf.empty()) {
    std::printf("#   (empty)\n");
    return;
  }
  for (const auto& [x, f] : cdf.curve(points, 0.0, x_max)) {
    std::printf("  %10.2f  %6.3f\n", x, f);
  }
}

inline void print_cdf_summary(const char* label,
                              const trace::EmpiricalCdf& cdf) {
  if (cdf.empty()) {
    std::printf("  %-38s  (no samples)\n", label);
    return;
  }
  std::printf("  %-38s median=%7.2f  p90=%7.2f  n=%zu\n", label,
              cdf.median(), cdf.quantile(0.9), cdf.count());
}

}  // namespace spider::bench
