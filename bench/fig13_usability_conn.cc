// Fig. 13 — Can open Wi-Fi serve real users' connection-length needs?
// Compares the CDF of TCP connection durations demanded by the (synthetic
// stand-in for the) downtown-mesh user population against the connection
// durations Spider sustains in its single-channel and multi-channel
// multi-AP configurations.
#include <cstdio>

#include "bench/common.h"
#include "trace/mesh_users.h"

using namespace spider;

namespace {

trace::EmpiricalCdf spider_connections(core::SpiderConfig sc) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  const auto runs =
      bench::run_seed_replications(seeds, [&sc](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        cfg.spider = sc;
        return cfg;
      });
  trace::EmpiricalCdf cdf;
  for (const auto& r : runs) {
    for (double d : r.traffic.connection_durations_sec.samples()) cdf.add(d);
  }
  return cdf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig13_usability_conn",
                      "Fig. 13 — user connection durations vs. Spider's");

  const auto demand = trace::generate_mesh_demand(sim::Rng(161));
  bench::print_cdf("users' connection durations (mesh trace stand-in)",
                   demand.connection_durations_sec, 100.0, 11);
  bench::print_cdf("multiple APs (ch1)",
                   spider_connections(core::single_channel_multi_ap(1)), 100.0,
                   11);
  bench::print_cdf("multiple APs (multi-channel)",
                   spider_connections(core::multi_channel_multi_ap()), 100.0,
                   11);
  std::printf(
      "\nexpected shape: Spider's connection-length CDFs sit at or to the\n"
      "right of the users' demand curve over the bulk of the distribution —\n"
      "it can host the TCP flows users actually run.\n");
  return 0;
}
