// Ablation — AP-selection policy. The paper argues that at vehicular speed
// join time, not offered bandwidth or signal strength, is the factor that
// matters, so Spider selects by join history. This bench compares the three
// policies in the single-AP configuration (where selection actually bites)
// on the same drives.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_ap_selection",
                      "DESIGN.md ablation — AP-selection policy");
  std::printf("(single-AP mode on channel 1, reduced timers, 4 seeds, on a\n"
              " dud-heavy deployment — 45%% of open APs never lease — where\n"
              " selection quality actually bites; the same loop is driven\n"
              " repeatedly, so history has revisits to learn from)\n\n");
  std::printf("  %-22s %-14s %-12s %-16s\n", "policy", "thr (KB/s)",
              "conn (%)", "joins/attempts");

  struct Row {
    const char* label;
    core::ApSelectionPolicy policy;
  };
  const Row rows[] = {
      {"join history", core::ApSelectionPolicy::kJoinHistory},
      {"best RSSI", core::ApSelectionPolicy::kBestRssi},
      {"offered bandwidth", core::ApSelectionPolicy::kOfferedBandwidth},
  };
  const auto run_policies = [&](sim::Time give_up) {
    for (const auto& row : rows) {
      const std::vector<std::uint64_t> seeds = {7, 17, 27, 37};
      const auto runs = bench::run_seed_replications(
          seeds, [&row, give_up](std::uint64_t seed) {
            auto cfg = bench::amherst_drive(seed, sim::Time::seconds(900));
            // Rebuild the deployment with a much higher dud density.
            sim::Rng rng(seed);
            auto deploy_rng = rng.fork("deploy");
            mobility::DeploymentConfig dcfg;
            dcfg.dud_fraction = 0.45;
            cfg.aps = mobility::area_deployment(700, 500, 30, deploy_rng, dcfg);
            cfg.spider = core::single_channel_multi_ap(1);
            cfg.spider.multi_ap = false;
            cfg.spider.max_interfaces = 1;
            cfg.spider.policy = row.policy;
            cfg.spider.join_give_up = give_up;
            return cfg;
          });
      trace::OnlineStats thr, conn;
      std::uint64_t joins = 0, attempts = 0;
      for (const auto& r : runs) {
        thr.add(r.avg_throughput_kBps());
        conn.add(r.connectivity_percent());
        joins += r.joins.joins;
        attempts += r.joins.join_attempts;
      }
      std::printf("  %-22s %8.1f       %5.1f       %llu/%llu\n", row.label,
                  thr.mean(), conn.mean(),
                  static_cast<unsigned long long>(joins),
                  static_cast<unsigned long long>(attempts));
    }
  };

  std::printf("with the 8 s join-give-up watchdog:\n");
  run_policies(sim::Time::seconds(8));
  std::printf("\nwithout the watchdog (a bad pick holds the slot until the\n"
              "AP fades — selection quality now decides everything):\n");
  run_policies(sim::Time::seconds(600));
  std::printf(
      "\nfinding: with the join-give-up watchdog in place (8 s), the cost of\n"
      "a bad pick is bounded and the three policies land within noise of\n"
      "each other — the watchdog, not the ranking, is what protects\n"
      "throughput. Without the watchdog, history's dud-avoidance gives it a\n"
      "consistent edge over RSSI (it stops re-picking known duds; the\n"
      "residual attempts are encounters where the dud was the only AP in\n"
      "range). The paper's choice of history is cheap insurance: it never\n"
      "loses, and needs no RSSI calibration or bandwidth oracle.\n");
  return 0;
}
