// Fig. 10 — CDFs of (a) connection duration, (b) disruption duration, and
// (c) instantaneous bandwidth while connected, for the four Spider
// configurations on the Amherst-style drive.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

struct Curves {
  trace::EmpiricalCdf connections;
  trace::EmpiricalCdf disruptions;
  trace::EmpiricalCdf bandwidth_kBps;
};

Curves collect(core::SpiderConfig sc) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  const auto runs =
      bench::run_seed_replications(seeds, [&sc](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        cfg.spider = sc;
        return cfg;
      });
  Curves c;
  for (const auto& r : runs) {
    for (double d : r.traffic.connection_durations_sec.samples())
      c.connections.add(d);
    for (double d : r.traffic.disruption_durations_sec.samples())
      c.disruptions.add(d);
    for (double b : r.traffic.instantaneous_bytes_per_sec.samples())
      c.bandwidth_kBps.add(b / 1e3);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig10_cdfs",
                      "Fig. 10a/b/c — connection, disruption, bandwidth CDFs");

  struct Config {
    const char* label;
    core::SpiderConfig sc;
  };
  const Config configs[] = {
      {"single AP (ch1)", core::single_channel_single_ap(1)},
      {"multiple APs (ch1)", core::single_channel_multi_ap(1)},
      {"single AP (multi-channel)", core::multi_channel_single_ap()},
      {"multiple APs (multi-channel)", core::multi_channel_multi_ap()},
  };

  std::vector<Curves> all;
  for (const auto& c : configs) all.push_back(collect(c.sc));

  std::printf("\n(a) connection durations (s)\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    bench::print_cdf_summary(configs[i].label, all[i].connections);
  }
  std::printf("\n(b) disruption durations (s)\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    bench::print_cdf_summary(configs[i].label, all[i].disruptions);
  }
  std::printf("\n(c) instantaneous bandwidth while connected (KB/s)\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    bench::print_cdf_summary(configs[i].label, all[i].bandwidth_kBps);
  }

  std::printf("\nfull curves:\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::printf("\n[%s]\n", configs[i].label);
    bench::print_cdf("connection duration (s)", all[i].connections, 120.0, 13);
    bench::print_cdf("disruption duration (s)", all[i].disruptions, 120.0, 13);
    bench::print_cdf("bandwidth (KB/s)", all[i].bandwidth_kBps, 1200.0, 13);
  }

  std::printf(
      "\nexpected shape: single-channel multi-AP has the longest connections\n"
      "and the best instantaneous bandwidth (paper: 60th pct ~300 KB/s, 90th\n"
      "~1000 KB/s) but also the longest disruptions; multi-channel multi-AP\n"
      "has the shortest connections AND the shortest disruptions.\n");
  return 0;
}
