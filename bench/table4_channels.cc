// Table 4 — Average throughput and connectivity for equal static schedules
// over one, two, and three channels (multi-AP in all cases). Throughput is
// maximized on one channel; connectivity is maximized by covering all three.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("table4_channels",
                      "Table 4 — throughput/connectivity vs. channel count");
  std::printf("(equal 200 ms slices, multi-AP, mean of 3 seeds)\n\n");

  struct Row {
    const char* label;
    std::vector<net::ChannelId> channels;
  };
  const Row rows[] = {
      {"1 channel", {1}},
      {"2 channels (equal schedule)", {1, 6}},
      {"3 channels (equal schedule)", {1, 6, 11}},
  };
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  for (const auto& row : rows) {
    const auto runs =
        bench::run_seed_replications(seeds, [&row](std::uint64_t seed) {
          auto cfg = bench::amherst_drive(seed);
          if (row.channels.size() == 1) {
            cfg.spider = core::single_channel_multi_ap(row.channels[0]);
          } else {
            cfg.spider = core::multi_channel_multi_ap(
                sim::Time::millis(200) * static_cast<int>(row.channels.size()),
                row.channels);
          }
          return cfg;
        });
    trace::OnlineStats thr, conn;
    for (const auto& r : runs) {
      thr.add(r.avg_throughput_kBps());
      conn.add(r.connectivity_percent());
    }
    std::printf("  %-30s %8.1f KB/s   %5.1f%%\n", row.label, thr.mean(),
                conn.mean());
  }
  std::printf(
      "\npaper's values: 121.5/35.5  25.1/35.8  28.8/44.7\n"
      "expected shape: single channel wins throughput by a wide margin;\n"
      "adding channels grows the reachable AP pool (connectivity) while\n"
      "fractional dwell strangles TCP and DHCP (throughput).\n");
  return 0;
}
