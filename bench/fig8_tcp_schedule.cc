// Fig. 8 — Average TCP throughput vs. the *absolute* time spent on each
// channel under an equal three-channel schedule (time x on the primary
// channel means 2x away from it). Unlike Fig. 7, the response is sharply
// non-monotone: beyond ~150-200 ms of absence TCP retransmission timers
// fire, cwnd collapses, and throughput falls off a cliff.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig8_tcp_schedule",
                      "Fig. 8 — TCP throughput vs. per-channel dwell");
  std::printf("setup: static client, one AP on ch1 (5 Mbps backhaul),\n"
              "       equal schedule over ch1/ch6/ch11, dwell x per channel\n\n");
  std::printf("  %-14s %-18s\n", "x (ms/chan)", "throughput (kb/s)");

  const std::vector<std::uint64_t> seeds = {3, 5, 7};
  for (int x_ms : {33, 67, 100, 133, 167, 200, 267, 333, 400}) {
    const auto runs =
        bench::run_seed_replications(seeds, [x_ms](std::uint64_t seed) {
          auto cfg =
              bench::static_lab(seed, 1, 1, 5e6, sim::Time::seconds(120));
          cfg.spider = core::multi_channel_multi_ap(
              sim::Time::millis(3 * x_ms), {1, 6, 11});
          return cfg;
        });
    trace::OnlineStats kbps;
    for (const auto& r : runs) kbps.add(r.avg_throughput_kbps());
    std::printf("  %-14d %8.0f  (+/- %.0f)\n", x_ms, kbps.mean(),
                kbps.stddev());
  }
  std::printf(
      "\nexpected shape: rises to a peak around x~100-150 ms, then collapses\n"
      "once 2x of absence exceeds the RTO (paper: peak ~3500 kb/s then\n"
      "~500 kb/s beyond 200 ms) — TCP timeouts plus slow start.\n");
  return 0;
}
