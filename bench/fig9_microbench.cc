// Fig. 9 — Throughput micro-benchmark: aggregate HTTP-download throughput
// vs. per-AP backhaul bandwidth for
//   * one stock card (one AP),
//   * two stock cards (two radios, one AP each),
//   * Spider on a single channel connected to two APs (100,0,0),
//   * Spider across channels 1 and 11, 50 ms on each (50,0,50),
//   * Spider across channels 1 and 11, 100 ms on each (100,0,100).
// Spider on one channel must match the two-physical-cards host; the
// multi-channel schedules trade connectivity opportunities for throughput.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

double spider_run(int n_aps_ch1, int n_aps_ch11, double backhaul,
                  std::vector<core::ChannelSlice> schedule, sim::Time period,
                  std::uint64_t seed) {
  core::ExperimentConfig cfg =
      bench::static_lab(seed, n_aps_ch1, 1, backhaul, sim::Time::seconds(60));
  for (int i = 0; i < n_aps_ch11; ++i) {
    mobility::ApDescriptor d = cfg.aps.front();
    d.ssid = "lab11-" + std::to_string(i);
    d.mac = net::MacAddress::from_index(0xB0 + static_cast<std::uint32_t>(i));
    d.subnet = net::Ipv4Address{(10u << 24) |
                                (static_cast<std::uint32_t>(0xB0 + i) << 8)};
    d.position = {12.0 + 2.0 * i, 5.0};
    d.channel = 11;
    cfg.aps.push_back(d);
  }
  cfg.spider = core::single_channel_multi_ap(1);
  cfg.spider.schedule = std::move(schedule);
  cfg.spider.period = period;
  const auto r = core::Experiment(std::move(cfg)).run();
  return r.traffic.avg_throughput_bytes_per_sec / 1e3;  // KB/s
}

double stock_run(std::uint64_t seed, double backhaul) {
  auto cfg = bench::static_lab(seed, 1, 1, backhaul, sim::Time::seconds(60));
  cfg.driver = core::DriverKind::kStock;
  cfg.stock.scan_channels = {1};
  const auto r = core::Experiment(std::move(cfg)).run();
  return r.traffic.avg_throughput_bytes_per_sec / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig9_microbench",
                      "Fig. 9 — throughput vs. per-AP backhaul bandwidth");
  std::printf("  %-10s %-12s %-12s %-14s %-14s %-14s\n", "backhaul",
              "one stock", "two stock*", "Spider 1ch/2AP", "Spider 50/50",
              "Spider 100/100");
  std::printf("  %-10s %-12s %-12s %-14s %-14s %-14s\n", "(Mbps)", "(KB/s)",
              "(KB/s)", "(KB/s)", "(KB/s)", "(KB/s)");

  for (double mbps : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    const double bps = mbps * 1e6;
    // "Two stock cards" = two independent single-AP paths; with our
    // per-host accounting that equals 2x the one-card result by
    // construction, so it is derived rather than separately simulated.
    const double one = stock_run(17, bps);
    const double two = 2.0 * one;
    const double spider_1ch =
        spider_run(2, 0, bps, {{1, 1.0}}, sim::Time::millis(400), 17);
    const double spider_50 =
        spider_run(1, 1, bps, {{1, 0.5}, {11, 0.5}}, sim::Time::millis(100),
                   17);
    const double spider_100 =
        spider_run(1, 1, bps, {{1, 0.5}, {11, 0.5}}, sim::Time::millis(200),
                   17);
    std::printf("  %-10.1f %-12.0f %-12.0f %-14.0f %-14.0f %-14.0f\n", mbps,
                one, two, spider_1ch, spider_50, spider_100);
  }
  std::printf(
      "\nexpected shape: Spider-1ch/2AP tracks the two-card host (2x the\n"
      "single card) across backhauls; the cross-channel schedules lag, with\n"
      "the faster 50 ms switch beating 100 ms at high backhaul (less RTO\n"
      "risk), as in the paper.\n");
  return 0;
}
