// Engine micro-benchmarks (google-benchmark): raw event-queue throughput,
// medium delivery cost, and a full vehicular-experiment step rate. These
// guard the simulator's performance so the reproduction benches stay fast.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/experiment.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/simulator.h"

using namespace spider;

namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(sim::Time::micros(i * 7 % 9973), [&] { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_TimerCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::TimerHandle> handles;
    handles.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      handles.push_back(sim.schedule_at(sim::Time::millis(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_TimerCancellation);

void BM_MediumBroadcast(benchmark::State& state) {
  const int n_radios = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    phy::MediumConfig cfg;
    cfg.base_loss = 0.1;
    phy::Medium medium(sim, sim::Rng(1), cfg);
    std::vector<std::unique_ptr<phy::Radio>> radios;
    for (int i = 0; i < n_radios; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(
          medium, net::MacAddress::from_index(static_cast<std::uint32_t>(i)),
          phy::RadioConfig{.initial_channel = 1}));
      radios.back()->set_position({static_cast<double>(i), 0.0});
    }
    state.ResumeTiming();
    for (int i = 0; i < 200; ++i) {
      radios[0]->send(net::make_probe_request(radios[0]->address()));
    }
    sim.run_all();
    benchmark::DoNotOptimize(medium.frames_delivered());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_MediumBroadcast)->Arg(4)->Arg(16)->Arg(64);

void BM_VehicularExperimentSecond(benchmark::State& state) {
  // Cost of simulating one wall-clock second of the Table-2 drive.
  for (auto _ : state) {
    state.PauseTiming();
    auto cfg = bench::amherst_drive(7, sim::Time::seconds(10));
    cfg.spider = core::single_channel_multi_ap(1);
    core::Experiment exp(std::move(cfg));
    state.ResumeTiming();
    benchmark::DoNotOptimize(exp.run().frames_sent);
  }
  state.SetItemsProcessed(state.iterations() * 10);  // simulated seconds
}
BENCHMARK(BM_VehicularExperimentSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
