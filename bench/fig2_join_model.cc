// Fig. 2 — Probability of join success vs. fraction of time on the channel:
// closed-form model (Eq. 7) against Monte-Carlo simulation, for
// beta_max = 5 s and 10 s. The two series must be statistically equivalent.
#include <cstdio>

#include "bench/common.h"
#include "model/join_model.h"
#include "model/join_sim.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig2_join_model",
                      "Fig. 2 — join probability, model vs. simulation");
  std::printf("params: D=500ms w=7ms c=100ms beta_min=500ms h=10%% t=4s\n");
  std::printf("        simulation: 100 runs x 100 trials (paper's setup)\n\n");

  for (double beta_max : {5.0, 10.0}) {
    model::JoinModelParams p;
    p.beta_max = beta_max;
    std::printf("beta_max = %.0f s\n", beta_max);
    std::printf("  %-6s %-8s %-10s %-8s\n", "f_i", "model", "simulation",
                "stddev");
    for (int i = 1; i <= 20; ++i) {
      const double f = i / 20.0;
      const double model_p = model::join_probability(p, f, 4.0);
      const auto mc =
          model::monte_carlo_join_probability(p, f, 4.0, sim::Rng(1337));
      std::printf("  %-6.2f %-8.3f %-10.3f %-8.3f\n", f, model_p, mc.mean,
                  mc.stddev);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: sigmoid rising from ~0 at f=0 to ~1 at f=1, with\n"
      "discontinuities at f = 0.2/0.4/0.6/0.8 (ceil(D*f/c) steps); model\n"
      "within the simulation error bars everywhere.\n");
  return 0;
}
