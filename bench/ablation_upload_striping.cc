// Ablation — upload striping policy (Section 4.8: "a simple optimization
// where Spider assigns traffic to APs proportional to the available
// end-to-end bandwidth"). A static client connected to two APs with
// asymmetric backhauls uploads a large file striped across both; we
// compare equal striping against proportional striping driven by the
// client's own download-goodput estimates.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/common.h"

using namespace spider;

namespace {

enum class Policy { kEqual, kEstimate, kOracle };

// Returns completion time (s) of a 4 MB upload, or 0 if it did not finish.
double run_upload(Policy policy, std::uint64_t seed) {
  auto cfg = bench::static_lab(seed, 1, 1, 4e6, sim::Time::seconds(180));
  // Second AP: same channel, much thinner backhaul.
  mobility::ApDescriptor d = cfg.aps.front();
  d.ssid = "thin";
  d.mac = net::MacAddress::from_index(0xB0);
  d.subnet = net::Ipv4Address{(10u << 24) | (0xB0u << 8)};
  d.position = {12.0, 3.0};
  d.backhaul_bps = 1e6;
  cfg.aps.push_back(d);
  cfg.spider = core::single_channel_multi_ap(1);

  core::Experiment exp(std::move(cfg));
  auto& sim = exp.simulator();
  double done_at = 0.0;

  // Let downloads run for 20 s to warm the rate estimates, then upload.
  sim.schedule_after(sim::Time::seconds(20), [&, policy] {
    const auto fat = net::MacAddress::from_index(0xA0);
    const auto thin = net::MacAddress::from_index(0xB0);
    std::vector<core::FlowManager::UploadShare> shares;
    switch (policy) {
      case Policy::kEqual:
        shares = {{fat, 1, 1.0}, {thin, 1, 1.0}};
        break;
      case Policy::kEstimate:
        shares = {{fat, 1, exp.flows().download_rate_bps(fat)},
                  {thin, 1, exp.flows().download_rate_bps(thin)}};
        break;
      case Policy::kOracle:
        shares = {{fat, 1, 4.0}, {thin, 1, 1.0}};
        break;
    }
    // The bulk downloads served their purpose (warming the estimates);
    // stop them so the upload has the medium and backhauls to itself.
    exp.flows().close_flow(fat);
    exp.flows().close_flow(thin);
    exp.flows().start_striped_upload(shares, 4'000'000);
    // Poll for completion (self-owning closure; a by-reference capture of
    // a stack-local std::function would dangle).
    auto poll = std::make_shared<std::function<void()>>();
    *poll = [&exp, &sim, &done_at, poll] {
      if (exp.flows().uploads_finished() && done_at == 0.0) {
        done_at = sim.now().sec() - 20.0;
        return;
      }
      sim.schedule_after(sim::Time::millis(250), *poll);
    };
    sim.schedule_after(sim::Time::millis(250), *poll);
  });
  exp.run();
  return done_at;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "ablation_upload_striping",
      "DESIGN.md ablation — equal vs. proportional upload striping");
  std::printf("(4 MB upload over two APs: 4 Mbps and 1 Mbps backhauls;\n"
              " proportional weights come from the client's own download\n"
              " goodput estimates — no oracle)\n\n");
  std::printf("  %-6s %-14s %-18s %-16s\n", "seed", "equal (s)",
              "estimate-prop (s)", "oracle-prop (s)");
  trace::OnlineStats est_speedup, oracle_speedup;
  for (std::uint64_t seed : {3ULL, 5ULL, 9ULL}) {
    const double equal = run_upload(Policy::kEqual, seed);
    const double est = run_upload(Policy::kEstimate, seed);
    const double oracle = run_upload(Policy::kOracle, seed);
    std::printf("  %-6llu %-14.1f %-18.1f %-16.1f\n",
                static_cast<unsigned long long>(seed), equal, est, oracle);
    if (equal > 0 && est > 0) est_speedup.add(equal / est);
    if (equal > 0 && oracle > 0) oracle_speedup.add(equal / oracle);
  }
  std::printf("\n  mean speedup: estimate-proportional %.2fx, "
              "oracle-proportional %.2fx\n",
              est_speedup.mean(), oracle_speedup.mean());
  std::printf(
      "\nexpected shape: equal striping finishes when the THIN pipe drains\n"
      "its half; proportional striping finishes both shares together and\n"
      "completes meaningfully sooner.\n");
  return 0;
}
