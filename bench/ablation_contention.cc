// Ablation — contention as adoption grows (Section 4.8 future work).
// N Spider clients follow the same downtown loop, staggered in traffic.
// They contend for per-channel airtime, AP backhauls, and DHCP pools.
// Reports aggregate and per-client throughput plus Jain's fairness as the
// fleet grows.
#include <cstdio>

#include "bench/common.h"
#include "core/fleet.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_contention",
                      "DESIGN.md ablation — N concurrent Spider clients");
  std::printf("  %-8s %-16s %-16s %-10s\n", "clients", "aggregate KB/s",
              "per-client KB/s", "fairness");

  for (int n : {1, 2, 4, 8}) {
    trace::OnlineStats agg, per, fair;
    for (std::uint64_t seed : {7ULL, 17ULL}) {
      core::FleetConfig cfg;
      cfg.seed = seed;
      cfg.clients = n;
      cfg.duration = sim::Time::seconds(600);
      sim::Rng rng(seed);
      auto deploy_rng = rng.fork("deploy");
      cfg.aps = mobility::area_deployment(700, 500, 30, deploy_rng);
      cfg.vehicle =
          mobility::Vehicle(mobility::Route::rectangle(600, 400), 10.0);
      cfg.spider = core::single_channel_multi_ap(1);
      core::FleetExperiment fleet(std::move(cfg));
      const auto r = fleet.run();
      agg.add(r.aggregate_throughput_kBps());
      per.add(r.mean_client_throughput_kBps());
      fair.add(r.fairness());
    }
    std::printf("  %-8d %-16.1f %-16.1f %-10.2f\n", n, agg.mean(), per.mean(),
                fair.mean());
  }
  std::printf(
      "\nexpected shape: aggregate grows sub-linearly (clients in the same\n"
      "cell split backhaul and airtime) and per-client throughput falls as\n"
      "the fleet grows; fairness stays moderate because staggered vehicles\n"
      "often occupy different cells.\n");
  return 0;
}
