// Ablation — how much utility does Spider's greedy heuristic give up
// against the exact (NP-hard in general) multi-AP selection optimum?
// Random candidate sets drawn from the deployment's statistics; the exact
// branch-and-bound is feasible at scan-result sizes.
#include <cstdio>

#include "bench/common.h"
#include "model/ap_selection_problem.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "ablation_selection_problem",
      "Appendix A — greedy AP selection vs. exact optimum");
  std::printf("(500 random instances per size; candidates drawn from the\n"
              " deployment's join-time/bandwidth/encounter statistics)\n\n");
  std::printf("  %-12s %-22s %-22s\n", "candidates", "spider-greedy/optimal",
              "density-greedy/optimal");

  for (int n : {4, 8, 12, 16, 20}) {
    trace::OnlineStats spider_ratio, density_ratio;
    sim::Rng rng(static_cast<std::uint64_t>(1000 + n));
    for (int trial = 0; trial < 500; ++trial) {
      model::SelectionProblem p;
      for (int i = 0; i < n; ++i) {
        model::ApCandidate c;
        c.join_cost_sec = rng.uniform(0.5, 4.0);
        c.bandwidth_bps = rng.uniform(1e6, 4e6);
        c.residual_sec = rng.uniform(4.0, 25.0);
        c.join_success = rng.bernoulli(0.2) ? 0.05 : rng.uniform(0.6, 1.0);
        p.candidates.push_back(c);
      }
      p.join_budget_sec = rng.uniform(2.0, 8.0);
      p.max_selection = 7;
      const auto exact = model::solve_exact(p);
      if (exact.total_utility <= 0.0) continue;
      spider_ratio.add(model::solve_spider_greedy(p).total_utility /
                       exact.total_utility);
      density_ratio.add(model::solve_density_greedy(p).total_utility /
                        exact.total_utility);
    }
    std::printf("  %-12d %.3f +/- %.3f        %.3f +/- %.3f\n", n,
                spider_ratio.mean(), spider_ratio.stddev(),
                density_ratio.mean(), density_ratio.stddev());
  }
  std::printf(
      "\nexpected shape: the density greedy sits within a few percent of\n"
      "optimal (knapsack folklore); Spider's join-time-only ranking gives\n"
      "up more utility in theory — the gap the paper accepts because\n"
      "offered bandwidth cannot be observed before joining anyway.\n");
  return 0;
}
