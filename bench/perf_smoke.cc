// perf_smoke — the repo's perf trajectory, as one machine-readable artifact.
//
// Measures (1) single-threaded event-queue throughput of the optimized
// simulator against an in-binary replica of the pre-optimization hot path
// (std::function callback storage + per-event make_shared<bool> cancellation
// token — the exact layout simulator.cc shipped before the SmallFn/token-slab
// rework), (2) fleet-scale PHY frame delivery through the medium's
// partition+grid index against the original world scan (both paths live in
// the shipped Medium behind MediumConfig::indexed_delivery, so the
// comparison is same-binary and the digests must agree), (3) the fleet hot
// path — 200 mobile clients under 20 beaconing APs moved through batched
// Medium::move_radios ticks with interned beacon payloads, against the
// pre-rework scalar set_position loop with per-frame payload minting — and
// (4) wall-clock time of an 8-replication vehicular sweep run serially vs.
// on all hardware threads, verifying per-run digests match.
//
// Emits BENCH_perf.json (schema "spider-bench-perf-v1"; see README) so CI can
// upload the numbers and successive PRs have a comparable perf record.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/common.h"
#include "core/check.h"

// Allocation teeth for the measured loops, gated exactly like SPIDER_DCHECK:
// active in plain debug builds and whenever SPIDER_FORCE_DCHECKS is on (the
// sanitizer presets), compiled out — and spider_alloc_guard left unlinked,
// see bench/CMakeLists.txt — in NDEBUG measurement builds, so the Release
// perf gate never pays for the operator new/delete interception.
#if !defined(NDEBUG) || defined(SPIDER_FORCE_DCHECKS)
#define SPIDER_BENCH_ALLOC_TEETH 1
#include <optional>

#include "core/alloc_guard.h"
#endif
#include "core/shard_scenarios.h"
#include "core/sweep.h"
#include "mac/access_point.h"
#include "net/frame.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "phy/shard_world.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/thread_pool.h"
#include "telemetry/stream_exporter.h"

using namespace spider;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Baseline replica: the event queue exactly as it was before the hot-path
// rework — a std::function per event (heap-allocated once captures exceed
// its ~16-byte inline buffer) and a make_shared<bool> cancellation token per
// event. Digest folding matches the real simulator so the comparison
// isolates the allocation strategy, nothing else.
class LegacySimulator {
 public:
  class Handle {
   public:
    Handle() = default;
    explicit Handle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}
    void cancel() {
      if (cancelled_) *cancelled_ = true;
    }

   private:
    std::shared_ptr<bool> cancelled_;
  };

  sim::Time now() const { return now_; }

  Handle schedule_at(sim::Time at, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
    return Handle{std::move(cancelled)};
  }

  // The pre-rework API had no fire-and-forget path: every beacon tick and
  // frame delivery paid for a token it would never use.
  void post_at(sim::Time at, std::function<void()> fn) {
    schedule_at(at, std::move(fn));
  }

  void run_all() {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      Event ev{top.at, top.seq, std::move(const_cast<Event&>(top).fn),
               top.cancelled};
      queue_.pop();
      if (*ev.cancelled) continue;
      // Digest folding identical to the shipped simulator (pre- and
      // post-rework), so the measured delta is the event layout alone.
      if (instant_count_ > 0 && ev.at.us() != instant_us_) fold_instant();
      instant_us_ = ev.at.us();
      instant_acc_ += event_hash(ev.at.us(), ev.seq);
      ++instant_count_;
      now_ = ev.at;
      ++executed_;
      ev.fn();
    }
  }

  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t digest() const { return digest_; }

 private:
  struct Event {
    sim::Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

  static std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (i * 8)) & 0xFFu;
      hash *= kFnvPrime;
    }
    return hash;
  }

  static std::uint64_t event_hash(std::int64_t at_us, std::uint64_t seq) {
    return fnv1a_u64(fnv1a_u64(0xcbf29ce484222325ull,
                               static_cast<std::uint64_t>(at_us)),
                     seq);
  }

  void fold_instant() {
    digest_ = fnv1a_u64(digest_, static_cast<std::uint64_t>(instant_us_));
    digest_ = fnv1a_u64(digest_, instant_acc_);
    digest_ = fnv1a_u64(digest_, instant_count_);
    instant_acc_ = 0;
    instant_count_ = 0;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  sim::Time now_ = sim::Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
  std::int64_t instant_us_ = 0;
  std::uint64_t instant_acc_ = 0;
  std::uint64_t instant_count_ = 0;
};

// Identical churn for both engines, mixed the way a vehicular run mixes it:
// three quarters of the events are fire-and-forget (frame deliveries, beacon
// ticks — post_at), one quarter are cancellable timers, and half of those
// get cancelled before firing. Captures (a reference plus two 64-bit values,
// 24 bytes) overflow std::function's inline buffer but fit SmallFn's.
// Returns scheduled events per second.
template <typename Sim>
double churn_events_per_sec(int waves, int per_wave,
                            std::uint64_t* sink_out) {
  Sim sim;
  std::uint64_t sink = 0;
  std::vector<decltype(sim.schedule_at(sim::Time::zero(),
                                       std::function<void()>()))>
      handles;
  handles.reserve(static_cast<std::size_t>(per_wave));
  const auto start = std::chrono::steady_clock::now();
  for (int wave = 0; wave < waves; ++wave) {
    handles.clear();
    const sim::Time base = sim.now() + sim::Time::micros(1);
    for (int i = 0; i < per_wave; ++i) {
      const sim::Time at = base + sim::Time::micros(i % 97);
      const std::uint64_t a = static_cast<std::uint64_t>(i) * 0x9E3779B9u;
      const std::uint64_t b = static_cast<std::uint64_t>(wave);
      auto fn = [&sink, a, b] { sink += a ^ b; };
      if (i % 4 == 0) {
        handles.push_back(sim.schedule_at(at, fn));
      } else {
        sim.post_at(at, fn);
      }
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    sim.run_all();
  }
  const double elapsed = seconds_since(start);
  *sink_out = sink + sim.digest();
  const double scheduled =
      static_cast<double>(waves) * static_cast<double>(per_wave);
  return scheduled / elapsed;
}

// The reference heap path in the shipped binary: the identical Simulator
// with only SimulatorConfig::wheel_scheduler off (the pre-wheel
// std::priority_queue on (at, seq)). Wheel-vs-heap ratios measured against
// this arm are same-binary and hardware-normalized, and the two paths'
// digests are asserted equal in tests/timer_wheel_test.cc.
class HeapSimulator : public sim::Simulator {
 public:
  HeapSimulator()
      : sim::Simulator(sim::SimulatorConfig{.wheel_scheduler = false}) {}
};

// Cancellation churn — the dominant pattern of the measurement-derived join
// replays, where a scan dwell schedules a retry timeout and the response
// almost always arrives first: every timer in a wave is cancelled before
// its instant, and one uncancellable "response arrived" event per wave
// executes (it is what caused the cancellations, and it advances the clock
// the way real responses do). The loop therefore measures schedule + cancel
// + fire-time discard; the wheel turns both ends into O(1) where the heap
// paid O(log n) to insert AND to sift the corpse back out. Returns
// scheduled events per second.
template <typename Sim>
double cancel_churn_per_sec(int waves, int per_wave, std::uint64_t* sink_out) {
  Sim sim;
  std::uint64_t sink = 0;
  std::vector<decltype(sim.schedule_at(sim::Time::zero(),
                                       std::function<void()>()))>
      handles;
  handles.reserve(static_cast<std::size_t>(per_wave));
  const auto start = std::chrono::steady_clock::now();
  for (int wave = 0; wave < waves; ++wave) {
    handles.clear();
    const sim::Time base = sim.now() + sim::Time::micros(1);
    for (int i = 0; i < per_wave - 1; ++i) {
      const sim::Time at = base + sim::Time::micros(i % 97);
      handles.push_back(sim.schedule_at(at, [&sink] { ++sink; }));
    }
    sim.post_at(base + sim::Time::micros(97), [&sink] { ++sink; });
    for (auto& h : handles) h.cancel();
    sim.run_all();
  }
  const double elapsed = seconds_since(start);
  *sink_out += sink + sim.digest();
  return static_cast<double>(waves) * static_cast<double>(per_wave) / elapsed;
}

// Same engine with the trace recorder armed — the dispatch loop never
// consults the recorder, so this measurement pins down the "tracing on but
// nothing span-instrumented fires" floor of the telemetry design.
class TracedSimulator : public sim::Simulator {
 public:
  TracedSimulator() { telemetry().trace().set_enabled(true); }
};

#if SPIDER_TELEMETRY
// Same engine with a live StreamSession attached (DESIGN.md "Live telemetry
// plane"): the cadence hook in Simulator::drain fires a metrics publish at
// every 100 us sim-time boundary, records cross the SPSC ring, and the
// exporter thread renders them to the sample stream file. This bounds the
// price of *watching* a run live — the exporter-overhead floor in
// bench/BENCH_perf_baseline.json gates it.
telemetry::StreamExporter& smoke_stream_exporter() {
  static telemetry::StreamExporter exporter;
  static const bool wired = [] {
    const std::string& flag = bench::telemetry_options().stream_path;
    const std::string path = flag.empty() ? "BENCH_stream_sample.jsonl" : flag;
    auto sink = std::make_shared<telemetry::FileStreamSink>(path);
    if (!sink->ok()) {
      std::fprintf(stderr, "warning: could not open stream file %s\n",
                   path.c_str());
      return false;
    }
    exporter.add_sink(std::move(sink));
    return true;
  }();
  (void)wired;
  return exporter;
}

class StreamingSimulator : public sim::Simulator {
 public:
  StreamingSimulator()
      : session_(smoke_stream_exporter(), telemetry(), next_tag(),
                 /*cadence_us=*/100) {
    session_.begin(now().us(), /*seed=*/0);
  }
  ~StreamingSimulator() {
    session_.finish(now().us(), digest(), events_executed());
  }

 private:
  static std::uint32_t next_tag() {
    static std::uint32_t next = 1;
    return next++;
  }

  // Member of the derived class: destroyed before the base Simulator (and
  // the Hub/Registry the stream records point into), per the session's
  // lifetime contract.
  telemetry::StreamSession session_;
};
#endif  // SPIDER_TELEMETRY

core::ExperimentConfig sweep_config(std::uint64_t seed) {
  auto cfg = bench::amherst_drive(seed, sim::Time::seconds(120));
  cfg.spider = core::single_channel_multi_ap(1);
  return cfg;
}

// ---------------------------------------------------------------------------
// Fleet-scale PHY delivery: n radios dense on one channel, each broadcasting
// in round-robin waves while drifting a few meters per wave (so the spatial
// grid pays its lazy re-bucketing cost honestly). The same scenario runs
// through the indexed path and through the reference world scan; layouts,
// drifts and loss draws are seed-identical, so the digests must agree —
// the measured delta is candidate lookup, nothing else.

struct PhyMeasurement {
  double frames_per_sec = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t deliveries_grid = 0;
};

PhyMeasurement phy_delivery_run(bool indexed, int n_radios, int frames) {
  sim::Simulator sim;
  phy::MediumConfig cfg;
  cfg.base_loss = 0.1;
  cfg.indexed_delivery = indexed;
  phy::Medium medium(sim, sim::Rng(99), cfg);
  // Constant density (~500 radios/km^2, a downtown fleet) so the expected
  // neighborhood of any sender is scale-invariant and the scan path's O(n)
  // per-frame cost is the only thing that grows with the fleet.
  const double side =
      std::sqrt(static_cast<double>(n_radios) / 500.0) * 1000.0;
  sim::Rng layout(7);
  std::vector<std::unique_ptr<phy::Radio>> radios;
  radios.reserve(static_cast<std::size_t>(n_radios));
  for (int i = 0; i < n_radios; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(static_cast<std::uint32_t>(i + 1)),
        phy::RadioConfig{.initial_channel = 1}));
    radios.back()->set_position(
        {layout.uniform(0.0, side), layout.uniform(0.0, side)});
  }
  const int waves = std::max(1, frames / n_radios);
  const auto start = std::chrono::steady_clock::now();
  for (int wave = 0; wave < waves; ++wave) {
    // Moves first, sends second. The split leaves the event stream (and so
    // the digest) identical — set_position posts nothing — but fences the
    // cell re-buckets, which legitimately allocate, out of the guarded half.
    for (auto& r : radios) {
      r->set_position(r->position() + phy::Vec2{layout.uniform(-3.0, 3.0),
                                                layout.uniform(-3.0, 3.0)});
    }
#ifdef SPIDER_BENCH_ALLOC_TEETH
    // Wave 0 warms the PendingTx pool and the event queue; from then on a
    // send+deliver wave owns a zero allocation budget (the SPIDER_HOT
    // contract), and a reintroduced per-frame allocation fails loudly here
    // instead of just flattening the speedup curve.
    std::optional<core::ScopedAllocGuard> teeth;
    if (wave > 0) teeth.emplace("perf_smoke phy delivery wave");
#endif
    for (auto& r : radios) {
      r->send(net::make_probe_request(r->address()));
    }
    sim.run_all();
  }
  const double elapsed = seconds_since(start);
  const double sent =
      static_cast<double>(waves) * static_cast<double>(n_radios);
  SPIDER_CHECK(medium.frames_sent() == static_cast<std::uint64_t>(sent));
  return {sent / elapsed,
          static_cast<double>(sim.events_executed()) / elapsed, sim.digest(),
          medium.deliveries_grid()};
}

// ---------------------------------------------------------------------------
// Scale section: the memory-layout rework's headline numbers. Same constant-
// density co-channel workload as phy_delivery_run, but driven through the
// SoA hot path end to end — batched Medium::move_radios drift (RadioMove
// batches and grid-move staging on the drain arena) followed by an
// all-radios probe volley per wave — at fleet sizes (10k / 100k radios)
// where the AoS layout's cache misses used to dominate. Measurement waves
// run against a wall-clock budget so the 100k scale stays affordable;
// fixed-wave runs feed the digest cross-checks.

struct ScaleMeasurement {
  double frames_per_sec = 0.0;
  double events_per_sec = 0.0;
  double bytes_per_radio = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t digest = 0;
};

// fixed_waves > 0: run exactly that many waves (digest comparisons).
// fixed_waves == 0: run whole waves until `budget_seconds` of wall clock.
ScaleMeasurement scale_run(int n_radios, int fixed_waves,
                           double budget_seconds, bool indexed) {
  sim::Simulator sim;
  phy::MediumConfig cfg;
  cfg.base_loss = 0.1;
  cfg.indexed_delivery = indexed;
  phy::Medium medium(sim, sim::Rng(0x5CA7E), cfg);
  const double side =
      std::sqrt(static_cast<double>(n_radios) / 500.0) * 1000.0;
  sim::Rng layout(0x5CA1E);
  std::vector<std::unique_ptr<phy::Radio>> radios;
  radios.reserve(static_cast<std::size_t>(n_radios));
  for (int i = 0; i < n_radios; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(static_cast<std::uint32_t>(i + 1)),
        phy::RadioConfig{.initial_channel = 1}));
    radios.back()->set_position(
        {layout.uniform(0.0, side), layout.uniform(0.0, side)});
  }
  sim::Rng walk = layout.fork("walk");
  std::vector<phy::RadioMove> moves;
  moves.reserve(radios.size());
  int waves = 0;
  const auto start = std::chrono::steady_clock::now();
  while (fixed_waves > 0 ? waves < fixed_waves
                         : (waves == 0 ||
                            seconds_since(start) < budget_seconds)) {
    // Vehicular drift, batched: the whole fleet through one move_radios
    // call (RadioMove staging and per-slot grouping live on the arena).
    moves.clear();
    for (auto& r : radios) {
      moves.push_back(phy::RadioMove{
          r.get(), r->position() + phy::Vec2{walk.uniform(-3.0, 3.0),
                                             walk.uniform(-3.0, 3.0)}});
    }
    medium.move_radios(moves);
#ifdef SPIDER_BENCH_ALLOC_TEETH
    // Wave 0 grows the arena blocks, the tx pool and the event queue; every
    // later wave's send+deliver half owns a zero allocation budget.
    std::optional<core::ScopedAllocGuard> teeth;
    if (waves > 0) teeth.emplace("perf_smoke scale wave");
#endif
    for (auto& r : radios) {
      r->send(net::make_probe_request(r->address()));
    }
    sim.run_all();
    ++waves;
  }
  const double elapsed = seconds_since(start);
  const std::uint64_t frames =
      static_cast<std::uint64_t>(waves) * static_cast<std::uint64_t>(n_radios);
  SPIDER_CHECK(medium.frames_sent() == frames);
  return {static_cast<double>(frames) / elapsed,
          static_cast<double>(sim.events_executed()) / elapsed,
          static_cast<double>(medium.hot_state_bytes()) /
              static_cast<double>(n_radios),
          frames, sim.digest()};
}

// ---------------------------------------------------------------------------
// Fleet hot path: 200 clients random-walking through a 20-AP downtown block,
// the ensemble the fleet-scale rework targets. The fast arm is the shipped
// hot path end to end: partition+grid frame delivery, the whole fleet moved
// through one Medium::move_radios call per position tick, and every AP
// handing out its interned beacon payload on beacon ticks and probe
// responses. The slow arm is the fully scalar pipeline those pieces
// replaced: the world-scan delivery path, one set_position call per client
// per tick, and a freshly minted BeaconInfo (SSID string included) per
// management frame. All three toggles are digest-neutral by contract —
// both arms see the same seeds, positions, probe schedule and loss draws,
// and delivery re-sorts candidates by attach order before consuming RNG —
// so the digests must agree bit for bit and the measured delta is index
// lookups, re-bucketing hash traffic and payload allocation, nothing else.

struct FleetMeasurement {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
};

// Drives the per-tick fleet work (one mobility batch + a rotating slice of
// probe requests). Out-of-line context so the rescheduling lambda captures
// one pointer and stays inside SmallFn's inline buffer.
struct FleetTicker {
  sim::Simulator& sim;
  phy::Medium& medium;
  std::vector<std::unique_ptr<phy::Radio>>& clients;
  sim::Rng walk;
  double side;
  sim::Time tick;
  sim::Time horizon;
  bool batched;
  int probe_cursor = 0;
  std::vector<phy::RadioMove> moves;

  void step() {
    moves.clear();
    for (auto& c : clients) {
      // Draw the step before choosing a path so both arms consume the walk
      // stream identically; reflect at the block edges to hold density.
      phy::Vec2 p = c->position() + phy::Vec2{walk.uniform(-60.0, 60.0),
                                              walk.uniform(-60.0, 60.0)};
      p.x = p.x < 0.0 ? -p.x : (p.x > side ? 2.0 * side - p.x : p.x);
      p.y = p.y < 0.0 ? -p.y : (p.y > side ? 2.0 * side - p.y : p.y);
      moves.push_back(phy::RadioMove{c.get(), p});
    }
    if (batched) {
      medium.move_radios(moves);
    } else {
      for (const phy::RadioMove& m : moves) m.radio->set_position(m.position);
    }
    // A tenth of the fleet scans each tick; every AP that hears a probe
    // mints (or hands out) a probe response.
    for (std::size_t i = 0; i < clients.size(); i += 10) {
      phy::Radio& tx =
          *clients[(static_cast<std::size_t>(probe_cursor) + i) %
                   clients.size()];
      tx.send(net::make_probe_request(tx.address()));
    }
    ++probe_cursor;
    if (sim.now() + tick < horizon) {
      sim.post_after(tick, [this] { step(); });
    }
  }
};

FleetMeasurement fleet_hotpath_run(bool fast, int n_clients, int n_aps,
                                   sim::Time duration) {
  sim::Simulator sim;
  phy::MediumConfig cfg;
  // Dense co-channel block: high loss keeps delivery fan-out (identical in
  // both arms) from drowning the per-send costs under test.
  cfg.base_loss = 0.8;
  cfg.indexed_delivery = fast;
  phy::Medium medium(sim, sim::Rng(1234), cfg);

  // ~14x14 cells of the spatial grid: wide enough that a delivery disc
  // covers a small neighborhood (so indexed gather beats the world scan),
  // dense enough that cell crossings still cluster for the batch re-bucket.
  const double kSide = 2000.0;
  // Two-channel reuse plan (1/11), the aggressive end of dense downtown
  // deployments. Two channels keep each channel's offered beacon load under
  // its serialized airtime capacity (~3.5k frames/s at 11 Mb/s with the long
  // preamble) — a single-channel deployment this dense would saturate, and
  // deliveries would slide past the horizon unmeasured — while co-channel
  // membership stays high enough that the scalar arm's world scan has real
  // work per frame.
  constexpr net::ChannelId kPlan[2] = {1, 11};
  mac::AccessPointConfig ap_cfg;
  ap_cfg.ssid = "spider-fleet-downtown-macro-cell";  // > SSO: heap per mint
  // Compressed cadence (real APs beacon at ~100 ms): the bench squeezes a
  // long steady state into a short run, the per-beacon costs are unchanged.
  ap_cfg.beacon_interval = sim::Time::millis(4);
  ap_cfg.intern_beacons = fast;
  ap_cfg.intern_mgmt_responses = fast;
  std::vector<std::unique_ptr<mac::AccessPoint>> aps;
  aps.reserve(static_cast<std::size_t>(n_aps));
  for (int i = 0; i < n_aps; ++i) {
    const phy::Vec2 pos{(i % 5 + 0.5) * kSide / 5.0,
                        (i / 5 + 0.5) * kSide / 4.0};
    ap_cfg.channel = kPlan[i % 2];
    aps.push_back(std::make_unique<mac::AccessPoint>(
        medium, net::MacAddress::from_index(0x500u + static_cast<std::uint32_t>(i)),
        pos, sim::Rng(77 + static_cast<std::uint64_t>(i)), ap_cfg));
    aps.back()->start();
  }

  sim::Rng layout(0xF1EE7);
  std::vector<std::unique_ptr<phy::Radio>> clients;
  clients.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(static_cast<std::uint32_t>(i + 1)),
        phy::RadioConfig{.initial_channel =
                             kPlan[static_cast<std::size_t>(i) % 2]}));
    clients.back()->set_position(
        {layout.uniform(0.0, kSide), layout.uniform(0.0, kSide)});
  }

  FleetTicker ticker{sim,
                     medium,
                     clients,
                     layout.fork("walk"),
                     kSide,
                     sim::Time::millis(5),
                     duration,
                     fast,
                     /*probe_cursor=*/0,
                     /*moves=*/{}};
  ticker.moves.reserve(clients.size());
  sim.post_after(ticker.tick, [&ticker] { ticker.step(); });

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(duration);
  const double elapsed = seconds_since(start);
  const FleetMeasurement out{static_cast<double>(sim.events_executed()) /
                                 elapsed,
                             sim.events_executed(), sim.digest()};
#ifdef SPIDER_BENCH_ALLOC_TEETH
  if (fast) {
    // Runtime teeth past the measured horizon (digest and event count were
    // captured above): with mobility and probe ticks stopped, let in-flight
    // management responses drain — warm responses ride pooled nodes and
    // interned payloads, but the final probe volley may still grow the
    // response pool cold — then assert the remaining steady state, interned
    // beacon ticks plus their deliveries, allocates nothing. The scalar arm
    // mints a payload per beacon and is exempt: it exists precisely as the
    // allocating contrast.
    sim.run_until(duration + sim::Time::millis(50));
    core::ScopedAllocGuard teeth("perf_smoke fleet beacon steady state");
    sim.run_until(duration + sim::Time::millis(150));
  }
#endif
  return out;
}

// ---------------------------------------------------------------------------
// Sharded single world: one 100k-radio world advanced on K strips. Both arms
// run the SAME engine (phy::ShardedWorld); only the strip count and the pool
// differ, so the digest comparison is exact, not statistical. Construction
// is excluded from the timing — the section measures the advance.
struct ShardMeasurement {
  double seconds = 0.0;
  std::uint64_t digest = 0;
  phy::ShardWorldStats stats;
};

ShardMeasurement sharded_world_run(const phy::ShardScenario& scenario,
                                   unsigned shards, sim::ThreadPool* pool) {
  phy::ShardedWorld world(scenario, shards, pool);
  const auto start = std::chrono::steady_clock::now();
  world.run();
  ShardMeasurement m;
  m.seconds = seconds_since(start);
  m.digest = world.digest();
  m.stats = world.stats();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const char* out_path = "BENCH_perf.json";
  // Scale-section overrides: --radios N measures one custom fleet size
  // instead of the default {10k, 100k} pair (note: the CI gate keys on
  // radios_10000, so gated runs must keep the defaults), --seconds S sets
  // the wall-clock budget per measured scale.
  int scale_radios_override = 0;
  double scale_budget_seconds = 1.5;
  // --shards N sets the sharded-world section's strip count (0 = one strip
  // per available hardware thread, capped at 8).
  int shards_override = 0;
  // --section NAME[,NAME...] runs only the named sections and emits only
  // their JSON objects (empty = the full suite). The CI perf gate needs the
  // full suite — the baseline keys every section — but local iteration and
  // targeted CI reruns can pay for just the one being worked on.
  std::vector<std::string> section_filter;
  for (int i = 1; i < argc; ++i) {
    const auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
      if (argv[i][len] == '=') return argv[i] + len + 1;
      if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--radios")) {
      scale_radios_override = std::atoi(v);
      SPIDER_CHECK(scale_radios_override > 0)
          << "--radios wants a positive radio count, got " << v;
    } else if (const char* v = value_of("--seconds")) {
      scale_budget_seconds = std::atof(v);
      SPIDER_CHECK(scale_budget_seconds > 0.0)
          << "--seconds wants a positive budget, got " << v;
    } else if (const char* v = value_of("--shards")) {
      shards_override = std::atoi(v);
      SPIDER_CHECK(shards_override > 0)
          << "--shards wants a positive strip count, got " << v;
    } else if (const char* v = value_of("--section")) {
      for (const char* p = v; *p != '\0';) {
        const char* comma = std::strchr(p, ',');
        const std::size_t len = comma != nullptr
                                    ? static_cast<std::size_t>(comma - p)
                                    : std::strlen(p);
        SPIDER_CHECK(len > 0)
            << "--section wants NAME[,NAME...], got '" << v << "'";
        section_filter.emplace_back(p, len);
        p += len;
        if (comma != nullptr) ++p;
      }
      SPIDER_CHECK(!section_filter.empty())
          << "--section wants at least one section name";
    } else if (value_of("--telemetry") != nullptr ||
               value_of("--trace") != nullptr ||
               value_of("--stream") != nullptr) {
      // Already handled by parse_common_flags; consumed here only so a
      // separate-token value isn't mistaken for the output path.
    } else if (argv[i][0] != '-') {
      out_path = argv[i];  // positional output path, flags may precede it
    }
  }
  static constexpr const char* kSectionNames[] = {
      "event_queue", "stream", "phy", "scale", "fleet", "shard", "sweep"};
  for (const std::string& s : section_filter) {
    bool known = false;
    for (const char* name : kSectionNames) known = known || s == name;
    SPIDER_CHECK(known) << "--section: unknown section '" << s
                        << "' (sections: event_queue, stream, phy, scale, "
                           "fleet, shard, sweep)";
  }
  const auto section_on = [&section_filter](const char* name) {
    if (section_filter.empty()) return true;
    for (const std::string& s : section_filter) {
      if (s == name) return true;
    }
    return false;
  };
  bench::print_header("perf_smoke",
                      "perf trajectory: event-queue hot path + parallel sweep");

  // ---- event-queue microbenchmark -----------------------------------------
  // Wave size mirrors the depth the vehicular experiments actually keep the
  // queue at (hundreds of pending events, not tens of thousands), so the
  // per-event constant costs — allocation, token management — dominate the
  // measurement the way they dominate production runs.
  constexpr int kWaves = 8'000;
  constexpr int kPerWave = 256;
  std::uint64_t sink = 0;
  // Wheel-scheduler churn throughput, shared by the event_queue section (its
  // headline) and the stream section (the overhead ratio's denominator);
  // measured once, by whichever enabled section asks first.
  double optimized = 0.0;
  const auto measure_optimized = [&] {
    if (optimized == 0.0) {
      churn_events_per_sec<sim::Simulator>(10, kPerWave, &sink);  // warm
      optimized =
          churn_events_per_sec<sim::Simulator>(kWaves, kPerWave, &sink);
    }
  };

  bench::JsonWriter event_queue;
  if (section_on("event_queue")) {
    churn_events_per_sec<HeapSimulator>(10, kPerWave, &sink);    // warm
    churn_events_per_sec<LegacySimulator>(10, kPerWave, &sink);  // warm
    measure_optimized();
    const double heap =
        churn_events_per_sec<HeapSimulator>(kWaves, kPerWave, &sink);
    const double baseline =
        churn_events_per_sec<LegacySimulator>(kWaves, kPerWave, &sink);
    const double traced =
        churn_events_per_sec<TracedSimulator>(kWaves, kPerWave, &sink);
    const double event_speedup = optimized / baseline;
    const double wheel_vs_heap = optimized / heap;
    std::printf(
        "event queue:  %.3g events/s wheel scheduler, %.3g events/s heap\n"
        "              reference (%.2fx), %.3g events/s pre-rework layout\n"
        "              (speedup %.2fx)\n",
        optimized, heap, wheel_vs_heap, baseline, event_speedup);
    std::printf("telemetry:    compiled %s; %.3g events/s with the trace\n"
                "              recorder armed (%.2fx of tracing-off)\n",
                SPIDER_TELEMETRY ? "in" : "out", traced, traced / optimized);

    // Cancellation churn: schedule-then-cancel, the join replays' dominant
    // pattern. The wheel's O(1) insert + fire-time discard vs. the heap
    // paying O(log n) both ways.
    cancel_churn_per_sec<sim::Simulator>(10, kPerWave, &sink);  // warm
    cancel_churn_per_sec<HeapSimulator>(10, kPerWave, &sink);   // warm
    const double cancel_wheel =
        cancel_churn_per_sec<sim::Simulator>(kWaves, kPerWave, &sink);
    const double cancel_heap =
        cancel_churn_per_sec<HeapSimulator>(kWaves, kPerWave, &sink);
    const double cancel_speedup = cancel_wheel / cancel_heap;
    std::printf("cancel churn: %.3g cancelled events/s wheel, %.3g events/s\n"
                "              heap reference  (speedup %.2fx)\n",
                cancel_wheel, cancel_heap, cancel_speedup);

    event_queue.add("events", static_cast<std::uint64_t>(kWaves) * kPerWave)
        .add("events_per_sec", optimized)
        .add("heap_events_per_sec", heap)
        .add("wheel_vs_heap_speedup", wheel_vs_heap)
        .add("baseline_events_per_sec", baseline)
        .add("speedup_vs_baseline", event_speedup)
        .add("cancel_churn_per_sec", cancel_wheel)
        .add("cancel_churn_heap_per_sec", cancel_heap)
        .add("cancel_churn_speedup", cancel_speedup)
        .add("telemetry_compiled", SPIDER_TELEMETRY != 0)
        .add("tracing_on_events_per_sec", traced)
        .add("tracing_on_ratio", traced / optimized);
  }

  // ---- live stream exporter overhead --------------------------------------
  // Same churn with a StreamSession attached at a 100 us cadence (aggressive:
  // production defaults stream every 100 ms). The ratio vs. the plain engine
  // is the price of live observability; bench/BENCH_perf_baseline.json floors
  // it at 0.95.
  bench::JsonWriter stream_json;
  if (section_on("stream")) {
    measure_optimized();
    double streaming = optimized;
    std::uint64_t stream_lines = 0;
    std::uint64_t stream_dropped = 0;
#if SPIDER_TELEMETRY
    churn_events_per_sec<StreamingSimulator>(10, kPerWave, &sink);  // warm
    streaming =
        churn_events_per_sec<StreamingSimulator>(kWaves, kPerWave, &sink);
    stream_lines = smoke_stream_exporter().lines_written();
    stream_dropped = smoke_stream_exporter().ring_dropped();
#endif
    const double stream_ratio = streaming / optimized;
    std::printf(
        "stream:       %.3g events/s with a live 100us-cadence stream\n"
        "              session (%.2fx of stream-off; %llu lines, %llu\n"
        "              ring drops)\n",
        streaming, stream_ratio, static_cast<unsigned long long>(stream_lines),
        static_cast<unsigned long long>(stream_dropped));
    stream_json.add("events_per_sec_streaming", streaming)
        .add("events_per_sec_plain", optimized)
        .add("overhead_ratio", stream_ratio)
        .add("cadence_us", 100)
        .add("lines_written", stream_lines)
        .add("ring_dropped", stream_dropped);
  }

  // ---- PHY delivery: partition+grid index vs. world scan ------------------
  bench::JsonWriter phy_json;
  if (section_on("phy")) {
  constexpr int kPhyScales[] = {50, 500, 2000};
  constexpr int kPhyFrames = 20'000;
  phy_delivery_run(true, 50, 2'000);  // warm allocators/caches
  double phy_speedup_2000 = 0.0;
  double phy_speedup_50 = 0.0;
  for (const int n : kPhyScales) {
    const PhyMeasurement fast = phy_delivery_run(true, n, kPhyFrames);
    const PhyMeasurement scan = phy_delivery_run(false, n, kPhyFrames);
    SPIDER_CHECK(fast.digest == scan.digest)
        << "indexed delivery diverged from the reference scan at " << n
        << " radios";
    // Below the auto-select threshold the indexed path deliberately scans
    // the (single, co-channel) partition — that is the radios_50 fix: a grid
    // walk over ~50 candidates cost more than copying them. Past the
    // threshold the grid must actually serve.
    if (n > static_cast<int>(phy::MediumConfig{}.indexed_scan_threshold)) {
      SPIDER_CHECK(fast.deliveries_grid > 0)
          << "indexed run never used the grid at " << n << " radios";
    } else {
      SPIDER_CHECK(fast.deliveries_grid == 0)
          << "auto-select should scan small partitions, not walk the grid";
    }
    const double speedup = fast.frames_per_sec / scan.frames_per_sec;
    std::printf("phy delivery: %5d radios co-channel: %.3g frames/s indexed,\n"
                "              %.3g frames/s world scan  (speedup %.2fx,\n"
                "              %.3g events/s, digests identical)\n",
                n, fast.frames_per_sec, scan.frames_per_sec, speedup,
                fast.events_per_sec);
    bench::JsonWriter scale_json;
    scale_json.add("radios", n)
        .add("frames_per_sec_indexed", fast.frames_per_sec)
        .add("frames_per_sec_scan", scan.frames_per_sec)
        .add("events_per_sec_indexed", fast.events_per_sec)
        .add("events_per_sec_scan", scan.events_per_sec)
        .add("speedup", speedup)
        .add("digests_match", true);
    char key[32];
    std::snprintf(key, sizeof(key), "radios_%d", n);
    phy_json.add_object(key, scale_json);
    if (n == 2000) phy_speedup_2000 = speedup;
    if (n == 50) phy_speedup_50 = speedup;
  }
  phy_json.add("speedup_at_2000", phy_speedup_2000);
  // The radios_50 regression gate: with indexed_delivery on, auto-select
  // must scan the small co-channel partition rather than walk the grid
  // (asserted above via deliveries_grid == 0), so the shipped path can no
  // longer lose to the reference scan the way the always-grid path did
  // (0.83x). Gated at ~parity in bench/BENCH_perf_baseline.json.
  phy_json.add("auto_speedup_at_50", phy_speedup_50);
  }

  // ---- scale: SoA + arena delivery at fleet sizes -------------------------
  bench::JsonWriter scale_json;
  if (section_on("scale")) {
  std::vector<int> scale_sizes = {10'000, 100'000};
  if (scale_radios_override > 0) scale_sizes = {scale_radios_override};
  for (const int n : scale_sizes) {
    // Digest gates first. Run-to-run determinism holds at every scale; the
    // indexed-vs-reference-scan equivalence is only affordable where the
    // scan arm's O(n) per frame stays sane (the scan is the same filter over
    // a superset, so equivalence at 10k covers the shared delivery code).
    const ScaleMeasurement a = scale_run(n, /*fixed_waves=*/2, 0.0, true);
    const ScaleMeasurement b = scale_run(n, /*fixed_waves=*/2, 0.0, true);
    SPIDER_CHECK(a.digest == b.digest)
        << "scale run is not deterministic at " << n << " radios";
    bool cross_checked = false;
    if (n <= 20'000) {
      const ScaleMeasurement scan = scale_run(n, /*fixed_waves=*/2, 0.0, false);
      SPIDER_CHECK(a.digest == scan.digest)
          << "SoA indexed delivery diverged from the reference scan at " << n
          << " radios";
      cross_checked = true;
    }
    const ScaleMeasurement m =
        scale_run(n, /*fixed_waves=*/0, scale_budget_seconds, true);
    std::printf(
        "scale:        %6d radios: %.3g frames/s, %.3g events/s,\n"
        "              %.0f hot-state bytes/radio  (%llu frames, digests %s)\n",
        n, m.frames_per_sec, m.events_per_sec, m.bytes_per_radio,
        static_cast<unsigned long long>(m.frames),
        cross_checked ? "cross-checked vs scan" : "deterministic");
    bench::JsonWriter entry;
    entry.add("radios", n)
        .add("frames_per_sec", m.frames_per_sec)
        .add("events_per_sec", m.events_per_sec)
        .add("bytes_per_radio", m.bytes_per_radio)
        .add("frames", m.frames)
        .add("digests_match", true);
    char key[32];
    std::snprintf(key, sizeof(key), "radios_%d", n);
    scale_json.add_object(key, entry);
  }
  }

  // ---- fleet hot path: batch+interned vs. scalar+minted -------------------
  // Sized so each channel partition (~110 radios) sits comfortably past the
  // indexed_scan_threshold: the legacy contrast must exercise the grid, not
  // the small-partition scan both arms would share.
  bench::JsonWriter fleet_json;
  if (section_on("fleet")) {
  constexpr int kFleetClients = 200;
  constexpr int kFleetAps = 20;
  const sim::Time kFleetDuration = sim::Time::seconds(30);
  fleet_hotpath_run(true, kFleetClients, kFleetAps,
                    sim::Time::seconds(3));  // warm allocators/caches
  const FleetMeasurement fleet_fast =
      fleet_hotpath_run(true, kFleetClients, kFleetAps, kFleetDuration);
  const FleetMeasurement fleet_slow =
      fleet_hotpath_run(false, kFleetClients, kFleetAps, kFleetDuration);
  SPIDER_CHECK(fleet_fast.digest == fleet_slow.digest)
      << "batched/interned fleet run diverged from the scalar reference";
  SPIDER_CHECK(fleet_fast.events == fleet_slow.events)
      << "fleet arms executed different event counts";
  const double fleet_speedup =
      fleet_fast.events_per_sec / fleet_slow.events_per_sec;
  std::printf("fleet:        %d clients x %d APs, %llu events: %.3g events/s\n"
              "              batched+interned, %.3g events/s scalar+minted\n"
              "              (speedup %.2fx, digests identical)\n",
              kFleetClients, kFleetAps,
              static_cast<unsigned long long>(fleet_fast.events),
              fleet_fast.events_per_sec, fleet_slow.events_per_sec,
              fleet_speedup);
  fleet_json.add("clients", kFleetClients)
      .add("aps", kFleetAps)
      .add("events", fleet_fast.events)
      .add("events_per_sec_batched", fleet_fast.events_per_sec)
      .add("events_per_sec_scalar", fleet_slow.events_per_sec)
      .add("speedup", fleet_speedup)
      .add("digests_match", true);
  }

  // ---- sharded single world: 1 strip vs. K strips, digest-gated -----------
  // Speedup is measured on frames/s, not events/s: frames_sent is
  // shard-invariant (and checked), while event counts grow with K by the
  // halo copies. The N-vs-1 digest equality is the determinism headline —
  // same world, bit for bit, at every strip count.
  bench::JsonWriter shard_json;
  if (section_on("shard")) {
  const unsigned shard_count =
      shards_override > 0
          ? static_cast<unsigned>(shards_override)
          : std::max(1u, std::min(8u, sim::ThreadPool::default_thread_count()));
  constexpr int kShardRadios = 100'000;
  const sim::Time kShardDuration = sim::Time::millis(30);
  const phy::ShardScenario shard_scenario =
      core::make_scale_shard_scenario(kShardRadios, 97, kShardDuration);
  {
    // Warm allocators on a small world before timing the real arms.
    const phy::ShardScenario warm =
        core::make_scale_shard_scenario(2'000, 97, sim::Time::millis(5));
    sharded_world_run(warm, 1, nullptr);
  }
  sim::ThreadPool shard_pool(shard_count);
  const ShardMeasurement unsharded =
      sharded_world_run(shard_scenario, 1, nullptr);
  const ShardMeasurement sharded =
      sharded_world_run(shard_scenario, shard_count, &shard_pool);
  SPIDER_CHECK(sharded.digest == unsharded.digest)
      << shard_count << "-shard world diverged from the 1-shard reference";
  SPIDER_CHECK(sharded.stats.frames_sent == unsharded.stats.frames_sent)
      << "shard arms sent different frame counts";
  SPIDER_CHECK(sharded.stats.message_drops == 0)
      << "cross-shard mailboxes dropped messages";
  const double shard_fps_1 =
      static_cast<double>(unsharded.stats.frames_sent) / unsharded.seconds;
  const double shard_fps_n =
      static_cast<double>(sharded.stats.frames_sent) / sharded.seconds;
  const double shard_speedup = shard_fps_n / shard_fps_1;
  std::printf(
      "shard:        %d radios, %llu windows: %.3g frames/s on 1 shard,\n"
      "              %.3g frames/s on %u shards (%u workers)  (speedup "
      "%.2fx,\n"
      "              %llu halo msgs, %llu migrations, 0 drops, digests "
      "identical)\n",
      kShardRadios, static_cast<unsigned long long>(sharded.stats.windows),
      shard_fps_1, shard_fps_n, sharded.stats.shards, sharded.stats.workers,
      shard_speedup,
      static_cast<unsigned long long>(sharded.stats.halo_messages),
      static_cast<unsigned long long>(sharded.stats.migrations));
  shard_json.add("radios", kShardRadios)
      .add("sim_millis", kShardDuration.us() / 1000)
      .add("windows", sharded.stats.windows)
      .add("frames", sharded.stats.frames_sent)
      .add("frames_per_sec_1shard", shard_fps_1)
      .add("frames_per_sec_sharded", shard_fps_n)
      .add("shards", sharded.stats.shards)
      .add("workers", sharded.stats.workers)
      .add("speedup", shard_speedup)
      .add("halo_messages", sharded.stats.halo_messages)
      .add("migrations", sharded.stats.migrations)
      .add("retunes_started", sharded.stats.retunes_started)
      .add("message_drops", sharded.stats.message_drops)
      .add("mailbox_high_water",
           static_cast<std::uint64_t>(sharded.stats.mailbox_high_water))
      .add("digests_match", true);
  }

  // ---- sweep: serial vs. parallel -----------------------------------------
  bench::JsonWriter sweep;
  if (section_on("sweep")) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27, 37, 47, 57, 67, 77};
  const auto serial = core::run_seed_sweep(seeds, sweep_config, 1);
  const auto parallel = core::run_seed_sweep(seeds, sweep_config, 0);

  bool digests_match = serial.runs.size() == parallel.runs.size();
  for (std::size_t i = 0; digests_match && i < serial.runs.size(); ++i) {
    digests_match = serial.runs[i].digest == parallel.runs[i].digest;
  }
  SPIDER_CHECK(digests_match)
      << "parallel sweep diverged from serial execution";
  const double sweep_speedup = serial.wall_seconds / parallel.wall_seconds;
  std::uint64_t total_events = 0;
  for (const auto& run : serial.runs) total_events += run.events_executed;
  std::printf("sweep:        %zu runs x 120 sim-s, %.2fs serial -> %.2fs on\n"
              "              %u threads  (speedup %.2fx, digests %s)\n",
              seeds.size(), serial.wall_seconds, parallel.wall_seconds,
              parallel.threads, sweep_speedup,
              digests_match ? "identical" : "DIVERGED");
  sweep.add("replications", static_cast<std::uint64_t>(seeds.size()))
      .add("sim_seconds_each", 120)
      .add("events_total", total_events)
      .add("serial_seconds", serial.wall_seconds)
      .add("parallel_seconds", parallel.wall_seconds)
      .add("parallel_threads", parallel.threads)
      .add("speedup", sweep_speedup)
      .add("digests_match", digests_match)
      .add_hex("combined_digest", parallel.combined_digest());
  }

  // ---- artifact -----------------------------------------------------------
  bench::JsonWriter doc;
  // hardware_threads is what the OS reports, default_pool_threads what a
  // ThreadPool(0) actually spawns; sections that fan out record the worker
  // count they really used (sweep.parallel_threads, shard.workers) so the
  // artifact says how parallel each number was, not just how parallel the
  // machine could have been. A --section run emits only the sections it
  // measured, so a partial artifact can never satisfy the full-baseline gate
  // by accident.
  doc.add("schema", "spider-bench-perf-v1")
      .add("hardware_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .add("default_pool_threads", sim::ThreadPool::default_thread_count());
  if (section_on("event_queue")) doc.add_object("event_queue", event_queue);
  if (section_on("stream")) doc.add_object("stream", stream_json);
  if (section_on("phy")) doc.add_object("phy", phy_json);
  if (section_on("scale")) doc.add_object("scale", scale_json);
  if (section_on("fleet")) doc.add_object("fleet", fleet_json);
  if (section_on("shard")) doc.add_object("shard", shard_json);
  if (section_on("sweep")) doc.add_object("sweep", sweep);
  if (!doc.write_file(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path);
    return 1;
  }
  std::printf("\nwrote %s\n", out_path);
  return sink == 0xdead ? 2 : 0;  // keep `sink` observable
}
