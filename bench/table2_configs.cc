// Table 2 — Average throughput and connectivity for the four Spider
// configurations plus the stock-driver baseline, on the Amherst-style
// downtown drive, with the channel-6 single-AP and stock rows repeated on
// the Boston-style deployment (the paper's external validation).
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

struct Row {
  double throughput_kBps = 0.0;
  double connectivity_pct = 0.0;
};

template <typename MakeWorld>
Row average_runs(MakeWorld make_world, int seeds = 3) {
  std::vector<std::uint64_t> seed_list;
  for (int s = 0; s < seeds; ++s) {
    seed_list.push_back(static_cast<std::uint64_t>(7 + 10 * s));
  }
  const auto runs = bench::run_seed_replications(seed_list, make_world);
  Row row;
  for (const auto& r : runs) {
    row.throughput_kBps += r.avg_throughput_kBps() / seeds;
    row.connectivity_pct += r.connectivity_percent() / seeds;
  }
  return row;
}

void print_row(const char* label, const Row& row) {
  std::printf("  %-34s %8.1f KB/s   %5.1f%%\n", label, row.throughput_kBps,
              row.connectivity_pct);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "table2_configs",
      "Table 2 — avg. throughput and connectivity per configuration");
  std::printf("(each row: mean of 3 seeds, 600 s drives at 10 m/s)\n\n");

  print_row("(1) Channel 1, Multi-AP",
            average_runs([](std::uint64_t seed) {
              auto cfg = bench::amherst_drive(seed);
              cfg.spider = core::single_channel_multi_ap(1);
              return cfg;
            }));
  print_row("(2) Channel 1, Single-AP",
            average_runs([](std::uint64_t seed) {
              auto cfg = bench::amherst_drive(seed);
              cfg.spider = core::single_channel_single_ap(1);
              return cfg;
            }));
  print_row("(3) 3 channels, Multi-AP",
            average_runs([](std::uint64_t seed) {
              auto cfg = bench::amherst_drive(seed);
              cfg.spider = core::multi_channel_multi_ap();
              return cfg;
            }));
  print_row("(4) 3 channels, Single-AP",
            average_runs([](std::uint64_t seed) {
              auto cfg = bench::amherst_drive(seed);
              cfg.spider = core::multi_channel_single_ap();
              return cfg;
            }));
  print_row("(2) Channel 6, Single-AP (Boston)*",
            average_runs([](std::uint64_t seed) {
              auto cfg = bench::boston_drive(seed);
              cfg.spider = core::single_channel_multi_ap(6);
              cfg.spider.multi_ap = false;
              cfg.spider.max_interfaces = 1;
              return cfg;
            }));
  print_row("Stock driver (Boston)*",
            average_runs([](std::uint64_t seed) {
              auto cfg = bench::boston_drive(seed);
              cfg.driver = core::DriverKind::kStock;
              return cfg;
            }));

  std::printf(
      "\npaper's values:   121.5/35.5  28.0/22.3  28.8/44.6  77.9/40.2\n"
      "                  90.7/36.4 (Boston)   35.9/18.0 (MadWiFi, Boston)\n"
      "expected shape: (1) dominates throughput by ~3-4x over (2); the\n"
      "multi-channel rows trade throughput for reach; stock trails Spider.\n"
      "(Connectivity ordering between (1) and (3) is layout-dependent in\n"
      "our simulator; see EXPERIMENTS.md.)\n");
  return 0;
}
