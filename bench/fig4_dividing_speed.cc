// Fig. 4 — Maximum aggregated bandwidth per channel vs. node speed for the
// paper's three two-channel scenarios (offered splits 25/75, 50/50, 75/25 of
// Bw = 11 Mbps), solved with the Eq. 8-10 optimizer. For every scenario
// there is a dividing speed above which the optimal schedule abandons the
// to-be-joined channel.
//
// Calibration note (documented in EXPERIMENTS.md): with the paper's nominal
// 100 m range the dividing speeds land at ~15-29 m/s; using the *effective*
// range implied by the paper's own measured encounter durations (median 8 s
// at town speeds -> ~50 m) brings them into the <=10-15 m/s band the paper
// reports. Both are printed.
#include <cstdio>

#include "bench/common.h"
#include "model/throughput_opt.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig4_dividing_speed",
                      "Fig. 4 — optimal per-channel bandwidth vs. speed");

  model::OptimizerParams op;
  op.join.beta_max = 10.0;  // paper's Fig. 4 parameters
  const double Bw = op.wireless_bps;

  struct Scenario {
    double joined_share;     // channel 1, already joined
    double available_share;  // channel 2, pending join
  };
  const Scenario scenarios[] = {{0.25, 0.75}, {0.50, 0.50}, {0.75, 0.25}};
  const double speeds[] = {2.5, 3.3, 5.0, 6.6, 10.0, 20.0};

  for (double range : {100.0, 50.0}) {
    std::printf("\n--- effective Wi-Fi range %.0f m ---\n", range);
    for (const auto& s : scenarios) {
      const model::ChannelOffer ch1{s.joined_share * Bw, 0.0};
      const model::ChannelOffer ch2{0.0, s.available_share * Bw};
      std::printf("scenario: ch1 joined %.0f%%Bw, ch2 available %.0f%%Bw\n",
                  100 * s.joined_share, 100 * s.available_share);
      std::printf("  %-10s %-8s %-12s %-12s\n", "speed m/s", "T (s)",
                  "ch1 (kbps)", "ch2 (kbps)");
      for (double v : speeds) {
        op.time_in_range = model::time_in_range_for_speed(v, range);
        const auto a = model::optimize_two_channels(op, ch1, ch2);
        std::printf("  %-10.1f %-8.1f %-12.0f %-12.0f\n", v, op.time_in_range,
                    a.extracted_bps[0] / 1e3, a.extracted_bps[1] / 1e3);
      }
      const double dividing =
          model::dividing_speed(op, ch1, ch2, range, 0.5, 60.0, 0.05, 0.05);
      std::printf("  dividing speed (f2 < 5%%): %.1f m/s\n\n", dividing);
    }
  }
  std::printf(
      "expected shape: ch2's extraction shrinks with speed and vanishes\n"
      "above the dividing speed; the dividing speed drops as the already-\n"
      "joined share grows (paper: below ~10 m/s for most scenarios).\n");
  return 0;
}
