// Minimal JSON emitter for machine-readable bench artifacts (BENCH_*.json).
//
// Scope: exactly what the perf trajectory needs — objects, arrays, numbers,
// strings, bools — built into a std::string and written atomically enough
// for CI artifact upload (single fwrite). Not a general serializer; if a
// bench needs more, grow this, don't hand-roll printf JSON in the bench.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace spider::bench {

class JsonWriter {
 public:
  JsonWriter() { out_.push_back('{'); }

  JsonWriter& add(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return add_raw(key, buf);
  }
  JsonWriter& add(std::string_view key, std::uint64_t value) {
    return add_raw(key, std::to_string(value));
  }
  JsonWriter& add(std::string_view key, std::int64_t value) {
    return add_raw(key, std::to_string(value));
  }
  JsonWriter& add(std::string_view key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  JsonWriter& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  JsonWriter& add(std::string_view key, bool value) {
    return add_raw(key, value ? "true" : "false");
  }
  JsonWriter& add(std::string_view key, std::string_view value) {
    return add_raw(key, quoted(value));
  }
  // Without this overload a string literal would take the bool overload
  // (pointer-to-bool is a standard conversion; string_view is user-defined).
  JsonWriter& add(std::string_view key, const char* value) {
    return add_raw(key, quoted(value));
  }
  // Hex form for digests, so the JSON matches the printf'd diagnostics.
  JsonWriter& add_hex(std::string_view key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                  static_cast<unsigned long long>(value));
    return add_raw(key, buf);
  }
  // Nests a finished object (or any pre-rendered JSON value).
  JsonWriter& add_object(std::string_view key, const JsonWriter& nested) {
    return add_raw(key, nested.str());
  }

  std::string str() const { return out_ + "}"; }

  // Writes the document (plus trailing newline) to `path`; returns success.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = str() + "\n";
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  static std::string quoted(std::string_view value) {
    std::string q = "\"";
    for (char c : value) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\t': q += "\\t"; break;
        default: q.push_back(c);
      }
    }
    q.push_back('"');
    return q;
  }

  JsonWriter& add_raw(std::string_view key, std::string_view value) {
    if (out_.size() > 1) out_.push_back(',');
    out_ += quoted(key);
    out_.push_back(':');
    out_ += value;
    return *this;
  }

  std::string out_;
};

}  // namespace spider::bench
