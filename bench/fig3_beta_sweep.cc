// Fig. 3 — Probability of join success vs. the AP's maximum response time
// beta_max, for several channel fractions, with and without switching
// overhead. Shows that (a) faster APs are disproportionately easier to join
// and (b) removing the switching delay w barely helps — the schedule and
// the DHCP response time dominate.
#include <cstdio>

#include "bench/common.h"
#include "model/join_model.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig3_beta_sweep",
                      "Fig. 3 — join probability vs. beta_max");
  std::printf("params: D=500ms c=100ms beta_min=500ms h=10%% t=4s\n\n");

  struct Series {
    double fraction;
    double switch_delay;
    const char* label;
  };
  const Series series[] = {
      {0.10, 0.000, "f=.10 (w=0 ms)"}, {0.10, 0.007, "f=.10"},
      {0.25, 0.007, "f=.25"},          {0.40, 0.007, "f=.40"},
      {0.50, 0.007, "f=.50"},          {0.50, 0.000, "f=.50 (w=0 ms)"},
  };

  std::printf("  %-10s", "beta_max");
  for (const auto& s : series) std::printf(" %-16s", s.label);
  std::printf("\n");

  for (double beta_max = 0.5; beta_max <= 10.01; beta_max += 0.5) {
    std::printf("  %-10.1f", beta_max);
    for (const auto& s : series) {
      model::JoinModelParams p;
      p.beta_max = beta_max;
      p.switch_delay = s.switch_delay;
      std::printf(" %-16.3f", model::join_probability(p, s.fraction, 4.0));
    }
    std::printf("\n");
  }

  // The paper's two headline observations on this figure:
  model::JoinModelParams p5;
  p5.beta_max = 5.0;
  std::printf("\ncheck: p(f=.30, 4s) = %.2f (paper: ~0.75), "
              "p(f=.10, 4s) = %.2f (paper: ~0.20)\n",
              model::join_probability(p5, 0.30, 4.0),
              model::join_probability(p5, 0.10, 4.0));
  model::JoinModelParams w0 = p5;
  w0.switch_delay = 0.0;
  std::printf("check: removing w changes p(f=.50) by %.3f "
              "(paper: negligible)\n",
              model::join_probability(w0, 0.5, 4.0) -
                  model::join_probability(p5, 0.5, 4.0));
  return 0;
}
