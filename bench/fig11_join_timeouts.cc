// Fig. 11 — CDF of the time to join (association + DHCP) as a function of
// the DHCP timeout, on one channel and across three channels. Reduced
// timeouts cut the median join despite raising the failure count; the
// multi-channel schedules pay a ~2x median penalty.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

trace::EmpiricalCdf run_config(bool three_channels,
                               dhcpd::DhcpClientConfig timers) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  const auto runs = bench::run_seed_replications(
      seeds, [three_channels, &timers](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        core::SpiderConfig sc = three_channels
                                    ? core::multi_channel_multi_ap()
                                    : core::single_channel_multi_ap(1);
        sc.dhcp = timers;
        sc.join_give_up = sim::Time::seconds(15);
        cfg.spider = sc;
        return cfg;
      });
  trace::EmpiricalCdf join;
  for (const auto& r : runs) {
    for (double d : r.joins.join_delay_sec.samples()) join.add(d);
  }
  return join;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig11_join_timeouts",
                      "Fig. 11 — join-time CDF vs. DHCP timeout");

  struct Row {
    const char* label;
    bool three_channels;
    dhcpd::DhcpClientConfig timers;
  };
  const Row rows[] = {
      {"200ms, channel 1", false,
       dhcpd::reduced_dhcp_timers(sim::Time::millis(200))},
      {"400ms, channel 1", false,
       dhcpd::reduced_dhcp_timers(sim::Time::millis(400))},
      {"600ms, channel 1", false,
       dhcpd::reduced_dhcp_timers(sim::Time::millis(600))},
      {"default, channel 1", false, dhcpd::default_dhcp_timers()},
      {"default, 3 channels", true, dhcpd::default_dhcp_timers()},
      {"200ms, 3 channels", true,
       dhcpd::reduced_dhcp_timers(sim::Time::millis(200))},
  };
  for (const auto& row : rows) {
    const auto cdf = run_config(row.three_channels, row.timers);
    bench::print_cdf(row.label, cdf, 15.0, 16);
  }
  std::printf(
      "\nexpected shape: reduced timeouts improve the median time to join,\n"
      "but the absolute median stays in the seconds range (the paper's 2-3 s\n"
      "~ 10-15 TCP timeouts) and roughly doubles on three channels — hence\n"
      "stay on one channel for throughput.\n");
  return 0;
}
