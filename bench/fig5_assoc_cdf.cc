// Fig. 5 — CDF of link-layer association time on channel 6 as a function of
// the fraction of the 400 ms schedule spent on that channel (the remainder
// split evenly between channels 1 and 11). Vehicular drives, link-layer
// timeout reduced to 100 ms. Association is fairly robust to switching:
// full dwell completes within ~400 ms, and lower fractions degrade the
// median without collapsing the success rate.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig5_assoc_cdf",
                      "Fig. 5 — association-time CDF vs. channel fraction");
  std::printf("setup: D=400ms, f6=x, f1=f11=(1-x)/2, link timeout 100ms,\n"
              "       vehicular drives over the Amherst-style deployment\n\n");

  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  for (double x : {0.25, 0.50, 0.75, 1.00}) {
    const auto runs =
        bench::run_seed_replications(seeds, [x](std::uint64_t seed) {
          auto cfg = bench::amherst_drive(seed);
          core::SpiderConfig sc = core::single_channel_multi_ap(6);
          sc.period = sim::Time::millis(400);
          if (x < 1.0) {
            sc.schedule = {{6, x}, {1, (1 - x) / 2}, {11, (1 - x) / 2}};
          }
          cfg.spider = sc;
          return cfg;
        });
    trace::EmpiricalCdf assoc;
    for (const auto& r : runs) {
      for (double d : r.joins.association_delay_sec.samples()) assoc.add(d);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "f6 = %.0f%%", 100 * x);
    bench::print_cdf(label, assoc, 2.0, 11);
  }
  std::printf(
      "expected shape: f6=100%% completes fastest (paper: median 200 ms,\n"
      "all within 400 ms); smaller fractions shift the CDF right but stay\n"
      "usable — association tolerates switching better than DHCP does.\n");
  return 0;
}
