// Ablation — channel-centric vs. AP-centric slicing.
//
// FatVAP-style drivers slice the radio's time across *APs*: every AP gets a
// dedicated dwell and is parked (PSM) otherwise, whether or not it shares a
// channel with the next AP — so two APs always cost two dwells plus resets.
// Spider slices across *channels*: co-channel APs ride the same dwell for
// free. We quantify the gap with two APs offering 2 Mbps each:
//   (a) both on channel 1, Spider single slice        (channel-centric)
//   (b) one on ch1 + one on ch11, 50/50 x 200 ms      (AP-centric cost model:
//       per-AP dwell + park + reset, which is what an AP slicer pays even
//       for co-channel APs)
// plus (c) the same 50/50 schedule with both APs on channel 1, showing that
// an AP-centric *policy* would still pay TCP parking costs it didn't need.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

double run(int aps_ch1, int aps_ch11, std::vector<core::ChannelSlice> schedule,
           sim::Time period) {
  const std::vector<std::uint64_t> seeds = {3, 5, 7};
  const auto runs = bench::run_seed_replications(
      seeds, [&](std::uint64_t seed) {
        auto cfg =
            bench::static_lab(seed, aps_ch1, 1, 2e6, sim::Time::seconds(120));
        for (int i = 0; i < aps_ch11; ++i) {
          mobility::ApDescriptor d = cfg.aps.front();
          d.ssid = "lab11-" + std::to_string(i);
          d.mac =
              net::MacAddress::from_index(0xB0 + static_cast<std::uint32_t>(i));
          d.subnet = net::Ipv4Address{
              (10u << 24) | (static_cast<std::uint32_t>(0xB0 + i) << 8)};
          d.position = {12.0, 5.0};
          d.channel = 11;
          cfg.aps.push_back(d);
        }
        cfg.spider = core::single_channel_multi_ap(1);
        cfg.spider.schedule = schedule;
        cfg.spider.period = period;
        return cfg;
      });
  trace::OnlineStats thr;
  for (const auto& r : runs) thr.add(r.avg_throughput_kbps());
  return thr.mean();
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_slicing",
                      "DESIGN.md ablation — channel-centric vs. AP-centric");
  std::printf("(two APs, 2 Mbps backhaul each, static client, 3 seeds)\n\n");

  const double channel_centric =
      run(2, 0, {{1, 1.0}}, sim::Time::millis(400));
  const double ap_centric_cross =
      run(1, 1, {{1, 0.5}, {11, 0.5}}, sim::Time::millis(400));

  std::printf("  %-52s %8.0f kb/s\n",
              "(a) channel-centric: 2 co-channel APs, one dwell",
              channel_centric);
  std::printf("  %-52s %8.0f kb/s\n",
              "(b) AP-centric cost: per-AP 200 ms dwells + parking",
              ap_centric_cross);
  std::printf("  %-52s %8.1fx\n", "channel-centric advantage",
              channel_centric / ap_centric_cross);
  std::printf(
      "\nexpected shape: (a) aggregates both backhauls with zero switching\n"
      "cost; (b) pays hardware resets and TCP parking on every dwell — the\n"
      "reason Spider schedules channels, not APs.\n");
  return 0;
}
