// Fig. 14 — Compares users' inter-connection gaps (how long they naturally
// go between connections) with Spider's disruption lengths. If Spider's
// disruptions are no longer than the gaps users already tolerate, open
// Wi-Fi can plausibly complement cellular for these users.
#include <cstdio>

#include "bench/common.h"
#include "trace/mesh_users.h"

using namespace spider;

namespace {

trace::EmpiricalCdf spider_disruptions(core::SpiderConfig sc) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  const auto runs =
      bench::run_seed_replications(seeds, [&sc](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        cfg.spider = sc;
        return cfg;
      });
  trace::EmpiricalCdf cdf;
  for (const auto& r : runs) {
    for (double d : r.traffic.disruption_durations_sec.samples()) cdf.add(d);
  }
  return cdf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig14_usability_gaps",
                      "Fig. 14 — user inter-connection gaps vs. disruptions");

  const auto demand = trace::generate_mesh_demand(sim::Rng(161));
  bench::print_cdf("users' inter-connection gaps (mesh trace stand-in)",
                   demand.inter_connection_sec, 300.0, 11);
  bench::print_cdf("multiple APs (ch1)",
                   spider_disruptions(core::single_channel_multi_ap(1)), 300.0,
                   11);
  bench::print_cdf("multiple APs (multi-channel)",
                   spider_disruptions(core::multi_channel_multi_ap()), 300.0,
                   11);
  std::printf(
      "\nexpected shape: the multi-channel multi-AP configuration's\n"
      "disruption CDF is comparable to the users' natural inter-connection\n"
      "gaps; the single-channel configuration shows longer outages (areas\n"
      "with no co-channel AP).\n");
  return 0;
}
