// Table 1 — Channel-switching latency (ms) of the Spider driver as a
// function of the number of connected interfaces. The latency is the PSM
// null-data to each associated AP on the old channel, the hardware reset,
// and a PS-Poll to each associated AP on the new channel. With no
// interfaces it is just the hardware reset (~4.94 ms on the paper's
// Atheros part); each additional AP adds the airtime of its PSM frames.
#include <cstdio>

#include "bench/common.h"
#include "core/client_device.h"
#include "core/spider_driver.h"
#include "phy/medium.h"
#include "tcp/tcp.h"
#include "trace/stats.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("table1_switch_latency",
                      "Table 1 — channel-switch latency vs. connected ifaces");

  std::printf("  %-24s %-10s %-10s\n", "connected interfaces", "mean (ms)",
              "stddev");
  for (int n_aps = 0; n_aps <= 4; ++n_aps) {
    trace::OnlineStats latency_ms;
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      auto cfg = bench::static_lab(seed, n_aps, 1, 2e6,
                                   sim::Time::seconds(30));
      // Split the schedule between the populated channel and an empty one so
      // the driver keeps switching; every other switch parks/wakes all
      // connected APs.
      cfg.spider = core::single_channel_multi_ap(1);
      cfg.spider.schedule = {{1, 0.5}, {11, 0.5}};
      cfg.spider.period = sim::Time::millis(400);
      core::Experiment exp(std::move(cfg));
      auto& sim = exp.simulator();
      // Sample the modeled switch latency once per period, after the world
      // has settled and the APs are connected.
      std::function<void()> sample = [&] {
        if (exp.spider()->connected_count() ==
            static_cast<std::size_t>(n_aps)) {
          latency_ms.add(exp.spider()->last_switch_latency().ms());
        }
        sim.schedule_after(sim::Time::millis(400), sample);
      };
      sim.schedule_after(sim::Time::seconds(10), sample);
      exp.run();
    }
    std::printf("  %-24d %-10.3f %-10.3f\n", n_aps, latency_ms.mean(),
                latency_ms.stddev());
  }
  std::printf(
      "\nexpected shape: ~4.94 ms base (hardware reset only), growing by\n"
      "the per-AP PSM/PS-Poll airtime to ~5.9 ms at four interfaces\n"
      "(paper: 4.942 / 4.952 / 5.266 / 5.546 / 5.945 ms).\n");
  return 0;
}
