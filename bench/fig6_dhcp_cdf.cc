// Fig. 6 — CDF of the full join (association + DHCP lease) on channel 6 as
// a function of the channel fraction and the DHCP timeout. Reducing the
// stock timers (1 s message / 3 s attempt / 60 s idle) to 100 ms speeds up
// the median join dramatically at full dwell, but fractional schedules make
// DHCP fragile: the lease exchange cannot be parked with PSM.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

trace::EmpiricalCdf run_config(double f6, dhcpd::DhcpClientConfig timers,
                               const char* label) {
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  const auto runs = bench::run_seed_replications(
      seeds,
      [f6, &timers](std::uint64_t seed) {
        auto cfg = spider::bench::amherst_drive(seed);
        core::SpiderConfig sc = core::single_channel_multi_ap(6);
        sc.period = sim::Time::millis(400);
        if (f6 < 1.0) {
          sc.schedule = {{6, f6}, {1, (1 - f6) / 2}, {11, (1 - f6) / 2}};
        }
        sc.dhcp = timers;
        sc.join_give_up = sim::Time::seconds(15);
        cfg.spider = sc;
        return cfg;
      },
      label);
  trace::EmpiricalCdf join;
  for (const auto& r : runs) {
    for (double d : r.joins.join_delay_sec.samples()) join.add(d);
  }
  return join;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig6_dhcp_cdf",
                      "Fig. 6 — join (assoc+DHCP) CDF vs. fraction & timers");

  const auto reduced = dhcpd::reduced_dhcp_timers(sim::Time::millis(100));
  struct Row {
    double f6;
    dhcpd::DhcpClientConfig timers;
    const char* label;
  };
  const Row rows[] = {
      {0.25, reduced, "25% - 100ms"},
      {0.50, reduced, "50% - 100ms"},
      {1.00, reduced, "100% - 100ms"},
      {1.00, dhcpd::default_dhcp_timers(), "100% - default"},
  };
  for (const auto& row : rows) {
    bench::print_cdf(row.label, run_config(row.f6, row.timers, row.label),
                     15.0, 16);
  }
  std::printf(
      "expected shape: 100%%+reduced joins fastest (paper: median 1.3 s vs\n"
      "2.5 s with default timers); at 25%% the accumulated failures drag the\n"
      "CDF far right — DHCP is not robust to small schedule fractions.\n");
  return 0;
}
