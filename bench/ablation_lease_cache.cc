// Ablation — DHCP lease caching (Section 2.1.2: "techniques such as
// caching dhcp leases, maintaining a history of APs with short join times
// ... are essential for multi-AP systems"). A commuter repeats the same
// loop, so most encounters after the first lap are with already-leased
// APs; INIT-REBOOT (REQUEST without DISCOVER) skips the slowest part of
// the join. We compare cold vs. cached joins over multi-lap drives.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

namespace {

struct Outcome {
  double median_join_sec = 0.0;
  double throughput_kBps = 0.0;
  double connectivity_pct = 0.0;
};

Outcome run(bool cache) {
  const std::vector<std::uint64_t> seeds = {7, 17, 27};
  const auto runs =
      bench::run_seed_replications(seeds, [cache](std::uint64_t seed) {
        auto cfg = bench::amherst_drive(seed, sim::Time::seconds(1200));
        cfg.spider = core::single_channel_multi_ap(1);
        cfg.spider.cache_leases = cache;
        return cfg;
      });
  trace::EmpiricalCdf joins;
  trace::OnlineStats thr, conn;
  for (const auto& r : runs) {
    for (double d : r.joins.join_delay_sec.samples()) joins.add(d);
    thr.add(r.avg_throughput_kBps());
    conn.add(r.connectivity_percent());
  }
  return {joins.empty() ? 0.0 : joins.median(), thr.mean(), conn.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("ablation_lease_cache",
                      "Section 2.1.2 — DHCP lease caching (INIT-REBOOT)");
  std::printf("(20-minute loop drives: laps 2+ revisit already-leased APs)\n\n");
  std::printf("  %-18s %-18s %-14s %-14s\n", "lease cache",
              "median join (s)", "thr (KB/s)", "conn (%)");
  const Outcome cold = run(false);
  const Outcome cached = run(true);
  std::printf("  %-18s %-18.2f %-14.1f %-14.1f\n", "off (paper)",
              cold.median_join_sec, cold.throughput_kBps,
              cold.connectivity_pct);
  std::printf("  %-18s %-18.2f %-14.1f %-14.1f\n", "on (INIT-REBOOT)",
              cached.median_join_sec, cached.throughput_kBps,
              cached.connectivity_pct);
  std::printf(
      "\nexpected shape: caching cuts the median join (the OFFER wait is\n"
      "the slowest stage) and converts the savings into throughput and\n"
      "connectivity on every revisit — the quantified version of the\n"
      "paper's claim that lease caching is essential at vehicular speed.\n");
  return 0;
}
