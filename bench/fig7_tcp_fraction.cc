// Fig. 7 — Average TCP throughput vs. the percentage of time the driver
// spends on the primary channel, with the total schedule fixed at
// D = 400 ms (about two typical RTTs). Indoor static setup: the throughput
// should grow roughly proportionally to the primary-channel share.
#include <cstdio>

#include "bench/common.h"

using namespace spider;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header("fig7_tcp_fraction",
                      "Fig. 7 — TCP throughput vs. %time on primary channel");
  std::printf("setup: static client, one AP on ch1 (5 Mbps backhaul),\n"
              "       D=400ms, remainder split between ch6 and ch11\n\n");
  std::printf("  %-12s %-18s\n", "% primary", "throughput (kb/s)");

  const std::vector<std::uint64_t> seeds = {3, 5, 7};
  for (double f : {0.125, 0.25, 0.375, 0.50, 0.625, 0.75, 0.875, 1.0}) {
    const auto runs =
        bench::run_seed_replications(seeds, [f](std::uint64_t seed) {
          auto cfg =
              bench::static_lab(seed, 1, 1, 5e6, sim::Time::seconds(120));
          core::SpiderConfig sc = core::single_channel_multi_ap(1);
          sc.period = sim::Time::millis(400);
          if (f < 1.0) {
            sc.schedule = {{1, f}, {6, (1 - f) / 2}, {11, (1 - f) / 2}};
          }
          cfg.spider = sc;
          return cfg;
        });
    trace::OnlineStats kbps;
    for (const auto& r : runs) kbps.add(r.avg_throughput_kbps());
    std::printf("  %-12.1f %8.0f  (+/- %.0f)\n", 100 * f, kbps.mean(),
                kbps.stddev());
  }
  std::printf(
      "\nexpected shape: monotone, roughly proportional to the primary\n"
      "share (paper: ~0 -> ~4000 kb/s), because 400 ms away-time stays\n"
      "below the RTO at these RTTs.\n");
  return 0;
}
