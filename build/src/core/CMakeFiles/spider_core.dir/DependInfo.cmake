
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ap_history.cc" "src/core/CMakeFiles/spider_core.dir/ap_history.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/ap_history.cc.o.d"
  "/root/repo/src/core/client_device.cc" "src/core/CMakeFiles/spider_core.dir/client_device.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/client_device.cc.o.d"
  "/root/repo/src/core/configs.cc" "src/core/CMakeFiles/spider_core.dir/configs.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/configs.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/spider_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/fleet.cc" "src/core/CMakeFiles/spider_core.dir/fleet.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/fleet.cc.o.d"
  "/root/repo/src/core/flow_manager.cc" "src/core/CMakeFiles/spider_core.dir/flow_manager.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/flow_manager.cc.o.d"
  "/root/repo/src/core/spider_driver.cc" "src/core/CMakeFiles/spider_core.dir/spider_driver.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/spider_driver.cc.o.d"
  "/root/repo/src/core/stock_driver.cc" "src/core/CMakeFiles/spider_core.dir/stock_driver.cc.o" "gcc" "src/core/CMakeFiles/spider_core.dir/stock_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backhaul/CMakeFiles/spider_backhaul.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/spider_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcpd/CMakeFiles/spider_dhcpd.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/spider_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/spider_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spider_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/spider_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
