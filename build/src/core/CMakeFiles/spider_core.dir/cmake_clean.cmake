file(REMOVE_RECURSE
  "CMakeFiles/spider_core.dir/ap_history.cc.o"
  "CMakeFiles/spider_core.dir/ap_history.cc.o.d"
  "CMakeFiles/spider_core.dir/client_device.cc.o"
  "CMakeFiles/spider_core.dir/client_device.cc.o.d"
  "CMakeFiles/spider_core.dir/configs.cc.o"
  "CMakeFiles/spider_core.dir/configs.cc.o.d"
  "CMakeFiles/spider_core.dir/experiment.cc.o"
  "CMakeFiles/spider_core.dir/experiment.cc.o.d"
  "CMakeFiles/spider_core.dir/fleet.cc.o"
  "CMakeFiles/spider_core.dir/fleet.cc.o.d"
  "CMakeFiles/spider_core.dir/flow_manager.cc.o"
  "CMakeFiles/spider_core.dir/flow_manager.cc.o.d"
  "CMakeFiles/spider_core.dir/spider_driver.cc.o"
  "CMakeFiles/spider_core.dir/spider_driver.cc.o.d"
  "CMakeFiles/spider_core.dir/stock_driver.cc.o"
  "CMakeFiles/spider_core.dir/stock_driver.cc.o.d"
  "libspider_core.a"
  "libspider_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
