file(REMOVE_RECURSE
  "CMakeFiles/spider_trace.dir/connectivity.cc.o"
  "CMakeFiles/spider_trace.dir/connectivity.cc.o.d"
  "CMakeFiles/spider_trace.dir/export.cc.o"
  "CMakeFiles/spider_trace.dir/export.cc.o.d"
  "CMakeFiles/spider_trace.dir/frame_log.cc.o"
  "CMakeFiles/spider_trace.dir/frame_log.cc.o.d"
  "CMakeFiles/spider_trace.dir/mesh_users.cc.o"
  "CMakeFiles/spider_trace.dir/mesh_users.cc.o.d"
  "CMakeFiles/spider_trace.dir/stats.cc.o"
  "CMakeFiles/spider_trace.dir/stats.cc.o.d"
  "libspider_trace.a"
  "libspider_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
