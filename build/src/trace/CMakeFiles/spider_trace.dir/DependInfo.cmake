
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/connectivity.cc" "src/trace/CMakeFiles/spider_trace.dir/connectivity.cc.o" "gcc" "src/trace/CMakeFiles/spider_trace.dir/connectivity.cc.o.d"
  "/root/repo/src/trace/export.cc" "src/trace/CMakeFiles/spider_trace.dir/export.cc.o" "gcc" "src/trace/CMakeFiles/spider_trace.dir/export.cc.o.d"
  "/root/repo/src/trace/frame_log.cc" "src/trace/CMakeFiles/spider_trace.dir/frame_log.cc.o" "gcc" "src/trace/CMakeFiles/spider_trace.dir/frame_log.cc.o.d"
  "/root/repo/src/trace/mesh_users.cc" "src/trace/CMakeFiles/spider_trace.dir/mesh_users.cc.o" "gcc" "src/trace/CMakeFiles/spider_trace.dir/mesh_users.cc.o.d"
  "/root/repo/src/trace/stats.cc" "src/trace/CMakeFiles/spider_trace.dir/stats.cc.o" "gcc" "src/trace/CMakeFiles/spider_trace.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
