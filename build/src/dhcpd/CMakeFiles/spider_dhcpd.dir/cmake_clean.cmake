file(REMOVE_RECURSE
  "CMakeFiles/spider_dhcpd.dir/dhcp_client.cc.o"
  "CMakeFiles/spider_dhcpd.dir/dhcp_client.cc.o.d"
  "CMakeFiles/spider_dhcpd.dir/dhcp_server.cc.o"
  "CMakeFiles/spider_dhcpd.dir/dhcp_server.cc.o.d"
  "libspider_dhcpd.a"
  "libspider_dhcpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_dhcpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
