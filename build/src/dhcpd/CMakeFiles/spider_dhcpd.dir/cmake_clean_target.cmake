file(REMOVE_RECURSE
  "libspider_dhcpd.a"
)
