# Empty dependencies file for spider_dhcpd.
# This may be replaced when dependencies are built.
