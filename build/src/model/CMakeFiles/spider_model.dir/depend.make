# Empty dependencies file for spider_model.
# This may be replaced when dependencies are built.
