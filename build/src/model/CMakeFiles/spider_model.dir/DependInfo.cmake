
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/ap_selection_problem.cc" "src/model/CMakeFiles/spider_model.dir/ap_selection_problem.cc.o" "gcc" "src/model/CMakeFiles/spider_model.dir/ap_selection_problem.cc.o.d"
  "/root/repo/src/model/join_model.cc" "src/model/CMakeFiles/spider_model.dir/join_model.cc.o" "gcc" "src/model/CMakeFiles/spider_model.dir/join_model.cc.o.d"
  "/root/repo/src/model/join_sim.cc" "src/model/CMakeFiles/spider_model.dir/join_sim.cc.o" "gcc" "src/model/CMakeFiles/spider_model.dir/join_sim.cc.o.d"
  "/root/repo/src/model/throughput_opt.cc" "src/model/CMakeFiles/spider_model.dir/throughput_opt.cc.o" "gcc" "src/model/CMakeFiles/spider_model.dir/throughput_opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spider_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
