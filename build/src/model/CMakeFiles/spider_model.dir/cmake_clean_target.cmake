file(REMOVE_RECURSE
  "libspider_model.a"
)
