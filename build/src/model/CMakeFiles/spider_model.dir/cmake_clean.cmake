file(REMOVE_RECURSE
  "CMakeFiles/spider_model.dir/ap_selection_problem.cc.o"
  "CMakeFiles/spider_model.dir/ap_selection_problem.cc.o.d"
  "CMakeFiles/spider_model.dir/join_model.cc.o"
  "CMakeFiles/spider_model.dir/join_model.cc.o.d"
  "CMakeFiles/spider_model.dir/join_sim.cc.o"
  "CMakeFiles/spider_model.dir/join_sim.cc.o.d"
  "CMakeFiles/spider_model.dir/throughput_opt.cc.o"
  "CMakeFiles/spider_model.dir/throughput_opt.cc.o.d"
  "libspider_model.a"
  "libspider_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
