file(REMOVE_RECURSE
  "CMakeFiles/spider_phy.dir/auto_rate.cc.o"
  "CMakeFiles/spider_phy.dir/auto_rate.cc.o.d"
  "CMakeFiles/spider_phy.dir/energy.cc.o"
  "CMakeFiles/spider_phy.dir/energy.cc.o.d"
  "CMakeFiles/spider_phy.dir/medium.cc.o"
  "CMakeFiles/spider_phy.dir/medium.cc.o.d"
  "CMakeFiles/spider_phy.dir/radio.cc.o"
  "CMakeFiles/spider_phy.dir/radio.cc.o.d"
  "libspider_phy.a"
  "libspider_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
