
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/auto_rate.cc" "src/phy/CMakeFiles/spider_phy.dir/auto_rate.cc.o" "gcc" "src/phy/CMakeFiles/spider_phy.dir/auto_rate.cc.o.d"
  "/root/repo/src/phy/energy.cc" "src/phy/CMakeFiles/spider_phy.dir/energy.cc.o" "gcc" "src/phy/CMakeFiles/spider_phy.dir/energy.cc.o.d"
  "/root/repo/src/phy/medium.cc" "src/phy/CMakeFiles/spider_phy.dir/medium.cc.o" "gcc" "src/phy/CMakeFiles/spider_phy.dir/medium.cc.o.d"
  "/root/repo/src/phy/radio.cc" "src/phy/CMakeFiles/spider_phy.dir/radio.cc.o" "gcc" "src/phy/CMakeFiles/spider_phy.dir/radio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
