# Empty compiler generated dependencies file for spider_backhaul.
# This may be replaced when dependencies are built.
