file(REMOVE_RECURSE
  "CMakeFiles/spider_backhaul.dir/ap_host.cc.o"
  "CMakeFiles/spider_backhaul.dir/ap_host.cc.o.d"
  "CMakeFiles/spider_backhaul.dir/wired_link.cc.o"
  "CMakeFiles/spider_backhaul.dir/wired_link.cc.o.d"
  "libspider_backhaul.a"
  "libspider_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
