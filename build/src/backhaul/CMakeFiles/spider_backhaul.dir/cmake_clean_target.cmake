file(REMOVE_RECURSE
  "libspider_backhaul.a"
)
