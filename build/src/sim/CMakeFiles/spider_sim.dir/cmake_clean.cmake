file(REMOVE_RECURSE
  "CMakeFiles/spider_sim.dir/random.cc.o"
  "CMakeFiles/spider_sim.dir/random.cc.o.d"
  "CMakeFiles/spider_sim.dir/simulator.cc.o"
  "CMakeFiles/spider_sim.dir/simulator.cc.o.d"
  "CMakeFiles/spider_sim.dir/time.cc.o"
  "CMakeFiles/spider_sim.dir/time.cc.o.d"
  "libspider_sim.a"
  "libspider_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
