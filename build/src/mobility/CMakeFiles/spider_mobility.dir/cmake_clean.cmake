file(REMOVE_RECURSE
  "CMakeFiles/spider_mobility.dir/deployment.cc.o"
  "CMakeFiles/spider_mobility.dir/deployment.cc.o.d"
  "CMakeFiles/spider_mobility.dir/route.cc.o"
  "CMakeFiles/spider_mobility.dir/route.cc.o.d"
  "libspider_mobility.a"
  "libspider_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
