file(REMOVE_RECURSE
  "CMakeFiles/spider_net.dir/addr.cc.o"
  "CMakeFiles/spider_net.dir/addr.cc.o.d"
  "CMakeFiles/spider_net.dir/frame.cc.o"
  "CMakeFiles/spider_net.dir/frame.cc.o.d"
  "libspider_net.a"
  "libspider_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
