file(REMOVE_RECURSE
  "CMakeFiles/spider_mac.dir/access_point.cc.o"
  "CMakeFiles/spider_mac.dir/access_point.cc.o.d"
  "CMakeFiles/spider_mac.dir/client_session.cc.o"
  "CMakeFiles/spider_mac.dir/client_session.cc.o.d"
  "libspider_mac.a"
  "libspider_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
