file(REMOVE_RECURSE
  "libspider_tcp.a"
)
