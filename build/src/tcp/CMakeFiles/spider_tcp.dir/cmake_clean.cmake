file(REMOVE_RECURSE
  "CMakeFiles/spider_tcp.dir/tcp.cc.o"
  "CMakeFiles/spider_tcp.dir/tcp.cc.o.d"
  "libspider_tcp.a"
  "libspider_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
