# Empty compiler generated dependencies file for spider_tcp.
# This may be replaced when dependencies are built.
