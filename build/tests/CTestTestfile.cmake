# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/dhcp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/backhaul_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/model_join_test[1]_include.cmake")
include("/root/repo/build/tests/model_opt_test[1]_include.cmake")
include("/root/repo/build/tests/core_history_test[1]_include.cmake")
include("/root/repo/build/tests/core_device_test[1]_include.cmake")
include("/root/repo/build/tests/core_driver_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/configs_test[1]_include.cmake")
include("/root/repo/build/tests/selection_problem_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/lease_cache_test[1]_include.cmake")
include("/root/repo/build/tests/auto_rate_test[1]_include.cmake")
include("/root/repo/build/tests/final_coverage_test[1]_include.cmake")
