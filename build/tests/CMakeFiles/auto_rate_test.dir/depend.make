# Empty dependencies file for auto_rate_test.
# This may be replaced when dependencies are built.
