file(REMOVE_RECURSE
  "CMakeFiles/auto_rate_test.dir/auto_rate_test.cc.o"
  "CMakeFiles/auto_rate_test.dir/auto_rate_test.cc.o.d"
  "auto_rate_test"
  "auto_rate_test.pdb"
  "auto_rate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_rate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
