file(REMOVE_RECURSE
  "CMakeFiles/model_join_test.dir/model_join_test.cc.o"
  "CMakeFiles/model_join_test.dir/model_join_test.cc.o.d"
  "model_join_test"
  "model_join_test.pdb"
  "model_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
