# Empty dependencies file for model_join_test.
# This may be replaced when dependencies are built.
