file(REMOVE_RECURSE
  "CMakeFiles/model_opt_test.dir/model_opt_test.cc.o"
  "CMakeFiles/model_opt_test.dir/model_opt_test.cc.o.d"
  "model_opt_test"
  "model_opt_test.pdb"
  "model_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
