file(REMOVE_RECURSE
  "CMakeFiles/selection_problem_test.dir/selection_problem_test.cc.o"
  "CMakeFiles/selection_problem_test.dir/selection_problem_test.cc.o.d"
  "selection_problem_test"
  "selection_problem_test.pdb"
  "selection_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
