file(REMOVE_RECURSE
  "CMakeFiles/lease_cache_test.dir/lease_cache_test.cc.o"
  "CMakeFiles/lease_cache_test.dir/lease_cache_test.cc.o.d"
  "lease_cache_test"
  "lease_cache_test.pdb"
  "lease_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
