# Empty compiler generated dependencies file for lease_cache_test.
# This may be replaced when dependencies are built.
