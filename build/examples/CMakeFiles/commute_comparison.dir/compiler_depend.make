# Empty compiler generated dependencies file for commute_comparison.
# This may be replaced when dependencies are built.
