file(REMOVE_RECURSE
  "CMakeFiles/commute_comparison.dir/commute_comparison.cpp.o"
  "CMakeFiles/commute_comparison.dir/commute_comparison.cpp.o.d"
  "commute_comparison"
  "commute_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commute_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
