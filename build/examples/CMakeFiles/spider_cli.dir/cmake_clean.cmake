file(REMOVE_RECURSE
  "CMakeFiles/spider_cli.dir/spider_cli.cpp.o"
  "CMakeFiles/spider_cli.dir/spider_cli.cpp.o.d"
  "spider_cli"
  "spider_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
