# Empty dependencies file for spider_cli.
# This may be replaced when dependencies are built.
