file(REMOVE_RECURSE
  "CMakeFiles/ap_survey.dir/ap_survey.cpp.o"
  "CMakeFiles/ap_survey.dir/ap_survey.cpp.o.d"
  "ap_survey"
  "ap_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
