# Empty dependencies file for ap_survey.
# This may be replaced when dependencies are built.
