# Empty compiler generated dependencies file for fig9_microbench.
# This may be replaced when dependencies are built.
