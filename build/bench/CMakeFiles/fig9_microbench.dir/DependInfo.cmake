
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_microbench.cc" "bench/CMakeFiles/fig9_microbench.dir/fig9_microbench.cc.o" "gcc" "bench/CMakeFiles/fig9_microbench.dir/fig9_microbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spider_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/spider_model.dir/DependInfo.cmake"
  "/root/repo/build/src/backhaul/CMakeFiles/spider_backhaul.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/spider_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcpd/CMakeFiles/spider_dhcpd.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/spider_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/spider_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spider_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/spider_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
