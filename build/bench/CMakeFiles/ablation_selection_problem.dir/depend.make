# Empty dependencies file for ablation_selection_problem.
# This may be replaced when dependencies are built.
