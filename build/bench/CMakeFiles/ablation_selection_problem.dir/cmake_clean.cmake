file(REMOVE_RECURSE
  "CMakeFiles/ablation_selection_problem.dir/ablation_selection_problem.cc.o"
  "CMakeFiles/ablation_selection_problem.dir/ablation_selection_problem.cc.o.d"
  "ablation_selection_problem"
  "ablation_selection_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selection_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
