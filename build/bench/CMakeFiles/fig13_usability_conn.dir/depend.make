# Empty dependencies file for fig13_usability_conn.
# This may be replaced when dependencies are built.
