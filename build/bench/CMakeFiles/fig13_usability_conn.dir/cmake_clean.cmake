file(REMOVE_RECURSE
  "CMakeFiles/fig13_usability_conn.dir/fig13_usability_conn.cc.o"
  "CMakeFiles/fig13_usability_conn.dir/fig13_usability_conn.cc.o.d"
  "fig13_usability_conn"
  "fig13_usability_conn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_usability_conn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
