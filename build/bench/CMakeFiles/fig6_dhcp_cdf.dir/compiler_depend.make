# Empty compiler generated dependencies file for fig6_dhcp_cdf.
# This may be replaced when dependencies are built.
