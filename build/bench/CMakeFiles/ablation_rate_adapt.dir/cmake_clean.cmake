file(REMOVE_RECURSE
  "CMakeFiles/ablation_rate_adapt.dir/ablation_rate_adapt.cc.o"
  "CMakeFiles/ablation_rate_adapt.dir/ablation_rate_adapt.cc.o.d"
  "ablation_rate_adapt"
  "ablation_rate_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rate_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
