# Empty compiler generated dependencies file for ablation_rate_adapt.
# This may be replaced when dependencies are built.
