# Empty dependencies file for fig14_usability_gaps.
# This may be replaced when dependencies are built.
