file(REMOVE_RECURSE
  "CMakeFiles/fig14_usability_gaps.dir/fig14_usability_gaps.cc.o"
  "CMakeFiles/fig14_usability_gaps.dir/fig14_usability_gaps.cc.o.d"
  "fig14_usability_gaps"
  "fig14_usability_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_usability_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
