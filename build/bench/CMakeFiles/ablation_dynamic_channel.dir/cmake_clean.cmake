file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_channel.dir/ablation_dynamic_channel.cc.o"
  "CMakeFiles/ablation_dynamic_channel.dir/ablation_dynamic_channel.cc.o.d"
  "ablation_dynamic_channel"
  "ablation_dynamic_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
