# Empty dependencies file for ablation_dynamic_channel.
# This may be replaced when dependencies are built.
