# Empty compiler generated dependencies file for fig11_join_timeouts.
# This may be replaced when dependencies are built.
