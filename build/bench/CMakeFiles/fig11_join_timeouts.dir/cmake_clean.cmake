file(REMOVE_RECURSE
  "CMakeFiles/fig11_join_timeouts.dir/fig11_join_timeouts.cc.o"
  "CMakeFiles/fig11_join_timeouts.dir/fig11_join_timeouts.cc.o.d"
  "fig11_join_timeouts"
  "fig11_join_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_join_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
