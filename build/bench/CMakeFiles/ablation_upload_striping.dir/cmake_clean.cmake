file(REMOVE_RECURSE
  "CMakeFiles/ablation_upload_striping.dir/ablation_upload_striping.cc.o"
  "CMakeFiles/ablation_upload_striping.dir/ablation_upload_striping.cc.o.d"
  "ablation_upload_striping"
  "ablation_upload_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_upload_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
