# Empty dependencies file for ablation_upload_striping.
# This may be replaced when dependencies are built.
