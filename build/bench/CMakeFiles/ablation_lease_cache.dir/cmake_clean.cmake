file(REMOVE_RECURSE
  "CMakeFiles/ablation_lease_cache.dir/ablation_lease_cache.cc.o"
  "CMakeFiles/ablation_lease_cache.dir/ablation_lease_cache.cc.o.d"
  "ablation_lease_cache"
  "ablation_lease_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lease_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
