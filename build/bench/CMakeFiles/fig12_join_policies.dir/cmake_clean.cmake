file(REMOVE_RECURSE
  "CMakeFiles/fig12_join_policies.dir/fig12_join_policies.cc.o"
  "CMakeFiles/fig12_join_policies.dir/fig12_join_policies.cc.o.d"
  "fig12_join_policies"
  "fig12_join_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_join_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
