file(REMOVE_RECURSE
  "CMakeFiles/fig8_tcp_schedule.dir/fig8_tcp_schedule.cc.o"
  "CMakeFiles/fig8_tcp_schedule.dir/fig8_tcp_schedule.cc.o.d"
  "fig8_tcp_schedule"
  "fig8_tcp_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tcp_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
