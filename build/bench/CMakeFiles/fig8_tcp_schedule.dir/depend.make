# Empty dependencies file for fig8_tcp_schedule.
# This may be replaced when dependencies are built.
