file(REMOVE_RECURSE
  "CMakeFiles/fig10_cdfs.dir/fig10_cdfs.cc.o"
  "CMakeFiles/fig10_cdfs.dir/fig10_cdfs.cc.o.d"
  "fig10_cdfs"
  "fig10_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
