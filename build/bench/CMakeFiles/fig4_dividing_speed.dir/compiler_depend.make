# Empty compiler generated dependencies file for fig4_dividing_speed.
# This may be replaced when dependencies are built.
