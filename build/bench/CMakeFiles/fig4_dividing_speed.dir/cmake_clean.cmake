file(REMOVE_RECURSE
  "CMakeFiles/fig4_dividing_speed.dir/fig4_dividing_speed.cc.o"
  "CMakeFiles/fig4_dividing_speed.dir/fig4_dividing_speed.cc.o.d"
  "fig4_dividing_speed"
  "fig4_dividing_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dividing_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
