file(REMOVE_RECURSE
  "CMakeFiles/fig5_assoc_cdf.dir/fig5_assoc_cdf.cc.o"
  "CMakeFiles/fig5_assoc_cdf.dir/fig5_assoc_cdf.cc.o.d"
  "fig5_assoc_cdf"
  "fig5_assoc_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_assoc_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
