# Empty dependencies file for fig3_beta_sweep.
# This may be replaced when dependencies are built.
