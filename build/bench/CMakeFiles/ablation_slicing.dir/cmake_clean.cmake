file(REMOVE_RECURSE
  "CMakeFiles/ablation_slicing.dir/ablation_slicing.cc.o"
  "CMakeFiles/ablation_slicing.dir/ablation_slicing.cc.o.d"
  "ablation_slicing"
  "ablation_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
