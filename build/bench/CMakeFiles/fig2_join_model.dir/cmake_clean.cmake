file(REMOVE_RECURSE
  "CMakeFiles/fig2_join_model.dir/fig2_join_model.cc.o"
  "CMakeFiles/fig2_join_model.dir/fig2_join_model.cc.o.d"
  "fig2_join_model"
  "fig2_join_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_join_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
