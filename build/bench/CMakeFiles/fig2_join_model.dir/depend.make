# Empty dependencies file for fig2_join_model.
# This may be replaced when dependencies are built.
