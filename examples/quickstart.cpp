// Quickstart — the smallest end-to-end Spider program.
//
// Builds a world (one road, a handful of APs, a content server), puts a
// vehicle-mounted client on it running Spider in its throughput-optimal
// configuration (single channel, multiple APs), drives for two minutes, and
// prints the headline metrics.
//
//   $ ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/configs.h"
#include "core/experiment.h"

using namespace spider;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. Describe the world: a 2 km straight road with open APs scattered
  //    along it (Poisson spacing, realistic channel mix, some duds).
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = sim::Time::seconds(120);
  sim::Rng rng(seed);
  auto deploy_rng = rng.fork("deploy");
  mobility::DeploymentConfig deploy;
  deploy.mean_spacing_m = 180.0;
  cfg.aps = mobility::linear_road_deployment(2000.0, deploy_rng, deploy);

  // 2. Put the client in a car doing 10 m/s (~22 mph) down that road.
  cfg.vehicle = mobility::Vehicle(
      mobility::Route::straight(2000.0, mobility::RouteWrap::kPingPong), 10.0);

  // 3. Give it Spider's best configuration: stay on one channel, talk to
  //    every AP there concurrently, reduced join timers, history-driven
  //    AP selection.
  cfg.spider = core::single_channel_multi_ap(/*channel=*/6);

  // 4. Run and report.
  core::Experiment experiment(std::move(cfg));
  const core::ExperimentResults r = experiment.run();

  std::printf("drove 120 s past %zu APs (seed %llu)\n",
              experiment.ap_count(),
              static_cast<unsigned long long>(seed));
  std::printf("  average throughput : %.1f KB/s\n", r.avg_throughput_kBps());
  std::printf("  connectivity       : %.1f%% of seconds\n",
              r.connectivity_percent());
  std::printf("  joins completed    : %llu (of %llu attempts)\n",
              static_cast<unsigned long long>(r.joins.joins),
              static_cast<unsigned long long>(r.joins.join_attempts));
  if (r.joins.joins > 0) {
    std::printf("  median join time   : %.2f s\n",
                r.joins.join_delay_sec.median());
  }
  std::printf("  flows opened       : %llu\n",
              static_cast<unsigned long long>(r.flows_opened));
  return 0;
}
