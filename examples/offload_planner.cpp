// Offload planner — uses the *analytical* half of the library (no packet
// simulation) to answer a deployment question: given a city's AP
// characteristics, at what speeds should a multi-channel client bother
// switching channels, and how much Wi-Fi capacity can a commuter expect?
//
// This exercises the join model (Eq. 5-7) and the throughput optimizer
// (Eq. 8-10) as a standalone planning tool.
//
//   $ ./offload_planner [beta_max_seconds]
#include <cstdio>
#include <cstdlib>

#include "model/join_model.h"
#include "model/throughput_opt.h"

using namespace spider;

int main(int argc, char** argv) {
  const double beta_max = argc > 1 ? std::strtod(argv[1], nullptr) : 10.0;

  model::OptimizerParams op;
  op.join.beta_max = beta_max;
  const double Bw = op.wireless_bps;

  std::printf("AP response time: beta in [%.1f, %.1f] s, loss %.0f%%\n\n",
              op.join.beta_min, beta_max, 100 * op.join.loss);

  // 1. How much dwell does a join need at different speeds?
  std::printf("join probability within one encounter (100 m range):\n");
  std::printf("  %-10s %-8s", "speed", "T(s)");
  for (double f : {0.25, 0.5, 1.0}) std::printf("  f=%.2f ", f);
  std::printf("\n");
  for (double v : {5.0, 10.0, 15.0, 25.0}) {
    const double T = model::time_in_range_for_speed(v);
    std::printf("  %-10.0f %-8.1f", v, T);
    for (double f : {0.25, 0.5, 1.0}) {
      std::printf("  %.2f   ", model::join_probability(op.join, f, T));
    }
    std::printf("\n");
  }

  // 2. Where is the dividing speed for a balanced two-channel city?
  std::printf("\ndividing speeds (two channels, grid of offered splits):\n");
  std::printf("  %-26s %-14s\n", "ch1 joined / ch2 available",
              "dividing speed");
  for (double share : {0.25, 0.50, 0.75}) {
    const double v = model::dividing_speed(op, {share * Bw, 0.0},
                                           {0.0, (1.0 - share) * Bw});
    std::printf("  %.0f%% / %.0f%%                  %6.1f m/s\n",
                100 * share, 100 * (1 - share), v);
  }

  // 3. Expected single-channel capacity for a 10 m/s commuter.
  op.time_in_range = model::time_in_range_for_speed(10.0);
  const auto single = model::optimize_channels(op, {{0.5 * Bw, 0.5 * Bw}});
  std::printf(
      "\nat 10 m/s a single-channel multi-AP client can schedule %.0f%% of\n"
      "its airtime productively -> up to %.1f Mb/s of wireless capacity\n"
      "(end-to-end limited by AP backhauls).\n",
      100 * single.fractions[0], single.total_bps / 1e6);

  std::printf(
      "\nplanning rule of thumb: above the dividing speed, provision\n"
      "offload APs densely on ONE channel per corridor rather than\n"
      "spreading them across channels.\n");
  return 0;
}
