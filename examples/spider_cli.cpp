// spider_cli — run an arbitrary Spider experiment from the command line and
// emit machine-readable results (JSON summary, optional CSV CDFs, optional
// frame-level trace). The tool a downstream user scripts parameter sweeps
// with.
//
//   $ ./spider_cli --config=multi --channel=1 --speed=10 --duration=300
//                  --seed=7 --sites=30 --csv=cdfs.csv --frames=20
//
// Flags (all optional):
//   --config=multi|single|3ch|3ch-single|dynamic|stock   driver preset
//   --channel=N        camp channel for single-channel presets (default 1)
//   --speed=M          vehicle speed m/s (default 10; 0 = static)
//   --duration=S       simulated seconds (default 300)
//   --seed=N           RNG seed (default 1)
//   --sites=N          deployment sites in the 700x500 m area (default 30)
//   --dud=F            fraction of never-leasing APs (default 0.2)
//   --csv=PATH         write connection/disruption/bandwidth CDFs as CSV
//   --frames=N         print the first N management frames of the trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/configs.h"
#include "core/experiment.h"
#include "trace/export.h"
#include "trace/frame_log.h"

using namespace spider;

namespace {

struct Options {
  std::string config = "multi";
  net::ChannelId channel = 1;
  double speed = 10.0;
  double duration = 300.0;
  std::uint64_t seed = 1;
  int sites = 30;
  double dud = 0.2;
  std::string csv_path;
  int frames = 0;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--config", v)) o.config = v;
    else if (parse_flag(argv[i], "--channel", v)) o.channel = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--speed", v)) o.speed = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--duration", v)) o.duration = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--seed", v)) o.seed = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(argv[i], "--sites", v)) o.sites = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--dud", v)) o.dud = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--csv", v)) o.csv_path = v;
    else if (parse_flag(argv[i], "--frames", v)) o.frames = std::atoi(v.c_str());
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  core::ExperimentConfig cfg;
  cfg.seed = o.seed;
  cfg.duration = sim::Time::seconds(o.duration);
  sim::Rng rng(o.seed);
  auto deploy_rng = rng.fork("deploy");
  mobility::DeploymentConfig dcfg;
  dcfg.dud_fraction = o.dud;
  cfg.aps = mobility::area_deployment(700, 500, o.sites, deploy_rng, dcfg);
  cfg.vehicle = o.speed > 0.0
                    ? mobility::Vehicle(mobility::Route::rectangle(600, 400),
                                        o.speed)
                    : mobility::Vehicle(mobility::Route::straight(1.0), 0.0);

  if (o.config == "multi") {
    cfg.spider = core::single_channel_multi_ap(o.channel);
  } else if (o.config == "single") {
    cfg.spider = core::single_channel_single_ap(o.channel);
  } else if (o.config == "3ch") {
    cfg.spider = core::multi_channel_multi_ap();
  } else if (o.config == "3ch-single") {
    cfg.spider = core::multi_channel_single_ap();
  } else if (o.config == "dynamic") {
    cfg.spider = core::dynamic_channel_multi_ap(o.channel);
  } else if (o.config == "stock") {
    cfg.driver = core::DriverKind::kStock;
  } else {
    std::fprintf(stderr, "unknown --config=%s\n", o.config.c_str());
    return 2;
  }

  trace::FrameLog log(static_cast<std::size_t>(std::max(o.frames, 1)));
  log.set_filter([](const trace::FrameRecord& r) {
    return r.kind != net::FrameKind::kData &&
           r.kind != net::FrameKind::kBeacon;
  });

  core::Experiment exp(std::move(cfg));
  if (o.frames > 0) exp.attach_frame_log(log);
  const auto r = exp.run();

  trace::JsonWriter json;
  json.add("config", o.config)
      .add("seed", static_cast<std::int64_t>(o.seed))
      .add("aps", static_cast<std::int64_t>(exp.ap_count()))
      .add("duration_s", o.duration)
      .add("throughput_kBps", r.avg_throughput_kBps())
      .add("connectivity_pct", r.connectivity_percent())
      .add("joins", static_cast<std::int64_t>(r.joins.joins))
      .add("join_attempts", static_cast<std::int64_t>(r.joins.join_attempts))
      .add("median_join_s",
           r.joins.join_delay_sec.empty() ? 0.0
                                          : r.joins.join_delay_sec.median())
      .add("dhcp_join_failure_rate", r.joins.dhcp_join_failure_rate())
      .add("channel_switches", static_cast<std::int64_t>(r.channel_switches))
      .add("client_joules", r.client_joules)
      .add("joules_per_MB", r.joules_per_megabyte());
  json.write(std::cout);
  std::cout << "\n";

  if (!o.csv_path.empty()) {
    std::ofstream csv(o.csv_path);
    trace::write_cdfs_csv(
        csv,
        {{"connection_s", &r.traffic.connection_durations_sec},
         {"disruption_s", &r.traffic.disruption_durations_sec}},
        25, 0.0, 120.0);
    std::fprintf(stderr, "wrote %s\n", o.csv_path.c_str());
  }
  if (o.frames > 0) {
    std::fprintf(stderr, "last %zu management frames (of %llu total):\n",
                 log.entries().size(),
                 static_cast<unsigned long long>(log.management_frames()));
    for (const auto& rec : log.entries()) {
      std::fprintf(stderr, "  %s\n", rec.to_string().c_str());
    }
    std::fprintf(stderr, "management overhead: %.2f%% of bytes on air\n",
                 100.0 * log.management_byte_fraction());
  }
  return 0;
}
