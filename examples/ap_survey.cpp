// AP survey — a war-driving style measurement pass built on the library's
// substrate: drive a route with a passive scanner (no joining), inventory
// the APs heard per channel, estimate encounter durations, and recommend
// the channel a Spider deployment should camp on.
//
//   $ ./ap_survey [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/client_device.h"
#include "core/configs.h"
#include "core/experiment.h"
#include "mobility/deployment.h"

using namespace spider;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  sim::Rng rng(seed);
  auto deploy_rng = rng.fork("deploy");
  const auto aps = mobility::area_deployment(700, 500, 30, deploy_rng);
  const mobility::Route route = mobility::Route::rectangle(600, 400);
  const double speed = 10.0;
  const sim::Time horizon = sim::Time::seconds(600);

  // Passive part: pure geometry — encounters per AP from the route.
  std::map<net::ChannelId, int> ap_count;
  std::map<net::ChannelId, double> coverage_sec;
  trace::EmpiricalCdf encounter_durations;
  for (const auto& ap : aps) {
    ++ap_count[ap.channel];
    for (const auto& e :
         mobility::encounters(route, speed, ap.position, 100.0, horizon)) {
      encounter_durations.add(e.duration().sec());
      coverage_sec[ap.channel] += e.duration().sec();
    }
  }

  std::printf("survey of %zu APs (seed %llu), 600 s loop at %.0f m/s\n\n",
              aps.size(), static_cast<unsigned long long>(seed), speed);
  std::printf("  %-8s %-6s %-22s\n", "channel", "APs", "coverage (AP-seconds)");
  net::ChannelId best = 1;
  for (const auto& [ch, n] : ap_count) {
    std::printf("  %-8d %-6d %-22.0f\n", ch, n, coverage_sec[ch]);
    if (coverage_sec[ch] > coverage_sec[best]) best = ch;
  }
  if (!encounter_durations.empty()) {
    std::printf("\nencounter durations: median %.1f s, p90 %.1f s "
                "(paper's town: median ~8 s)\n",
                encounter_durations.median(),
                encounter_durations.quantile(0.9));
  }
  std::printf("recommended camp channel: %d\n\n", best);

  // Active validation: run Spider on the recommended channel.
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = horizon;
  cfg.aps = aps;
  cfg.vehicle = mobility::Vehicle(route, speed);
  cfg.spider = core::single_channel_multi_ap(best);
  const auto r = core::Experiment(std::move(cfg)).run();
  std::printf("validation drive on channel %d: %.1f KB/s, %.1f%% connected\n",
              best, r.avg_throughput_kBps(), r.connectivity_percent());
  return 0;
}
