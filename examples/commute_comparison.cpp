// Commute comparison — the scenario from the paper's introduction: a user
// wants streaming-grade connectivity while riding through town. We drive
// the same 20-minute downtown loop four times — stock Wi-Fi, Spider
// single-AP, Spider multi-AP single-channel, Spider multi-channel — and
// report what each delivers against an audio-streaming budget.
//
//   $ ./commute_comparison [seed]
#include <cstdio>
#include <cstdlib>

#include "core/configs.h"
#include "core/experiment.h"

using namespace spider;

namespace {

core::ExperimentConfig make_world(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = sim::Time::seconds(1200);
  sim::Rng rng(seed);
  auto deploy_rng = rng.fork("deploy");
  cfg.aps = mobility::area_deployment(700, 500, 30, deploy_rng);
  cfg.vehicle = mobility::Vehicle(mobility::Route::rectangle(600, 400), 10.0);
  return cfg;
}

void report(const char* name, const core::ExperimentResults& r) {
  // A 128 kb/s stream needs 16 KB/s *sustained*; with buffering, the
  // average throughput and the disruption tail decide listenability.
  const double avg = r.avg_throughput_kBps();
  const bool stream_ok =
      avg >= 16.0 && !r.traffic.disruption_durations_sec.empty() &&
      r.traffic.disruption_durations_sec.quantile(0.9) <= 120.0;
  std::printf("  %-32s %7.1f KB/s  %5.1f%% connected", name, avg,
              r.connectivity_percent());
  if (!r.traffic.disruption_durations_sec.empty()) {
    std::printf("  p90 outage %5.0f s",
                r.traffic.disruption_durations_sec.quantile(0.9));
  }
  std::printf("  128kbps stream (buffered): %s\n", stream_ok ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::printf("20-minute downtown loop at 10 m/s, seed %llu\n\n",
              static_cast<unsigned long long>(seed));

  {
    auto cfg = make_world(seed);
    cfg.driver = core::DriverKind::kStock;
    report("stock Wi-Fi", core::Experiment(std::move(cfg)).run());
  }
  {
    auto cfg = make_world(seed);
    cfg.spider = core::single_channel_single_ap(1);
    report("Spider: ch1, single AP", core::Experiment(std::move(cfg)).run());
  }
  {
    auto cfg = make_world(seed);
    cfg.spider = core::single_channel_multi_ap(1);
    report("Spider: ch1, multi-AP", core::Experiment(std::move(cfg)).run());
  }
  {
    auto cfg = make_world(seed);
    cfg.spider = core::multi_channel_multi_ap();
    report("Spider: 3 channels, multi-AP",
           core::Experiment(std::move(cfg)).run());
  }

  std::printf(
      "\nreading: multi-AP on one channel maximizes throughput; the\n"
      "three-channel schedule trades throughput for shorter outages.\n");
  return 0;
}
