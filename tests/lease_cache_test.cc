// DHCP lease caching (INIT-REBOOT) — client fast path, NAK fallback, and
// driver integration across repeat encounters.
#include <gtest/gtest.h>

#include "core/configs.h"
#include "core/experiment.h"
#include "dhcpd/dhcp_client.h"
#include "dhcpd/dhcp_server.h"
#include "mac/access_point.h"
#include "mac/client_session.h"
#include "phy/medium.h"
#include "phy/radio.h"

namespace spider {
namespace {

// Slim fixture: associated client against one AP with a slow-offer server.
class LeaseCacheTest : public ::testing::Test {
 protected:
  LeaseCacheTest() {
    phy::MediumConfig mcfg;
    mcfg.base_loss = 0.0;
    mcfg.edge_degradation = false;
    medium_ = std::make_unique<phy::Medium>(sim_, sim::Rng(1), mcfg);
    mac::AccessPointConfig acfg;
    acfg.channel = 6;
    acfg.response_delay_min = sim::Time::millis(1);
    acfg.response_delay_max = sim::Time::millis(2);
    ap_ = std::make_unique<mac::AccessPoint>(
        *medium_, net::MacAddress::from_index(0xA0), phy::Vec2{0, 0},
        sim::Rng(2), acfg);
    ap_->start();
    dhcpd::DhcpServerConfig scfg;
    scfg.offer_delay_min = sim::Time::millis(800);  // slow discovery path
    scfg.offer_delay_max = sim::Time::millis(900);
    scfg.ack_delay_min = sim::Time::millis(5);
    scfg.ack_delay_max = sim::Time::millis(10);
    server_ = std::make_unique<dhcpd::DhcpServer>(
        sim_, *ap_, net::Ipv4Address(10, 1, 1, 1), sim::Rng(3), scfg);
    ap_->set_data_sink(
        [this](const net::Frame& f) { server_->handle_frame(f); });

    client_ = std::make_unique<phy::Radio>(
        *medium_, net::MacAddress::from_index(0xC0),
        phy::RadioConfig{.initial_channel = 6});
    client_->set_position({20, 0});
    session_ = std::make_unique<mac::ClientSession>(
        sim_, client_->address(), ap_->address(), 6,
        [this](const net::Frame& f) { return client_->send(f); },
        mac::ClientSessionConfig{.link_timeout = sim::Time::millis(100)});
    dhcp_ = std::make_unique<dhcpd::DhcpClient>(
        sim_, client_->address(), ap_->address(),
        [this](const net::Frame& f) { return client_->send(f); },
        dhcpd::reduced_dhcp_timers(sim::Time::millis(400)));
    client_->set_receive_handler(
        [this](const net::Frame& f, const phy::RxInfo&) {
          session_->handle_frame(f);
          dhcp_->handle_frame(f);
        });
    session_->start_join();
    sim_.run_for(sim::Time::millis(500));
    EXPECT_TRUE(session_->associated());
  }

  sim::Simulator sim_;
  std::unique_ptr<phy::Medium> medium_;
  std::unique_ptr<mac::AccessPoint> ap_;
  std::unique_ptr<dhcpd::DhcpServer> server_;
  std::unique_ptr<phy::Radio> client_;
  std::unique_ptr<mac::ClientSession> session_;
  std::unique_ptr<dhcpd::DhcpClient> dhcp_;
};

TEST_F(LeaseCacheTest, InitRebootSkipsDiscovery) {
  // Cold acquisition: pays the ~850 ms offer delay.
  dhcp_->start();
  sim_.run_for(sim::Time::seconds(3));
  ASSERT_TRUE(dhcp_->bound());
  const auto cold_delay = dhcp_->acquisition_delay();
  EXPECT_GT(cold_delay, sim::Time::millis(800));
  const dhcpd::Lease lease = dhcp_->lease();

  // Warm acquisition: REQUEST straight away; only the ACK delay remains.
  dhcp_->start_with_cached(lease);
  sim_.run_for(sim::Time::seconds(3));
  ASSERT_TRUE(dhcp_->bound());
  EXPECT_LT(dhcp_->acquisition_delay(), sim::Time::millis(100));
  EXPECT_EQ(dhcp_->lease().ip, lease.ip);
}

TEST_F(LeaseCacheTest, StaleCacheFallsBackViaNak) {
  // A cached lease the server never issued: NAK -> full discovery -> bound.
  dhcpd::Lease bogus;
  bogus.ip = net::Ipv4Address(10, 1, 1, 200);
  bogus.server = net::Ipv4Address(10, 1, 1, 1);
  bogus.duration = sim::Time::seconds(3600);
  dhcp_->start_with_cached(bogus);
  sim_.run_for(sim::Time::seconds(5));
  ASSERT_TRUE(dhcp_->bound());
  // Bound via the discovery path, so the slow offer delay was paid and the
  // final address is the server's own allocation, not the bogus one.
  EXPECT_GT(dhcp_->acquisition_delay(), sim::Time::millis(800));
  EXPECT_NE(dhcp_->lease().ip, bogus.ip);
}

TEST(LeaseCacheDriver, SecondEncounterJoinsFaster) {
  // A vehicle shuttles past one AP twice; with caching the second join
  // skips the offer wait.
  for (const bool cache : {false, true}) {
    core::ExperimentConfig cfg;
    cfg.seed = 77;
    cfg.duration = sim::Time::seconds(240);
    cfg.medium.base_loss = 0.02;
    cfg.medium.edge_degradation = false;
    mobility::ApDescriptor ap;
    ap.ssid = "loop-ap";
    ap.mac = net::MacAddress::from_index(0xA0);
    ap.subnet = net::Ipv4Address(10, 1, 1, 0);
    ap.position = {500, 10};
    ap.channel = 1;
    ap.backhaul_bps = 2e6;
    ap.dhcp_offer_min = sim::Time::millis(900);
    ap.dhcp_offer_max = sim::Time::millis(1000);
    cfg.aps = {ap};
    cfg.vehicle = mobility::Vehicle(
        mobility::Route::straight(1000.0, mobility::RouteWrap::kPingPong),
        10.0);
    cfg.spider = core::single_channel_multi_ap(1);
    cfg.spider.cache_leases = cache;
    const auto r = core::Experiment(std::move(cfg)).run();
    ASSERT_GE(r.joins.joins, 2u) << "cache=" << cache;
    const auto& samples = r.joins.join_delay_sec.samples();
    if (cache) {
      // Later joins are INIT-REBOOT: dramatically under the offer delay.
      EXPECT_LT(samples.back(), 0.5);
    } else {
      EXPECT_GT(samples.back(), 0.9);
    }
  }
}

}  // namespace
}  // namespace spider
