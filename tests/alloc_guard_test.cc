// Runtime proof of the SPIDER_HOT allocation contract.
//
// This binary (alone among the tests) links spider_alloc_guard, so the
// global operator new/delete family is replaced with counting forwarders.
// The tests first pin down the guard's own mechanics (counting windows,
// meter mode, the tripping check), then wrap the three steady-state loops
// the ISSUE names — PHY frame delivery, batched mobility, interned beacon
// ticks — in an armed guard and assert they allocate nothing once warm.
#include "core/alloc_guard.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/check.h"
#include "mac/access_point.h"
#include "net/addr.h"
#include "net/frame.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace spider::core {
namespace {

TEST(AllocGuard, InterceptionIsLinkedIntoThisBinary) {
  // Everything below would pass vacuously if the replacement operators were
  // not linked; fail loudly instead.
  ASSERT_TRUE(alloc_guard_linked());
}

// `delete new int` pairs may legally be elided (C++14 allocation elision);
// a direct call to the replaceable allocation function may not, so the
// guard's own mechanics are exercised through ::operator new.
void touch_heap() { ::operator delete(::operator new(16)); }

TEST(AllocGuard, CountersAdvanceOnlyWhileAGuardIsAlive) {
  const std::uint64_t before = thread_allocations();
  touch_heap();  // no guard alive: invisible to the counters
  EXPECT_EQ(thread_allocations(), before);

  {
    ScopedAllocGuard guard("counting window");
    guard.dismiss();  // meter mode: we *expect* traffic here
    touch_heap();
    EXPECT_EQ(guard.allocations(), 1u);
    EXPECT_EQ(guard.deallocations(), 1u);
  }
  EXPECT_EQ(thread_allocations(), before + 1);
}

TEST(AllocGuard, MeterModeReportsCountsAndBytes) {
  ScopedAllocGuard guard("meter");
  guard.dismiss();
  auto block = std::make_unique<char[]>(128);
  EXPECT_EQ(guard.allocations(), 1u);
  EXPECT_GE(guard.allocated_bytes(), 128u);
  block.reset();
  EXPECT_EQ(guard.deallocations(), 1u);
}

TEST(AllocGuard, NestedGuardsEachObserveInnerTraffic) {
  ScopedAllocGuard outer("outer");
  outer.dismiss();
  {
    ScopedAllocGuard inner("inner");
    inner.dismiss();
    touch_heap();
    EXPECT_EQ(inner.allocations(), 1u);
  }
  EXPECT_EQ(outer.allocations(), 1u);
}

TEST(AllocGuard, ArmedGuardTripsOnAllocation) {
  // kLogAndCount turns the destructor's SPIDER_CHECK into a counted failure
  // instead of an abort, so the test can observe the trip.
  check::ScopedPolicy policy(check::Policy::kLogAndCount);
  const std::uint64_t failures_before = check::failures();
  {
    ScopedAllocGuard guard("deliberately allocating region");
    touch_heap();
  }
  EXPECT_GT(check::failures(), failures_before)
      << "an armed guard over an allocating region must trip";
}

// --- the hot loops the lint rule and the guard exist for ---------------------

phy::MediumConfig lossless() {
  phy::MediumConfig cfg;
  cfg.base_loss = 0.0;
  cfg.edge_degradation = false;
  return cfg;
}

TEST(AllocGuardHotPaths, FrameDeliveryIsAllocationFreeOnceWarm) {
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(7), lossless());
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (int i = 0; i < 4; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(i + 1),
        phy::RadioConfig{.initial_channel = 6}));
    radios.back()->set_position({static_cast<double>(10 * i), 0.0});
  }
  // Warm-up: first transmissions mint the PendingTx pool node, size the
  // event queue, and reserve the delivery candidate scratch.
  for (int i = 0; i < 3; ++i) {
    radios[0]->send(net::make_probe_request(radios[0]->address()));
    sim.run_all();
  }
  const std::uint64_t rx_before = radios[1]->frames_rx();
  {
    ScopedAllocGuard guard("medium delivery steady state");
    for (int i = 0; i < 16; ++i) {
      radios[0]->send(net::make_probe_request(radios[0]->address()));
      sim.run_all();
    }
    EXPECT_EQ(guard.allocations(), 0u)
        << "transmit/deliver allocated on the warm path";
  }
  EXPECT_EQ(radios[1]->frames_rx(), rx_before + 16)
      << "the guarded loop must actually have delivered frames";
}

TEST(AllocGuardHotPaths, BatchedMobilityIsAllocationFreeWithoutCrossings) {
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(8), lossless());
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (int i = 0; i < 8; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(i + 1),
        phy::RadioConfig{.initial_channel = 6}));
    radios.back()->set_position({static_cast<double>(i), 0.0});
  }
  // Sub-metre jitter keeps every radio inside its current grid cell, so the
  // batch stays on the no-crossing path (cell crossings re-bucket, and
  // re-bucketing is a cold path allowed to allocate).
  std::vector<phy::RadioMove> moves;
  moves.reserve(radios.size());
  const auto fill_moves = [&](double dx) {
    moves.clear();
    for (auto& r : radios) {
      moves.push_back(phy::RadioMove{r.get(), r->position() + phy::Vec2{dx, 0.0}});
    }
  };
  fill_moves(0.25);
  medium.move_radios(moves);  // warm-up pass
  {
    ScopedAllocGuard guard("batched mobility steady state");
    for (int tick = 0; tick < 32; ++tick) {
      fill_moves(tick % 2 == 0 ? -0.25 : 0.25);
      medium.move_radios(moves);
    }
    EXPECT_EQ(guard.allocations(), 0u)
        << "non-crossing move_radios allocated on the warm path";
  }
}

TEST(AllocGuardHotPaths, InternedBeaconTicksAreAllocationFree) {
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(9), lossless());
  mac::AccessPointConfig cfg;
  cfg.intern_beacons = true;
  mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA40),
                      {0.0, 0.0}, sim::Rng(10), cfg);
  // A silent station in range: each beacon exercises delivery end to end.
  phy::Radio station(medium, net::MacAddress::from_index(0x51A),
                     phy::RadioConfig{.initial_channel = cfg.channel});
  station.set_position({5.0, 0.0});

  ap.start();
  sim.run_until(sim::Time::millis(500));  // warm-up: several beacon periods
  const std::uint64_t rx_before = station.frames_rx();
  {
    ScopedAllocGuard guard("interned beacon ticks");
    sim.run_until(sim::Time::millis(1500));
    EXPECT_EQ(guard.allocations(), 0u)
        << "beacon_tick allocated despite the interned payload";
  }
  EXPECT_GE(station.frames_rx(), rx_before + 8)
      << "the guarded second must contain ~10 beacon deliveries";
}

TEST(AllocGuardHotPaths, InternedMgmtExchangeIsAllocationFreeOnceWarm) {
  // A warm auth/assoc exchange end to end: request delivery, the AP's
  // station lookup, the interned response mint (refcount bump), the pooled
  // delayed-response node, the SmallFn-inline timer closure, and the
  // response delivery back — none of it may touch the heap once the station
  // entry, the response pool, and the medium's tx pool exist.
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(11), lossless());
  mac::AccessPointConfig cfg;
  cfg.intern_mgmt_responses = true;
  mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA41),
                      {0.0, 0.0}, sim::Rng(12), cfg);
  phy::Radio client(medium, net::MacAddress::from_index(0x52A),
                    phy::RadioConfig{.initial_channel = cfg.channel});
  client.set_position({5.0, 0.0});
  std::uint64_t responses = 0;
  client.set_receive_handler(
      [&responses](const net::Frame& f, const phy::RxInfo&) {
        if (f.kind == net::FrameKind::kAuthResponse ||
            f.kind == net::FrameKind::kAssocResponse) {
          ++responses;
        }
      });

  const auto exchange = [&] {
    client.send(net::make_auth_request(client.address(), ap.address()));
    sim.run_all();
    client.send(net::make_assoc_request(client.address(), ap.address()));
    sim.run_all();
  };
  // Warm-up: mints the station entry, the first pooled response node, the
  // tx pool, and sizes the event queue.
  exchange();
  ASSERT_EQ(responses, 2u);
  {
    ScopedAllocGuard guard("interned auth/assoc exchange steady state");
    for (int i = 0; i < 16; ++i) exchange();
    EXPECT_EQ(guard.allocations(), 0u)
        << "a warm interned management exchange allocated";
  }
  EXPECT_EQ(responses, 34u)
      << "the guarded loop must actually have completed exchanges";
}

}  // namespace
}  // namespace spider::core
