// End-to-end gates for the live telemetry plane (DESIGN.md "Live telemetry
// plane"): warm cadence publishes are allocation-free (this binary links
// spider_alloc_guard, so an armed guard makes any heap traffic fatal), the
// final streamed totals reconcile exactly with the end-of-run
// MetricsSnapshot despite cumulative-value self-healing, the exporter's
// snapshot line carries finished-run state, sweeps assign deterministic
// per-replication run tags, and — the plane's prime directive — per-run
// digests are bit-identical with streaming on and off.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/alloc_guard.h"
#include "core/check.h"
#include "core/configs.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "mobility/route.h"
#include "net/addr.h"
#include "sim/simulator.h"
#include "telemetry/hub.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"
#include "telemetry/stream_exporter.h"

namespace spider {
namespace {

// Accumulates every rendered line; write_line runs on the exporter thread
// (with the exporter's lock held), the test reads after runs complete, so
// the sink carries its own lock.
class CaptureSink : public telemetry::StreamSink {
 public:
  bool write_line(std::string_view line) override {
    std::lock_guard<std::mutex> lock(mu_);
    text_.append(line);
    return true;
  }

  std::string text() const {
    std::lock_guard<std::mutex> lock(mu_);
    return text_;
  }

 private:
  mutable std::mutex mu_;
  std::string text_;
};

// Latest cumulative values seen on a run's "metrics" lines — the reader-side
// model of the self-healing contract: whatever was dropped mid-run, the last
// sighting of each metric is the truth.
struct StreamedFinals {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> gauges;
  std::map<std::string, std::pair<std::uint64_t, double>> histograms;
  bool begun = false;
  bool ended = false;
  std::uint64_t events = 0;
};

std::map<std::uint32_t, StreamedFinals> replay_stream(
    const std::string& text) {
  std::map<std::uint32_t, StreamedFinals> runs;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    telemetry::JsonValue doc;
    if (!telemetry::parse_json(line, doc)) {
      ADD_FAILURE() << "unparseable stream line: " << line;
      continue;
    }
    EXPECT_EQ(doc.string_or("schema", ""), telemetry::kStreamSchema);
    StreamedFinals& run = runs[static_cast<std::uint32_t>(
        doc.number_or("run", 0))];
    const std::string kind = doc.string_or("kind", "");
    if (kind == "run_begin") {
      run.begun = true;
    } else if (kind == "run_end") {
      run.ended = true;
      run.events = static_cast<std::uint64_t>(doc.number_or("events", 0));
    } else if (kind == "metrics") {
      if (const telemetry::JsonValue* c = doc.find("counters")) {
        for (const auto& [name, value] : c->object) {
          run.counters[name] = static_cast<std::uint64_t>(value.number);
        }
      }
      if (const telemetry::JsonValue* g = doc.find("gauges")) {
        for (const auto& [name, value] : g->object) {
          run.gauges[name] = {
              static_cast<std::int64_t>(value.number_or("value", 0)),
              static_cast<std::int64_t>(value.number_or("high_water", 0))};
        }
      }
      if (const telemetry::JsonValue* h = doc.find("histograms")) {
        for (const auto& [name, value] : h->object) {
          run.histograms[name] = {
              static_cast<std::uint64_t>(value.number_or("count", 0)),
              value.number_or("sum", 0.0)};
        }
      }
    }
  }
  return runs;
}

void expect_finals_match_snapshot(const StreamedFinals& finals,
                                  const telemetry::MetricsSnapshot& snap) {
  for (const auto& sample : snap.counters) {
    const auto it = finals.counters.find(sample.name);
    ASSERT_NE(it, finals.counters.end()) << sample.name;
    EXPECT_EQ(it->second, sample.value) << sample.name;
  }
  for (const auto& sample : snap.gauges) {
    const auto it = finals.gauges.find(sample.name);
    ASSERT_NE(it, finals.gauges.end()) << sample.name;
    EXPECT_EQ(it->second.first, sample.value) << sample.name;
    EXPECT_EQ(it->second.second, sample.high_water) << sample.name;
  }
  for (const auto& sample : snap.histograms) {
    const auto it = finals.histograms.find(sample.name);
    ASSERT_NE(it, finals.histograms.end()) << sample.name;
    EXPECT_EQ(it->second.first, sample.count) << sample.name;
    EXPECT_DOUBLE_EQ(it->second.second, sample.sum) << sample.name;
  }
}

#if SPIDER_TELEMETRY

TEST(StreamPlane, WarmPublishIsAllocationFree) {
  ASSERT_TRUE(core::alloc_guard_linked());
  sim::Simulator sim;
  telemetry::Hub& hub = sim.telemetry();
  telemetry::Counter& hits = hub.metrics().counter("app.hits");
  telemetry::Gauge& depth = hub.metrics().gauge("app.depth");
  telemetry::Histogram& latency = hub.metrics().histogram("app.latency_s");

  telemetry::StreamExporter exporter;
  telemetry::StreamSession session(exporter, hub, /*run_tag=*/1,
                                   /*cadence_us=*/100);
  session.begin(0, /*seed=*/42);  // cold: defines every metric (allocates)
  hits.inc(3);
  depth.set(5);
  latency.add(0.25);
  session.publisher().publish_metrics(100, hub.metrics());

  // Warm steady state: no new metrics, so each publish is a lockstep walk
  // of the registry plus fixed-size ring pushes — zero allocation budget.
  for (int i = 0; i < 4; ++i) {
    hits.inc(1);
    depth.set(6 + i);
    latency.add(0.5);
    core::ScopedAllocGuard guard("warm stream publish");
    session.publisher().publish_metrics(200 + 100 * i, hub.metrics());
  }
  session.finish(1000, sim.digest(), sim.events_executed());
}

TEST(StreamPlane, FinalStreamedTotalsReconcileWithSnapshot) {
  sim::Simulator sim;
  telemetry::Hub& hub = sim.telemetry();
  telemetry::Counter& hits = hub.metrics().counter("app.hits");
  telemetry::Gauge& depth = hub.metrics().gauge("app.depth");
  telemetry::Histogram& latency = hub.metrics().histogram("app.latency_s");

  telemetry::StreamExporter exporter;
  auto capture = std::make_shared<CaptureSink>();
  exporter.add_sink(capture);
  {
    telemetry::StreamSession session(exporter, hub, /*run_tag=*/3,
                                     /*cadence_us=*/50);
    session.begin(0, /*seed=*/11);
    for (int i = 1; i <= 200; ++i) {
      sim.post_at(sim::Time::micros(i * 37), [&, i] {
        hits.inc(static_cast<std::uint64_t>(i));
        depth.set(i % 17);
        latency.add(0.001 * i);
      });
    }
    sim.run_all();
    session.finish(sim.now().us(), sim.digest(), sim.events_executed());
  }  // detach drains the ring before the registry can go away

  const telemetry::MetricsSnapshot snap = hub.collect();
  auto runs = replay_stream(capture->text());
  ASSERT_EQ(runs.size(), 1u);
  const StreamedFinals& finals = runs[3];
  EXPECT_TRUE(finals.begun);
  EXPECT_TRUE(finals.ended);
  EXPECT_EQ(finals.events, sim.events_executed());
  expect_finals_match_snapshot(finals, snap);
}

// Compact vehicular scenario (mirrors tests/sweep_test.cc) so replications
// stay fast while exercising the full stack the stream hooks ride on.
core::ExperimentConfig stream_scenario(std::uint64_t seed,
                                       telemetry::StreamExporter* stream) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = sim::Time::seconds(15);
  cfg.medium.base_loss = 0.1;
  cfg.vehicle = mobility::Vehicle(mobility::Route::straight(250.0), 12.0);
  cfg.spider = core::single_channel_multi_ap(1);
  mobility::ApDescriptor ap;
  ap.ssid = "stream-ap";
  ap.mac = net::MacAddress::from_index(0xA0);
  ap.subnet = net::Ipv4Address{(10u << 24) | (0xA0u << 8)};
  ap.position = {90, 12};
  ap.channel = 1;
  ap.backhaul_bps = 2e6;
  mobility::ApDescriptor ap2 = ap;
  ap2.ssid = "stream-ap2";
  ap2.mac = net::MacAddress::from_index(0xA1);
  ap2.subnet = net::Ipv4Address{(10u << 24) | (0xA1u << 8)};
  ap2.position = {200, -8};
  cfg.aps = {ap, ap2};
  cfg.stream = stream;
  cfg.stream_cadence = sim::Time::millis(10);
  return cfg;
}

TEST(StreamPlane, SweepStreamsEveryReplicationAndLeavesDigestsUnchanged) {
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  const core::SweepReport plain = core::run_seed_sweep(
      seeds, [](std::uint64_t s) { return stream_scenario(s, nullptr); }, 2);

  telemetry::StreamExporter exporter;
  auto capture = std::make_shared<CaptureSink>();
  exporter.add_sink(capture);
  const core::SweepReport streamed = core::run_seed_sweep(
      seeds, [&](std::uint64_t s) { return stream_scenario(s, &exporter); },
      2);

  // The prime directive: attaching the stream plane changes nothing about
  // the simulation — publishing consumes no RNG and schedules no events.
  ASSERT_EQ(plain.runs.size(), streamed.runs.size());
  for (std::size_t i = 0; i < plain.runs.size(); ++i) {
    EXPECT_EQ(plain.runs[i].digest, streamed.runs[i].digest) << "run " << i;
    EXPECT_EQ(plain.runs[i].events_executed, streamed.runs[i].events_executed);
  }

  // SweepRunner tags untagged configs with their submission index, so the
  // interleaved multi-worker stream demultiplexes back into per-run finals
  // that reconcile with each replication's collected snapshot.
  auto runs = replay_stream(capture->text());
  ASSERT_EQ(runs.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto it = runs.find(static_cast<std::uint32_t>(i));
    ASSERT_NE(it, runs.end()) << "missing stream for run " << i;
    EXPECT_TRUE(it->second.begun);
    EXPECT_TRUE(it->second.ended);
    EXPECT_EQ(it->second.events, streamed.runs[i].events_executed);
    expect_finals_match_snapshot(it->second, streamed.runs[i].telemetry);
  }

  // The exporter's registry snapshot agrees: every run finished, in tag
  // order, with its event count.
  telemetry::JsonValue snap;
  ASSERT_TRUE(telemetry::parse_json(exporter.snapshot_json(), snap));
  EXPECT_EQ(snap.string_or("kind", ""), "snapshot");
  const telemetry::JsonValue* snap_runs = snap.find("runs");
  ASSERT_NE(snap_runs, nullptr);
  ASSERT_EQ(snap_runs->array.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const telemetry::JsonValue& entry = snap_runs->array[i];
    EXPECT_EQ(static_cast<std::size_t>(entry.number_or("run", 99)), i);
    EXPECT_EQ(entry.string_or("state", ""), "finished");
    EXPECT_EQ(static_cast<std::uint64_t>(entry.number_or("events", 0)),
              streamed.runs[i].events_executed);
  }
}

#endif  // SPIDER_TELEMETRY

}  // namespace
}  // namespace spider
