#include "mac/access_point.h"
#include "mac/client_session.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/medium.h"
#include "phy/radio.h"

namespace spider::mac {
namespace {

class MacTest : public ::testing::Test {
 protected:
  MacTest() {
    phy::MediumConfig cfg;
    cfg.base_loss = 0.0;
    cfg.edge_degradation = false;
    medium_ = std::make_unique<phy::Medium>(sim_, sim::Rng(1), cfg);
  }

  AccessPointConfig quick_ap(net::ChannelId channel = 6) {
    AccessPointConfig cfg;
    cfg.channel = channel;
    cfg.response_delay_min = sim::Time::millis(1);
    cfg.response_delay_max = sim::Time::millis(2);
    return cfg;
  }

  std::unique_ptr<AccessPoint> make_ap(net::ChannelId channel = 6) {
    return std::make_unique<AccessPoint>(
        *medium_, net::MacAddress::from_index(0xA0), phy::Vec2{0, 0},
        sim::Rng(2), quick_ap(channel));
  }

  std::unique_ptr<phy::Radio> make_client(net::ChannelId channel = 6) {
    auto r = std::make_unique<phy::Radio>(
        *medium_, net::MacAddress::from_index(0xC0),
        phy::RadioConfig{.initial_channel = channel});
    r->set_position({20, 0});
    return r;
  }

  // Drives a full join and returns the session once associated.
  std::unique_ptr<ClientSession> associate(AccessPoint& ap, phy::Radio& client) {
    auto session = std::make_unique<ClientSession>(
        sim_, client.address(), ap.address(), ap.channel(),
        [&client](const net::Frame& f) { return client.send(f); },
        ClientSessionConfig{.link_timeout = sim::Time::millis(100)});
    client.set_receive_handler(
        [raw = session.get()](const net::Frame& f, const phy::RxInfo&) {
          raw->handle_frame(f);
        });
    session->start_join();
    sim_.run_for(sim::Time::millis(500));
    return session;
  }

  sim::Simulator sim_;
  std::unique_ptr<phy::Medium> medium_;
};

TEST_F(MacTest, ApBeaconsPeriodically) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  int beacons = 0;
  client->set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kBeacon) ++beacons;
  });
  sim_.run_until(sim::Time::seconds(1));
  EXPECT_GE(beacons, 9);
  EXPECT_LE(beacons, 11);
}

TEST_F(MacTest, ApAnswersProbe) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  int probe_responses = 0;
  client->set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kProbeResponse && f.dst == client->address()) {
      const auto& info = std::get<net::BeaconInfo>(f.payload.get());
      EXPECT_EQ(info.channel, 6);
      ++probe_responses;
    }
  });
  client->send(net::make_probe_request(client->address()));
  sim_.run_until(sim::Time::millis(100));
  EXPECT_EQ(probe_responses, 1);
}

TEST_F(MacTest, FullAssociationHandshake) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  auto session = associate(*ap, *client);

  EXPECT_TRUE(session->associated());
  EXPECT_TRUE(ap->is_associated(client->address()));
  EXPECT_GT(session->association_delay(), sim::Time::zero());
  EXPECT_LT(session->association_delay(), sim::Time::millis(50));
  EXPECT_EQ(ap->assoc_grants(), 1u);
}

TEST_F(MacTest, ApIgnoresAssocBeforeAuth) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  int responses = 0;
  client->set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kAssocResponse) ++responses;
  });
  client->send(net::make_assoc_request(client->address(), ap->address()));
  sim_.run_until(sim::Time::millis(200));
  EXPECT_EQ(responses, 0);
  EXPECT_FALSE(ap->is_associated(client->address()));
}

TEST_F(MacTest, SessionRetriesUntilTxPossible) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  bool gate_open = false;  // radio "parked on another channel"
  ClientSession session(
      sim_, client->address(), ap->address(), 6,
      [&](const net::Frame& f) { return gate_open && client->send(f); },
      ClientSessionConfig{.link_timeout = sim::Time::millis(100)});
  client->set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    session.handle_frame(f);
  });
  session.start_join();
  sim_.schedule_at(sim::Time::millis(450), [&] { gate_open = true; });
  sim_.run_until(sim::Time::millis(400));
  EXPECT_FALSE(session.associated());
  sim_.run_until(sim::Time::seconds(1));
  EXPECT_TRUE(session.associated());
  EXPECT_GT(session.attempts(), 4);
}

TEST_F(MacTest, RadioOnChannelTriggersImmediateRetry) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  bool gate_open = false;
  ClientSession session(
      sim_, client->address(), ap->address(), 6,
      [&](const net::Frame& f) { return gate_open && client->send(f); },
      ClientSessionConfig{.link_timeout = sim::Time::seconds(10)});
  client->set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    session.handle_frame(f);
  });
  session.start_join();  // swallowed by the gate; huge retry timer
  sim_.schedule_at(sim::Time::millis(50), [&] {
    gate_open = true;
    session.radio_on_channel();
  });
  sim_.run_until(sim::Time::millis(500));
  EXPECT_TRUE(session.associated());
}

TEST_F(MacTest, SessionFailsAfterMaxAttempts) {
  auto client = make_client();  // no AP at all
  std::vector<SessionEvent> events;
  ClientSession session(
      sim_, client->address(), net::MacAddress::from_index(0xEE), 6,
      [&](const net::Frame& f) { return client->send(f); },
      ClientSessionConfig{.link_timeout = sim::Time::millis(50),
                          .max_attempts = 3});
  session.set_event_handler(
      [&](ClientSession&, SessionEvent ev) { events.push_back(ev); });
  session.start_join();
  sim_.run_until(sim::Time::seconds(2));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], SessionEvent::kFailed);
  EXPECT_EQ(session.state(), SessionState::kFailed);
  EXPECT_EQ(session.attempts(), 3);
}

TEST_F(MacTest, AbandonStopsRetries) {
  auto client = make_client();
  ClientSession session(
      sim_, client->address(), net::MacAddress::from_index(0xEE), 6,
      [&](const net::Frame& f) { return client->send(f); },
      ClientSessionConfig{.link_timeout = sim::Time::millis(50)});
  session.start_join();
  session.abandon();
  EXPECT_EQ(session.state(), SessionState::kIdle);
  const int attempts = session.attempts();
  sim_.run_until(sim::Time::seconds(1));
  EXPECT_EQ(session.attempts(), attempts);
}

TEST_F(MacTest, DisassocResetsSession) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  auto session = associate(*ap, *client);
  ASSERT_TRUE(session->associated());
  session->handle_frame(
      net::make_disassoc(ap->address(), client->address(), ap->address()));
  EXPECT_EQ(session->state(), SessionState::kIdle);
}

TEST_F(MacTest, PsmBuffersWhileParkedAndPsPollReleases) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  auto session = associate(*ap, *client);
  ASSERT_TRUE(session->associated());

  client->send(net::make_null_data(client->address(), ap->address(), true));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_TRUE(ap->in_power_save(client->address()));

  net::TcpSegment seg;
  seg.payload_bytes = 500;
  EXPECT_TRUE(ap->send_to_client(
      client->address(), net::make_tcp_frame(ap->address(), client->address(),
                                             ap->address(), seg)));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_EQ(ap->buffered_frames(client->address()), 1u);

  int data_frames = 0;
  client->set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kData) ++data_frames;
  });
  client->send(net::make_ps_poll(client->address(), ap->address()));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_EQ(data_frames, 1);
  EXPECT_EQ(ap->buffered_frames(client->address()), 0u);
  EXPECT_FALSE(ap->in_power_save(client->address()));
}

TEST_F(MacTest, WakeFlushesBufferOnPmZero) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  auto session = associate(*ap, *client);
  ASSERT_TRUE(session->associated());

  client->send(net::make_null_data(client->address(), ap->address(), true));
  sim_.run_for(sim::Time::millis(100));
  net::TcpSegment seg;
  seg.payload_bytes = 10;
  ap->send_to_client(client->address(),
                     net::make_tcp_frame(ap->address(), client->address(),
                                         ap->address(), seg));
  EXPECT_EQ(ap->buffered_frames(client->address()), 1u);
  client->send(net::make_null_data(client->address(), ap->address(), false));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_EQ(ap->buffered_frames(client->address()), 0u);
  EXPECT_FALSE(ap->in_power_save(client->address()));
}

TEST_F(MacTest, SendToUnassociatedClientFails) {
  auto ap = make_ap();
  ap->start();
  net::TcpSegment seg;
  seg.payload_bytes = 10;
  EXPECT_FALSE(ap->send_to_client(
      net::MacAddress::from_index(0xDD),
      net::make_tcp_frame(ap->address(), net::MacAddress::from_index(0xDD),
                          ap->address(), seg)));
}

TEST_F(MacTest, BufferCapDropsExcess) {
  AccessPointConfig cfg = quick_ap();
  cfg.max_buffered_frames = 3;
  AccessPoint ap(*medium_, net::MacAddress::from_index(0xA0), {0, 0},
                 sim::Rng(2), cfg);
  ap.start();
  auto client = make_client();
  auto session = associate(ap, *client);
  ASSERT_TRUE(session->associated());
  client->send(net::make_null_data(client->address(), ap.address(), true));
  sim_.run_for(sim::Time::millis(100));

  net::TcpSegment seg;
  seg.payload_bytes = 10;
  for (int i = 0; i < 5; ++i) {
    ap.send_to_client(client->address(),
                      net::make_tcp_frame(ap.address(), client->address(),
                                          ap.address(), seg));
  }
  EXPECT_EQ(ap.buffered_frames(client->address()), 3u);
  EXPECT_EQ(ap.buffer_drops(), 2u);
}

TEST_F(MacTest, UplinkDataReachesSink) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  auto session = associate(*ap, *client);
  ASSERT_TRUE(session->associated());

  int sunk = 0;
  ap->set_data_sink([&](const net::Frame& f) {
    EXPECT_EQ(f.src, client->address());
    ++sunk;
  });
  net::TcpSegment seg;
  seg.payload_bytes = 64;
  client->send(net::make_tcp_frame(client->address(), ap->address(),
                                   ap->address(), seg));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_EQ(sunk, 1);
}

TEST_F(MacTest, UplinkFromUnassociatedClientIgnored) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  int sunk = 0;
  ap->set_data_sink([&](const net::Frame&) { ++sunk; });
  net::TcpSegment seg;
  seg.payload_bytes = 64;
  client->send(net::make_tcp_frame(client->address(), ap->address(),
                                   ap->address(), seg));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_EQ(sunk, 0);
}

TEST_F(MacTest, DisassocFrameClearsApState) {
  auto ap = make_ap();
  ap->start();
  auto client = make_client();
  auto session = associate(*ap, *client);
  ASSERT_TRUE(ap->is_associated(client->address()));
  client->send(net::make_disassoc(client->address(), ap->address(),
                                  ap->address()));
  sim_.run_for(sim::Time::millis(100));
  EXPECT_FALSE(ap->is_associated(client->address()));
}

TEST_F(MacTest, SessionStateNames) {
  EXPECT_STREQ(to_string(SessionState::kIdle), "Idle");
  EXPECT_STREQ(to_string(SessionState::kAssociated), "Associated");
  EXPECT_STREQ(to_string(SessionState::kFailed), "Failed");
}

}  // namespace
}  // namespace spider::mac
