#include "sim/time.h"

#include <gtest/gtest.h>

namespace spider::sim {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.us(), 0);
  EXPECT_TRUE(t.is_zero());
  EXPECT_FALSE(t.is_negative());
}

TEST(Time, UnitConstructors) {
  EXPECT_EQ(Time::micros(1500).us(), 1500);
  EXPECT_EQ(Time::millis(3).us(), 3000);
  EXPECT_EQ(Time::seconds(2.5).us(), 2'500'000);
}

TEST(Time, UnitAccessors) {
  const Time t = Time::micros(1'500'000);
  EXPECT_DOUBLE_EQ(t.ms(), 1500.0);
  EXPECT_DOUBLE_EQ(t.sec(), 1.5);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::millis(1), Time::millis(2));
  EXPECT_LE(Time::millis(2), Time::millis(2));
  EXPECT_GT(Time::seconds(1), Time::millis(999));
  EXPECT_EQ(Time::millis(1000), Time::seconds(1));
}

TEST(Time, Arithmetic) {
  const Time a = Time::millis(300);
  const Time b = Time::millis(200);
  EXPECT_EQ((a + b).us(), 500'000);
  EXPECT_EQ((a - b).us(), 100'000);
  EXPECT_EQ((b - a).us(), -100'000);
  EXPECT_TRUE((b - a).is_negative());
}

TEST(Time, ScalarMultiplication) {
  EXPECT_EQ((Time::millis(100) * 3).us(), 300'000);
  EXPECT_EQ((3 * Time::millis(100)).us(), 300'000);
  EXPECT_EQ((Time::millis(100) * 0.5).us(), 50'000);
  EXPECT_EQ((Time::millis(100) / 4).us(), 25'000);
}

TEST(Time, Ratio) {
  EXPECT_DOUBLE_EQ(Time::millis(100) / Time::millis(400), 0.25);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::millis(100);
  t += Time::millis(50);
  EXPECT_EQ(t.us(), 150'000);
  t -= Time::millis(150);
  EXPECT_TRUE(t.is_zero());
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::seconds(3.0).to_string(), "3s");
  EXPECT_EQ(Time::millis(250).to_string(), "250ms");
  EXPECT_EQ(Time::micros(42).to_string(), "42us");
}

TEST(Time, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(Time::max(), Time::seconds(1e12));
}

TEST(TransmissionTime, MatchesRateMath) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_EQ(transmission_time(1500, 12e6).us(), 1000);
  // 11 Mbps MSS frame ~ 1.06 ms.
  EXPECT_NEAR(transmission_time(1460, 11e6).us(), 1062, 1);
}

TEST(TransmissionTime, ZeroBytesIsZero) {
  EXPECT_TRUE(transmission_time(0, 11e6).is_zero());
}

}  // namespace
}  // namespace spider::sim
