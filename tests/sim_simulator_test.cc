#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/check.h"

namespace spider::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_TRUE(sim.now().is_zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(Time::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(Time::millis(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TieBrokenByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time::millis(5), [&] { order.push_back(1); });
  sim.schedule_at(Time::millis(5), [&] { order.push_back(2); });
  sim.schedule_at(Time::millis(5), [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  Time seen;
  sim.schedule_at(Time::millis(42), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, Time::millis(42));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(Time::seconds(5));
  EXPECT_EQ(sim.now(), Time::seconds(5));
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(Time::seconds(10), [&] { fired = true; });
  sim.run_until(Time::seconds(5));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(Time::seconds(10));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunForTilesExactly) {
  Simulator sim;
  sim.run_for(Time::millis(100));
  sim.run_for(Time::millis(100));
  EXPECT_EQ(sim.now(), Time::millis(200));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  sim.run_until(Time::millis(50));
  Time seen;
  sim.schedule_after(Time::millis(25), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, Time::millis(75));
}

TEST(Simulator, SchedulingInThePastFailsCheck) {
  // Scheduling in the past is an invariant violation (SPIDER_CHECK), not an
  // exception — see the policy note in src/core/check.h. Under kLogAndCount
  // the failure is counted and the event is clamped to now().
  check::ScopedPolicy policy(check::Policy::kLogAndCount);
  check::reset_counters();
  Simulator sim;
  sim.run_until(Time::millis(100));
  Time fired_at;
  sim.schedule_at(Time::millis(50), [&] { fired_at = sim.now(); });
  EXPECT_EQ(check::check_failures(), 1u);
  sim.schedule_after(Time::millis(-1), [] {});
  EXPECT_EQ(check::check_failures(), 2u);
  sim.run_all();
  EXPECT_EQ(fired_at, Time::millis(100)) << "past event must clamp to now()";
  check::reset_counters();
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(Time::millis(10), chain);
  };
  sim.schedule_after(Time::millis(10), chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), Time::millis(50));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.schedule_at(Time::millis(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  TimerHandle h = sim.schedule_at(Time::millis(10), [] {});
  sim.run_all();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, DefaultHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(Time::millis(1), [&] { ++count; });
  sim.schedule_at(Time::millis(2), [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(Time::millis(3), [&] { ++count; });
  sim.run_until(Time::seconds(1));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), Time::millis(2));
  // A later run resumes.
  sim.run_all();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(Time::millis(i), [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CancelledEventsAreNotCounted) {
  Simulator sim;
  auto h = sim.schedule_at(Time::millis(1), [] {});
  sim.schedule_at(Time::millis(2), [] {});
  h.cancel();
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, StaleHandleDoesNotCancelRecycledSlot) {
  // The cancellation tokens live in a pooled slab; once an event fires, its
  // slot is recycled for later events. A handle to the fired event must stay
  // inert even when its slot is reused (generation counter mismatch).
  Simulator sim;
  TimerHandle first = sim.schedule_at(Time::millis(1), [] {});
  sim.run_all();
  EXPECT_FALSE(first.pending());

  bool second_fired = false;
  TimerHandle second =
      sim.schedule_at(Time::millis(2), [&] { second_fired = true; });
  EXPECT_TRUE(second.pending());
  first.cancel();  // stale — must not touch the recycled slot
  EXPECT_TRUE(second.pending());
  sim.run_all();
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, HandleOutlivingSimulatorIsInert) {
  TimerHandle h;
  {
    Simulator sim;
    h = sim.schedule_at(Time::millis(1), [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, HeavyCancellationChurnRecyclesTokens) {
  // Many schedule/cancel/fire cycles force slab slots through repeated
  // generations; pending() must track each handle exactly.
  Simulator sim;
  int fired = 0;
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<TimerHandle> handles;
    handles.reserve(20);
    const Time base = sim.now() + Time::millis(1);
    for (int i = 0; i < 20; ++i) {
      handles.push_back(sim.schedule_at(base + Time::micros(i), [&] {
        ++fired;
      }));
    }
    for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(handles[static_cast<std::size_t>(i)].pending(), i % 2 == 1);
    }
    sim.run_all();
    for (const auto& h : handles) EXPECT_FALSE(h.pending());
  }
  EXPECT_EQ(fired, 50 * 10);
}

}  // namespace
}  // namespace spider::sim
