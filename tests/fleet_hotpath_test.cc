// Fleet-scale hot path: batched mobility + interned beacon payloads.
//
// The contract mirrors the PHY fast-path one: the batch APIs change *work*,
// never *outcomes*. Medium::move_radios must leave the world in exactly the
// state N scalar set_position calls leave it in (same receive sets, same RNG
// streams, bit-identical digests), beacon interning must put bytes on the
// air indistinguishable from per-tick payload construction, and the
// position-update timer chain must stop at the experiment horizon.
#include "core/fleet.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "mac/access_point.h"
#include "mobility/deployment.h"
#include "net/frame.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace spider::core {
namespace {

phy::MediumConfig lossless() {
  phy::MediumConfig cfg;
  cfg.base_loss = 0.0;
  cfg.edge_degradation = false;
  // The batched-moves test asserts deliveries_grid() directly; pin the
  // auto-select threshold off so this small world still uses the grid.
  cfg.indexed_scan_threshold = 0;
  return cfg;
}

// --- batched moves vs. brute force over random trajectories ------------------

TEST(FleetHotPath, BatchedMovesMatchBruteForceReceiveSets) {
  // Random walk applied through Medium::move_radios (one batch per round,
  // crossing cell boundaries and negative coordinates), verified against the
  // brute-force receive set computed from raw positions. Parked radios stay
  // in every batch so the no-move early-out is exercised too.
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(1), lossless());
  sim::Rng walk(0xBA7C);

  constexpr int kRadios = 40;
  constexpr int kRounds = 30;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<int> received(kRadios, 0);
  std::vector<int> expected(kRadios, 0);
  for (int i = 0; i < kRadios; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(i + 1),
        phy::RadioConfig{.initial_channel = i % 2 == 0 ? 6 : 11}));
    radios.back()->set_position(
        {walk.uniform(-500.0, 500.0), walk.uniform(-500.0, 500.0)});
    const int idx = i;
    radios.back()->set_receive_handler(
        [&received, idx](const net::Frame&, const phy::RxInfo&) {
          ++received[idx];
        });
  }

  std::vector<phy::RadioMove> moves;
  for (int round = 0; round < kRounds; ++round) {
    moves.clear();
    for (int i = 0; i < kRadios; ++i) {
      phy::Radio& r = *radios[static_cast<std::size_t>(i)];
      // Every fourth radio parks this round (identical position in the
      // batch); everyone else steps far enough to re-bucket most rounds.
      const phy::Vec2 next =
          (i + round) % 4 == 0
              ? r.position()
              : r.position() + phy::Vec2{walk.uniform(-200.0, 200.0),
                                         walk.uniform(-200.0, 200.0)};
      moves.push_back(phy::RadioMove{&r, next});
    }
    medium.move_radios(moves);
    // Occasionally flip a radio's channel so batches land in a freshly
    // repartitioned grid.
    if (round % 3 == 0) {
      phy::Radio& flip = *radios[static_cast<std::size_t>(
          walk.uniform_int(0, kRadios - 1))];
      flip.tune(flip.channel() == 6 ? 11 : 6);
      sim.run_all();
    }

    phy::Radio& sender = *radios[static_cast<std::size_t>(round % kRadios)];
    for (int i = 0; i < kRadios; ++i) {
      const phy::Radio& rx = *radios[static_cast<std::size_t>(i)];
      if (&rx == &sender || rx.channel() != sender.channel()) continue;
      if (phy::distance(sender.position(), rx.position()) >
          medium.config().range_m) {
        continue;
      }
      ++expected[static_cast<std::size_t>(i)];
    }
    sender.send(net::make_probe_request(sender.address()));
    sim.run_all();
    ASSERT_EQ(received, expected) << "round " << round << " diverged";
  }
  EXPECT_GT(medium.deliveries_grid(), 0u);
}

// --- batch vs. scalar: identical RNG streams over a lossy run ----------------

struct MobilityOutcome {
  std::uint64_t digest = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
};

MobilityOutcome run_lossy_mobility(bool batched) {
  sim::Simulator sim;
  phy::MediumConfig cfg;
  cfg.base_loss = 0.3;  // every in-range receiver consumes Bernoulli draws
  phy::Medium medium(sim, sim::Rng(42), cfg);
  sim::Rng walk(0x5EED);

  constexpr int kRadios = 50;
  constexpr int kRounds = 20;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (int i = 0; i < kRadios; ++i) {
    const net::ChannelId ch = i % 3 == 0 ? 1 : (i % 3 == 1 ? 6 : 11);
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(i + 1),
        phy::RadioConfig{.initial_channel = ch}));
    radios.back()->set_position(
        {walk.uniform(-400.0, 400.0), walk.uniform(-400.0, 400.0)});
  }

  std::vector<phy::RadioMove> moves;
  for (int round = 0; round < kRounds; ++round) {
    moves.clear();
    for (auto& r : radios) {
      moves.push_back(phy::RadioMove{
          r.get(), r->position() + phy::Vec2{walk.uniform(-180.0, 180.0),
                                             walk.uniform(-180.0, 180.0)}});
    }
    if (batched) {
      medium.move_radios(moves);
    } else {
      for (const phy::RadioMove& m : moves) m.radio->set_position(m.position);
    }
    for (int i = 0; i < kRadios; i += 5) {
      phy::Radio& tx = *radios[static_cast<std::size_t>(i)];
      tx.send(net::make_probe_request(tx.address()));
    }
    sim.run_all();
  }
  return {sim.digest(), medium.frames_delivered(), medium.frames_lost()};
}

TEST(FleetHotPath, BatchAndScalarMobilityConsumeIdenticalRngStreams) {
  const MobilityOutcome batch = run_lossy_mobility(true);
  const MobilityOutcome scalar = run_lossy_mobility(false);
  EXPECT_EQ(batch.digest, scalar.digest)
      << "batched re-bucketing leaked into the RNG stream";
  EXPECT_EQ(batch.delivered, scalar.delivered);
  EXPECT_EQ(batch.lost, scalar.lost);
}

// --- full-stack fleet: batch_mobility flag is digest-neutral -----------------

FleetConfig small_fleet(bool batch_mobility, bool intern_beacons) {
  FleetConfig cfg;
  cfg.seed = 7;
  cfg.clients = 4;
  cfg.duration = sim::Time::seconds(30);
  cfg.batch_mobility = batch_mobility;
  cfg.ap_mac.intern_beacons = intern_beacons;
  sim::Rng rng(cfg.seed);
  auto deploy_rng = rng.fork("deploy");
  cfg.aps = mobility::area_deployment(700, 500, 10, deploy_rng);
  return cfg;
}

TEST(FleetHotPath, FleetBatchAndScalarRunsAreBitIdentical) {
  std::uint64_t digests[2] = {0, 0};
  double throughput[2] = {0.0, 0.0};
  for (int batched = 0; batched < 2; ++batched) {
    FleetExperiment fleet(small_fleet(batched == 1, /*intern_beacons=*/true));
    const FleetResults r = fleet.run();
    digests[batched] = fleet.simulator().digest();
    throughput[batched] = r.aggregate_throughput_kBps();
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(throughput[0], throughput[1]);
}

TEST(FleetHotPath, BeaconInterningIsDigestNeutralFullStack) {
  std::uint64_t digests[2] = {0, 0};
  for (int interned = 0; interned < 2; ++interned) {
    FleetExperiment fleet(small_fleet(/*batch_mobility=*/true, interned == 1));
    fleet.run();
    digests[interned] = fleet.simulator().digest();
  }
  EXPECT_EQ(digests[0], digests[1])
      << "interned beacons changed what went on the air";
}

// --- horizon: the position-update chain must not outlive the run -------------

TEST(FleetHotPath, PositionUpdatesStopAtTheHorizon) {
  FleetConfig cfg = small_fleet(/*batch_mobility=*/true, true);
  cfg.duration = sim::Time::seconds(2);
  FleetExperiment fleet(std::move(cfg));
  fleet.run();

  // The last tick fires at 1.9 s (the chain stops once now + interval would
  // reach the horizon); nothing may move the fleet after the run.
  std::vector<phy::Vec2> at_horizon;
  for (std::size_t i = 0; i < fleet.client_count(); ++i) {
    at_horizon.push_back(fleet.client_device(i).radio().position());
  }
  fleet.simulator().run_for(sim::Time::seconds(5));
  for (std::size_t i = 0; i < fleet.client_count(); ++i) {
    EXPECT_EQ(fleet.client_device(i).radio().position(), at_horizon[i])
        << "client " << i << " moved after the experiment horizon";
  }
}

// --- beacon interning: payload pointer reuse ---------------------------------

// Collects the payload storage pointers of every beacon/probe-response an AP
// emits over a second of simulated time. Each observed payload is kept alive
// for the whole run — otherwise the allocator may hand the non-interned arm
// the same freed address for every mint and the pointer set would collapse
// to one entry spuriously (TSan's allocator does exactly that).
std::set<const net::FramePayload*> observed_payloads(bool intern) {
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(1), lossless());
  mac::AccessPointConfig ap_cfg;
  ap_cfg.intern_beacons = intern;
  ap_cfg.response_delay_min = sim::Time::millis(1);
  ap_cfg.response_delay_max = sim::Time::millis(2);
  mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA0),
                      phy::Vec2{0, 0}, sim::Rng(2), ap_cfg);
  phy::Radio client(medium, net::MacAddress::from_index(0xC0),
                    phy::RadioConfig{.initial_channel = ap_cfg.channel});
  client.set_position({20, 0});

  std::set<const net::FramePayload*> payloads;
  std::vector<net::SharedPayload> keepalive;
  client.set_receive_handler(
      [&payloads, &keepalive](const net::Frame& f, const phy::RxInfo&) {
        if (f.kind == net::FrameKind::kBeacon ||
            f.kind == net::FrameKind::kProbeResponse) {
          EXPECT_TRUE(f.payload.holds<net::BeaconInfo>());
          payloads.insert(f.payload.storage());
          keepalive.push_back(f.payload);
        }
      });
  ap.start();
  client.send(net::make_probe_request(client.address()));
  sim.run_until(sim::Time::seconds(1));
  return payloads;
}

TEST(FleetHotPath, InternedApReusesOnePayloadAcrossBeaconsAndProbes) {
  const auto interned = observed_payloads(true);
  // ~10 beacons + 1 probe response, all aliasing one allocation.
  ASSERT_EQ(interned.size(), 1u);
  EXPECT_NE(*interned.begin(), nullptr);

  const auto fresh = observed_payloads(false);
  EXPECT_GT(fresh.size(), 1u)
      << "non-interned AP should mint a payload per frame";
}

// --- management-response interning: auth/assoc alias the beacon payload ------

// Runs several clients through full auth+assoc exchanges against one AP and
// collects the payload storage pointer of every response, plus one beacon's
// for cross-referencing. As above, every payload is kept alive for the whole
// run so the allocator cannot recycle addresses and fake the aliasing.
struct MgmtPayloads {
  std::set<const net::FramePayload*> responses;
  const net::FramePayload* beacon = nullptr;
  int response_count = 0;
  std::vector<net::SharedPayload> keepalive;
};

MgmtPayloads observed_mgmt_payloads(bool intern) {
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(1), lossless());
  mac::AccessPointConfig ap_cfg;
  ap_cfg.intern_mgmt_responses = intern;
  ap_cfg.response_delay_min = sim::Time::millis(1);
  ap_cfg.response_delay_max = sim::Time::millis(2);
  mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA1),
                      phy::Vec2{0, 0}, sim::Rng(2), ap_cfg);
  ap.start();

  MgmtPayloads out;
  std::vector<std::unique_ptr<phy::Radio>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(0xC0 + i),
        phy::RadioConfig{.initial_channel = ap_cfg.channel}));
    clients.back()->set_position({20.0 + i, 0.0});
    // Delivery is promiscuous; count only frames addressed to this client so
    // the expected response count stays exact.
    const net::MacAddress self = clients.back()->address();
    clients.back()->set_receive_handler(
        [&out, self](const net::Frame& f, const phy::RxInfo&) {
          if (f.dst != self && !f.dst.is_broadcast()) return;
          if (f.kind == net::FrameKind::kAuthResponse ||
              f.kind == net::FrameKind::kAssocResponse) {
            ++out.response_count;
            out.responses.insert(f.payload.storage());
            out.keepalive.push_back(f.payload);
          } else if (f.kind == net::FrameKind::kBeacon) {
            out.beacon = f.payload.storage();
            out.keepalive.push_back(f.payload);
          }
        });
  }
  // The AP beacons forever, so drive the exchanges off scheduled sends and a
  // bounded run rather than run_all(). Auth at +10 ms steps, assoc 5 ms later
  // (the response delay is capped at 2 ms, so auth always lands first).
  for (std::size_t i = 0; i < clients.size(); ++i) {
    phy::Radio* c = clients[i].get();
    const net::MacAddress ap_addr = ap.address();
    sim.schedule_at(sim::Time::millis(10 * (i + 1)), [c, ap_addr] {
      c->send(net::make_auth_request(c->address(), ap_addr));
    });
    sim.schedule_at(sim::Time::millis(10 * (i + 1) + 5), [c, ap_addr] {
      c->send(net::make_assoc_request(c->address(), ap_addr));
    });
  }
  sim.run_until(sim::Time::millis(200));
  return out;
}

TEST(FleetHotPath, InternedMgmtResponsesAliasTheBeaconPayload) {
  const MgmtPayloads interned = observed_mgmt_payloads(true);
  ASSERT_EQ(interned.response_count, 8);  // 4 clients × (auth + assoc)
  ASSERT_EQ(interned.responses.size(), 1u)
      << "every grant should hand out the same interned allocation";
  EXPECT_NE(*interned.responses.begin(), nullptr);
  EXPECT_EQ(*interned.responses.begin(), interned.beacon)
      << "auth/assoc responses should alias the AP's beacon payload";
  for (const net::SharedPayload& p : interned.keepalive) {
    EXPECT_TRUE(p.holds<net::BeaconInfo>());
  }

  const MgmtPayloads fresh = observed_mgmt_payloads(false);
  ASSERT_EQ(fresh.response_count, 8);
  // Non-interned responses are payload-less: monostate, null storage.
  ASSERT_EQ(fresh.responses.size(), 1u);
  EXPECT_EQ(*fresh.responses.begin(), nullptr);
}

TEST(FleetHotPath, InternedMgmtPayloadOutlivesItsAccessPoint) {
  // The payload is refcounted storage, not a pointer into the AP: a response
  // captured by a receiver (e.g. parked in a power-save buffer or a trace)
  // must stay readable after the AP is torn down mid-simulation.
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(3), lossless());
  net::SharedPayload captured;
  {
    mac::AccessPointConfig ap_cfg;
    ap_cfg.ssid = "teardown-ap";
    ap_cfg.response_delay_min = sim::Time::millis(1);
    ap_cfg.response_delay_max = sim::Time::millis(1);
    mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA2),
                        phy::Vec2{0, 0}, sim::Rng(4), ap_cfg);
    phy::Radio client(medium, net::MacAddress::from_index(0xC9),
                      phy::RadioConfig{.initial_channel = ap_cfg.channel});
    client.set_position({10.0, 0.0});
    client.set_receive_handler(
        [&captured](const net::Frame& f, const phy::RxInfo&) {
          if (f.kind == net::FrameKind::kAuthResponse) captured = f.payload;
        });
    client.send(net::make_auth_request(client.address(), ap.address()));
    sim.run_all();
    ASSERT_TRUE(captured.holds<net::BeaconInfo>());
  }
  // AP (and its interned payload member) destroyed; the captured refcount
  // keeps the storage alive.
  ASSERT_TRUE(captured.holds<net::BeaconInfo>());
  EXPECT_EQ(captured.get_if<net::BeaconInfo>()->ssid, "teardown-ap");
}

TEST(FleetHotPath, MgmtInterningIsDigestNeutralFullStack) {
  std::uint64_t digests[2] = {0, 0};
  for (int interned = 0; interned < 2; ++interned) {
    FleetConfig cfg = small_fleet(/*batch_mobility=*/true, true);
    cfg.ap_mac.intern_mgmt_responses = interned == 1;
    FleetExperiment fleet(std::move(cfg));
    fleet.run();
    digests[interned] = fleet.simulator().digest();
  }
  EXPECT_EQ(digests[0], digests[1])
      << "interned management responses changed what went on the air";
}

}  // namespace
}  // namespace spider::core
