// Fleet-scale hot path: batched mobility + interned beacon payloads.
//
// The contract mirrors the PHY fast-path one: the batch APIs change *work*,
// never *outcomes*. Medium::move_radios must leave the world in exactly the
// state N scalar set_position calls leave it in (same receive sets, same RNG
// streams, bit-identical digests), beacon interning must put bytes on the
// air indistinguishable from per-tick payload construction, and the
// position-update timer chain must stop at the experiment horizon.
#include "core/fleet.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "mac/access_point.h"
#include "mobility/deployment.h"
#include "net/frame.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace spider::core {
namespace {

phy::MediumConfig lossless() {
  phy::MediumConfig cfg;
  cfg.base_loss = 0.0;
  cfg.edge_degradation = false;
  return cfg;
}

// --- batched moves vs. brute force over random trajectories ------------------

TEST(FleetHotPath, BatchedMovesMatchBruteForceReceiveSets) {
  // Random walk applied through Medium::move_radios (one batch per round,
  // crossing cell boundaries and negative coordinates), verified against the
  // brute-force receive set computed from raw positions. Parked radios stay
  // in every batch so the no-move early-out is exercised too.
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(1), lossless());
  sim::Rng walk(0xBA7C);

  constexpr int kRadios = 40;
  constexpr int kRounds = 30;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<int> received(kRadios, 0);
  std::vector<int> expected(kRadios, 0);
  for (int i = 0; i < kRadios; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(i + 1),
        phy::RadioConfig{.initial_channel = i % 2 == 0 ? 6 : 11}));
    radios.back()->set_position(
        {walk.uniform(-500.0, 500.0), walk.uniform(-500.0, 500.0)});
    const int idx = i;
    radios.back()->set_receive_handler(
        [&received, idx](const net::Frame&, const phy::RxInfo&) {
          ++received[idx];
        });
  }

  std::vector<phy::RadioMove> moves;
  for (int round = 0; round < kRounds; ++round) {
    moves.clear();
    for (int i = 0; i < kRadios; ++i) {
      phy::Radio& r = *radios[static_cast<std::size_t>(i)];
      // Every fourth radio parks this round (identical position in the
      // batch); everyone else steps far enough to re-bucket most rounds.
      const phy::Vec2 next =
          (i + round) % 4 == 0
              ? r.position()
              : r.position() + phy::Vec2{walk.uniform(-200.0, 200.0),
                                         walk.uniform(-200.0, 200.0)};
      moves.push_back(phy::RadioMove{&r, next});
    }
    medium.move_radios(moves);
    // Occasionally flip a radio's channel so batches land in a freshly
    // repartitioned grid.
    if (round % 3 == 0) {
      phy::Radio& flip = *radios[static_cast<std::size_t>(
          walk.uniform_int(0, kRadios - 1))];
      flip.tune(flip.channel() == 6 ? 11 : 6);
      sim.run_all();
    }

    phy::Radio& sender = *radios[static_cast<std::size_t>(round % kRadios)];
    for (int i = 0; i < kRadios; ++i) {
      const phy::Radio& rx = *radios[static_cast<std::size_t>(i)];
      if (&rx == &sender || rx.channel() != sender.channel()) continue;
      if (phy::distance(sender.position(), rx.position()) >
          medium.config().range_m) {
        continue;
      }
      ++expected[static_cast<std::size_t>(i)];
    }
    sender.send(net::make_probe_request(sender.address()));
    sim.run_all();
    ASSERT_EQ(received, expected) << "round " << round << " diverged";
  }
  EXPECT_GT(medium.deliveries_grid(), 0u);
}

// --- batch vs. scalar: identical RNG streams over a lossy run ----------------

struct MobilityOutcome {
  std::uint64_t digest = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
};

MobilityOutcome run_lossy_mobility(bool batched) {
  sim::Simulator sim;
  phy::MediumConfig cfg;
  cfg.base_loss = 0.3;  // every in-range receiver consumes Bernoulli draws
  phy::Medium medium(sim, sim::Rng(42), cfg);
  sim::Rng walk(0x5EED);

  constexpr int kRadios = 50;
  constexpr int kRounds = 20;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (int i = 0; i < kRadios; ++i) {
    const net::ChannelId ch = i % 3 == 0 ? 1 : (i % 3 == 1 ? 6 : 11);
    radios.push_back(std::make_unique<phy::Radio>(
        medium, net::MacAddress::from_index(i + 1),
        phy::RadioConfig{.initial_channel = ch}));
    radios.back()->set_position(
        {walk.uniform(-400.0, 400.0), walk.uniform(-400.0, 400.0)});
  }

  std::vector<phy::RadioMove> moves;
  for (int round = 0; round < kRounds; ++round) {
    moves.clear();
    for (auto& r : radios) {
      moves.push_back(phy::RadioMove{
          r.get(), r->position() + phy::Vec2{walk.uniform(-180.0, 180.0),
                                             walk.uniform(-180.0, 180.0)}});
    }
    if (batched) {
      medium.move_radios(moves);
    } else {
      for (const phy::RadioMove& m : moves) m.radio->set_position(m.position);
    }
    for (int i = 0; i < kRadios; i += 5) {
      phy::Radio& tx = *radios[static_cast<std::size_t>(i)];
      tx.send(net::make_probe_request(tx.address()));
    }
    sim.run_all();
  }
  return {sim.digest(), medium.frames_delivered(), medium.frames_lost()};
}

TEST(FleetHotPath, BatchAndScalarMobilityConsumeIdenticalRngStreams) {
  const MobilityOutcome batch = run_lossy_mobility(true);
  const MobilityOutcome scalar = run_lossy_mobility(false);
  EXPECT_EQ(batch.digest, scalar.digest)
      << "batched re-bucketing leaked into the RNG stream";
  EXPECT_EQ(batch.delivered, scalar.delivered);
  EXPECT_EQ(batch.lost, scalar.lost);
}

// --- full-stack fleet: batch_mobility flag is digest-neutral -----------------

FleetConfig small_fleet(bool batch_mobility, bool intern_beacons) {
  FleetConfig cfg;
  cfg.seed = 7;
  cfg.clients = 4;
  cfg.duration = sim::Time::seconds(30);
  cfg.batch_mobility = batch_mobility;
  cfg.ap_mac.intern_beacons = intern_beacons;
  sim::Rng rng(cfg.seed);
  auto deploy_rng = rng.fork("deploy");
  cfg.aps = mobility::area_deployment(700, 500, 10, deploy_rng);
  return cfg;
}

TEST(FleetHotPath, FleetBatchAndScalarRunsAreBitIdentical) {
  std::uint64_t digests[2] = {0, 0};
  double throughput[2] = {0.0, 0.0};
  for (int batched = 0; batched < 2; ++batched) {
    FleetExperiment fleet(small_fleet(batched == 1, /*intern_beacons=*/true));
    const FleetResults r = fleet.run();
    digests[batched] = fleet.simulator().digest();
    throughput[batched] = r.aggregate_throughput_kBps();
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(throughput[0], throughput[1]);
}

TEST(FleetHotPath, BeaconInterningIsDigestNeutralFullStack) {
  std::uint64_t digests[2] = {0, 0};
  for (int interned = 0; interned < 2; ++interned) {
    FleetExperiment fleet(small_fleet(/*batch_mobility=*/true, interned == 1));
    fleet.run();
    digests[interned] = fleet.simulator().digest();
  }
  EXPECT_EQ(digests[0], digests[1])
      << "interned beacons changed what went on the air";
}

// --- horizon: the position-update chain must not outlive the run -------------

TEST(FleetHotPath, PositionUpdatesStopAtTheHorizon) {
  FleetConfig cfg = small_fleet(/*batch_mobility=*/true, true);
  cfg.duration = sim::Time::seconds(2);
  FleetExperiment fleet(std::move(cfg));
  fleet.run();

  // The last tick fires at 1.9 s (the chain stops once now + interval would
  // reach the horizon); nothing may move the fleet after the run.
  std::vector<phy::Vec2> at_horizon;
  for (std::size_t i = 0; i < fleet.client_count(); ++i) {
    at_horizon.push_back(fleet.client_device(i).radio().position());
  }
  fleet.simulator().run_for(sim::Time::seconds(5));
  for (std::size_t i = 0; i < fleet.client_count(); ++i) {
    EXPECT_EQ(fleet.client_device(i).radio().position(), at_horizon[i])
        << "client " << i << " moved after the experiment horizon";
  }
}

// --- beacon interning: payload pointer reuse ---------------------------------

// Collects the payload storage pointers of every beacon/probe-response an AP
// emits over a second of simulated time. Each observed payload is kept alive
// for the whole run — otherwise the allocator may hand the non-interned arm
// the same freed address for every mint and the pointer set would collapse
// to one entry spuriously (TSan's allocator does exactly that).
std::set<const net::FramePayload*> observed_payloads(bool intern) {
  sim::Simulator sim;
  phy::Medium medium(sim, sim::Rng(1), lossless());
  mac::AccessPointConfig ap_cfg;
  ap_cfg.intern_beacons = intern;
  ap_cfg.response_delay_min = sim::Time::millis(1);
  ap_cfg.response_delay_max = sim::Time::millis(2);
  mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA0),
                      phy::Vec2{0, 0}, sim::Rng(2), ap_cfg);
  phy::Radio client(medium, net::MacAddress::from_index(0xC0),
                    phy::RadioConfig{.initial_channel = ap_cfg.channel});
  client.set_position({20, 0});

  std::set<const net::FramePayload*> payloads;
  std::vector<net::SharedPayload> keepalive;
  client.set_receive_handler(
      [&payloads, &keepalive](const net::Frame& f, const phy::RxInfo&) {
        if (f.kind == net::FrameKind::kBeacon ||
            f.kind == net::FrameKind::kProbeResponse) {
          EXPECT_TRUE(f.payload.holds<net::BeaconInfo>());
          payloads.insert(f.payload.storage());
          keepalive.push_back(f.payload);
        }
      });
  ap.start();
  client.send(net::make_probe_request(client.address()));
  sim.run_until(sim::Time::seconds(1));
  return payloads;
}

TEST(FleetHotPath, InternedApReusesOnePayloadAcrossBeaconsAndProbes) {
  const auto interned = observed_payloads(true);
  // ~10 beacons + 1 probe response, all aliasing one allocation.
  ASSERT_EQ(interned.size(), 1u);
  EXPECT_NE(*interned.begin(), nullptr);

  const auto fresh = observed_payloads(false);
  EXPECT_GT(fresh.size(), 1u)
      << "non-interned AP should mint a payload per frame";
}

}  // namespace
}  // namespace spider::core
