#include "tcp/tcp.h"

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>

namespace spider::tcp {
namespace {

// A bidirectional pipe with configurable one-way latency and a drop hook.
class TcpHarness {
 public:
  explicit TcpHarness(sim::Simulator& sim,
                      sim::Time latency = sim::Time::millis(50),
                      TcpConfig config = {})
      : sim_(sim), latency_(latency), config_(config) {
    receiver_ = std::make_unique<TcpReceiver>(
        sim_, 1, [this](const net::TcpSegment& s) { to_sender(s); }, config_);
  }

  // total_bytes < 0: endless stream.
  TcpSender& make_sender(std::int64_t total_bytes) {
    sender_ = std::make_unique<TcpSender>(
        sim_, 1, [this](const net::TcpSegment& s) { to_receiver(s); },
        total_bytes, config_);
    return *sender_;
  }

  TcpSender& sender() { return *sender_; }
  TcpReceiver& receiver() { return *receiver_; }

  // Returns true if the segment should be dropped (forward path).
  std::function<bool(const net::TcpSegment&)> drop_data;
  // True while the "radio is parked": both directions blackholed.
  bool blackhole = false;

 private:
  void to_receiver(const net::TcpSegment& s) {
    if (blackhole) return;
    if (drop_data && drop_data(s)) return;
    sim_.schedule_after(latency_, [this, s] {
      if (!blackhole) receiver_->on_segment(s);
    });
  }
  void to_sender(const net::TcpSegment& s) {
    if (blackhole) return;
    sim_.schedule_after(latency_, [this, s] { sender_->on_ack(s); });
  }

  sim::Simulator& sim_;
  sim::Time latency_;
  TcpConfig config_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

TEST(Tcp, FiniteTransferCompletes) {
  sim::Simulator sim;
  TcpHarness h(sim);
  auto& sender = h.make_sender(100'000);
  sender.start();
  sim.run_until(sim::Time::seconds(30));
  EXPECT_TRUE(sender.finished());
  EXPECT_EQ(h.receiver().bytes_in_order(), 100'000);
  EXPECT_EQ(sender.timeouts(), 0u);
  EXPECT_EQ(sender.retransmissions(), 0u);
}

TEST(Tcp, SubMssTransfer) {
  sim::Simulator sim;
  TcpHarness h(sim);
  auto& sender = h.make_sender(100);
  sender.start();
  sim.run_until(sim::Time::seconds(5));
  EXPECT_TRUE(sender.finished());
  EXPECT_EQ(h.receiver().bytes_in_order(), 100);
}

TEST(Tcp, SlowStartDoublesWindow) {
  sim::Simulator sim;
  TcpHarness h(sim);
  auto& sender = h.make_sender(-1);
  sender.start();
  const double cwnd0 = sender.cwnd_segments();
  sim.run_until(sim::Time::millis(150));  // one RTT (100 ms) + margin
  // In slow start each acked segment grows cwnd by 1 -> roughly doubles.
  EXPECT_GE(sender.cwnd_segments(), cwnd0 * 1.8);
}

TEST(Tcp, RttEstimateTracksPathLatency) {
  sim::Simulator sim;
  TcpHarness h(sim, sim::Time::millis(75));
  auto& sender = h.make_sender(-1);
  sender.start();
  sim.run_until(sim::Time::seconds(2));
  EXPECT_NEAR(sender.smoothed_rtt().ms(), 150.0, 20.0);
}

TEST(Tcp, SingleLossTriggersFastRetransmitNotTimeout) {
  sim::Simulator sim;
  TcpHarness h(sim);
  auto& sender = h.make_sender(-1);
  bool dropped_one = false;
  h.drop_data = [&](const net::TcpSegment& s) {
    // Drop the segment at seq 30*MSS exactly once.
    if (!dropped_one && s.seq == 30 * net::kTcpMssBytes) {
      dropped_one = true;
      return true;
    }
    return false;
  };
  sender.start();
  sim.run_until(sim::Time::seconds(5));
  EXPECT_TRUE(dropped_one);
  EXPECT_GE(sender.retransmissions(), 1u);
  EXPECT_EQ(sender.timeouts(), 0u);
  // Stream kept flowing past the hole.
  EXPECT_GT(h.receiver().bytes_in_order(), 100 * net::kTcpMssBytes);
  EXPECT_GT(h.receiver().out_of_order_segments(), 0u);
}

TEST(Tcp, BlackholeCausesRtoAndRecovery) {
  sim::Simulator sim;
  TcpHarness h(sim);
  auto& sender = h.make_sender(-1);
  sender.start();
  sim.run_until(sim::Time::seconds(2));
  const auto before = h.receiver().bytes_in_order();
  h.blackhole = true;
  sim.run_until(sim::Time::seconds(4));
  EXPECT_GE(sender.timeouts(), 1u);
  h.blackhole = false;
  sim.run_until(sim::Time::seconds(8));
  EXPECT_GT(h.receiver().bytes_in_order(), before);
}

TEST(Tcp, RtoBacksOffExponentially) {
  sim::Simulator sim;
  TcpHarness h(sim);
  auto& sender = h.make_sender(-1);
  sender.start();
  sim.run_until(sim::Time::seconds(1));
  h.blackhole = true;
  sim.run_until(sim::Time::seconds(10));
  EXPECT_GE(sender.timeouts(), 3u);
  // After several timeouts the RTO must have grown well beyond the minimum.
  EXPECT_GT(sender.current_rto(), sim::Time::millis(800));
  EXPECT_DOUBLE_EQ(sender.cwnd_segments(), 1.0);
}

TEST(Tcp, ReceiverReassemblesOutOfOrder) {
  sim::Simulator sim;
  int acks = 0;
  std::int64_t last_ack = -1;
  TcpReceiver rx(sim, 9, [&](const net::TcpSegment& a) {
    ++acks;
    last_ack = a.ack;
  });
  auto seg = [](std::int64_t seq, std::int64_t len) {
    net::TcpSegment s;
    s.flow_id = 9;
    s.seq = seq;
    s.payload_bytes = len;
    return s;
  };
  rx.on_segment(seg(1000, 500));  // hole at 0
  EXPECT_EQ(rx.bytes_in_order(), 0);
  EXPECT_EQ(last_ack, 0);
  rx.on_segment(seg(1500, 500));
  EXPECT_EQ(rx.bytes_in_order(), 0);
  rx.on_segment(seg(0, 1000));  // plugs the hole; everything merges
  EXPECT_EQ(rx.bytes_in_order(), 2000);
  EXPECT_EQ(last_ack, 2000);
  EXPECT_EQ(acks, 3);
}

TEST(Tcp, ReceiverIgnoresDuplicates) {
  sim::Simulator sim;
  std::int64_t delivered = 0;
  TcpReceiver rx(sim, 9, [](const net::TcpSegment&) {});
  rx.set_delivery_handler([&](std::int64_t b) { delivered += b; });
  net::TcpSegment s;
  s.flow_id = 9;
  s.seq = 0;
  s.payload_bytes = 1000;
  rx.on_segment(s);
  rx.on_segment(s);  // duplicate
  EXPECT_EQ(rx.bytes_in_order(), 1000);
  EXPECT_EQ(delivered, 1000);
}

TEST(Tcp, AckCarriesTimestampEcho) {
  sim::Simulator sim;
  net::TcpSegment captured;
  TcpReceiver rx(sim, 9, [&](const net::TcpSegment& a) { captured = a; });
  net::TcpSegment s;
  s.flow_id = 9;
  s.seq = 0;
  s.payload_bytes = 100;
  s.ts = sim::Time::millis(123);
  rx.on_segment(s);
  EXPECT_TRUE(captured.has_ts_echo);
  EXPECT_EQ(captured.ts_echo, sim::Time::millis(123));
  EXPECT_FALSE(captured.from_sender);
}

TEST(Tcp, WindowLimitsInFlightData) {
  sim::Simulator sim;
  TcpConfig cfg;
  cfg.receive_window_segments = 4;
  int in_flight = 0;
  TcpSender sender(sim, 1, [&](const net::TcpSegment&) { ++in_flight; }, -1,
                   cfg);
  sender.start();
  // No acks ever: sender must stop at min(cwnd, rwnd) = 3 (initial cwnd).
  sim.run_until(sim::Time::millis(10));
  EXPECT_EQ(in_flight, 3);
}

TEST(ContentServer, SynOpensFlowAndStreams) {
  sim::Simulator sim;
  ContentServer server(sim);
  int segments = 0;
  net::TcpSegment syn;
  syn.flow_id = 42;
  syn.from_sender = false;
  syn.syn = true;
  server.handle_segment(syn, [&](const net::TcpSegment& s) {
    EXPECT_TRUE(s.from_sender);
    ++segments;
  });
  EXPECT_EQ(server.active_flows(), 1u);
  EXPECT_GT(segments, 0);  // initial window sent immediately
  ASSERT_NE(server.find(42), nullptr);
}

TEST(ContentServer, NonSynForUnknownFlowIgnored) {
  sim::Simulator sim;
  ContentServer server(sim);
  net::TcpSegment ack;
  ack.flow_id = 7;
  ack.from_sender = false;
  ack.ack = 100;
  server.handle_segment(ack, [](const net::TcpSegment&) { FAIL(); });
  EXPECT_EQ(server.active_flows(), 0u);
}

TEST(ContentServer, DuplicateSynDoesNotResetFlow) {
  sim::Simulator sim;
  ContentServer server(sim);
  net::TcpSegment syn;
  syn.flow_id = 42;
  syn.from_sender = false;
  syn.syn = true;
  server.handle_segment(syn, [](const net::TcpSegment&) {});
  const TcpSender* first = server.find(42);
  server.handle_segment(syn, [](const net::TcpSegment&) {});
  EXPECT_EQ(server.find(42), first);
  EXPECT_EQ(server.active_flows(), 1u);
}

TEST(ContentServer, RemoveFlowStopsRetransmissions) {
  sim::Simulator sim;
  ContentServer server(sim);
  int segments = 0;
  net::TcpSegment syn;
  syn.flow_id = 42;
  syn.from_sender = false;
  syn.syn = true;
  server.handle_segment(syn, [&](const net::TcpSegment&) { ++segments; });
  server.remove_flow(42);
  const int after_removal = segments;
  sim.run_until(sim::Time::seconds(10));  // would RTO-retransmit if alive
  EXPECT_EQ(segments, after_removal);
  EXPECT_EQ(server.active_flows(), 0u);
}

TEST(Tcp, ThroughputApproachesPathCapacityOnCleanLink) {
  // 50 ms one-way latency, no loss: an endless transfer should keep the
  // pipe near-fully utilized once slow start has opened the window.
  sim::Simulator sim;
  TcpHarness h(sim, sim::Time::millis(10));
  auto& sender = h.make_sender(-1);
  sender.start();
  sim.run_until(sim::Time::seconds(10));
  // With RTT 20 ms and rwnd 512 segments, the window allows ~37 MB/s; the
  // harness has no rate limit so delivery is bounded by window turnover.
  EXPECT_GT(h.receiver().bytes_in_order(), 10'000'000);
  EXPECT_EQ(sender.timeouts(), 0u);
}

}  // namespace
}  // namespace spider::tcp
