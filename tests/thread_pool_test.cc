// ThreadPool contract tests: startup/shutdown, exception propagation through
// submit(), and the ordering guarantees the sweep engine depends on (FIFO
// dispatch; destructor drains every queued task before joining).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/thread_pool.h"

namespace spider::sim {
namespace {

TEST(ThreadPool, StartsRequestedThreadsAndShutsDownCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  // Destructor joins with an empty queue — must not hang or crash.
}

TEST(ThreadPool, ZeroThreadsMeansHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::default_thread_count());
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsPostedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destruction drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("worker failed"); });
  EXPECT_THROW(
      {
        try {
          fut.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "worker failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillWorker) {
  ThreadPool pool(1);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7) << "the worker that saw an exception must survive "
                              "to run subsequent tasks";
}

TEST(ThreadPool, SingleWorkerDispatchesInSubmissionOrder) {
  // With one worker the queue is strictly FIFO — the property that makes a
  // 1-thread SweepRunner equivalent to the serial loop.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, AllTasksRunExactlyOnceAcrossWorkers) {
  ThreadPool pool(4);
  std::mutex mu;
  std::multiset<int> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&mu, &seen, i] {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(seen.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "task " << i;
  }
}

TEST(ThreadPool, DestructorDrainsQueuedBacklog) {
  // Queue far more slow-ish tasks than workers, then destroy immediately:
  // every queued task must still execute (shutdown drains, never drops).
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, TasksMayOutliveTheirSubmitter) {
  // submit() moves the callable into the pool; the future is the only link
  // back. Heap-allocated state owned by the task must survive the handoff.
  ThreadPool pool(2);
  auto fut = pool.submit([owned = std::vector<int>(1000, 3)] {
    int sum = 0;
    for (int v : owned) sum += v;
    return sum;
  });
  EXPECT_EQ(fut.get(), 3000);
}

}  // namespace
}  // namespace spider::sim
