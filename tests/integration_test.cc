// Full-stack integration tests through the Experiment harness: deployment,
// mobility, driver, DHCP, TCP, and metrics all wired together.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/configs.h"

namespace spider::core {
namespace {

mobility::ApDescriptor lab_ap(std::uint32_t index, phy::Vec2 pos,
                              net::ChannelId channel, double backhaul_bps,
                              bool dud = false) {
  mobility::ApDescriptor d;
  d.ssid = "lab-" + std::to_string(index);
  d.mac = net::MacAddress::from_index(index);
  d.subnet = net::Ipv4Address{(10u << 24) | (index << 8)};
  d.position = pos;
  d.channel = channel;
  d.backhaul_bps = backhaul_bps;
  d.dhcp_offer_min = sim::Time::millis(20);
  d.dhcp_offer_max = sim::Time::millis(100);
  d.dud = dud;
  return d;
}

ExperimentConfig static_lab() {
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.duration = sim::Time::seconds(60);
  cfg.medium.base_loss = 0.05;
  cfg.medium.edge_degradation = false;
  cfg.vehicle = mobility::Vehicle(mobility::Route::straight(1.0), 0.0);
  cfg.spider = single_channel_multi_ap(1);
  return cfg;
}

TEST(Integration, StaticClientDownloadsThroughSpider) {
  ExperimentConfig cfg = static_lab();
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 3e6)};
  Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_EQ(r.joins.joins, 1u);
  EXPECT_EQ(r.flows_opened, 1u);
  // 3 Mbps backhaul: the 60 s average should use a healthy share of it.
  EXPECT_GT(r.avg_throughput_kbps(), 1000.0);
  EXPECT_GT(r.connectivity_percent(), 90.0);
}

TEST(Integration, TwoApsOnOneChannelRoughlyDoubleThroughput) {
  ExperimentConfig one = static_lab();
  one.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6)};
  const auto r1 = Experiment(one).run();

  ExperimentConfig two = static_lab();
  two.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6), lab_ap(0xA1, {12, 0}, 1, 2e6)};
  const auto r2 = Experiment(two).run();

  EXPECT_GT(r2.avg_throughput_kbps(), 1.6 * r1.avg_throughput_kbps());
}

TEST(Integration, AggregationNeedsMultiApMode) {
  ExperimentConfig cfg = static_lab();
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6), lab_ap(0xA1, {12, 0}, 1, 2e6)};
  cfg.spider.multi_ap = false;
  const auto single = Experiment(cfg).run();
  cfg.spider.multi_ap = true;
  const auto multi = Experiment(ExperimentConfig(cfg)).run();
  EXPECT_GT(multi.avg_throughput_kbps(), 1.5 * single.avg_throughput_kbps());
  EXPECT_EQ(single.flows_opened, 1u);
  EXPECT_EQ(multi.flows_opened, 2u);
}

TEST(Integration, DudApsDoNotProduceFlows) {
  ExperimentConfig cfg = static_lab();
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6, /*dud=*/true)};
  const auto r = Experiment(cfg).run();
  EXPECT_EQ(r.flows_opened, 0u);
  EXPECT_GT(r.joins.dhcp_attempt_failures, 0u);
  EXPECT_DOUBLE_EQ(r.avg_throughput_kbps(), 0.0);
}

TEST(Integration, MultiChannelScheduleStillJoinsAcrossChannels) {
  ExperimentConfig cfg = static_lab();
  cfg.duration = sim::Time::seconds(120);
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6), lab_ap(0xA6, {12, 0}, 6, 2e6),
             lab_ap(0xAB, {14, 0}, 11, 2e6)};
  cfg.spider = multi_channel_multi_ap(sim::Time::millis(600));
  const auto r = Experiment(cfg).run();
  EXPECT_EQ(r.flows_opened, 3u);
  EXPECT_GT(r.channel_switches, 100u);
  EXPECT_GT(r.avg_throughput_kbps(), 100.0);
}

TEST(Integration, PsmParkingPreservesFlowAcrossSwitches) {
  // One AP on channel 1, schedule splits time with channel 6 (empty):
  // the flow must survive the repeated absences thanks to PSM buffering.
  ExperimentConfig cfg = static_lab();
  cfg.duration = sim::Time::seconds(120);
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6)};
  cfg.spider = multi_channel_multi_ap(sim::Time::millis(400), {1, 6});
  const auto r = Experiment(cfg).run();
  EXPECT_EQ(r.flows_opened, 1u);  // never lost and reopened
  EXPECT_GT(r.avg_throughput_kbps(), 200.0);
}

TEST(Integration, StockDriverWorksEndToEnd) {
  ExperimentConfig cfg = static_lab();
  cfg.driver = DriverKind::kStock;
  cfg.aps = {lab_ap(0xA6, {10, 0}, 6, 2e6)};
  const auto r = Experiment(cfg).run();
  EXPECT_EQ(r.joins.joins, 1u);
  EXPECT_GT(r.avg_throughput_kbps(), 500.0);
}

TEST(Integration, SameSeedSameResult) {
  ExperimentConfig cfg = static_lab();
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6)};
  const auto a = Experiment(ExperimentConfig(cfg)).run();
  const auto b = Experiment(ExperimentConfig(cfg)).run();
  EXPECT_EQ(a.traffic.total_bytes, b.traffic.total_bytes);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.joins.joins, b.joins.joins);
}

TEST(Integration, DifferentSeedsDiffer) {
  ExperimentConfig cfg = static_lab();
  cfg.medium.base_loss = 0.1;
  cfg.aps = {lab_ap(0xA0, {10, 0}, 1, 2e6)};
  const auto a = Experiment(ExperimentConfig(cfg)).run();
  cfg.seed = 43;
  const auto b = Experiment(ExperimentConfig(cfg)).run();
  // Total bytes can tie when both runs saturate the same backhaul, but the
  // loss draws cannot coincide across seeds.
  EXPECT_NE(a.frames_lost, b.frames_lost);
}

TEST(Integration, RunTwiceThrows) {
  ExperimentConfig cfg = static_lab();
  cfg.duration = sim::Time::seconds(1);
  Experiment exp(cfg);
  exp.run();
  EXPECT_THROW(exp.run(), std::logic_error);
}

TEST(Integration, VehicleDrivePastSingleApHasBoundedConnectivity) {
  ExperimentConfig cfg = static_lab();
  cfg.duration = sim::Time::seconds(100);
  // 1 km road, AP at 500 m; 10 m/s -> in range [40 s, 60 s].
  cfg.vehicle = mobility::Vehicle(mobility::Route::straight(1000.0), 10.0);
  cfg.aps = {lab_ap(0xA0, {500, 10}, 1, 3e6)};
  const auto r = Experiment(cfg).run();
  EXPECT_EQ(r.flows_opened, 1u);
  // Connected for at most the ~20 s encounter minus the join.
  EXPECT_GT(r.connectivity_percent(), 5.0);
  EXPECT_LT(r.connectivity_percent(), 25.0);
  // Disruptions recorded before and after the encounter.
  EXPECT_GE(r.traffic.disruption_durations_sec.count(), 1u);
}

TEST(Integration, MobileMultiApBeatsMobileSingleApOverDeployment) {
  // The paper's headline: on a drive through a clustered deployment, the
  // single-channel multi-AP configuration beats the stock-mimicking
  // single-AP configuration in average throughput.
  ExperimentConfig base;
  base.seed = 21;
  base.duration = sim::Time::seconds(600);
  sim::Rng rng(base.seed);
  auto drng = rng.fork("deploy");
  base.aps = mobility::area_deployment(700, 500, 30, drng);
  base.vehicle = mobility::Vehicle(mobility::Route::rectangle(600, 400), 10.0);

  ExperimentConfig multi = base;
  multi.spider = single_channel_multi_ap(1);
  const auto rm = Experiment(std::move(multi)).run();

  ExperimentConfig single = base;
  single.spider = single_channel_single_ap(1);
  const auto rs = Experiment(std::move(single)).run();

  EXPECT_GT(rm.avg_throughput_kBps(), 1.5 * rs.avg_throughput_kBps());
  EXPECT_GT(rm.connectivity_percent(), rs.connectivity_percent());
}

TEST(Integration, JoinMetricsAccumulateOnDrive) {
  ExperimentConfig cfg = static_lab();
  cfg.seed = 5;
  cfg.duration = sim::Time::seconds(300);
  sim::Rng rng(cfg.seed);
  auto drng = rng.fork("deploy");
  cfg.aps = mobility::area_deployment(700, 500, 30, drng);
  cfg.vehicle = mobility::Vehicle(mobility::Route::rectangle(600, 400), 10.0);
  const auto r = Experiment(cfg).run();
  EXPECT_GT(r.joins.join_attempts, 3u);
  EXPECT_GT(r.joins.associations, 0u);
  EXPECT_GE(r.joins.join_attempts, r.joins.joins);
  if (r.joins.joins > 0) {
    EXPECT_GT(r.joins.join_delay_sec.median(), 0.0);
    EXPECT_GE(r.joins.join_delay_sec.median(),
              r.joins.association_delay_sec.median());
  }
}

}  // namespace
}  // namespace spider::core
