// core::Arena — the simulator's per-drain bump allocator.
//
// The contract the hot paths rely on: warm allocation is a pointer bump
// (no operator new), reset() is a cursor rewind that keeps every block,
// alignment is honoured for any power of two, and Scope unwinds nested
// scratch regions LIFO so callers can stack arrays without coordinating.
#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace spider::core {
namespace {

TEST(Arena, FirstAllocationGrowsOnce) {
  Arena arena;
  EXPECT_EQ(arena.block_allocations(), 0u);
  void* p = arena.allocate(16, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.block_allocations(), 1u);
  EXPECT_GE(arena.capacity(), Arena::kDefaultFirstBlock);
}

TEST(Arena, WarmAllocationsReuseTheBlock) {
  Arena arena;
  arena.allocate(64, 8);
  const std::uint64_t blocks = arena.block_allocations();
  for (int i = 0; i < 1000; ++i) arena.allocate(32, 8);
  EXPECT_EQ(arena.block_allocations(), blocks)
      << "small warm allocations must never touch operator new";
}

TEST(Arena, AlignmentIsHonoured) {
  Arena arena;
  arena.allocate(1, 1);  // misalign the cursor
  for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
    void* p = arena.allocate(8, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
    arena.allocate(1, 1);  // misalign again for the next round
  }
}

TEST(Arena, ResetRewindsWithoutReleasingBlocks) {
  Arena arena;
  arena.allocate(4096, 8);
  const std::size_t cap = arena.capacity();
  const std::uint64_t blocks = arena.block_allocations();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.block_allocations(), blocks);
  EXPECT_EQ(arena.resets(), 1u);
  // The rewound space is reusable without growth.
  arena.allocate(4096, 8);
  EXPECT_EQ(arena.block_allocations(), blocks);
}

TEST(Arena, GrowthCoversOversizedRequests) {
  Arena arena;
  // Larger than the default first block: growth must still satisfy it in
  // one contiguous allocation.
  const std::size_t big = Arena::kDefaultFirstBlock * 3;
  auto* p = static_cast<char*>(arena.allocate(big, 8));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, big);  // the whole range must be writable
  EXPECT_GE(arena.capacity(), big);
}

TEST(Arena, HighWaterTracksPeakAcrossResets) {
  Arena arena;
  arena.allocate(1024, 8);
  arena.reset();
  arena.allocate(16, 8);
  EXPECT_GE(arena.high_water(), 1024u);
  EXPECT_LT(arena.used(), 1024u);
}

TEST(Arena, AllocArrayIsTypedAndAligned) {
  Arena arena;
  double* d = arena.alloc_array<double>(37);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  for (int i = 0; i < 37; ++i) d[i] = i * 1.5;
  EXPECT_EQ(d[36], 54.0);
  // Zero-length arrays are legal and must not derail the cursor.
  std::uint32_t* none = arena.alloc_array<std::uint32_t>(0);
  std::uint32_t* one = arena.alloc_array<std::uint32_t>(1);
  (void)none;
  *one = 7;
  EXPECT_EQ(*one, 7u);
}

TEST(Arena, ScopesUnwindLifo) {
  Arena arena;
  arena.allocate(128, 8);
  const std::size_t base = arena.used();
  {
    Arena::Scope outer(arena);
    arena.allocate(256, 8);
    {
      Arena::Scope inner(arena);
      arena.allocate(512, 8);
      EXPECT_GE(arena.used(), base + 256 + 512);
    }
    EXPECT_EQ(arena.used(), base + 256);
  }
  EXPECT_EQ(arena.used(), base);
}

TEST(Arena, MarkAndRewindAcrossBlockGrowth) {
  Arena arena;
  arena.allocate(16, 8);
  const Arena::Marker m = arena.mark();
  const std::size_t used_at_mark = arena.used();
  // Force growth past the marked block, then rewind over the boundary.
  arena.allocate(Arena::kDefaultFirstBlock * 2, 8);
  arena.rewind(m);
  EXPECT_EQ(arena.used(), used_at_mark);
  // Allocating again after the rewind is safe and bump-only.
  const std::uint64_t blocks = arena.block_allocations();
  arena.allocate(64, 8);
  EXPECT_EQ(arena.block_allocations(), blocks);
}

}  // namespace
}  // namespace spider::core
