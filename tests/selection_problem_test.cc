#include "model/ap_selection_problem.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace spider::model {
namespace {

ApCandidate mk(double cost, double bw, double residual, double success = 1.0) {
  return ApCandidate{cost, bw, residual, success};
}

TEST(ApCandidate, UtilityIsUsableTimeTimesBandwidth) {
  EXPECT_DOUBLE_EQ(mk(2.0, 1e6, 10.0).utility(), 8e6);
  EXPECT_DOUBLE_EQ(mk(2.0, 1e6, 10.0, 0.5).utility(), 4e6);
}

TEST(ApCandidate, NoUtilityIfJoinOutlastsEncounter) {
  EXPECT_DOUBLE_EQ(mk(10.0, 1e6, 8.0).utility(), 0.0);
}

TEST(SelectionExact, EmptyProblem) {
  const auto s = solve_exact(SelectionProblem{});
  EXPECT_TRUE(s.chosen.empty());
  EXPECT_DOUBLE_EQ(s.total_utility, 0.0);
}

TEST(SelectionExact, TakesEverythingWhenBudgetAllows) {
  SelectionProblem p;
  p.candidates = {mk(1, 1e6, 10), mk(1, 2e6, 10), mk(1, 3e6, 10)};
  p.join_budget_sec = 10.0;
  const auto s = solve_exact(p);
  EXPECT_EQ(s.chosen.size(), 3u);
}

TEST(SelectionExact, RespectsBudget) {
  SelectionProblem p;
  p.candidates = {mk(3, 1e6, 10), mk(3, 1e6, 10), mk(3, 1e6, 10)};
  p.join_budget_sec = 6.0;
  const auto s = solve_exact(p);
  EXPECT_EQ(s.chosen.size(), 2u);
  EXPECT_LE(s.total_cost_sec, 6.0);
}

TEST(SelectionExact, RespectsSlotLimit) {
  SelectionProblem p;
  p.candidates = std::vector<ApCandidate>(10, mk(0.1, 1e6, 10));
  p.join_budget_sec = 100.0;
  p.max_selection = 4;
  const auto s = solve_exact(p);
  EXPECT_EQ(s.chosen.size(), 4u);
}

TEST(SelectionExact, SolvesAKnapsackTradeoffCorrectly) {
  // One expensive high-utility AP vs. two cheap ones whose sum is better.
  SelectionProblem p;
  p.candidates = {mk(4.0, 10e6, 10.0),   // utility 60e6, cost 4
                  mk(2.0, 6e6, 10.0),    // utility 48e6, cost 2
                  mk(2.0, 5.9e6, 10.0)}; // utility 47.2e6, cost 2
  p.join_budget_sec = 4.0;
  const auto s = solve_exact(p);
  // {1,2}: 95.2e6 beats {0}: 60e6.
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(SelectionGreedy, SpiderGreedyIgnoresBandwidth) {
  // Spider ranks by join speed; density greedy would pick the fat one.
  SelectionProblem p;
  p.candidates = {mk(0.5, 1e5, 10.0),   // joins fast, thin
                  mk(3.0, 10e6, 10.0)}; // slow, fat
  p.join_budget_sec = 3.0;  // only room for one of them... (0.5 or 3.0)
  p.max_selection = 1;
  const auto spider = solve_spider_greedy(p);
  const auto density = solve_density_greedy(p);
  ASSERT_EQ(spider.chosen.size(), 1u);
  ASSERT_EQ(density.chosen.size(), 1u);
  EXPECT_EQ(spider.chosen[0], 0u);
  EXPECT_EQ(density.chosen[0], 1u);
}

TEST(SelectionGreedy, SkipsZeroUtilityCandidates) {
  SelectionProblem p;
  p.candidates = {mk(12.0, 1e6, 10.0), mk(1.0, 1e6, 10.0)};
  const auto s = solve_spider_greedy(p);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1}));
}

TEST(SelectionGreedy, DudProbabilityLowersRank) {
  SelectionProblem p;
  p.candidates = {mk(1.0, 1e6, 10.0, 0.1), mk(1.0, 1e6, 10.0, 0.9)};
  p.max_selection = 1;
  const auto s = solve_spider_greedy(p);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1}));
}

// Property sweep: on random instances, exact >= both greedies, and all
// solutions respect budget and slots.
class SelectionRandomInstances : public ::testing::TestWithParam<int> {};

TEST_P(SelectionRandomInstances, ExactDominatesHeuristics) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  SelectionProblem p;
  const int n = static_cast<int>(rng.uniform_int(4, 14));
  for (int i = 0; i < n; ++i) {
    p.candidates.push_back(mk(rng.uniform(0.3, 5.0), rng.uniform(5e5, 8e6),
                              rng.uniform(3.0, 25.0), rng.uniform(0.3, 1.0)));
  }
  p.join_budget_sec = rng.uniform(2.0, 10.0);
  p.max_selection = static_cast<int>(rng.uniform_int(1, 7));

  const auto exact = solve_exact(p);
  const auto spider = solve_spider_greedy(p);
  const auto density = solve_density_greedy(p);

  EXPECT_GE(exact.total_utility, spider.total_utility - 1e-6);
  EXPECT_GE(exact.total_utility, density.total_utility - 1e-6);
  for (const auto* s : {&exact, &spider, &density}) {
    EXPECT_LE(s->total_cost_sec, p.join_budget_sec + 1e-9);
    EXPECT_LE(static_cast<int>(s->chosen.size()), p.max_selection);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionRandomInstances,
                         ::testing::Range(1, 26));

}  // namespace
}  // namespace spider::model
