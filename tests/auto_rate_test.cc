// Rate adaptation: controller logic, rate-scaled airtime and range in the
// medium, and AP-level end-to-end behaviour at the cell edge.
#include <gtest/gtest.h>

#include "mac/access_point.h"
#include "mac/client_session.h"
#include "phy/auto_rate.h"
#include "phy/medium.h"
#include "phy/radio.h"

namespace spider::phy {
namespace {

const auto kPeer = net::MacAddress::from_index(1);

TEST(AutoRate, StartsAtTopRate) {
  AutoRate ar;
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 11e6);
  EXPECT_EQ(ar.tracked_peers(), 0u);
}

TEST(AutoRate, FailureStepsDown) {
  AutoRate ar;
  ar.on_failure(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 5.5e6);
  ar.on_failure(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 2e6);
  ar.on_failure(kPeer);
  ar.on_failure(kPeer);  // clamps at the bottom
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 1e6);
}

TEST(AutoRate, SustainedSuccessStepsUp) {
  AutoRate ar(/*up_after=*/3);
  ar.on_failure(kPeer);
  ar.on_failure(kPeer);  // at 2 Mb/s
  for (int i = 0; i < 3; ++i) ar.on_success(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 5.5e6);
  for (int i = 0; i < 3; ++i) ar.on_success(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 11e6);
}

TEST(AutoRate, FailureResetsSuccessStreak) {
  AutoRate ar(/*up_after=*/3);
  ar.on_failure(kPeer);  // 5.5
  ar.on_success(kPeer);
  ar.on_success(kPeer);
  ar.on_failure(kPeer);  // streak broken AND stepped down to 2
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 2e6);
  ar.on_success(kPeer);
  ar.on_success(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 2e6);  // only 2 of 3
}

TEST(AutoRate, PeersAreIndependent) {
  AutoRate ar;
  const auto other = net::MacAddress::from_index(2);
  ar.on_failure(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 5.5e6);
  EXPECT_DOUBLE_EQ(ar.rate_for(other), 11e6);
  ar.forget(kPeer);
  EXPECT_DOUBLE_EQ(ar.rate_for(kPeer), 11e6);
}

TEST(RateRangeScale, MonotoneAndBounded) {
  EXPECT_DOUBLE_EQ(rate_range_scale(11e6, 11e6), 1.0);
  EXPECT_DOUBLE_EQ(rate_range_scale(0.0, 11e6), 1.0);
  const double s55 = rate_range_scale(5.5e6, 11e6);
  const double s2 = rate_range_scale(2e6, 11e6);
  const double s1 = rate_range_scale(1e6, 11e6);
  EXPECT_GT(s55, 1.0);
  EXPECT_GT(s2, s55);
  EXPECT_GT(s1, s2);
  EXPECT_LT(s1, 1.6);
}

TEST(MediumRate, LowRateFrameTakesProportionallyLonger) {
  sim::Simulator sim;
  MediumConfig cfg;
  cfg.base_loss = 0.0;
  cfg.edge_degradation = false;
  cfg.preamble = sim::Time::micros(0);
  cfg.bitrate_bps = 11e6;
  Medium medium(sim, sim::Rng(1), cfg);
  Radio tx(medium, net::MacAddress::from_index(1), {.initial_channel = 6});
  Radio rx(medium, net::MacAddress::from_index(2), {.initial_channel = 6});
  rx.set_position({10, 0});
  std::vector<sim::Time> deliveries;
  rx.set_receive_handler(
      [&](const net::Frame&, const RxInfo&) { deliveries.push_back(sim.now()); });

  net::TcpSegment seg;
  seg.payload_bytes = 1335;  // 1409 bytes with headers -> 1 ms at 11 Mb/s
  auto fast = net::make_tcp_frame(tx.address(), rx.address(), net::Bssid{}, seg);
  auto slow = fast;
  slow.tx_rate_bps = 1e6;
  tx.send(fast);
  sim.run_all();
  tx.send(slow);
  sim.run_all();
  ASSERT_EQ(deliveries.size(), 2u);
  const sim::Time fast_airtime = deliveries[0];
  const sim::Time slow_airtime = deliveries[1] - deliveries[0];
  EXPECT_NEAR(slow_airtime.us() / static_cast<double>(fast_airtime.us()), 11.0,
              0.1);
}

TEST(MediumRate, LowRateReachesBeyondNominalRange) {
  sim::Simulator sim;
  MediumConfig cfg;
  cfg.base_loss = 0.0;
  cfg.edge_degradation = false;
  cfg.range_m = 100.0;
  Medium medium(sim, sim::Rng(1), cfg);
  Radio tx(medium, net::MacAddress::from_index(1), {.initial_channel = 6});
  Radio rx(medium, net::MacAddress::from_index(2), {.initial_channel = 6});
  rx.set_position({125, 0});  // outside 11 Mb/s range, inside 1 Mb/s range
  int received = 0;
  rx.set_receive_handler([&](const net::Frame&, const RxInfo&) { ++received; });

  net::TcpSegment seg;
  seg.payload_bytes = 100;
  auto frame = net::make_tcp_frame(tx.address(), rx.address(), net::Bssid{}, seg);
  tx.send(frame);  // nominal rate: out of range
  sim.run_all();
  EXPECT_EQ(received, 0);
  frame.tx_rate_bps = 1e6;  // range scale ~1.41 -> effective 141 m
  tx.send(frame);
  sim.run_all();
  EXPECT_EQ(received, 1);
}

TEST(MediumRate, TxResultHandlerReportsBothOutcomes) {
  sim::Simulator sim;
  MediumConfig cfg;
  cfg.base_loss = 0.0;
  cfg.edge_degradation = false;
  Medium medium(sim, sim::Rng(1), cfg);
  Radio tx(medium, net::MacAddress::from_index(1), {.initial_channel = 6});
  Radio rx(medium, net::MacAddress::from_index(2), {.initial_channel = 6});
  rx.set_position({10, 0});
  int ok = 0, failed = 0;
  tx.set_tx_result_handler([&](const net::Frame&, bool delivered) {
    delivered ? ++ok : ++failed;
  });
  net::TcpSegment seg;
  seg.payload_bytes = 10;
  tx.send(net::make_tcp_frame(tx.address(), rx.address(), net::Bssid{}, seg));
  sim.run_all();
  rx.set_position({500, 0});  // gone
  tx.send(net::make_tcp_frame(tx.address(), rx.address(), net::Bssid{}, seg));
  sim.run_all();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(failed, 1);
}

TEST(ApAutoRate, EdgeClientGetsServedAtLowerRate) {
  sim::Simulator sim;
  MediumConfig mcfg;
  mcfg.base_loss = 0.05;
  mcfg.edge_degradation = false;
  mcfg.range_m = 100.0;
  Medium medium(sim, sim::Rng(1), mcfg);

  mac::AccessPointConfig acfg;
  acfg.channel = 6;
  acfg.auto_rate = true;
  acfg.response_delay_min = sim::Time::millis(1);
  acfg.response_delay_max = sim::Time::millis(2);
  mac::AccessPoint ap(medium, net::MacAddress::from_index(0xA0), {0, 0},
                      sim::Rng(2), acfg);
  ap.start();

  Radio client(medium, net::MacAddress::from_index(0xC0),
               {.initial_channel = 6});
  client.set_position({50, 0});
  mac::ClientSession session(
      sim, client.address(), ap.address(), 6,
      [&](const net::Frame& f) { return client.send(f); },
      mac::ClientSessionConfig{.link_timeout = sim::Time::millis(100)});
  client.set_receive_handler([&](const net::Frame& f, const RxInfo&) {
    session.handle_frame(f);
  });
  session.start_join();
  sim.run_for(sim::Time::millis(500));
  ASSERT_TRUE(session.associated());
  EXPECT_DOUBLE_EQ(ap.downlink_rate_bps(client.address()), 11e6);

  // Client drifts past nominal range: downlink at 11 Mb/s now fails, and
  // the controller must step the rate down until frames land again.
  client.set_position({120, 0});
  int delivered = 0;
  client.set_receive_handler([&](const net::Frame& f, const RxInfo&) {
    session.handle_frame(f);
    if (f.kind == net::FrameKind::kData) ++delivered;
  });
  net::TcpSegment seg;
  seg.payload_bytes = 500;
  for (int i = 0; i < 12; ++i) {
    ap.send_to_client(client.address(),
                      net::make_tcp_frame(ap.address(), client.address(),
                                          ap.address(), seg));
    sim.run_for(sim::Time::millis(20));
  }
  EXPECT_LT(ap.downlink_rate_bps(client.address()), 11e6);
  EXPECT_GT(delivered, 0);
}

}  // namespace
}  // namespace spider::phy
