#include "core/client_device.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/access_point.h"
#include "phy/medium.h"
#include "phy/radio.h"

namespace spider::core {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() {
    phy::MediumConfig cfg;
    cfg.base_loss = 0.0;
    cfg.edge_degradation = false;
    medium_ = std::make_unique<phy::Medium>(sim_, sim::Rng(1), cfg);
    device_ = std::make_unique<ClientDevice>(
        *medium_, net::MacAddress::from_index(0xC0),
        ClientDeviceConfig{.radio = {.initial_channel = 1}});
  }

  std::unique_ptr<mac::AccessPoint> make_ap(net::ChannelId channel,
                                            std::uint32_t index = 0xA0) {
    mac::AccessPointConfig cfg;
    cfg.channel = channel;
    cfg.ssid = "ap-" + std::to_string(index);
    cfg.response_delay_min = sim::Time::millis(1);
    cfg.response_delay_max = sim::Time::millis(2);
    auto ap = std::make_unique<mac::AccessPoint>(
        *medium_, net::MacAddress::from_index(index), phy::Vec2{10, 0},
        sim::Rng(index), cfg);
    ap->start();
    return ap;
  }

  sim::Simulator sim_;
  std::unique_ptr<phy::Medium> medium_;
  std::unique_ptr<ClientDevice> device_;
};

TEST_F(DeviceTest, ScanTableFillsFromBeacons) {
  auto ap = make_ap(1);
  sim_.run_for(sim::Time::millis(300));
  const auto results = device_->scan_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].bssid, ap->address());
  EXPECT_EQ(results[0].channel, 1);
  EXPECT_LT(results[0].rssi_dbm, 0.0);
}

TEST_F(DeviceTest, ScanResultsFilterByChannel) {
  auto ap1 = make_ap(1, 0xA0);
  auto ap2 = make_ap(1, 0xA1);
  sim_.run_for(sim::Time::millis(300));
  EXPECT_EQ(device_->scan_results(1).size(), 2u);
  EXPECT_EQ(device_->scan_results(6).size(), 0u);
}

TEST_F(DeviceTest, StaleScanEntriesExpire) {
  {
    auto ap = make_ap(1);
    sim_.run_for(sim::Time::millis(300));
    EXPECT_EQ(device_->scan_results().size(), 1u);
  }  // AP destroyed: no more beacons
  sim_.run_for(sim::Time::seconds(5));
  EXPECT_EQ(device_->scan_results().size(), 0u);
}

TEST_F(DeviceTest, ForgetScanRemovesEntry) {
  auto ap = make_ap(1);
  sim_.run_for(sim::Time::millis(300));
  device_->forget_scan(ap->address());
  EXPECT_EQ(device_->scan_results().size(), 0u);
}

TEST_F(DeviceTest, ClosedApsAreNotScanCandidates) {
  mac::AccessPointConfig cfg;
  cfg.channel = 1;
  cfg.open = false;
  mac::AccessPoint ap(*medium_, net::MacAddress::from_index(0xB0),
                      phy::Vec2{10, 0}, sim::Rng(7), cfg);
  ap.start();
  sim_.run_for(sim::Time::millis(500));
  EXPECT_EQ(device_->scan_results().size(), 0u);
}

TEST_F(DeviceTest, EnqueueOnCurrentChannelSendsImmediately) {
  net::TcpSegment seg;
  seg.payload_bytes = 10;
  EXPECT_TRUE(device_->enqueue(
      1, net::make_tcp_frame(device_->address(),
                             net::MacAddress::from_index(0xA0), net::Bssid{},
                             seg)));
  EXPECT_EQ(device_->frames_enqueued(), 1u);
}

TEST_F(DeviceTest, EnqueueOnOtherChannelDefersUntilSwitch) {
  auto ap = make_ap(6, 0xA6);
  int ap_rx_before = 0;
  ap->set_data_sink([&](const net::Frame&) { ++ap_rx_before; });

  net::TcpSegment seg;
  seg.payload_bytes = 10;
  EXPECT_FALSE(device_->enqueue(
      6, net::make_tcp_frame(device_->address(), ap->address(), ap->address(),
                             seg)));
  sim_.run_for(sim::Time::millis(200));
  EXPECT_EQ(ap_rx_before, 0);  // still parked on channel 1

  device_->switch_channel(6);
  sim_.run_for(sim::Time::millis(200));
  // Frame flushed on arrival (the AP drops it as unassociated, but it was
  // transmitted: tx counter moved).
  EXPECT_GE(device_->radio().frames_tx(), 1u);
}

TEST_F(DeviceTest, QueueCapDrops) {
  ClientDeviceConfig cfg;
  cfg.radio.initial_channel = 1;
  cfg.max_queue_frames = 2;
  ClientDevice d(*medium_, net::MacAddress::from_index(0xC1), cfg);
  net::TcpSegment seg;
  seg.payload_bytes = 10;
  const auto frame = net::make_tcp_frame(
      d.address(), net::MacAddress::from_index(0xA0), net::Bssid{}, seg);
  EXPECT_FALSE(d.enqueue(6, frame));
  EXPECT_FALSE(d.enqueue(6, frame));
  EXPECT_FALSE(d.enqueue(6, frame));  // dropped
  EXPECT_EQ(d.queue_drops(), 1u);
}

TEST_F(DeviceTest, SwitchLatencyGrowsWithConnectedAps) {
  device_->set_connected_lookup([](net::ChannelId ch) {
    std::vector<net::Bssid> v;
    if (ch == 1) {
      v = {net::MacAddress::from_index(1), net::MacAddress::from_index(2)};
    }
    return v;
  });
  const sim::Time with_aps = device_->switch_channel(6);
  sim_.run_for(sim::Time::millis(100));
  device_->set_connected_lookup(
      [](net::ChannelId) { return std::vector<net::Bssid>{}; });
  const sim::Time without = device_->switch_channel(1);
  EXPECT_GT(with_aps, without);
  // Base cost is the hardware reset (~4.94 ms).
  EXPECT_GE(without, phy::kHardwareResetTime);
  EXPECT_LT(without, sim::Time::micros(5200));
}

TEST_F(DeviceTest, SwitchSendsPsmAnnouncementsAndPolls) {
  // One AP on the old channel, one on the new; both "connected".
  auto ap_old = make_ap(1, 0xA0);
  auto ap_new = make_ap(6, 0xA6);
  device_->set_connected_lookup([&](net::ChannelId ch) {
    std::vector<net::Bssid> v;
    if (ch == 1) v.push_back(ap_old->address());
    if (ch == 6) v.push_back(ap_new->address());
    return v;
  });

  // Sniffer radios capture what is sent on each channel.
  phy::Radio sniffer1(*medium_, net::MacAddress::from_index(0xF1),
                      {.initial_channel = 1});
  sniffer1.set_position({1, 0});
  phy::Radio sniffer6(*medium_, net::MacAddress::from_index(0xF6),
                      {.initial_channel = 6});
  sniffer6.set_position({1, 0});
  int pm_frames = 0, polls = 0;
  sniffer1.set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kNullData && f.power_mgmt &&
        f.src == device_->address()) {
      ++pm_frames;
    }
  });
  sniffer6.set_receive_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kPsPoll && f.src == device_->address()) {
      ++polls;
    }
  });

  device_->switch_channel(6);
  sim_.run_for(sim::Time::millis(100));
  EXPECT_EQ(pm_frames, 1);
  EXPECT_EQ(polls, 1);
  EXPECT_EQ(device_->channel(), 6);
  EXPECT_EQ(device_->switches(), 1u);
}

TEST_F(DeviceTest, BssidHandlerReceivesOnlyItsFrames) {
  auto ap1 = make_ap(1, 0xA0);
  auto ap2 = make_ap(1, 0xA1);
  int from_ap1 = 0;
  device_->register_bssid(ap1->address(),
                          [&](const net::Frame& f, const phy::RxInfo&) {
                            EXPECT_EQ(f.src, ap1->address());
                            ++from_ap1;
                          });
  sim_.run_for(sim::Time::millis(500));
  EXPECT_GT(from_ap1, 0);
  device_->unregister_bssid(ap1->address());
  const int before = from_ap1;
  sim_.run_for(sim::Time::millis(500));
  EXPECT_EQ(from_ap1, before);
}

TEST_F(DeviceTest, DefaultHandlerSeesEverything) {
  auto ap1 = make_ap(1, 0xA0);
  int frames = 0;
  device_->set_default_handler(
      [&](const net::Frame&, const phy::RxInfo&) { ++frames; });
  sim_.run_for(sim::Time::millis(500));
  EXPECT_GT(frames, 0);
}

TEST_F(DeviceTest, PeriodicProbingTriggersProbeResponses) {
  auto ap = make_ap(1);
  // Kill beacons' contribution by checking probe responses specifically.
  int probe_responses = 0;
  device_->set_default_handler([&](const net::Frame& f, const phy::RxInfo&) {
    if (f.kind == net::FrameKind::kProbeResponse) ++probe_responses;
  });
  sim_.run_for(sim::Time::seconds(3));
  EXPECT_GE(probe_responses, 4);  // every ~500 ms
}

}  // namespace
}  // namespace spider::core
