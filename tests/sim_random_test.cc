#include "sim/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace spider::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root(42);
  Rng a = root.fork("medium");
  Rng b = Rng(42).fork("medium");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForksWithDifferentTagsAreIndependent) {
  Rng root(42);
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkByIndexDiffers) {
  Rng root(42);
  Rng a = root.fork(std::uint64_t{0});
  Rng b = root.fork(std::uint64_t{1});
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(7), b(7);
  (void)a.fork("child");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRateApproximatesP) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / 20000.0, 250.0, 10.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, LognormalMedian) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 10001; ++i) v.push_back(rng.lognormal(2.0, 1.0));
  std::nth_element(v.begin(), v.begin() + 5000, v.end());
  EXPECT_NEAR(v[5000], std::exp(2.0), 0.5);
}

}  // namespace
}  // namespace spider::sim
