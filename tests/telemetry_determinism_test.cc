// Telemetry determinism gates.
//
// The exports are only trustworthy if they are *reproducible artifacts*:
// the same seeded sweep must render byte-identical JSONL no matter how many
// worker threads ran it and no matter how often it is repeated. These tests
// pin that property at the string level (not just value-level equality), and
// check the end-to-end trace path: a vehicular run with tracing on must
// produce Perfetto-loadable JSON containing the scan/auth/assoc/DHCP join
// spans the recorder promises.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/configs.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "mobility/route.h"
#include "net/addr.h"
#include "telemetry/json.h"
#include "telemetry/run_report.h"

namespace spider::core {
namespace {

// Short drive past two same-channel APs: the full join pipeline (scan, auth,
// assoc, DHCP) fires several times in 20 simulated seconds.
ExperimentConfig scenario(std::uint64_t seed, bool trace = false) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.duration = sim::Time::seconds(20);
  cfg.medium.base_loss = 0.1;
  cfg.vehicle = mobility::Vehicle(mobility::Route::straight(300.0), 12.0);
  cfg.spider = single_channel_multi_ap(1);
  cfg.trace_enabled = trace;

  mobility::ApDescriptor ap;
  ap.ssid = "telemetry-ap";
  ap.mac = net::MacAddress::from_index(0xB0);
  ap.subnet = net::Ipv4Address{(10u << 24) | (0xB0u << 8)};
  ap.position = {90, 12};
  ap.channel = 1;
  ap.backhaul_bps = 2e6;
  mobility::ApDescriptor ap2 = ap;
  ap2.ssid = "telemetry-ap2";
  ap2.mac = net::MacAddress::from_index(0xB1);
  ap2.subnet = net::Ipv4Address{(10u << 24) | (0xB1u << 8)};
  ap2.position = {210, -8};
  cfg.aps = {ap, ap2};
  return cfg;
}

// Exactly what core::append_telemetry_jsonl writes, minus the file I/O —
// the byte sequence under test.
std::string render_jsonl(const SweepReport& report) {
  std::string out;
  for (const SweepRunResult& run : report.runs) {
    out += telemetry::run_report_line("gate", run.index, run.seed, run.digest,
                                      run.events_executed, run.telemetry);
    out += '\n';
  }
  out += telemetry::sweep_report_line("gate", report.runs.size(),
                                      report.combined_digest(),
                                      report.merged_telemetry());
  out += '\n';
  return out;
}

std::vector<std::uint64_t> eight_seeds() {
  return {101, 202, 303, 404, 505, 606, 707, 808};
}

TEST(TelemetryDeterminism, RepeatedSeededSweepsExportIdenticalBytes) {
  const auto seeds = eight_seeds();
  const auto first = run_seed_sweep(
      seeds, [](std::uint64_t s) { return scenario(s); }, 2);
  const auto second = run_seed_sweep(
      seeds, [](std::uint64_t s) { return scenario(s); }, 2);
  EXPECT_EQ(render_jsonl(first), render_jsonl(second));
}

TEST(TelemetryDeterminism, WorkerCountCannotChangeTheExport) {
  const auto seeds = eight_seeds();
  const auto serial = run_seed_sweep(
      seeds, [](std::uint64_t s) { return scenario(s); }, 1);
  const auto parallel = run_seed_sweep(
      seeds, [](std::uint64_t s) { return scenario(s); }, 8);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  EXPECT_EQ(render_jsonl(serial), render_jsonl(parallel))
      << "merged telemetry must be a function of the runs, not the workers";
}

#if SPIDER_TELEMETRY

TEST(TelemetryDeterminism, TelemetryAgreesWithTheResultsItDescribes) {
  const auto report = run_seed_sweep(
      {41, 42}, [](std::uint64_t s) { return scenario(s); }, 1);
  for (const SweepRunResult& run : report.runs) {
    // The registry view and the ExperimentResults view of the same world
    // must agree — they are two readouts of the same counters.
    EXPECT_EQ(run.telemetry.counter_value("driver.joins"),
              run.results.joins.joins);
    EXPECT_EQ(run.telemetry.counter_value("driver.join_attempts"),
              run.results.joins.join_attempts);
    EXPECT_EQ(run.telemetry.counter_value("phy.frames_sent"),
              run.results.frames_sent);
    EXPECT_EQ(run.telemetry.counter_value("phy.frames_lost"),
              run.results.frames_lost);
    EXPECT_EQ(run.telemetry.counter_value("sim.events_fired"),
              run.events_executed);
    // Per-channel slices must sum back to the totals (this scenario never
    // leaves channel 1, so the slice *is* the total).
    EXPECT_EQ(run.telemetry.counter_value("phy.frames_sent.ch1"),
              run.results.frames_sent);
  }
}

TEST(TelemetryDeterminism, TracedRunEmitsTheJoinSpans) {
  Experiment experiment(scenario(7, /*trace=*/true));
  experiment.run();
  const std::string json =
      experiment.simulator().telemetry().trace().to_json();

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::parse_json(json, doc, &error)) << error;
  const telemetry::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::string> span_names;
  std::set<std::string> track_names;
  for (const telemetry::JsonValue& ev : events->array) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "X" && ev.string_or("cat", "") == "join") {
      span_names.insert(ev.string_or("name", ""));
      EXPECT_GE(ev.number_or("dur", -1), 0.0);
    } else if (ph == "M") {
      if (const telemetry::JsonValue* args = ev.find("args")) {
        track_names.insert(args->string_or("name", ""));
      }
    }
  }
  // The full join pipeline must be visible: scan -> auth -> assoc -> dhcp,
  // plus the enclosing join envelope.
  EXPECT_TRUE(span_names.count("scan")) << json.substr(0, 400);
  EXPECT_TRUE(span_names.count("auth"));
  EXPECT_TRUE(span_names.count("assoc"));
  EXPECT_TRUE(span_names.count("dhcp"));
  EXPECT_TRUE(span_names.count("join"));
  // Track 0 is the main/stock lane; the first virtual interface gets lane 1.
  EXPECT_TRUE(track_names.count("vif1"));

  // Re-running the identical traced scenario renders the identical file.
  Experiment again(scenario(7, /*trace=*/true));
  again.run();
  EXPECT_EQ(json, again.simulator().telemetry().trace().to_json());
}

TEST(TelemetryDeterminism, UntracedRunsRecordNoTraceEvents) {
  Experiment experiment(scenario(7, /*trace=*/false));
  experiment.run();
  EXPECT_EQ(experiment.simulator().telemetry().trace().recorded(), 0u);
}

#endif  // SPIDER_TELEMETRY

}  // namespace
}  // namespace spider::core
